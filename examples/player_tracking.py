"""Player tracking across football clips: the paper's q3, with lineage.

"Track one player's trajectory in every play ... Given segmentation
output that identifies a player in frame and OCR output that identifies a
number if one is visible, we have to relate that sequence of bounding
boxes back to the original image."

The pipeline detects players, crops torsos, and OCRs jersey numbers; the
OCR patches keep lineage parent pointers to the player detections they
came from, so relating number -> bounding box is a pointer chase instead
of a rescan (the paper's 41x lineage win).

Run: ``python examples/player_tracking.py``
"""

import tempfile

from repro.bench import build_football_workload, prepare_football_design
from repro.bench.metrics import Timer, set_prf
from repro.core import DeepLens
from repro.datasets import FootballDataset


def main() -> None:
    dataset = FootballDataset(scale=0.006, n_clips=4, seed=23)
    print(
        f"{dataset.n_clips} clips, {dataset.total_frames} frames; tracking "
        f"jersey #{dataset.tracked_number}"
    )

    with tempfile.TemporaryDirectory() as workdir, DeepLens(workdir) as db:
        workload = build_football_workload(db, dataset)
        prepare_football_design(workload)
        print(
            f"ETL: {workload.etl_seconds:.1f}s -> {len(workload.players)} player "
            f"patches, {len(workload.jerseys)} readable jerseys"
        )

        index = workload.jerseys.index("text", "hash")
        with Timer() as timer:
            trajectory: dict[str, list[tuple[int, tuple]]] = {}
            for patch_id in index.lookup(dataset.tracked_number):
                hit = workload.jerseys.get(patch_id, load_data=False)
                player = workload.players.get(
                    hit.img_ref.parent_id, load_data=False
                )
                trajectory.setdefault(player["source"], []).append(
                    (player["frameno"], player.bbox)
                )
        print(f"lineage join: {timer.seconds * 1000:.1f} ms\n")

        for clip_id in sorted(trajectory):
            steps = sorted(trajectory[clip_id])
            path = " -> ".join(
                f"f{frame}:({box[0]},{box[1]})" for frame, box in steps[:5]
            )
            suffix = " ..." if len(steps) > 5 else ""
            print(f"{clip_id}: {len(steps)} sightings  {path}{suffix}")

        predicted = {
            (clip_id, frame)
            for clip_id, steps in trajectory.items()
            for frame, _ in steps
        }
        truth = {
            (clip_id, frame)
            for clip_id, steps in dataset.tracked_trajectories().items()
            for frame, _ in steps
        }
        print(f"\ntrajectory accuracy vs ground truth: {set_prf(predicted, truth)}")


if __name__ == "__main__":
    main()
