"""Cross-camera vehicle matching: the paper's Example 2.

"Suppose we are given two videos from two different cameras, we want to
find all cars that appear in both videos ... pre-compute the relevant
features and build a multidimensional index over one of the sets of
SSDPatch objects."

Camera B watches the same street from the opposite side (simulated as a
mirrored viewpoint), so every vehicle appears in both feeds with the same
paint but different trajectories. The join predicate is over *pixel
content* (colour histograms), exactly the case the paper says existing
systems handle poorly — DeepLens runs it as an On-The-Fly Ball-tree
similarity join.

Run: ``python examples/cross_camera_match.py``
"""

import tempfile

import numpy as np

from repro.bench.metrics import Timer, assign_identity
from repro.core import DeepLens
from repro.core.operators import BallTreeSimilarityJoin, CollectionScan
from repro.datasets import TrafficCamDataset
from repro.etl import HistogramTransformer, ObjectDetectorGenerator, Pipeline
from repro.vision import SyntheticSSD

MATCH_THRESHOLD = 0.45


def main() -> None:
    dataset = TrafficCamDataset(scale=0.004, seed=19)
    camera_a = list(dataset.frames())
    camera_b = [np.fliplr(frame) for frame in camera_a]  # opposite roadside
    print(f"two feeds of {len(camera_a)} frames each, same street")

    pipeline = Pipeline(
        [
            ObjectDetectorGenerator(SyntheticSSD()),
            HistogramTransformer(bins=4, key="hist"),
        ]
    )

    with tempfile.TemporaryDirectory() as workdir, DeepLens(workdir) as db:
        db.ingest_video("cam-a", iter(camera_a), layout="segmented")
        db.ingest_video("cam-b", iter(camera_b), layout="segmented")
        collections = {}
        for cam in ("cam-a", "cam-b"):
            patches = (
                patch
                for patch in pipeline.run(db.load(cam))
                if patch["label"] == "vehicle"
            )
            collections[cam] = db.materialize(patches, f"{cam}-vehicles")
            print(f"{cam}: {len(collections[cam])} vehicle patches")

        # On-The-Fly Index Similarity Join: cam-b (the smaller relation in
        # general) is loaded into an in-memory Ball-tree; cam-a probes it
        join = BallTreeSimilarityJoin(
            CollectionScan(collections["cam-a"]),
            CollectionScan(collections["cam-b"]),
            threshold=MATCH_THRESHOLD,
            features=lambda patch: patch["hist"],
        )
        with Timer() as timer:
            matched_identities = set()
            for left, right in join:
                identity = assign_identity(
                    left.bbox,
                    dataset.ground_truth(left["frameno"]),
                    category="vehicle",
                )
                if identity is not None:
                    matched_identities.add(identity)
        print(
            f"\nsimilarity join: {timer.seconds * 1000:.0f} ms; vehicles "
            f"seen by both cameras: {sorted(matched_identities)}"
        )
        truth = {
            box.object_id
            for frame in range(dataset.n_frames)
            for box in dataset.ground_truth(frame)
            if box.category == "vehicle"
        }
        print(f"ground truth (every vehicle crosses both views): {sorted(truth)}")
        recall = len(matched_identities & truth) / len(truth) if truth else 1.0
        print(f"identity recall: {recall:.2f}")


if __name__ == "__main__":
    main()
