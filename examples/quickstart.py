"""Quickstart: ingest a video, run visual ETL, query with the pipeline API.

The minimal end-to-end DeepLens workflow on synthetic CCTV footage:

1. ingest the video under the Segmented File layout (compressed clips
   with coarse temporal push-down);
2. run an ETL pipeline (object detector -> colour-histogram featurizer);
3. materialize the detections (the catalog collects per-attribute
   cardinality statistics — histograms, most-common values, distinct
   sketches — as the patches land) and build a hash index on the label;
4. query with the fluent pipeline API — a brightness UDF map, a label
   filter the rewriter pushes *below* the UDF, ordering, limit, and
   projection — and read the optimizer's explanation, including the
   statistics-backed row estimates behind each plan choice;
5. tune execution: re-run the same query with ``with_execution`` —
   UDF map batches fan out across worker threads (order-preserving,
   results bit-identical to serial) while the storage scan prefetches
   and decodes batches ahead through coalesced ``multi_get`` heap
   reads; ``explain()`` reports the resolved worker count and the
   batch size the planner picked from cardinality estimates;
6. grade the plan with **EXPLAIN ANALYZE**: ``explain(analyze=True)``
   executes the query under per-operator instrumentation and renders
   estimated vs actual rows with the Q-error next to each plan choice —
   plus batch counts, wall time, UDF-cache hits, and index probes. The
   observed cardinalities land in the catalog's plan-quality log and
   feed back as correction factors: the next ``explain()`` of the same
   predicate cites source ``feedback`` instead of the histogram;
7. query the same data with **LensQL**: register the UDF by name and run
   the step-4 query as one SQL string — it binds against the catalog and
   compiles onto the *same* logical plan (identical fingerprint,
   identical rows), so statistics, rewrites, and the executor behave
   identically across both frontends (``EXPLAIN ANALYZE SELECT ...``
   included);
8. aggregate: how many frames contain a vehicle? (the paper's q2) — in
   both forms;
9. metadata-only analytics: scans that never read pixels answer from
   the **columnar metadata segment** beside the blob heap — zero heap
   reads, zero pixel decompression, with per-block zone maps skipping
   provably non-matching blocks. Ask for it explicitly (LensQL
   ``FROM detections METADATA ONLY``, fluent ``load_data=False``) or
   let the planner flip the scan itself when nothing above it reads
   pixel data — both visible in ``explain()``;
10. backtrace one detection to its base frame through lineage;
11. similarity search: ``CREATE INDEX ... USING HNSW`` builds a
   graph-based approximate-nearest-neighbor index over an embedding
   attribute; ``ORDER BY SIMILARITY LIMIT k`` in LensQL (with
   ``query_vector=``) or fluent ``similarity_search(q, k)`` lowers
   onto an ANN top-k access path — a cost-based pick between the HNSW
   graph and the exact scan, with the expected recall at the chosen
   beam width in ``explain()`` and ``SHOW INDEXES`` listing each
   index's build parameters;
12. persist the UDF pipeline as a **materialized view**: later queries
   whose prefix recomputes it are rewritten to scan the view instead
   (cost-based, visible in explain(), and across sessions — the view's
   plan fingerprint lives in the catalog). Adding patches to the base
   marks the view *stale* through lineage versioning; ``refresh_view``
   re-runs only the defining plan. Independently, ``cache=True`` UDF
   results persist through the catalog, so cached inference survives
   reopening the database;
13. observability: every session owns a **metrics registry** — counters,
   gauges, and histograms threaded through the pager, the blob heap,
   the metadata segment, the UDF cache, the optimizer, and the
   executor, on by default. Each query runs under a **tracing span**
   (parse -> bind -> rewrite -> lower -> execute, surviving the worker
   pool) exported as JSON; queries over a configurable threshold land
   in a **slow-query log** persisted through the catalog. Read it all
   from Python (``db.metrics()``, ``db.trace_json()``,
   ``db.metrics_text()`` for Prometheus scrapes) or from LensQL
   (``SHOW METRICS``, ``SHOW SLOW QUERIES``);
14. durability & recovery: every catalog mutation is an atomic
   multi-file commit through a checksummed write-ahead journal — a
   crash at any point reopens in the last committed state. Pages, blob
   records, and metadata blocks carry CRC32s verified on read; corrupt
   derived state (metadata segment, statistics) is quarantined and
   rebuilt from the blob heap, with repairs visible in
   ``db.recovery_report()`` and the journal/corruption counters in
   ``db.metrics()``. Pick the sync policy per session with
   ``DeepLens(workdir, durability="fsync"|"flush"|"none")``.

Run: ``python examples/quickstart.py``
"""

import tempfile

from repro.bench.metrics import Timer
from repro.core import Attr, DeepLens
from repro.datasets import TrafficCamDataset
from repro.etl import HistogramTransformer, ObjectDetectorGenerator, Pipeline
from repro.vision import SyntheticSSD


def add_brightness(patch):
    """A tiny query-time UDF: annotate each detection with its mean level."""
    return patch.derive(patch.data, "brightness", brightness=float(patch.data.mean()))


def main() -> None:
    dataset = TrafficCamDataset(scale=0.004, seed=7)
    print(f"dataset: {dataset.n_frames} frames of synthetic CCTV video")

    pipeline = Pipeline(
        [
            ObjectDetectorGenerator(SyntheticSSD()),
            HistogramTransformer(bins=4, key="hist"),
        ]
    )
    print(f"ETL pipeline: {pipeline}")

    with tempfile.TemporaryDirectory() as workdir, DeepLens(workdir) as db:
        store = db.ingest_video(
            "cam0", dataset.frames(), layout="segmented", clip_len=32
        )
        print(
            f"ingested as segmented clips: {store.n_frames} frames, "
            f"{store.size_bytes / 1e6:.2f} MB on disk"
        )

        with Timer() as etl_timer:
            detections = db.materialize(
                pipeline.run(db.load("cam0")),
                "detections",
                schema=pipeline.output_schema,
            )
        print(f"ETL time: {etl_timer.seconds:.1f}s -> {len(detections)} patches")

        db.create_index("detections", "label", "hash")
        db.create_index("detections", "frameno", "btree")

        # the catalog profiled every attribute at materialize time; the
        # planner estimates cardinalities from these statistics instead
        # of fixed selectivity guesses (and explain() cites its source:
        # histogram, mcv, or fallback-constant)
        stats = db.statistics("detections")
        label_stats = stats.attribute("label")
        print(
            f"\ncollected statistics: {stats.row_count} rows, "
            f"embedding dim {stats.embedding_dim()}, "
            f"label MCVs {label_stats.most_common(2)}"
        )
        est_rows, source = db.optimizer.estimate_filter_rows(
            "detections", Attr("label") == "vehicle"
        )
        print(f"estimated vehicles: {est_rows:.0f} rows (source: {source})")

        # a declarative pipeline: the label filter is written *after* the
        # UDF map, but it does not read the UDF's output, so the rewriter
        # pushes it below the map — the (cheap) index lookup prunes rows
        # before the (expensive) inference runs, and cache=True memoizes
        # UDF results by patch lineage for any later query
        query = (
            db.scan("detections")
            .map(
                add_brightness,
                name="brightness",
                provides={"brightness"},
                one_to_one=True,
                cache=True,
            )
            .filter(Attr("label") == "vehicle")
            .order_by("brightness", reverse=True)
            .limit(5)
            .select("label", "frameno", "brightness")
        )
        print("\nplan chosen by the optimizer:")
        print(query.explain())

        with Timer() as query_timer:
            brightest = query.patches()
        print(
            f"\nbrightest vehicle detections "
            f"({query_timer.seconds * 1000:.1f} ms, batched execution):"
        )
        for patch in brightest:
            print(
                f"  frame {patch['frameno']:>4}  brightness "
                f"{patch['brightness']:.1f}"
            )

        # execution tuning: the same plan, fanned out across 4 worker
        # threads. UDF maps are pure per-row, so ordered dispatch keeps
        # results bit-identical to the serial run; the scan decodes
        # batches ahead of the map (coalesced heap reads overlapping
        # inference). Workers pay off when the UDF releases the GIL —
        # numpy/BLAS kernels, accelerator or RPC inference; and when a
        # pipeline only touches metadata, scan(load_data=False) still
        # beats any worker count by never reading pixels at all. (No
        # timing comparison here: this re-run is served from the UDF
        # cache the serial run above populated — see
        # benchmarks/bench_parallel_pipeline.py for isolated fan-out
        # speedups.)
        parallel = query.with_execution(workers=4, prefetch_batches=2)
        print("\nexecution config (see the 'execution:' line):")
        print(f"  {parallel.explain().execution}")
        parallel_rows = parallel.patches()
        assert [p.patch_id for p in parallel_rows] == [
            p.patch_id for p in brightest
        ]
        print(
            "  workers=4 re-run: rows identical to the serial run "
            "(served from the UDF cache; isolated speedups live in "
            "bench_parallel_pipeline.py)"
        )

        # -- EXPLAIN ANALYZE ------------------------------------------
        # execute the plan under per-operator instrumentation: every
        # operator reports estimated vs actual rows (and the Q-error =
        # max(est/actual, actual/est) grading the estimate), batches,
        # wall time, UDF-cache hits, and index probes. The observed
        # cardinalities are recorded in the catalog's plan-quality log,
        # keyed by the parameterized plan fingerprint, and feed back
        # into the optimizer as per-predicate correction factors.
        analyzed = query.explain(analyze=True)
        print("\nEXPLAIN ANALYZE (estimated vs actual, per operator):")
        for line in analyzed.profile.lines():
            print(f"  {line}")
        after = db.optimizer.estimate_filter_rows(
            "detections", Attr("label") == "vehicle"
        )
        print(
            f"  feedback: vehicles now estimated at {after[0]:.0f} rows "
            f"(source: {after[1]})"
        )

        # -- querying with LensQL -------------------------------------
        # the same query as one declarative string: register the UDF by
        # name (the registry hands BOTH frontends the same function
        # object, so cached inference and view fingerprints are shared),
        # then let the SQL frontend bind collection/attribute/UDF names
        # against the catalog and lower onto the same logical plan IR
        db.register_udf(
            "brightness",
            add_brightness,
            provides={"brightness"},
            one_to_one=True,
            cache=True,
            replace=True,  # shadow the built-in brightness UDF
        )
        sql_query = db.sql_query(
            "SELECT label, frameno, brightness() FROM detections "
            "WHERE label = 'vehicle' ORDER BY brightness DESC LIMIT 5"
        )
        assert sql_query.plan_fingerprint() == query.plan_fingerprint()
        sql_rows = sql_query.patches()
        assert [p.patch_id for p in sql_rows] == [
            p.patch_id for p in brightest
        ]
        print(
            "\nLensQL form of the same query: fingerprint-identical plan, "
            "identical rows"
        )
        # EXPLAIN ANALYZE is a statement too: same instrumented
        # execution, same plan-quality log, from the SQL frontend
        sql_analyzed = db.sql(
            "EXPLAIN ANALYZE SELECT label, frameno, brightness() "
            "FROM detections WHERE label = 'vehicle' "
            "ORDER BY brightness DESC LIMIT 5"
        )
        print("EXPLAIN ANALYZE via LensQL (scan line):")
        print(
            "  "
            + next(l for l in sql_analyzed.profile.lines() if "Scan" in l).strip()
        )
        # DDL and introspection are statements too
        db.sql("CREATE INDEX ON detections (score) USING btree")
        print("SHOW STATS FOR detections (first two attributes):")
        for row in db.sql("SHOW STATS FOR detections")[:2]:
            print(f"  {row}")

        # q2 via the aggregate terminal: frames containing a vehicle
        vehicles = db.scan("detections").filter(Attr("label") == "vehicle")
        n_frames = vehicles.aggregate(
            "distinct_count", key=lambda patch: patch["frameno"]
        )
        truth = len(dataset.frames_with_vehicles())
        print(f"\nq2 answer: {n_frames} frames contain a vehicle")
        print(f"ground truth: {truth} frames")
        sql_answer = db.sql(
            "SELECT COUNT(DISTINCT frameno) FROM detections "
            "WHERE label = 'vehicle'"
        )
        assert sql_answer == n_frames
        print(f"q2 via LensQL: {sql_answer} frames (same plan, same answer)")

        # -- metadata-only analytics ----------------------------------
        # the q2 aggregates above never read pixels, so the planner
        # flipped their scans to the columnar metadata segment on its
        # own — the rewrite note below says so. Asking explicitly works
        # too: METADATA ONLY in LensQL, load_data=False in the fluent
        # API — fingerprint-identical, and the plan touches only the
        # per-attribute arrays beside the blob heap (zone maps skip
        # whole blocks a range predicate rules out)
        lean = db.scan("detections", load_data=False).filter(
            Attr("score") >= 0.5
        )
        sql_lean = db.sql_query(
            "SELECT * FROM detections METADATA ONLY WHERE score >= 0.5"
        )
        assert sql_lean.plan_fingerprint() == lean.plan_fingerprint()
        print("\nmetadata-only plan (METADATA ONLY / load_data=False):")
        print(f"  chosen: {lean.explain().chosen}")
        flip_note = next(
            rewrite
            for rewrite in vehicles.aggregate_explain("count").rewrites
            if "metadata-only" in rewrite
        )
        print(f"  auto-detected for COUNT(*): {flip_note}")

        sample = vehicles.first()
        source, frame = db.lineage.backtrace(sample)
        siblings = db.lineage.patches_from_base(source, frame)
        print(
            f"\nlineage: patch {sample.patch_id} backtraces to "
            f"{source!r} frame {frame}; that frame produced "
            f"{len(siblings)} patches in total"
        )

        # -- ANN similarity search ------------------------------------
        # "find detections that look like this one": an HNSW graph
        # index over the colour-histogram vectors turns nearest-neighbor
        # search into graph navigation. Both frontends compile onto the
        # same plan; the optimizer costs the graph probe against the
        # exact scan and explain() shows the pick with its expected
        # recall at the chosen beam width
        db.sql("CREATE INDEX ON detections (hist) USING hnsw (m = 8, ef = 48)")
        probe = sample["hist"]
        lookalike = db.scan("detections").similarity_search(
            probe, 3, attr="hist"
        )
        sql_lookalike = db.sql_query(
            "SELECT * FROM detections ORDER BY SIMILARITY LIMIT 3",
            query_vector=probe,
            vector_attr="hist",
        )
        assert sql_lookalike.plan_fingerprint() == lookalike.plan_fingerprint()
        nearest = lookalike.patches()
        print("\nANN similarity search (HNSW access path):")
        print(f"  chosen: {lookalike.explain().chosen}")
        print(
            f"  3 detections most like patch {sample.patch_id}: "
            f"{[p.patch_id for p in nearest]}"
        )
        hnsw_row = next(
            row for row in db.sql("SHOW INDEXES") if row["kind"] == "hnsw"
        )
        print(f"  SHOW INDEXES: {hnsw_row}")

        # materialize the UDF pipeline as a derived view: the planner now
        # rewrites any query whose prefix recomputes it into a scan of
        # the stored view — chosen cost-based against recomputation (the
        # explain() below shows both costs), and still matched after the
        # database is closed and reopened
        scored = db.scan("detections").map(
            add_brightness,
            name="brightness",
            provides={"brightness"},
            one_to_one=True,
            cache=True,
        )
        db.materialize_view("scored", scored)
        reuse = scored.filter(Attr("label") == "vehicle")
        print("\nplan after materialize_view('scored'):")
        print(reuse.explain())

        # lineage-driven invalidation: mutating the base marks the view
        # (and the base's statistics) stale; refresh re-runs the
        # defining plan — served from the persistent UDF cache for
        # unchanged rows
        db.collection("detections").add(sample.derive(sample.data, "copy"))
        print(
            f"\nafter base add: view stale = {db.view_is_stale('scored')}, "
            f"statistics stale = {db.statistics('detections').stale}"
        )
        db.refresh_view("scored")
        print(f"after refresh_view: view stale = {db.view_is_stale('scored')}")

        # -- observability --------------------------------------------
        # everything above ran under the session's metrics registry:
        # storage, cache, optimizer, and executor counters accumulated
        # as a side effect, at near-zero cost. Snapshot them from
        # Python, render the Prometheus scrape text, or query them as
        # rows through LensQL; the last query's span tree (parse ->
        # bind -> rewrite -> lower -> execute) exports as JSON
        counters = db.metrics()["counters"]
        print("\ntelemetry (a few of the session's counters):")
        for name in (
            "deeplens_queries_total",
            'deeplens_pager_page_reads_total{result="hit"}',
            'deeplens_udf_cache_lookups_total{result="hit"}',
            "deeplens_zonemap_blocks_skipped_total",
        ):
            print(f"  {name} = {counters.get(name, 0)}")
        scrape = db.metrics_text()
        print(f"Prometheus render: {len(scrape.splitlines())} lines")
        db.sql("SELECT COUNT(*) FROM detections WHERE label = 'vehicle'")
        import json

        trace = json.loads(db.trace_json())
        print(
            "last query's span tree: "
            + " -> ".join(child["name"] for child in trace["children"])
        )
        # queries slower than the threshold land in a slow-query log
        # persisted through the catalog (it survives reopening the
        # database); SHOW SLOW QUERIES reads it back as rows
        slow = db.sql("SHOW SLOW QUERIES")
        print(f"slow-query log: {len(slow)} entries over threshold")

        # -- durability & recovery ------------------------------------
        # every catalog mutation above (materialize, index build, view
        # refresh, UDF-cache spill) ran as an atomic multi-file commit:
        # a write-ahead journal (catalog/journal.log) snapshots the
        # pre-state before anything is overwritten, so a crash at ANY
        # point reopens in the last committed state — never a mix.
        # Every page, blob record, and metadata block also carries a
        # CRC32 verified on read: silent bit rot in primary data raises
        # a positioned CorruptionError (file + offset), while corrupt
        # *derived* state (metadata segment, statistics snapshots) is
        # quarantined and rebuilt from the blob heap transparently.
        # The durability= knob picks the sync policy: "fsync" (default,
        # survives power loss), "flush" (survives process crash), or
        # "none" (no journal — benchmarks/throwaway stores).
        report = db.recovery_report()
        print(
            f"\ndurability: journaled commits = "
            f"{counters.get('deeplens_journal_commits_total', 0)}, "
            f"repairs this session = {len(report['events'])}, "
            f"repair history = {len(report['history'])} events"
        )


if __name__ == "__main__":
    main()
