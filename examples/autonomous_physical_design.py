"""Autonomous physical design: storage advisor + pipeline synthesis.

The paper's two *Future Work* boxes, implemented and composed:

* the **storage advisor** (Section 3) analyzes a workload profile — video
  volume, temporal selectivity, a storage SLO — and picks a physical
  layout with a tuned clip length;
* the **pipeline synthesizer** (Section 4) searches a typed library of
  profiled components for the cheapest ETL chain meeting an accuracy
  floor, choosing between a slow general detector and a fast special-case
  one exactly as the paper envisions.

Run: ``python examples/autonomous_physical_design.py``
"""

from repro.core.optimizer import (
    ComponentSpec,
    PipelineSynthesizer,
    StorageAdvisor,
    WorkloadProfile,
)
from repro.etl import (
    DepthTransformer,
    HistogramTransformer,
    ObjectDetectorGenerator,
)
from repro.vision import Camera, DetectorNoise, MonocularDepth, SyntheticSSD


def advise_storage() -> None:
    print("== storage advisor ==")
    advisor = StorageAdvisor()
    base = dict(n_frames=35_280, frame_bytes=1080 * 1920 * 3)

    scenarios = [
        (
            "interactive forensics (2% of the video per query)",
            WorkloadProfile(**base, temporal_selectivity=0.02),
        ),
        (
            "archival with a 5% storage SLO",
            WorkloadProfile(
                **base,
                temporal_selectivity=0.02,
                storage_budget_bytes=int(base["n_frames"] * base["frame_bytes"] * 0.05),
            ),
        ),
        (
            "full-scan analytics, accuracy-sensitive",
            WorkloadProfile(
                **base,
                temporal_selectivity=1.0,
                accuracy_sensitive=True,
                storage_budget_bytes=int(base["n_frames"] * base["frame_bytes"] * 0.2),
            ),
        ),
    ]
    for label, profile in scenarios:
        rec = advisor.advise(profile)
        clip = f", clip_len={rec.clip_len}" if rec.clip_len else ""
        print(
            f"  {label}\n    -> {rec.layout} (quality={rec.quality}{clip}); "
            f"{rec.expected_size_bytes / 1e9:.1f} GB expected, "
            f"{rec.expected_query_seconds:.2f}s/query\n       {rec.rationale}"
        )


def synthesize_pipeline() -> None:
    print("\n== pipeline synthesis ==")
    camera = Camera(horizon_y=45, focal=216, cam_height=5)
    library = [
        ComponentSpec(
            name="ssd-general",
            factory=lambda: ObjectDetectorGenerator(SyntheticSSD()),
            provides=frozenset({"bbox", "label"}),
            requires=frozenset({"pixels"}),
            latency_per_item=48e-3,
            recall=0.95,
        ),
        ComponentSpec(
            name="vehicle-only-detector",
            factory=lambda: ObjectDetectorGenerator(
                SyntheticSSD(noise=DetectorNoise(p_miss=0.1))
            ),
            provides=frozenset({"bbox", "label"}),
            requires=frozenset({"pixels"}),
            latency_per_item=9e-3,
            recall=0.78,
        ),
        ComponentSpec(
            name="color-histogram",
            factory=lambda: HistogramTransformer(bins=4),
            provides=frozenset({"hist"}),
            requires=frozenset({"pixels"}),
            latency_per_item=2e-3,
        ),
        ComponentSpec(
            name="depth",
            factory=lambda: DepthTransformer(MonocularDepth(camera)),
            provides=frozenset({"depth"}),
            requires=frozenset({"bbox"}),
            latency_per_item=20e-3,
            recall=0.97,
        ),
    ]
    synthesizer = PipelineSynthesizer(library)

    fast = synthesizer.synthesize({"depth", "hist"})
    print(f"  latency-first:  {fast.describe()}")

    accurate = synthesizer.synthesize({"depth", "hist"}, min_recall=0.9)
    print(f"  recall >= 0.90: {accurate.describe()}")

    pipeline = accurate.build()
    print(f"  built: {pipeline} (validated: {pipeline.output_schema.data_kind})")


if __name__ == "__main__":
    advise_storage()
    synthesize_pipeline()
