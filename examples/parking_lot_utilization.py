"""Parking-lot utilization: per-frame vehicle counts with temporal push-down.

The paper's motivating Example 1 (Section 2.2.1): "Consider a CCTV feed of
a parking lot ... we want to count the number of cars in each frame of the
video." This example adds the storage-layer angle: the analyst only cares
about the evening window, so the temporal predicate is *pushed down* into
the Segmented File and only the overlapping clips are ever decoded.

Run: ``python examples/parking_lot_utilization.py``
"""

import tempfile

from repro.bench.metrics import Timer
from repro.core import Attr, DeepLens
from repro.core.operators import GroupBy, IteratorScan
from repro.datasets import TrafficCamDataset
from repro.etl import ObjectDetectorGenerator, Pipeline
from repro.vision import SyntheticSSD


def main() -> None:
    dataset = TrafficCamDataset(scale=0.006, seed=11)
    n = dataset.n_frames
    window = (int(n * 0.6), int(n * 0.75))  # the "evening" slice
    print(
        f"video: {n} frames; analysis window: frames {window[0]}..{window[1]} "
        f"({window[1] - window[0] + 1} frames)"
    )

    pipeline = Pipeline([ObjectDetectorGenerator(SyntheticSSD())])

    with tempfile.TemporaryDirectory() as workdir, DeepLens(workdir) as db:
        db.ingest_video("lot-cam", dataset.frames(), layout="segmented", clip_len=16)

        # push-down: the loader turns the frameno predicate into clip-level
        # pruning, so ETL only ever decodes ~the window
        temporal = Attr("frameno").between(*window)
        with Timer() as timer:
            detections = list(pipeline.run(db.load("lot-cam", filter=temporal)))
        print(
            f"ETL over the pushed-down window: {len(detections)} detections "
            f"in {timer.seconds:.2f}s"
        )

        vehicles = IteratorScan(
            [patch for patch in detections if patch["label"] == "vehicle"]
        )
        per_frame = GroupBy(
            vehicles, key=lambda patch: patch["frameno"], reducer=len
        ).execute()

        print("\nframe | vehicles | utilization bar")
        capacity = max(per_frame.values(), default=1)
        for frame in sorted(per_frame)[:20]:
            count = per_frame[frame]
            bar = "#" * int(10 * count / capacity)
            print(f"{frame:5d} | {count:8d} | {bar}")
        busiest = max(per_frame, key=per_frame.get)
        print(
            f"\nbusiest frame in window: {busiest} "
            f"({per_frame[busiest]} vehicles)"
        )


if __name__ == "__main__":
    main()
