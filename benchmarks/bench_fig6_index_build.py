"""Figure 6 — index construction cost as a function of tuples indexed.

Paper: "Building multidimensional indexes can be very costly and initial
experiments indicate that construction time scales poorly with the
increase of data size ... The R-Tree is nearly 20x slower to construct
than a B+ Tree."

Builds every index kind DeepLens supports over synthetic tuples (bounding
boxes for the R-tree, 64-d features for the Ball-tree, scalar keys for
the single-dimensional structures) at increasing cardinalities.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.metrics import Timer
from repro.indexes import BallTree, BTreeIndex, HashIndex, RTree, SortedFileIndex
from repro.storage.kvstore import Pager

SIZES = (1_000, 4_000, 16_000)
FEATURE_DIM = 64


def _build_all(tmp_path):
    rng = np.random.default_rng(3)
    timings: dict[str, dict[int, float]] = {}
    for n in SIZES:
        keys = rng.integers(0, n * 10, size=n)
        boxes = rng.uniform(0, 1000, size=(n, 2))
        rects = [
            ((x, y), (x + 8, y + 16)) for x, y in boxes
        ]
        features = rng.normal(size=(n, FEATURE_DIM))

        with Pager(tmp_path / f"hash-{n}.db") as pager:
            with Timer() as timer:
                index = HashIndex(pager, "bench", n_buckets=1024)
                for i, key in enumerate(keys):
                    index.insert(int(key), i)
            timings.setdefault("hash", {})[n] = timer.seconds

        with Pager(tmp_path / f"btree-{n}.db") as pager:
            with Timer() as timer:
                index = BTreeIndex(pager, "bench")
                for i, key in enumerate(keys):
                    index.insert(int(key), i)
            timings.setdefault("btree", {})[n] = timer.seconds

        with Timer() as timer:
            sorted_index = SortedFileIndex(tmp_path / f"sorted-{n}.idx")
            sorted_index.bulk_build([(int(key), i) for i, key in enumerate(keys)])
            sorted_index.close()
        timings.setdefault("sorted-file", {})[n] = timer.seconds

        with Timer() as timer:
            rtree = RTree(max_entries=8)
            for i, rect in enumerate(rects):
                rtree.insert(rect, i)
        timings.setdefault("rtree", {})[n] = timer.seconds

        with Timer() as timer:
            BallTree(features, leaf_size=16)
        timings.setdefault(f"balltree-{FEATURE_DIM}d", {})[n] = timer.seconds
    return timings


@pytest.mark.benchmark(group="fig6")
def test_fig6_index_construction(benchmark, tmp_path):
    timings = benchmark.pedantic(
        _build_all, args=(tmp_path,), rounds=1, iterations=1
    )
    header = "| index | " + " | ".join(f"n={n}" for n in SIZES) + " |"
    lines = [header, "|---|" + "---|" * len(SIZES)]
    for kind, series in timings.items():
        cells = " | ".join(f"{series[n]:.3f}s" for n in SIZES)
        lines.append(f"| {kind} | {cells} |")
    n_max = SIZES[-1]
    ratio = timings["rtree"][n_max] / timings["btree"][n_max]
    lines.append("")
    lines.append(
        f"R-tree / B+ tree build ratio at n={n_max}: {ratio:.1f}x "
        "(paper: ~20x). Multidimensional construction scales poorly."
    )
    write_result("fig6_index_build", "Figure 6 — index construction cost", lines)

    # the R-tree is far slower to build than the B+ tree
    assert ratio > 5.0
    # every structure's build cost grows with n
    for kind, series in timings.items():
        assert series[SIZES[-1]] > series[SIZES[0]], kind
    # multidimensional builds grow superlinearly vs the (linear-ish)
    # sorted-file bulk build
    growth_rtree = timings["rtree"][n_max] / timings["rtree"][SIZES[0]]
    growth_sorted = timings["sorted-file"][n_max] / timings["sorted-file"][SIZES[0]]
    assert growth_rtree > growth_sorted
