"""ANN similarity search — HNSW graph vs Ball-tree at embedding scale.

The paper's exact multidimensional indexes are the baseline: Figures
6/7 show Ball-tree pruning collapsing as dimensionality grows, leaving
a near-linear scan. The HNSW access path is the engine's answer, and
``ef_search`` is its recall knob — so this benchmark measures the whole
trade-off curve, not one point: for each ``ef`` in a sweep it records
recall@10 against the brute-force ground truth and the per-query
speedup over the Ball-tree on the same clustered embedding set.

The acceptance bar (armed at 10_000+ vectors, where graph navigation
has an asymptotic edge to show): some operating point on the curve must
reach **>= 10x** the Ball-tree's query throughput while holding
**recall@10 >= 0.9**. The curve also reports the cost model's
``expected_recall(ef, k)`` beside each measured recall, so drift
between the planner's belief and reality is visible in the results.

Emits ``BENCH_ann.json`` at the repo root with the raw numbers. Scale
with ``REPRO_BENCH_ANN_N`` (default 100_000 embeddings) and
``REPRO_BENCH_ANN_QUERIES``.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import write_result
from repro.indexes import BallTree, HNSWIndex
from repro.indexes.hnsw import expected_recall

N_VECTORS = int(os.environ.get("REPRO_BENCH_ANN_N", "100000"))
N_QUERIES = int(os.environ.get("REPRO_BENCH_ANN_QUERIES", "25"))
DIM = 32
K = 10
#: the recall knob sweep: ef=K (fast, approximate) up to 16x K
EF_SWEEP = (10, 20, 40, 80, 160)

RESULT_JSON = Path(__file__).parent.parent / "BENCH_ann.json"


def build_embeddings(n: int, dim: int) -> np.ndarray:
    """Clustered unit-scale vectors — the shape real detector/encoder
    embeddings take, and the regime where Ball-tree pruning dies."""
    rng = np.random.default_rng(41)
    centers = rng.normal(scale=4.0, size=(64, dim))
    assignment = rng.integers(0, len(centers), size=n)
    return centers[assignment] + rng.normal(scale=1.0, size=(n, dim))


def exact_topk(points: np.ndarray, query: np.ndarray, k: int) -> set[int]:
    dists = np.einsum("ij,ij->i", points - query, points - query)
    return set(np.argpartition(dists, k)[:k].tolist())


def test_ann_recall_vs_speedup(tmp_path):
    points = build_embeddings(N_VECTORS, DIM)
    rng = np.random.default_rng(42)
    queries = points[rng.integers(0, N_VECTORS, size=N_QUERIES)]
    queries = queries + rng.normal(scale=0.1, size=queries.shape)
    truth = [exact_topk(points, q, K) for q in queries]

    started = time.perf_counter()
    tree = BallTree(points)
    tree_build_seconds = time.perf_counter() - started

    started = time.perf_counter()
    index = HNSWIndex.build(points, list(range(N_VECTORS)))
    hnsw_build_seconds = time.perf_counter() - started

    # Ball-tree baseline: exact, so its recall is 1.0 by construction —
    # verify that on the first query before trusting any timing
    assert {pid for _, pid in tree.query_knn(queries[0], K)} == truth[0]
    started = time.perf_counter()
    for query in queries:
        tree.query_knn(query, K)
    tree_seconds = (time.perf_counter() - started) / N_QUERIES

    curve = []
    for ef in EF_SWEEP:
        hits = 0
        for position, query in enumerate(queries):
            got = {pid for _, pid in index.search(query, K, ef=ef)}
            hits += len(got & truth[position])
        # time without the recall bookkeeping (set work is noise at
        # small N, real cost at 100k queries/s rates)
        started = time.perf_counter()
        for query in queries:
            index.search(query, K, ef=ef)
        seconds = (time.perf_counter() - started) / N_QUERIES
        recall = hits / (K * N_QUERIES)
        curve.append(
            {
                "ef": ef,
                "recall_at_10": recall,
                "expected_recall": expected_recall(ef, K),
                "seconds_per_query": seconds,
                "speedup_vs_balltree": tree_seconds / seconds,
            }
        )

    payload = {
        "n_vectors": N_VECTORS,
        "dim": DIM,
        "k": K,
        "n_queries": N_QUERIES,
        "balltree_build_seconds": tree_build_seconds,
        "hnsw_build_seconds": hnsw_build_seconds,
        "balltree_seconds_per_query": tree_seconds,
        "curve": curve,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{N_VECTORS} clustered {DIM}-dim embeddings, {N_QUERIES} queries, "
        f"recall@{K} vs an exact Ball-tree "
        f"({tree_seconds * 1000:.2f} ms/query)",
        "",
        "| ef | recall@10 | model expects | ms/query | speedup |",
        "|---|---|---|---|---|",
    ]
    for point in curve:
        lines.append(
            f"| {point['ef']} | {point['recall_at_10']:.3f} "
            f"| {point['expected_recall']:.2f} "
            f"| {point['seconds_per_query'] * 1000:.3f} "
            f"| {point['speedup_vs_balltree']:.1f}x |"
        )
    lines += ["", f"written: {RESULT_JSON.name}"]
    write_result(
        "ann", "ANN similarity search — HNSW vs Ball-tree", lines
    )

    if N_VECTORS >= 10_000:
        # the acceptance bar: some ef must buy a 10x speedup while
        # holding recall@10 at 0.9+
        assert any(
            p["recall_at_10"] >= 0.9 and p["speedup_vs_balltree"] >= 10.0
            for p in curve
        ), f"no operating point reached 10x at recall >= 0.9: {curve}"
    else:
        # wiring check at smoke sizes: the widest beam must still be
        # nearly exact, and the graph must not be slower than the tree
        assert curve[-1]["recall_at_10"] >= 0.8
        assert curve[-1]["speedup_vs_balltree"] > 0.5
