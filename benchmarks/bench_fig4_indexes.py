"""Figure 4 — query time with and without indexes (all six queries).

Paper: "DeepLens significantly speeds up 'query time' by using indexes.
The queries that match multidimensional features can be sped up by up-to
600x" — 612x for q4, 59x for q1, 41x for q3 (lineage), 2.5x for q6, and
q5 "does not benefit from any of the available indexes".

The baseline runs every query through the engine with no indexes; the
optimized plan uses the hand-tuned physical design. Index build/ETL cost
is excluded here (amortized, Section 7.2) — Figure 5 adds it back.

Absolute speedups scale with data volume (the gap between O(n^2) matching
and indexed probing widens quadratically); at the default bench scale the
image-matching queries win by one order of magnitude rather than the
paper's 612x on 35k frames — the *ordering* of winners is the reproduced
shape.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench import (
    q1_near_duplicates,
    q2_vehicle_frames,
    q3_player_trajectory,
    q4_distinct_pedestrians,
    q5_string_lookup,
    q6_behind_pairs,
    speedup,
)


def _best_of(fn, repeats=2):
    """Run a (deterministic) query plan twice, keep the faster timing —
    the usual guard against scheduler noise on sub-100ms measurements."""
    results = [fn() for _ in range(repeats)]
    return min(results, key=lambda result: result.seconds)


def _run_all_queries(traffic, pc, football):
    traffic_workload, traffic_design = traffic
    pc_workload, _ = pc
    football_workload, _ = football
    target_word = sorted(pc_workload.dataset.present_words())[0]

    results = {}
    results["q1"] = (
        _best_of(lambda: q1_near_duplicates(pc_workload, "baseline")),
        _best_of(lambda: q1_near_duplicates(pc_workload, "optimized")),
    )
    results["q2"] = (
        _best_of(lambda: q2_vehicle_frames(traffic_workload, "baseline")),
        _best_of(lambda: q2_vehicle_frames(traffic_workload, "optimized")),
    )
    results["q3"] = (
        _best_of(lambda: q3_player_trajectory(football_workload, "baseline")),
        _best_of(lambda: q3_player_trajectory(football_workload, "optimized")),
    )
    results["q4"] = (
        _best_of(lambda: q4_distinct_pedestrians(traffic_workload, "baseline")),
        _best_of(
            lambda: q4_distinct_pedestrians(
                traffic_workload, "optimized", persons=traffic_design.persons
            )
        ),
    )
    results["q5"] = (
        _best_of(lambda: q5_string_lookup(pc_workload, "baseline", target=target_word)),
        _best_of(
            lambda: q5_string_lookup(pc_workload, "optimized", target=target_word)
        ),
    )
    results["q6"] = (
        _best_of(lambda: q6_behind_pairs(traffic_workload, "baseline")),
        _best_of(
            lambda: q6_behind_pairs(
                traffic_workload, "optimized", persons=traffic_design.persons
            )
        ),
    )
    return results


@pytest.mark.benchmark(group="fig4")
def test_fig4_index_speedups(benchmark, traffic, pc, football):
    results = benchmark.pedantic(
        _run_all_queries, args=(traffic, pc, football), rounds=1, iterations=1
    )
    lines = [
        "| query | baseline (ms) | indexed (ms) | speedup | answer (base/opt) | accuracy (opt) |",
        "|---|---|---|---|---|---|",
    ]
    gains = {}
    for name, (base, opt) in results.items():
        gains[name] = speedup(base, opt)
        accuracy = f"{opt.accuracy.f1:.3f}" if opt.accuracy else "-"
        answers = f"{_brief(base.answer)}/{_brief(opt.answer)}"
        lines.append(
            f"| {name} | {base.seconds * 1000:.0f} | {opt.seconds * 1000:.0f} "
            f"| {gains[name]:.1f}x | {answers} | {accuracy} |"
        )
    lines.append("")
    lines.append(
        "paper shape: q4 612x, q1 59x, q3 41x, q6 2.5x, q5 ~1x "
        "(no applicable index). Image-matching and lineage queries gain "
        "most; substring search gains nothing."
    )
    write_result("fig4_indexes", "Figure 4 — query time, indexed vs baseline", lines)

    # who-wins ordering: matching/lineage queries gain most; q5 gains none.
    # absolute factors are scale-bound: our baseline holds the inner join
    # side in memory, where the paper's no-index engine re-reads storage —
    # see EXPERIMENTS.md for the scale sensitivity
    assert gains["q1"] > 1.2
    assert gains["q3"] > 2.0
    assert gains["q4"] > 3.0
    assert gains["q6"] > 1.2
    assert 0.5 < gains["q5"] < 2.0
    assert gains["q3"] > gains["q5"]
    assert gains["q4"] > gains["q6"] > gains["q5"]
    # both plans agree on answers
    for name, (base, opt) in results.items():
        assert base.answer == opt.answer, f"{name} plans disagree"


def _brief(answer) -> str:
    if isinstance(answer, (set, frozenset, list, tuple)):
        return str(len(answer))
    return str(answer)
