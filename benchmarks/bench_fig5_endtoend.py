"""Figure 5 — end-to-end runtime including on-the-fly index construction.

Paper: "several of the queries execute faster even if the indexes are
built 'on-the-fly' ... q1 executes nearly 5 times faster than the
baseline and q4 executes 3.5 times faster ... Indexing has a relatively
small overhead given the compute-intensive nature of the queries."

Here the optimized plans build their Ball-trees inside the timed region
(no prebuilt physical design), so the index construction cost is charged
to the query — and still wins, because it eliminates the quadratic
matching work.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench import q1_near_duplicates, q4_distinct_pedestrians, speedup


def _run_endtoend(traffic, pc):
    traffic_workload, traffic_design = traffic
    pc_workload, _ = pc
    return {
        "q1": (
            q1_near_duplicates(pc_workload, "baseline"),
            q1_near_duplicates(pc_workload, "optimized", on_the_fly=True),
        ),
        "q4": (
            q4_distinct_pedestrians(traffic_workload, "baseline"),
            q4_distinct_pedestrians(
                traffic_workload,
                "optimized",
                persons=traffic_design.persons,
                on_the_fly=True,
            ),
        ),
    }


@pytest.mark.benchmark(group="fig5")
def test_fig5_on_the_fly_indexing(benchmark, traffic, pc):
    results = benchmark.pedantic(
        _run_endtoend, args=(traffic, pc), rounds=1, iterations=1
    )
    lines = [
        "| query | baseline (ms) | on-the-fly indexed (ms) | speedup |",
        "|---|---|---|---|",
    ]
    gains = {}
    for name, (base, otf) in results.items():
        gains[name] = speedup(base, otf)
        lines.append(
            f"| {name} | {base.seconds * 1000:.0f} | {otf.seconds * 1000:.0f} "
            f"| {gains[name]:.1f}x |"
        )
    lines.append("")
    lines.append(
        "paper shape: q1 ~5x and q4 ~3.5x faster than baseline even paying "
        "the index build inside the query."
    )
    write_result(
        "fig5_endtoend", "Figure 5 — on-the-fly index build still wins", lines
    )

    # building the tree inside the query still beats all-pairs matching
    assert gains["q1"] > 1.2
    assert gains["q4"] > 2.0
    for name, (base, otf) in results.items():
        assert base.answer == otf.answer, f"{name} plans disagree"
