"""Observability — the metrics registry must be cheap enough to leave on.

Telemetry is on by default, so its cost is paid by every query: the
registry's counters are batched where the hot paths are (one update per
batch pull or heap run, not per row), and a disabled registry hands out
shared no-op instruments. Running the Table-1 workload twice — once
under the default metrics-on session, once with the registry disabled —
the metrics-on total must stay within 5% of the disabled run.

Emits ``BENCH_observability.json`` at the repo root with the measured
overhead and the number of live series, for CI trend tracking.

Each variant builds its *own* database (identical dataset, identical
seed) rather than sharing a workdir: the sessions would otherwise
contend on the catalog, and the metrics-on run's feedback corrections
would change the disabled run's plans.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from benchmarks.bench_plan_quality import table1_queries
from benchmarks.conftest import SEED, write_result
from repro.bench import build_traffic_workload
from repro.core import DeepLens
from repro.datasets import TrafficCamDataset

SCALE = float(os.environ.get("REPRO_BENCH_OBS_SCALE", "0.008"))
ROUNDS = 7
OVERHEAD_BUDGET = 0.05

RESULT_JSON = Path(__file__).parent.parent / "BENCH_observability.json"


@pytest.fixture(scope="module")
def ab_sessions(tmp_path_factory):
    dataset = TrafficCamDataset(scale=SCALE, seed=SEED)
    db_on = DeepLens(tmp_path_factory.mktemp("obs-on-db"))
    workload_on = build_traffic_workload(db_on, dataset)
    db_on.create_index("detections", "label", "hash")
    db_off = DeepLens(
        tmp_path_factory.mktemp("obs-off-db"), metrics_enabled=False
    )
    workload_off = build_traffic_workload(db_off, dataset)
    db_off.create_index("detections", "label", "hash")
    yield workload_on, workload_off
    db_on.close()
    db_off.close()


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="observability")
def test_metrics_overhead_under_budget(ab_sessions):
    workload_on, workload_off = ab_sessions
    queries_on = table1_queries(workload_on.db, workload_on.detections)
    queries_off = table1_queries(workload_off.db, workload_off.detections)

    # warm both sessions (page cache, statistics, lazy loads), then take
    # the min-of-N of each query — the steady-state cost
    for query in queries_on.values():
        query.patches()
    for query in queries_off.values():
        query.patches()

    # interleave the two sessions within every round so transient
    # machine noise lands on both sides of the comparison
    on_best = {name: float("inf") for name in queries_on}
    off_best = {name: float("inf") for name in queries_off}
    for _ in range(ROUNDS):
        for name in queries_on:
            on_best[name] = min(on_best[name], _timed(queries_on[name].patches))
            off_best[name] = min(
                off_best[name], _timed(queries_off[name].patches)
            )
    on_total = sum(on_best.values())
    off_total = sum(off_best.values())
    overhead = on_total / off_total - 1.0

    # the instrumented session really measured the workload ...
    counters = workload_on.db.metrics()["counters"]
    assert counters["deeplens_queries_total"] >= len(queries_on) * (ROUNDS + 1)
    assert counters["deeplens_optimizer_plans_total"] > 0
    series = sum(len(v) for v in workload_on.db.metrics().values())
    # ... and the disabled registry recorded nothing at all
    assert workload_off.db.metrics()["counters"] == {}

    payload = {
        "workloads": {
            "traffic-table1": {
                "scale": SCALE,
                "rows": len(workload_on.detections),
                "queries": len(queries_on),
                "series": series,
                "overhead_fraction": round(overhead, 4),
            }
        }
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"workload: {len(workload_on.detections)} detections "
        f"(scale {SCALE}), {len(queries_on)} queries, min of {ROUNDS} runs",
        "",
        "| query | metrics on (ms) | registry disabled (ms) |",
        "|---|---|---|",
    ]
    for name in queries_on:
        lines.append(
            f"| {name} | {on_best[name] * 1000:.2f} "
            f"| {off_best[name] * 1000:.2f} |"
        )
    lines += [
        "",
        f"metrics-on overhead: {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%), {series} live series",
        f"written: {RESULT_JSON.name}",
    ]
    write_result(
        "observability", "Metrics-registry overhead on Table-1", lines
    )

    assert overhead < OVERHEAD_BUDGET
