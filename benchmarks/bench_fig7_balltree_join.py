"""Figure 7 — Ball-tree join cost vs indexed relation size and dimension.

Paper: "the execution time of a Ball-Tree join as function of the size of
the indexed relation in the high-dimensional and low-dimensional case. As
the data structure is increasingly filled the execution time grows
non-linearly. The non-linearity is also data-dependent and is more
extreme in higher dimensional data."

Probes a fixed batch of queries against Ball-trees of growing size at a
low (4-d) and high (64-d) feature dimensionality, using clustered data
(histogram-like features cluster by identity, which is what makes radius
queries return work).
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.metrics import Timer
from repro.indexes import BallTree

SIZES = (1_000, 2_000, 4_000, 8_000, 16_000)
N_PROBES = 400


def _calibrated_radius(rng, dim, match_fraction=0.01):
    """Radius returning ~match_fraction of a relation per probe.

    In high dimension pairwise distances concentrate, so a useful radius
    sits close to the distance distribution's bulk — which is exactly what
    defeats triangle-inequality pruning (the curse of dimensionality the
    paper's Figure 7 shows).
    """
    sample = rng.normal(size=(400, dim))
    dists = np.sqrt(((sample[:, None, :] - sample[None, :, :]) ** 2).sum(axis=2))
    off_diag = dists[~np.eye(len(sample), dtype=bool)]
    return float(np.quantile(off_diag, match_fraction))


def _run_join_sweep():
    rng = np.random.default_rng(11)
    rows = []
    for dim in (4, 64):
        radius = _calibrated_radius(rng, dim)
        for n in SIZES:
            points = rng.normal(size=(n, dim))
            tree = BallTree(points, leaf_size=16)
            probes = rng.normal(size=(N_PROBES, dim))
            with Timer() as timer:
                tree.query_radius_batch(probes, radius)
            rows.append((dim, n, timer.seconds))
    return rows


@pytest.mark.benchmark(group="fig7")
def test_fig7_balltree_join_scaling(benchmark):
    rows = benchmark.pedantic(_run_join_sweep, rounds=1, iterations=1)
    lines = [
        f"| dim | indexed n | join time for {N_PROBES} probes (s) |",
        "|---|---|---|",
    ]
    for dim, n, seconds in rows:
        lines.append(f"| {dim} | {n} | {seconds:.4f} |")
    series = {
        dim: {n: seconds for d, n, seconds in rows if d == dim} for dim in (4, 64)
    }
    growth4 = series[4][SIZES[-1]] / series[4][SIZES[0]]
    growth64 = series[64][SIZES[-1]] / series[64][SIZES[0]]
    lines.append("")
    lines.append(
        f"growth {SIZES[0]} -> {SIZES[-1]}: {growth4:.1f}x at 4-d, "
        f"{growth64:.1f}x at 64-d (size ratio {SIZES[-1] // SIZES[0]}x). "
        "paper shape: execution grows non-linearly with indexed size, more "
        "extremely in high dimension."
    )
    write_result("fig7_balltree_join", "Figure 7 — Ball-tree join scaling", lines)

    for dim in (4, 64):
        values = [series[dim][n] for n in SIZES]
        assert values == sorted(values), f"join time not monotone at dim={dim}"
    # high dimension is absolutely slower ...
    for n in SIZES:
        assert series[64][n] > series[4][n]
    # ... and degrades faster with size (weaker pruning)
    assert growth64 > growth4
