"""Figure 2 — storage cost and downstream accuracy per encoding.

Paper: "Encoding a video with a sequential codec can reduce storage costs
by over 50x without loss of accuracy." RAW sits at ~107 GB, H.264 at
~2.5 GB (~43x); High-quality lossy encoding has negligible accuracy
impact, Low degrades downstream detection.

This harness encodes the TrafficCam video as RAW and H.264-like at the
three quality presets, measures on-disk size, decodes each stream, runs
the detector over the reconstruction, and scores detection-level
precision/recall against scene ground truth.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SEED, TRAFFIC_SCALE, write_result
from repro.bench.metrics import detection_prf
from repro.datasets import TrafficCamDataset
from repro.storage.codecs import H264LikeCodec, RawCodec
from repro.vision import DetectorNoise, SyntheticSSD

#: long GOP, as street-camera encoders use: I-frame overhead amortizes
GOP = 96


def _detections(frames):
    detector = SyntheticSSD(noise=DetectorNoise(seed=SEED))
    return {frameno: detector.process(frame) for frameno, frame in enumerate(frames)}


def _run_encoding_experiment():
    dataset = TrafficCamDataset(scale=min(TRAFFIC_SCALE, 0.008), seed=SEED)
    frames = list(dataset.frames())
    truth = {
        frameno: dataset.ground_truth(frameno) for frameno in range(len(frames))
    }

    raw_stream = RawCodec().encode_stream(frames)
    rows = [("RAW", len(raw_stream), 1.0, detection_prf(_detections(frames), truth))]
    for preset in ("high", "medium", "low"):
        codec = H264LikeCodec(quality=preset, gop=GOP)
        stream = codec.encode_stream(frames)
        decoded = list(codec.decode_stream(stream))
        accuracy = detection_prf(_detections(decoded), truth)
        rows.append(
            (f"H264-{preset}", len(stream), len(raw_stream) / len(stream), accuracy)
        )
    return rows


@pytest.mark.benchmark(group="fig2")
def test_fig2_encoding_storage_vs_accuracy(benchmark):
    rows = benchmark.pedantic(_run_encoding_experiment, rounds=1, iterations=1)
    lines = [
        "| format | size (MB) | compression vs RAW | detection F1 |",
        "|---|---|---|---|",
    ]
    for name, size, ratio, accuracy in rows:
        lines.append(
            f"| {name} | {size / 1e6:.2f} | {ratio:.1f}x | {accuracy.f1:.3f} |"
        )
    lines.append("")
    lines.append(
        "paper shape: RAW 107 GB vs H.264 2.5 GB (~43x, 'up to 50x'); "
        "negligible accuracy loss at high quality; degradation at low."
    )
    write_result("fig2_encoding", "Figure 2 — encoding vs storage & accuracy", lines)

    by_name = {name: (size, ratio, acc) for name, size, ratio, acc in rows}
    raw_f1 = by_name["RAW"][2].f1
    # storage: the sequential codec compresses CCTV video by a large factor
    assert by_name["H264-high"][1] > 20.0
    assert by_name["H264-low"][1] > by_name["H264-high"][1]
    # accuracy: high quality is near-lossless downstream...
    assert abs(by_name["H264-high"][2].f1 - raw_f1) < 0.05
    # ...while heavy quantization measurably hurts
    assert by_name["H264-low"][2].f1 < by_name["H264-high"][2].f1 - 0.02
