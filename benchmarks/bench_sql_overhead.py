"""LensQL frontend overhead and plan-identity on the Table-1 workload.

Two promises the SQL redesign makes, armed as assertions:

* **compilation is cheap** — parse + bind time for the Table-1 query
  shapes stays under 10% of their end-to-end execution time (the
  frontend adds a string-to-plan step, not a second planner);
* **plans are identical** — each query's SQL form compiles to the same
  ``plan_fingerprint`` as its fluent-builder form, so the rewriter,
  statistics, view matcher, and executor see one plan regardless of
  frontend.
"""

from __future__ import annotations

import os

from benchmarks.conftest import write_result
from repro.bench.metrics import Timer
from repro.core import Attr, attribute_key
from repro.core.sql import BoundSelect

#: parse+bind repetitions (compilation is sub-ms; repeating steadies the
#: mean at smoke scale)
REPEAT = int(os.environ.get("REPRO_BENCH_SQL_REPEAT", "25"))
#: end-to-end runs per query; the minimum is the denominator
EXEC_RUNS = int(os.environ.get("REPRO_BENCH_SQL_RUNS", "3"))


def _workload_queries(db, detections):
    """(name, SQL text, fluent builder, fluent aggregate) per query."""
    frames = sorted({p["frameno"] for p in detections.scan(load_data=False)})
    mid_frame = frames[len(frames) // 2]
    queries = [
        (
            "label-eq",
            "SELECT * FROM detections WHERE label = 'person'",
            db.scan("detections").filter(Attr("label") == "person"),
            None,
        ),
        (
            "frame-range",
            f"SELECT * FROM detections WHERE frameno BETWEEN "
            f"{frames[0]} AND {mid_frame}",
            db.scan("detections").filter(
                Attr("frameno").between(frames[0], mid_frame)
            ),
            None,
        ),
        (
            "proj-order-limit",
            "SELECT label, frameno FROM detections WHERE depth >= 1 "
            "ORDER BY depth DESC LIMIT 10",
            db.scan("detections")
            .filter(Attr("depth") >= 1)
            .order_by("depth", reverse=True)
            .limit(10)
            .select("label", "frameno"),
            None,
        ),
        (
            "distinct-frames",
            "SELECT COUNT(DISTINCT frameno) FROM detections "
            "WHERE label = 'vehicle'",
            db.scan("detections").filter(Attr("label") == "vehicle"),
            ("distinct_count", attribute_key("frameno")),
        ),
    ]
    return queries


def test_sql_overhead_and_plan_identity(traffic):
    workload, _ = traffic
    db = workload.db
    queries = _workload_queries(db, workload.detections)

    lines = [
        f"workload: {len(workload.detections)} detections; "
        f"{REPEAT} compilations vs best of {EXEC_RUNS} executions",
        "",
        "| query | parse+bind (ms) | end-to-end (ms) | overhead | "
        "fingerprints |",
        "|---|---|---|---|---|",
    ]
    for name, sql, fluent, aggregate in queries:
        bound = db._bind_sql(sql)
        assert isinstance(bound, BoundSelect)

        # plan identity: the SQL form compiles onto the *same* logical
        # plan as the fluent form (below any terminal aggregate)
        sql_fp = bound.builder.plan_fingerprint()
        fluent_fp = fluent.plan_fingerprint()
        assert sql_fp == fluent_fp, (
            f"{name}: SQL plan {sql_fp} != fluent plan {fluent_fp}"
        )
        if aggregate is not None:
            kind, key = aggregate
            assert bound.aggregate is not None
            assert bound.aggregate[0] == kind
            assert bound.aggregate[1] is key  # the shared attribute_key

        with Timer() as compile_timer:
            for _ in range(REPEAT):
                db._bind_sql(sql)
        compile_seconds = compile_timer.seconds / REPEAT

        exec_seconds = min(
            _timed_execute(db, sql) for _ in range(EXEC_RUNS)
        )

        overhead = compile_seconds / max(exec_seconds, 1e-9)
        lines.append(
            f"| {name} | {compile_seconds * 1e3:.3f} | "
            f"{exec_seconds * 1e3:.2f} | {overhead:.1%} | identical |"
        )
        # the headline assertion: compiling the statement costs < 10%
        # of running it, even on the smoke-scale workload
        assert overhead < 0.10, (
            f"{name}: parse+bind {compile_seconds * 1e3:.3f} ms is "
            f"{overhead:.1%} of the {exec_seconds * 1e3:.2f} ms execution"
        )

    write_result(
        "sql_overhead",
        "LensQL compilation overhead vs end-to-end query time",
        lines,
    )


def _timed_execute(db, sql: str) -> float:
    with Timer() as timer:
        db.sql(sql)
    return timer.seconds
