"""Figure 8 — CPU vs AVX vs GPU for ETL and query time.

Paper: "Just by changing the underlying execution architecture there were
up-to 12x changes in execution time" for ETL, while query-time matching is
mixed: "For the larger query (q4) there is a significant performance
benefit from using the GPU (34% faster). For the smaller query (q1), the
overhead of using the GPU outweighs the costs."

No GPU exists in this environment, so times come from the documented
device cost model (DESIGN.md substitution table): every kernel executes
the same vectorized numpy, and each backend charges its analytic cost —
scalar throughput (CPU), SIMD throughput (AVX), or launch + PCIe +
massively-parallel ALUs (GPU). The model constants are printed alongside
the results.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.workload import HIST_KEY
from repro.vision import DetectorNoise, SyntheticSSD, TinyEmbedder, get_device
from repro.vision.backends.device import DEVICE_SPECS
from repro.vision.backends.kernels import pairwise_threshold_match

DEVICES = ("cpu", "avx", "gpu")
#: probe rows per GPU kernel launch for the all-pairs matcher
ROWS_PER_KERNEL = 128


def _etl_times(frames) -> dict[str, float]:
    out = {}
    for name in DEVICES:
        device = get_device(name)
        if name == "gpu":
            device.open_session()
        detector = SyntheticSSD(device=device, noise=DetectorNoise(seed=1))
        embedder = TinyEmbedder(device=device, dim=64)
        for frame in frames:
            detections = detector.process(frame)
            crops = [d.crop(frame) for d in detections]
            if crops:
                embedder.embed_batch(crops)
        out[name] = device.clock.elapsed
    return out


def _matching_times(features: np.ndarray) -> dict[str, float]:
    out = {}
    for name in DEVICES:
        device = get_device(name)
        if name == "gpu":
            device.open_session()
        pairwise_threshold_match(
            device, features, features, 0.4, rows_per_kernel=ROWS_PER_KERNEL
        )
        out[name] = device.clock.elapsed
    return out


def _run_device_experiment(traffic, pc):
    traffic_workload, traffic_design = traffic
    pc_workload, _ = pc
    frames = [traffic_workload.dataset.frame(i) for i in range(0, 40, 4)]
    etl = _etl_times(frames)
    q1_features = np.stack(
        [p[HIST_KEY] for p in pc_workload.images.scan(load_data=False)]
    )
    q4_features = np.stack(
        [p[HIST_KEY] for p in traffic_design.persons.scan(load_data=False)]
    )
    return etl, _matching_times(q1_features), _matching_times(q4_features), (
        len(q1_features),
        len(q4_features),
    )


@pytest.mark.benchmark(group="fig8")
def test_fig8_device_placement(benchmark, traffic, pc):
    etl, q1_match, q4_match, (n_q1, n_q4) = benchmark.pedantic(
        _run_device_experiment, args=(traffic, pc), rounds=1, iterations=1
    )
    lines = ["| stage | CPU (s) | AVX (s) | GPU (s) |", "|---|---|---|---|"]
    for label, series in (
        ("ETL (inference)", etl),
        (f"q1 matching (n={n_q1})", q1_match),
        (f"q4 matching (n={n_q4})", q4_match),
    ):
        lines.append(
            f"| {label} | {series['cpu']:.4f} | {series['avx']:.4f} "
            f"| {series['gpu']:.4f} |"
        )
    lines.append("")
    lines.append("device model constants:")
    for name, spec in DEVICE_SPECS.items():
        lines.append(
            f"- {name}: {spec.flops_per_second / 1e9:.0f} GFLOP/s"
            + (
                f", PCIe {spec.transfer_bytes_per_second / 1e9:.0f} GB/s, "
                f"launch {spec.launch_overhead_seconds * 1e6:.0f} us, "
                f"session {spec.session_overhead_seconds * 1e3:.0f} ms"
                if spec.transfer_bytes_per_second
                else ""
            )
        )
    lines.append("")
    lines.append(
        "paper shape: GPU >> AVX > CPU for inference-dominated ETL; mixed "
        "for query-time matching — q4 (large) gains ~34% on GPU, q1 (small) "
        "loses to offload overheads. (Times are modeled — see DESIGN.md.)"
    )
    write_result("fig8_devices", "Figure 8 — execution architecture", lines)

    # ETL: inference amortizes offload; the accelerator dominates
    assert etl["gpu"] < etl["avx"] < etl["cpu"]
    assert etl["cpu"] / etl["avx"] > 4.0
    # q4 (large matching) gains on GPU...
    assert q4_match["gpu"] < q4_match["avx"]
    # ...while q1 (small matching) regresses: overhead outweighs compute
    assert q1_match["gpu"] > q1_match["avx"]
    # and AVX always beats scalar execution
    assert q1_match["avx"] < q1_match["cpu"]
    assert q4_match["avx"] < q4_match["cpu"]
