"""Metadata-only analytics — columnar segment vs full-record decode.

The bug this guards against: ``load_data=False`` used to walk the blob
heap anyway, decoding every full pixel record just to throw the data
away. The fix stores patch metadata in a columnar segment beside the
heap, so metadata-only scans never touch pixel records at all.

Two analytics over the same collection of 64x64 detector patches, each
timed both ways:

* **label histogram** — ``aggregate("group")`` over the label
  attribute, the classic "how much of each class did the detector
  emit" dashboard query (the planner flips its scan to the metadata
  segment on its own — the query never says ``load_data=False``);
* **frameno window** — count patches in a narrow frame range over
  frame-ordered data, where the segment's per-block zone maps let the
  planner skip almost every sealed block unread.

The baseline is the literal pre-fix code path
(``collection._record_batches(size, load_data=False)`` — full heap
records, pixel decompression, Python-side predicate), kept callable
precisely so this benchmark measures against it. The engine path is an
ordinary metadata-only query; a heap spy asserts it performs **zero**
``BlobHeap.get``/``multi_get`` calls, and both paths must agree on
every count before any timing is trusted.

Emits ``BENCH_metadata_scan.json`` at the repo root with the raw
numbers. Scale with ``REPRO_BENCH_METADATA_N`` (default 100_000
patches). The >= 10x speedup assertion arms at 5000+ patches — the gap
is decode work the segment path structurally never does, so it holds at
CI smoke sizes too.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import write_result
from repro.core import Attr, DeepLens
from repro.core.patch import Patch
from repro.core.udf import AttributeKey

N_PATCHES = int(os.environ.get("REPRO_BENCH_METADATA_N", "100000"))
LABELS = ("vehicle", "person", "bike", "sign")
#: frameno window for the zone-map query: ~2% of a frame-ordered
#: collection, so almost every sealed block is provably non-matching
WINDOW = max(1, N_PATCHES // 50)
BATCH = 256
REPEATS = 3

RESULT_JSON = Path(__file__).parent.parent / "BENCH_metadata_scan.json"


def build_patches(n: int):
    rng = np.random.default_rng(23)
    base = rng.integers(0, 255, (64, 64, 3), dtype=np.uint8)
    for i in range(n):
        patch = Patch.from_frame("cam0", i, base)
        patch.metadata["label"] = LABELS[i % len(LABELS)]
        patch.metadata["score"] = float(i % 100) / 100.0
        yield patch


class HeapSpy:
    """Counts reads against one BlobHeap."""

    def __init__(self, heap):
        self.heap = heap
        self.reads = 0
        self._get, self._multi = heap.get, heap.multi_get
        heap.get = self._spy(self._get)
        heap.multi_get = self._spy(self._multi)

    def _spy(self, fn):
        def wrapped(*args, **kwargs):
            self.reads += 1
            return fn(*args, **kwargs)

        return wrapped

    def restore(self):
        self.heap.get, self.heap.multi_get = self._get, self._multi


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def test_metadata_scan(tmp_path):
    lo, hi = N_PATCHES // 2, N_PATCHES // 2 + WINDOW - 1
    with DeepLens(tmp_path / "db") as db:
        db.materialize(build_patches(N_PATCHES), "patches")
        collection = db.collection("patches")
        # seal the segment's tail block and warm both paths once so
        # neither timing pays one-off build costs
        collection.metadata_block_stats()
        sum(1 for _ in collection.scan(load_data=False))

        # -- baseline: the pre-fix load_data=False path -----------------
        #    (full heap records decoded, pixels discarded, predicate in
        #    plain Python)
        def baseline_labels():
            counts = dict.fromkeys(LABELS, 0)
            for batch in collection._record_batches(BATCH, False):
                for patch in batch:
                    counts[patch.metadata["label"]] += 1
            return counts

        def baseline_window():
            return sum(
                1
                for batch in collection._record_batches(BATCH, False)
                for patch in batch
                if lo <= patch.metadata["frameno"] <= hi
            )

        base_label_seconds, base_labels = _best_of(baseline_labels)
        base_window_seconds, base_window = _best_of(baseline_window)

        # -- engine: metadata-only queries over the columnar segment ----
        def engine_labels():
            # a full scan as written — the planner flips it to the
            # segment because a grouped count never reads pixels
            return db.scan("patches").aggregate(
                "group", key=AttributeKey("label"), reducer=len
            )

        def engine_window():
            return (
                db.scan("patches", load_data=False)
                .filter(Attr("frameno").between(lo, hi))
                .count()
            )

        spy = HeapSpy(db.catalog.heap)
        try:
            seg_label_seconds, seg_labels = _best_of(engine_labels)
            seg_window_seconds, seg_window = _best_of(engine_window)
        finally:
            spy.restore()

        # the segment path must agree with the record path on every
        # count, and must never have touched the patch heap
        assert seg_labels == base_labels
        assert sum(base_labels.values()) == N_PATCHES
        assert seg_window == base_window == WINDOW
        assert spy.reads == 0, (
            f"metadata-only analytics hit the blob heap {spy.reads} times"
        )

        explanation = (
            db.scan("patches", load_data=False)
            .filter(Attr("frameno").between(lo, hi))
            .explain()
        )
        skipping = explanation.chosen.kind == "zone-map-scan"

    label_speedup = base_label_seconds / seg_label_seconds
    window_speedup = base_window_seconds / seg_window_seconds

    payload = {
        "n_patches": N_PATCHES,
        "window_rows": WINDOW,
        "label_histogram": {
            "full_record_seconds": base_label_seconds,
            "metadata_segment_seconds": seg_label_seconds,
            "speedup": label_speedup,
        },
        "frameno_window": {
            "full_record_seconds": base_window_seconds,
            "metadata_segment_seconds": seg_window_seconds,
            "speedup": window_speedup,
            "zone_map_scan": skipping,
        },
        "heap_reads_during_metadata_path": spy.reads,
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"{N_PATCHES} patches, frameno window of {WINDOW} rows, "
        f"zero heap reads on the segment path (spied)",
        "",
        "| query | path | seconds | rows/s | speedup |",
        "|---|---|---|---|---|",
        f"| label histogram | full-record decode | {base_label_seconds:.4f} "
        f"| {N_PATCHES / base_label_seconds:,.0f} | 1.0x |",
        f"| label histogram | metadata segment | {seg_label_seconds:.4f} "
        f"| {N_PATCHES / seg_label_seconds:,.0f} | {label_speedup:.1f}x |",
        f"| frameno window | full-record decode | {base_window_seconds:.4f} "
        f"| {N_PATCHES / base_window_seconds:,.0f} | 1.0x |",
        f"| frameno window | metadata segment (zone maps: "
        f"{'skipping' if skipping else 'off'}) | {seg_window_seconds:.4f} "
        f"| {N_PATCHES / seg_window_seconds:,.0f} | {window_speedup:.1f}x |",
        "",
        f"written: {RESULT_JSON.name}",
    ]
    write_result(
        "metadata_scan",
        "Metadata-only analytics — columnar segment vs full-record decode",
        lines,
    )

    if N_PATCHES >= 5000:
        # the acceptance bar: metadata analytics must beat the pre-fix
        # full-record path by an order of magnitude
        assert label_speedup >= 10.0, (
            f"label-histogram speedup {label_speedup:.1f}x < 10x"
        )
        assert window_speedup >= 10.0, (
            f"frameno-window speedup {window_speedup:.1f}x < 10x"
        )
        assert skipping, "zone maps did not engage on the frameno window"
    else:
        assert label_speedup > 0.5 and window_speedup > 0.5
