"""Table 1 — accuracy vs runtime for the two q4 operator orders.

Paper::

    Execution method for q4      Recall  Precision  Runtime
    Patch, Filter, Match         0.73    0.97       34.56
    Patch, Match, Filter         0.82    0.98       62.11

"The second approach goes against typical query optimization principles
of filter pushdown — but we see that it is actually a more accurate
strategy." Pushing the label filter below the matcher drops every true
pedestrian the detector mislabeled; matching first and filtering pairs
afterwards recovers them (a pair survives unless *both* endpoints were
mislabeled).

The harness also asks the optimizer for its latency/accuracy estimates of
both plans, checking the cost model predicts the same trade-off direction
it measures.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.bench import q4_plan_accuracy
from repro.core import Attr


def _run_both_orders(traffic):
    workload, _ = traffic
    push = q4_plan_accuracy(workload, "filter-then-match")
    late = q4_plan_accuracy(workload, "match-then-filter")
    explanation = workload.db.optimizer.plan_dedup_filter_placement(
        n_patches=len(workload.detections),
        person_fraction=max(
            sum(
                1
                for identity in workload.identity_of.values()
                if identity and identity.startswith("ped-")
            )
            / max(len(workload.detections), 1),
            0.05,
        ),
        mislabel_rate=0.06,
    )
    return push, late, explanation


@pytest.mark.benchmark(group="table1")
def test_table1_filter_placement_accuracy(benchmark, traffic):
    push, late, explanation = benchmark.pedantic(
        _run_both_orders, args=(traffic,), rounds=1, iterations=1
    )
    lines = [
        "| execution method | recall | precision | runtime (s) |",
        "|---|---|---|---|",
        f"| Patch, Filter, Match | {push.accuracy.recall:.2f} "
        f"| {push.accuracy.precision:.2f} | {push.seconds:.3f} |",
        f"| Patch, Match, Filter | {late.accuracy.recall:.2f} "
        f"| {late.accuracy.precision:.2f} | {late.seconds:.3f} |",
        "",
        "paper: 0.73/0.97/34.56 vs 0.82/0.98/62.11 — the anti-push-down "
        "order is slower but more accurate.",
        "",
        "optimizer estimates for the same decision:",
        "```",
        str(explanation),
        "```",
    ]
    write_result("table1_plan_accuracy", "Table 1 — plan choice vs accuracy", lines)

    # the paper's headline: late filtering recovers recall ...
    assert late.accuracy.recall > push.accuracy.recall + 0.02
    # ... at comparable precision ...
    assert abs(late.accuracy.precision - push.accuracy.precision) < 0.15
    # ... and higher cost
    assert late.seconds > push.seconds * 1.3
    # the optimizer's accuracy model predicts the same direction
    estimates = {choice.kind: choice for choice in explanation.candidates}
    assert (
        estimates["match-then-filter"].accuracy.recall
        > estimates["filter-then-match"].accuracy.recall
    )
    assert (
        estimates["match-then-filter"].cost_seconds
        > estimates["filter-then-match"].cost_seconds
    )


@pytest.mark.benchmark(group="table1")
def test_table1_stats_driven_estimates_within_10x(traffic):
    """The statistics-driven planner's row estimates vs brute-force
    actuals on the seed workload — the catalog's histograms/MCVs must
    land every predicate within 10x (the seed's fixed constants cannot)."""
    workload, _ = traffic
    db = workload.db
    detections = list(workload.detections.scan(load_data=False))
    n = len(detections)
    frames = sorted({p["frameno"] for p in detections})
    mid_frame = frames[len(frames) // 2]
    depths = sorted(p["depth"] for p in detections)
    mid_depth = depths[len(depths) // 2]

    predicates = [
        Attr("label") == "vehicle",
        Attr("label") == "person",
        Attr("label") != "vehicle",
        Attr("frameno") <= mid_frame,
        Attr("frameno").between(frames[0], mid_frame),
        Attr("depth") >= mid_depth,
        (Attr("label") == "vehicle") & (Attr("frameno") <= mid_frame),
    ]

    lines = [
        f"seed workload: {n} detections",
        "",
        "| predicate | estimated rows | actual rows | source |",
        "|---|---|---|---|",
    ]
    sources = set()
    for expr in predicates:
        estimated, source = db.optimizer.estimate_filter_rows(
            "detections", expr
        )
        actual = sum(1 for patch in detections if expr.evaluate(patch))
        lines.append(
            f"| {expr!r} | {estimated:.1f} | {actual} | {source} |"
        )
        sources.update(source.split("+"))
        # the acceptance bar: within 10x both ways (floor at one row so
        # near-empty results do not divide by zero)
        assert max(estimated, 1.0) <= max(actual, 1.0) * 10
        assert max(actual, 1.0) <= max(estimated, 1.0) * 10
    # real statistics backed the estimates, not the fixed constants
    assert "histogram" in sources
    assert "mcv" in sources
    assert "fallback-constant" not in sources

    # explain() on a filtered scan surfaces the histogram-based estimate
    explanation = (
        db.scan("detections", load_data=False)
        .filter(Attr("frameno") <= mid_frame)
        .explain()
    )
    assert any("histogram" in line for line in explanation.estimates)
    lines += ["", "explain() over the frameno filter:", "```",
              str(explanation), "```"]
    write_result(
        "table1_stats_estimates",
        "Stats-driven cardinality estimates vs actuals",
        lines,
    )
