"""Shared fixtures for the figure/table benchmark harnesses.

Workloads build once per session at a scale controlled by
``REPRO_BENCH_SCALE`` (fraction of the paper's data volume; default 0.012
keeps the full suite in a few minutes). Every harness appends its series
to ``benchmarks/results/<experiment>.md`` and the terminal summary prints
them, so ``pytest benchmarks/ --benchmark-only`` shows the reproduced
rows without extra flags.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.bench import (
    build_football_workload,
    build_pc_workload,
    build_traffic_workload,
    prepare_football_design,
    prepare_pc_design,
    prepare_traffic_design,
)
from repro.core import DeepLens
from repro.datasets import FootballDataset, PCDataset, TrafficCamDataset

RESULTS_DIR = Path(__file__).parent / "results"

TRAFFIC_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.012"))
PC_SCALE = float(os.environ.get("REPRO_BENCH_PC_SCALE", "0.4"))
FOOTBALL_SCALE = float(os.environ.get("REPRO_BENCH_FOOTBALL_SCALE", "0.012"))
SEED = int(os.environ.get("REPRO_BENCH_SEED", "7"))

_written_results: list[Path] = []


def write_result(name: str, title: str, lines: list[str]) -> Path:
    """Persist one experiment's series and register it for the summary."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.md"
    content = f"# {title}\n\n" + "\n".join(lines) + "\n"
    path.write_text(content)
    if path not in _written_results:
        _written_results.append(path)
    print(content)
    return path


@pytest.fixture(scope="session")
def traffic(tmp_path_factory):
    """TrafficCam workload + tuned physical design (built once)."""
    db = DeepLens(tmp_path_factory.mktemp("traffic-db"))
    dataset = TrafficCamDataset(scale=TRAFFIC_SCALE, seed=SEED)
    workload = build_traffic_workload(db, dataset)
    design = prepare_traffic_design(workload)
    yield workload, design
    db.close()


@pytest.fixture(scope="session")
def pc(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("pc-db"))
    dataset = PCDataset(scale=PC_SCALE, seed=41)
    workload = build_pc_workload(db, dataset)
    design = prepare_pc_design(workload)
    yield workload, design
    db.close()


@pytest.fixture(scope="session")
def football(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("football-db"))
    dataset = FootballDataset(scale=FOOTBALL_SCALE, seed=23)
    workload = build_football_workload(db, dataset)
    design = prepare_football_design(workload)
    yield workload, design
    db.close()


def pytest_terminal_summary(terminalreporter):
    if not _written_results:
        return
    terminalreporter.write_sep("=", "reproduced paper figures/tables")
    for path in _written_results:
        terminalreporter.write_line("")
        terminalreporter.write_line(path.read_text())
