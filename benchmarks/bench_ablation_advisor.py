"""Ablation — does the storage advisor recommend the measured-best layout?

The paper's Section 3 future work ("a storage advisor that can analyze a
workload or an SLO and return an optimized storage scheme") is implemented
in :mod:`repro.core.optimizer.advisor`. This harness checks it against
reality: for a selective-query workload and for a storage-constrained
workload, it measures every layout's actual scan latency and footprint
and verifies the advisor's pick is measured-reasonable.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SEED, write_result
from repro.bench.metrics import Timer
from repro.core.expressions import Attr
from repro.core.optimizer import StorageAdvisor, WorkloadProfile
from repro.datasets import TrafficCamDataset
from repro.storage.formats import load_patches, open_store

LAYOUT_KWARGS = {
    "frame-raw": {},
    "frame-jpeg": {},
    "encoded": {},
    "segmented": {"clip_len": 32},
}


def _measure_layouts(tmp_path, frames, selectivity):
    n = len(frames)
    lo = int(n * 0.5)
    hi = lo + max(int(n * selectivity) - 1, 0)
    temporal = Attr("frameno").between(lo, hi)
    measured = {}
    for layout, kwargs in LAYOUT_KWARGS.items():
        store = open_store(layout, tmp_path, f"adv-{layout}", **kwargs)
        store.ingest(iter(frames))
        with Timer() as timer:
            sum(1 for _ in load_patches(store, filter=temporal))
        measured[layout] = (timer.seconds, store.size_bytes)
        store.close()
    return measured


def _run_advisor_ablation(tmp_path):
    dataset = TrafficCamDataset(scale=0.006, seed=SEED)
    frames = list(dataset.frames())
    frame_bytes = frames[0].nbytes
    selectivity = 0.05
    measured = _measure_layouts(tmp_path, frames, selectivity)

    advisor = StorageAdvisor()
    unconstrained = advisor.advise(
        WorkloadProfile(
            n_frames=len(frames),
            frame_bytes=frame_bytes,
            temporal_selectivity=selectivity,
        )
    )
    constrained = advisor.advise(
        WorkloadProfile(
            n_frames=len(frames),
            frame_bytes=frame_bytes,
            temporal_selectivity=selectivity,
            storage_budget_bytes=int(len(frames) * frame_bytes * 0.08),
        )
    )
    return measured, unconstrained, constrained


@pytest.mark.benchmark(group="ablation-advisor")
def test_ablation_storage_advisor(benchmark, tmp_path):
    measured, unconstrained, constrained = benchmark.pedantic(
        _run_advisor_ablation, args=(tmp_path,), rounds=1, iterations=1
    )
    lines = ["| layout | measured latency (s) | measured size (MB) |", "|---|---|---|"]
    for layout, (seconds, size) in measured.items():
        lines.append(f"| {layout} | {seconds:.3f} | {size / 1e6:.2f} |")
    lines.append("")
    lines.append(
        f"advisor, unconstrained: **{unconstrained.layout}** — "
        f"{unconstrained.rationale}"
    )
    lines.append(
        f"advisor, 8% storage budget: **{constrained.layout}** "
        f"(clip_len={constrained.clip_len}) — {constrained.rationale}"
    )
    write_result("ablation_advisor", "Ablation — storage advisor vs measured", lines)

    # unconstrained: the advisor picks a push-down-capable layout, and the
    # measured latencies agree that those beat the sequential stream
    assert unconstrained.layout in ("frame-raw", "frame-jpeg", "segmented")
    assert measured[unconstrained.layout][0] < measured["encoded"][0]
    # constrained: the pick actually fits the budget, measured
    budget = sum(size for _, size in [measured["frame-raw"]]) * 0.08
    assert constrained.layout in ("encoded", "segmented")
    assert measured[constrained.layout][1] <= budget * 1.2  # model tolerance
