"""Plan quality — instrumentation overhead and Q-error on the Table-1
workload.

EXPLAIN ANALYZE must be cheap enough to leave on: the per-operator
counters are batched (one lock-guarded update per batch pull, not per
row), so an analyzed run of each Table-1 query must stay within 5% of
the uninstrumented run. And the estimates it grades must be *good*:
the statistics-driven planner's median Q-error across the workload's
predicates must stay at or below 10 (the same bar the Table-1
estimate bench pins per predicate).

Emits ``BENCH_plan_quality.json`` at the repo root with the
median/p95 Q-error and the measured overhead, for CI trend tracking.

The harness builds its *own* database rather than sharing the session
``traffic`` fixture: analyzed runs record feedback corrections into
the catalog, which would silently change the estimate sources later
benches assert on.
"""

from __future__ import annotations

import json
import os
import statistics
import time
from pathlib import Path

import pytest

from benchmarks.conftest import SEED, write_result
from repro.bench import build_traffic_workload
from repro.core import Attr, DeepLens
from repro.datasets import TrafficCamDataset

SCALE = float(os.environ.get("REPRO_BENCH_QUALITY_SCALE", "0.008"))
ROUNDS = 7
OVERHEAD_BUDGET = 0.05
MEDIAN_Q_BUDGET = 10.0

RESULT_JSON = Path(__file__).parent.parent / "BENCH_plan_quality.json"


@pytest.fixture(scope="module")
def quality_db(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("plan-quality-db"))
    dataset = TrafficCamDataset(scale=SCALE, seed=SEED)
    workload = build_traffic_workload(db, dataset)
    db.create_index("detections", "label", "hash")
    yield workload
    db.close()


def table1_queries(db, detections):
    """The Table-1 estimate workload as executable pipelines: the same
    predicate families the stats-estimate bench grades, plus an
    order/limit pipeline so non-scan operators are profiled too."""
    frames = sorted({p["frameno"] for p in detections.scan(load_data=False)})
    mid_frame = frames[len(frames) // 2]
    depths = sorted(p["depth"] for p in detections.scan(load_data=False))
    mid_depth = depths[len(depths) // 2]
    scan = lambda: db.scan("detections", load_data=False)
    return {
        "label-eq": scan().filter(Attr("label") == "vehicle"),
        "label-neq": scan().filter(Attr("label") != "vehicle"),
        "frameno-range": scan().filter(
            Attr("frameno").between(frames[0], mid_frame)
        ),
        "depth-ge": scan().filter(Attr("depth") >= mid_depth),
        "conjunction": scan()
        .filter(Attr("label") == "person")
        .filter(Attr("frameno") <= mid_frame),
        "order-limit": scan()
        .filter(Attr("label") == "person")
        .order_by("depth", reverse=True)
        .limit(20),
    }


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


@pytest.mark.benchmark(group="plan_quality")
def test_plan_quality_overhead_and_q_error(quality_db):
    workload = quality_db
    db = workload.db
    queries = table1_queries(db, workload.detections)

    # warm both paths once (page cache, statistics, lazy loads), then
    # take the min-of-N of each — the steady-state cost
    for query in queries.values():
        query.patches()
        query.explain(analyze=True)

    # interleave the two paths within every round so transient machine
    # noise lands on both sides of the comparison, and keep the best
    # round per query (steady-state cost)
    plain_best = {name: float("inf") for name in queries}
    analyzed_best = {name: float("inf") for name in queries}
    for _ in range(ROUNDS):
        for name, query in queries.items():
            plain_best[name] = min(
                plain_best[name], _timed(query.patches)
            )
            analyzed_best[name] = min(
                analyzed_best[name],
                _timed(lambda q=query: q.explain(analyze=True)),
            )
    per_query = {
        name: (plain_best[name], analyzed_best[name]) for name in queries
    }
    plain_total = sum(plain_best.values())
    analyzed_total = sum(analyzed_best.values())
    overhead = analyzed_total / plain_total - 1.0

    q_errors = sorted(db.plan_quality_log().plan_q_errors())
    median_q = statistics.median(q_errors)
    p95_q = q_errors[min(len(q_errors) - 1, int(0.95 * len(q_errors)))]

    payload = {
        "workloads": {
            "traffic-table1": {
                "scale": SCALE,
                "rows": len(workload.detections),
                "queries": len(queries),
                "profiled_runs": len(q_errors),
                "median_q_error": round(median_q, 4),
                "p95_q_error": round(p95_q, 4),
                "overhead_fraction": round(overhead, 4),
            }
        }
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"workload: {len(workload.detections)} detections "
        f"(scale {SCALE}), {len(queries)} queries, min of {ROUNDS} runs",
        "",
        "| query | plain (ms) | analyzed (ms) |",
        "|---|---|---|",
    ]
    for name, (plain, analyzed) in per_query.items():
        lines.append(
            f"| {name} | {plain * 1000:.2f} | {analyzed * 1000:.2f} |"
        )
    lines += [
        "",
        f"instrumentation overhead: {overhead * 100:.1f}% "
        f"(budget {OVERHEAD_BUDGET * 100:.0f}%)",
        f"Q-error over {len(q_errors)} graded operators: "
        f"median {median_q:.2f}, p95 {p95_q:.2f} "
        f"(median budget {MEDIAN_Q_BUDGET:.0f})",
        f"written: {RESULT_JSON.name}",
    ]
    write_result(
        "plan_quality", "EXPLAIN ANALYZE overhead and Q-error", lines
    )

    assert overhead < OVERHEAD_BUDGET
    assert median_q <= MEDIAN_Q_BUDGET
    # the log really accumulated the workload's history
    assert len(db.plan_quality_log()) == len(queries)


@pytest.mark.benchmark(group="plan_quality")
def test_feedback_tightens_repeat_estimates(quality_db):
    """Second analyzed run of the same plans is graded under corrected
    estimates: the Q-error must not get worse, and every exhausted
    filter's estimate must now come from feedback."""
    workload = quality_db
    db = workload.db
    queries = table1_queries(db, workload.detections)
    for name, query in queries.items():
        if name == "order-limit":
            continue  # Limit may truncate: no correction is recorded
        regraded = query.explain(analyze=True)
        scan_entries = [
            e for e in regraded.profile.entries if e.est_rows is not None
        ]
        assert scan_entries
        worst = max(e.q for e in scan_entries)
        assert worst <= MEDIAN_Q_BUDGET
        estimate_lines = query.explain().estimates
        assert any("(feedback)" in line for line in estimate_lines), name
