"""Ablation — LSH approximation vs exact multidimensional indexing.

Section 7.3: "Since visual analytics is approximate by nature, perhaps
exact multidimensional indexing is unnecessary ... locality sensitive
hashing or similar approximations may suffice." This harness runs the
q4-style matching workload three ways — exact all-pairs, exact Ball-tree,
and LSH candidates + exact verification — and reports latency and recall
of the matched-pair set against the exact answer.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import write_result
from repro.bench.metrics import Timer, set_prf
from repro.indexes import BallTree, RandomHyperplaneLSH

N = 4000
DIM = 64
N_CLUSTERS = 120
THRESHOLD = 0.5


def _clustered_features(rng):
    centers = rng.normal(size=(N_CLUSTERS, DIM))
    centers /= np.linalg.norm(centers, axis=1, keepdims=True)
    assignment = rng.integers(0, N_CLUSTERS, size=N)
    points = centers[assignment] + rng.normal(0, 0.16, size=(N, DIM))
    return points


def _pairs_from(hits_per_row):
    out = set()
    for row, hits in enumerate(hits_per_row):
        for other in hits:
            if int(other) != row:
                out.add(frozenset((row, int(other))))
    return out


def _run_lsh_ablation():
    rng = np.random.default_rng(5)
    points = _clustered_features(rng)

    with Timer() as exact_timer:
        dists = np.sqrt(
            np.maximum(
                (points**2).sum(1)[:, None]
                + (points**2).sum(1)[None, :]
                - 2 * points @ points.T,
                0,
            )
        )
        rows, cols = np.nonzero(dists <= THRESHOLD)
        exact_pairs = {
            frozenset((int(r), int(c))) for r, c in zip(rows, cols) if r != c
        }

    with Timer() as tree_timer:
        tree = BallTree(points, leaf_size=16)
        tree_pairs = _pairs_from(tree.query_radius_batch(points, THRESHOLD))

    results = []
    for n_tables, n_bits in ((4, 10), (8, 10), (16, 8)):
        lsh = RandomHyperplaneLSH(DIM, n_tables=n_tables, n_bits=n_bits, seed=3)
        with Timer() as lsh_timer:
            for idx in range(N):
                lsh.insert(points[idx], idx)
            lsh_pairs = set()
            for idx in range(N):
                candidates = lsh.candidates(points[idx])
                if not candidates:
                    continue
                cand = np.fromiter(candidates, dtype=int)
                gaps = np.sqrt(((points[cand] - points[idx]) ** 2).sum(axis=1))
                for other in cand[gaps <= THRESHOLD]:
                    if int(other) != idx:
                        lsh_pairs.add(frozenset((idx, int(other))))
        prf = set_prf(lsh_pairs, exact_pairs)
        results.append((f"lsh-{n_tables}x{n_bits}", lsh_timer.seconds, prf))
    return exact_timer.seconds, tree_timer.seconds, tree_pairs == exact_pairs, results


@pytest.mark.benchmark(group="ablation-lsh")
def test_ablation_lsh_vs_exact(benchmark):
    exact_s, tree_s, tree_exactness, lsh_rows = benchmark.pedantic(
        _run_lsh_ablation, rounds=1, iterations=1
    )
    lines = [
        f"workload: {N} x {DIM}-d clustered features, radius {THRESHOLD}",
        "",
        "| method | time (s) | pair recall | pair precision |",
        "|---|---|---|---|",
        f"| exact all-pairs (AVX) | {exact_s:.3f} | 1.000 | 1.000 |",
        f"| Ball-tree (exact) | {tree_s:.3f} | 1.000 | 1.000 |",
    ]
    for name, seconds, prf in lsh_rows:
        lines.append(
            f"| {name} | {seconds:.3f} | {prf.recall:.3f} | {prf.precision:.3f} |"
        )
    lines.append("")
    lines.append(
        "Section 7.3's conjecture: approximate indexing trades a bounded "
        "recall loss for probe-time independence from dimensionality; "
        "verification keeps precision exact."
    )
    write_result("ablation_lsh", "Ablation — LSH vs exact indexing", lines)

    # the Ball-tree answer is exact
    assert tree_exactness
    # verified LSH never loses precision ...
    for _, _, prf in lsh_rows:
        assert prf.precision == pytest.approx(1.0)
    # ... and more tables buy recall
    recalls = [prf.recall for _, _, prf in lsh_rows[:2]]
    assert recalls[1] >= recalls[0]
    assert lsh_rows[1][2].recall > 0.8
