"""Parallel batched execution — multi-get scans and worker fan-out.

The two levers this engine pulls, measured separately:

* **coalesced storage reads** — fetching every blob of a realistic
  patch-record heap through per-record ``BlobHeap.get`` (a seek plus
  two reads each) vs one ``multi_get`` per 256-record batch, in id
  order (the cold-scan pattern behind ``scan_batches``) and in shuffled
  order (the index-lookup pattern behind ``get_many``, where the
  offset sort turns random point reads back into sequential runs). The
  end-to-end ``scan`` vs ``scan_batches`` numbers are reported too —
  patch *decode* dominates there, which is exactly why the fetch layer
  is measured in isolation.
* **parallel UDF map** — scan -> map(inference UDF) -> filter run at
  ``workers=4`` vs ``workers=1`` through the ordinary QueryBuilder
  path (prefetch stage included). The UDF models accelerator/RPC
  inference: a fixed per-patch service latency during which the GIL is
  released — exactly the regime where thread fan-out wins, including on
  single-core CI runners. Results are asserted bit-identical between
  the two runs before any timing is trusted.

Scale with ``REPRO_BENCH_PARALLEL_N`` (default 2000 patches). The
speedup assertions arm at 300+ patches; CI smoke sizes stay above that
because the latency-bound speedup is deterministic, unlike CPU-bound
timing.
"""

from __future__ import annotations

import os
import random
import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core import Attr, DeepLens
from repro.core.patch import Patch
from repro.storage.kvstore import BlobHeap

N_PATCHES = int(os.environ.get("REPRO_BENCH_PARALLEL_N", "2000"))
#: modeled per-patch inference service time (accelerator/RPC wait)
INFER_SECONDS = 0.0008
#: bytes per blob in the fetch-layer workload (a typical encoded patch
#: record: small image tile + metadata)
BLOB_BYTES = 1024
WORKERS = 4
REPEATS = 3


def build_patches(n: int):
    rng = np.random.default_rng(19)
    frames = rng.integers(0, 255, (n, 12, 12, 3), dtype=np.uint8)
    for i in range(n):
        patch = Patch.from_frame("cam0", i, frames[i])
        patch.metadata["label"] = "vehicle" if i % 2 == 0 else "person"
        yield patch


def inference_udf(patch: Patch) -> Patch:
    """A stand-in model forward pass: a little tensor math plus the
    service wait a real accelerator/RPC inference spends off the GIL."""
    score = float(patch.data.astype(np.float32).mean())
    time.sleep(INFER_SECONDS)
    return patch.derive(patch.data, "infer", score=score)


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, object]:
    best, result = float("inf"), None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - started)
    return best, result


def _fetch_layer_measurements(tmp_path) -> dict[str, float]:
    """Per-record heap gets vs coalesced multi_get over the same refs."""
    rng = np.random.default_rng(5)
    with BlobHeap(tmp_path / "bench.heap") as heap:
        refs = [
            heap.put(
                rng.integers(0, 255, BLOB_BYTES, dtype=np.uint8).tobytes()
            )
            for _ in range(N_PATCHES)
        ]
        heap.sync()
        shuffled = refs[:]
        random.Random(3).shuffle(shuffled)
        out: dict[str, float] = {}
        for label, order, chunk in (
            # id order in scan_batches-sized chunks (the cold-scan path);
            # shuffled in one request (what collection.lookup/get_many
            # hand the heap for a whole index result — the offset sort
            # pays off with request density, so one dense call is the
            # representative shape)
            ("scan", refs, 256),
            ("lookup", shuffled, len(shuffled)),
        ):
            point_seconds, point = _best_of(
                lambda order=order: [heap.get(ref) for ref in order]
            )
            multi_seconds, multi = _best_of(
                lambda order=order, chunk=chunk: [
                    blob
                    for start in range(0, len(order), chunk)
                    for blob in heap.multi_get(order[start : start + chunk])
                ]
            )
            assert multi == point  # identical bytes before timing counts
            out[f"{label}_point"] = point_seconds
            out[f"{label}_multi"] = multi_seconds
    return out


def test_parallel_pipeline(tmp_path):
    fetch = _fetch_layer_measurements(tmp_path)
    scan_speedup = fetch["scan_point"] / fetch["scan_multi"]
    lookup_speedup = fetch["lookup_point"] / fetch["lookup_multi"]

    with DeepLens(tmp_path / "db") as db:
        db.materialize(build_patches(N_PATCHES), "patches")
        collection = db.collection("patches")

        # -- end-to-end scan: per-patch heap trips vs scan_batches ------
        #    (decode-dominated; reported, not asserted)
        ids = collection.ids()
        point_seconds, point_rows = _best_of(
            lambda: len([collection.get(patch_id) for patch_id in ids])
        )
        batched_seconds, batched_rows = _best_of(
            lambda: sum(len(batch) for batch in collection.scan_batches(256))
        )
        assert point_rows == batched_rows == N_PATCHES
        e2e_speedup = point_seconds / batched_seconds

        # -- UDF map: workers=4 vs workers=1, identical plans otherwise --
        def pipeline(workers: int):
            return (
                db.scan("patches")
                .map(inference_udf, name="infer", provides={"score"})
                .filter(Attr("score") >= 0.0)
                .with_execution(workers=workers)
            )

        serial_seconds, serial_out = _best_of(
            lambda: [(p.patch_id, p["score"]) for p in pipeline(1).patches()],
            repeats=1,
        )
        parallel_seconds, parallel_out = _best_of(
            lambda: [
                (p.patch_id, p["score"]) for p in pipeline(WORKERS).patches()
            ],
            repeats=1,
        )
        # parallel execution must be bit-identical before it may be fast
        assert parallel_out == serial_out
        assert len(serial_out) == N_PATCHES
        map_speedup = serial_seconds / parallel_seconds

    lines = [
        f"{N_PATCHES} patches ({BLOB_BYTES} B blobs at the fetch layer), "
        f"inference latency {INFER_SECONDS * 1e3:.1f} ms/patch, "
        f"workers={WORKERS}",
        "",
        "| measurement | seconds | rows/s | speedup |",
        "|---|---|---|---|",
        f"| blob fetch, id order, per-record get | {fetch['scan_point']:.4f} "
        f"| {N_PATCHES / fetch['scan_point']:,.0f} | 1.0x |",
        f"| blob fetch, id order, multi-get | {fetch['scan_multi']:.4f} | "
        f"{N_PATCHES / fetch['scan_multi']:,.0f} | {scan_speedup:.2f}x |",
        f"| blob fetch, shuffled, per-record get | "
        f"{fetch['lookup_point']:.4f} | "
        f"{N_PATCHES / fetch['lookup_point']:,.0f} | 1.0x |",
        f"| blob fetch, shuffled, multi-get (offset-sorted) | "
        f"{fetch['lookup_multi']:.4f} | "
        f"{N_PATCHES / fetch['lookup_multi']:,.0f} | {lookup_speedup:.2f}x |",
        f"| full scan + decode, per-patch | {point_seconds:.4f} | "
        f"{point_rows / point_seconds:,.0f} | 1.0x |",
        f"| full scan + decode, scan_batches | {batched_seconds:.4f} | "
        f"{batched_rows / batched_seconds:,.0f} | {e2e_speedup:.2f}x |",
        f"| UDF map, workers=1 | {serial_seconds:.4f} | "
        f"{len(serial_out) / serial_seconds:,.0f} | 1.0x |",
        f"| UDF map, workers={WORKERS} (prefetch on) | "
        f"{parallel_seconds:.4f} | "
        f"{len(parallel_out) / parallel_seconds:,.0f} | {map_speedup:.2f}x |",
    ]
    write_result(
        "parallel_pipeline",
        "Parallel batched execution — multi-get scan and worker fan-out",
        lines,
    )
    if N_PATCHES >= 300:
        # the coalesced fetch layer must beat per-record heap trips on
        # the index-lookup pattern, and the worker pool must clear 1.5x
        # on the latency-bound UDF map
        assert lookup_speedup >= 1.15, (
            f"multi-get lookup speedup {lookup_speedup:.2f}x < 1.15x"
        )
        assert map_speedup >= 1.5, f"UDF-map speedup {map_speedup:.2f}x < 1.5x"
    else:
        assert lookup_speedup > 0.5 and map_speedup > 0.5
