"""Durability — the commit journal must be cheap enough to leave on.

Crash consistency is on by default, so every catalog mutation pays the
journal: a BEGIN snapshot per transaction, before-images for overwritten
pages, and a truncate at each commit barrier. Running the Table-1 ETL
(ingest + materialize the detections collection) once per durability
mode, the journaled ``"flush"`` run must stay within 15% of the
``durability="none"`` baseline (journal disabled entirely — the
pre-crash-safety behavior). The default ``"fsync"`` mode is reported for
reference but not asserted: its cost is the hardware's fsync latency,
not the journal bookkeeping.

Emits ``BENCH_durability.json`` at the repo root with the measured
overhead, for CI trend tracking. Each run builds its own database from
the same seeded dataset; rounds interleave the modes so machine noise
lands on every side of the comparison.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from benchmarks.conftest import SEED, write_result
from repro.bench import build_traffic_workload
from repro.core import DeepLens
from repro.datasets import TrafficCamDataset

SCALE = float(os.environ.get("REPRO_BENCH_DUR_SCALE", "0.008"))
ROUNDS = int(os.environ.get("REPRO_BENCH_DUR_ROUNDS", "3"))
MODES = ("none", "flush", "fsync")
OVERHEAD_BUDGET = 0.15

RESULT_JSON = Path(__file__).parent.parent / "BENCH_durability.json"


def _etl_seconds(workdir, durability):
    """One full Table-1 ingest into a fresh database; returns the ETL
    wall time plus the stats the report shows."""
    db = DeepLens(workdir, durability=durability)
    try:
        dataset = TrafficCamDataset(scale=SCALE, seed=SEED)
        workload = build_traffic_workload(db, dataset)
        counters = db.metrics()["counters"]
        return (
            workload.etl_seconds,
            len(workload.detections),
            counters.get("deeplens_journal_commits_total", 0),
            counters.get("deeplens_journal_page_images_total", 0),
        )
    finally:
        db.close()


@pytest.mark.benchmark(group="durability")
def test_journaled_commit_overhead_under_budget(tmp_path_factory):
    best = {mode: float("inf") for mode in MODES}
    rows = 0
    commits = {mode: 0 for mode in MODES}
    images = {mode: 0 for mode in MODES}
    for round_no in range(ROUNDS):
        for mode in MODES:
            workdir = tmp_path_factory.mktemp(f"dur-{mode}-{round_no}")
            seconds, rows, commits[mode], images[mode] = _etl_seconds(
                workdir, mode
            )
            best[mode] = min(best[mode], seconds)

    overhead_flush = best["flush"] / best["none"] - 1.0
    overhead_fsync = best["fsync"] / best["none"] - 1.0

    # the journaled runs really committed through the journal ...
    assert commits["flush"] > 0 and commits["fsync"] > 0
    # ... and the baseline never touched it
    assert commits["none"] == 0

    payload = {
        "workloads": {
            "traffic-table1-ingest": {
                "scale": SCALE,
                "rows": rows,
                "rounds": ROUNDS,
                "seconds": {m: round(best[m], 4) for m in MODES},
                "journal_commits": commits["flush"],
                "journal_page_images": images["flush"],
                "overhead_fraction_flush": round(overhead_flush, 4),
                "overhead_fraction_fsync": round(overhead_fsync, 4),
            }
        }
    }
    RESULT_JSON.write_text(json.dumps(payload, indent=2) + "\n")

    lines = [
        f"workload: Table-1 ingest, {rows} detections (scale {SCALE}), "
        f"min of {ROUNDS} rounds",
        "",
        "| durability | ETL (s) | vs none |",
        "|---|---|---|",
        f"| none (no journal) | {best['none']:.3f} | — |",
        f"| flush (journaled) | {best['flush']:.3f} "
        f"| {overhead_flush * 100:+.1f}% |",
        f"| fsync (journaled, durable) | {best['fsync']:.3f} "
        f"| {overhead_fsync * 100:+.1f}% |",
        "",
        f"journal: {commits['flush']} commits, "
        f"{images['flush']} page before-images",
        f"flush overhead budget: {OVERHEAD_BUDGET * 100:.0f}%",
        f"written: {RESULT_JSON.name}",
    ]
    write_result("durability", "Commit-journal overhead on Table-1 ingest", lines)

    assert overhead_flush < OVERHEAD_BUDGET
