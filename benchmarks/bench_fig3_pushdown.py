"""Figure 3 — temporal filter push-down latency per storage layout.

Paper: "Hybrid storage formats can support coarse-grained filter push down
as well as take advantage of sequential compression." A temporal filter
(a small frame range) is added to q2; Frame File layouts (RAW/JPEG) push
it down exactly, the Encoded File must scan the stream prefix, and the
Segmented File decodes only the overlapping clips.

Also sweeps the Segmented clip length — the granularity the paper says
they "manually tuned ... for best performance".
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import SEED, TRAFFIC_SCALE, write_result
from repro.bench.metrics import Timer
from repro.core.expressions import Attr
from repro.datasets import TrafficCamDataset
from repro.storage.formats import load_patches, open_store


def _run_pushdown_experiment(tmp_path):
    dataset = TrafficCamDataset(scale=min(TRAFFIC_SCALE, 0.008), seed=SEED)
    frames = list(dataset.frames())
    n = len(frames)
    # a selective temporal predicate: ~6% of the video, in the middle
    lo, hi = int(n * 0.55), int(n * 0.61)
    temporal = Attr("frameno").between(lo, hi)

    layouts = [
        ("frame-raw", {}),
        ("frame-jpeg", {}),
        ("encoded", {}),
        ("segmented", {"clip_len": 32}),
    ]
    rows = []
    for layout, kwargs in layouts:
        store = open_store(layout, tmp_path, f"fig3-{layout}", **kwargs)
        store.ingest(iter(frames))
        with Timer() as timer:
            got = sum(1 for _ in load_patches(store, filter=temporal))
        rows.append((layout, timer.seconds, store.size_bytes, got))
        store.close()
    assert len({count for *_, count in rows}) == 1, "layouts disagree on results"

    sweep = []
    for clip_len in (8, 32, 128):
        store = open_store(
            "segmented", tmp_path, f"fig3-sweep-{clip_len}", clip_len=clip_len
        )
        store.ingest(iter(frames))
        with Timer() as timer:
            sum(1 for _ in load_patches(store, filter=temporal))
        sweep.append((clip_len, timer.seconds, store.size_bytes))
        store.close()
    return rows, sweep


@pytest.mark.benchmark(group="fig3")
def test_fig3_temporal_pushdown(benchmark, tmp_path):
    rows, sweep = benchmark.pedantic(
        _run_pushdown_experiment, args=(tmp_path,), rounds=1, iterations=1
    )
    lines = [
        "| layout | filtered-scan latency (s) | size (MB) |",
        "|---|---|---|",
    ]
    for layout, seconds, size, _ in rows:
        lines.append(f"| {layout} | {seconds:.3f} | {size / 1e6:.2f} |")
    lines.append("")
    lines.append("Segmented clip-length sweep (granularity vs storage):")
    lines.append("")
    lines.append("| clip_len | latency (s) | size (MB) |")
    lines.append("|---|---|---|")
    for clip_len, seconds, size in sweep:
        lines.append(f"| {clip_len} | {seconds:.3f} | {size / 1e6:.2f} |")
    lines.append("")
    lines.append(
        "paper shape: RAW/JPEG push down fully; H.264 pays a sequential "
        "prefix scan; the segmented hybrid sits between."
    )
    write_result("fig3_pushdown", "Figure 3 — temporal push-down by layout", lines)

    by_layout = {layout: (seconds, size) for layout, seconds, size, _ in rows}
    # push-down-capable layouts beat the sequential stream on selective scans
    assert by_layout["frame-raw"][0] < by_layout["encoded"][0]
    assert by_layout["frame-jpeg"][0] < by_layout["encoded"][0]
    assert by_layout["segmented"][0] < by_layout["encoded"][0]
    # the hybrid keeps (most of) the compression win
    assert by_layout["segmented"][1] < by_layout["frame-raw"][1] / 5
    # granularity trade-off: overly long clips decode more waste than short
    sweep_latency = {clip_len: seconds for clip_len, seconds, _ in sweep}
    assert sweep_latency[128] > sweep_latency[8]
    # every clip length keeps the compression win (our smooth synthetic
    # backgrounds make I-frames cheap, so extra I-frames cost little —
    # unlike the paper's real footage, short clips do not balloon storage)
    for _, _, size in sweep:
        assert size < by_layout["frame-raw"][1] / 5
