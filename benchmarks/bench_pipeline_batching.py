"""Pipeline batching — row-at-a-time vs batched execution throughput.

The batched protocol (``Operator.iter_batches``) moves ``list[Row]``
chunks through the scan -> filter -> map hot path instead of single rows:
fewer generator hops per row, and the map stage can hand a whole batch to
a vectorized UDF (``batch_fn``) — the batched-inference win DeepLens and
EVA build their query pipelines around.

Three executions of the same 10k-patch scan+filter+map pipeline:

* ``row-at-a-time`` — the Volcano baseline, one row per generator hop,
  the UDF called per patch;
* ``batched (scalar udf)`` — chunked dataflow, UDF still per patch:
  isolates the protocol overhead saved;
* ``batched (vectorized udf)`` — chunked dataflow + ``batch_fn`` over the
  stacked batch: the full win.

Scale with ``REPRO_BENCH_PIPELINE_N`` (default 10_000).
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core.expressions import Attr
from repro.core.operators import IteratorScan, MapPatches, Select
from repro.core.patch import Patch

N_PATCHES = int(os.environ.get("REPRO_BENCH_PIPELINE_N", "10000"))
BATCH_SIZE = int(os.environ.get("REPRO_BENCH_PIPELINE_BATCH", "512"))
REPEATS = 3


def build_patches(n: int) -> list[Patch]:
    rng = np.random.default_rng(7)
    frames = rng.integers(0, 255, (n, 8, 8, 3), dtype=np.uint8)
    patches = []
    for i in range(n):
        patch = Patch.from_frame("cam0", i, frames[i])
        patch.patch_id = i
        patch.metadata["label"] = "vehicle" if i % 2 == 0 else "person"
        patches.append(patch)
    return patches


def brightness(patch: Patch) -> Patch:
    pixels = patch.data.astype(np.float64)
    return patch.derive(
        patch.data,
        "brightness",
        value=float(pixels.mean()),
        contrast=float(pixels.std()),
    )


def brightness_batch(patches: list[Patch]) -> list[Patch]:
    stacked = np.stack([patch.data for patch in patches]).astype(np.float64)
    flat = stacked.reshape(len(patches), -1)
    means = flat.mean(axis=1)
    stds = flat.std(axis=1)
    return [
        patch.derive(patch.data, "brightness", value=float(mean), contrast=float(std))
        for patch, mean, std in zip(patches, means, stds)
    ]


def _pipeline(patches: list[Patch], *, vectorized: bool) -> MapPatches:
    selected = Select(IteratorScan(patches), Attr("label") == "vehicle")
    return MapPatches(
        selected,
        brightness,
        batch_fn=brightness_batch if vectorized else None,
    )


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, int]:
    best, rows = float("inf"), 0
    for _ in range(repeats):
        started = time.perf_counter()
        rows = fn()
        best = min(best, time.perf_counter() - started)
    return best, rows


def test_pipeline_batching(tmp_path):
    patches = build_patches(N_PATCHES)

    def run_rows() -> int:
        return sum(1 for _ in _pipeline(patches, vectorized=False))

    def run_batched(vectorized: bool) -> int:
        pipeline = _pipeline(patches, vectorized=vectorized)
        return sum(len(batch) for batch in pipeline.iter_batches(BATCH_SIZE))

    row_seconds, row_count = _best_of(run_rows)
    chunk_seconds, chunk_count = _best_of(lambda: run_batched(False))
    vec_seconds, vec_count = _best_of(lambda: run_batched(True))
    assert row_count == chunk_count == vec_count == N_PATCHES // 2

    def throughput(seconds: float) -> float:
        return row_count / seconds

    speedup_chunk = row_seconds / chunk_seconds
    speedup_vec = row_seconds / vec_seconds
    lines = [
        f"pipeline: scan -> filter(label) -> map(brightness), "
        f"{N_PATCHES} patches, batch={BATCH_SIZE}",
        "",
        "| execution | seconds | rows/s | speedup |",
        "|---|---|---|---|",
        f"| row-at-a-time | {row_seconds:.4f} | "
        f"{throughput(row_seconds):,.0f} | 1.0x |",
        f"| batched (scalar udf) | {chunk_seconds:.4f} | "
        f"{throughput(chunk_seconds):,.0f} | {speedup_chunk:.2f}x |",
        f"| batched (vectorized udf) | {vec_seconds:.4f} | "
        f"{throughput(vec_seconds):,.0f} | {speedup_vec:.2f}x |",
    ]
    write_result(
        "pipeline_batching",
        "Pipeline batching — batched vs row-at-a-time execution",
        lines,
    )
    # batched execution must beat row-at-a-time by 2x at full scale; tiny
    # CI-smoke sizes only have to stay sane
    if N_PATCHES >= 5000:
        assert speedup_vec >= 2.0, f"batched speedup {speedup_vec:.2f}x < 2x"
    else:
        assert speedup_vec > 0.5
