"""View reuse — materialized derived views vs recomputing UDF pipelines.

The materialization manager's bet: ML UDF inference dominates scans by
orders of magnitude, so a pipeline whose prefix is persisted as a derived
view should be served from the view at a fraction of recompute cost —
across sessions, without the user rewriting the query (the planner's
view-matching rewrite does it, cost-based).

One workload, measured twice:

* ``recompute`` — scan -> map(feature UDF) -> filter(udf output) with no
  view registered: every patch runs the UDF;
* ``view-served`` — the same query after ``materialize_view``: the
  planner rewrites the prefix to scan the stored view (asserted via
  ``explain()``), so the UDF never runs.

Scale with ``REPRO_BENCH_VIEW_N`` (default 10_000). The >= 2x assertion
arms at 5000+ patches; CI smoke sizes only check the wiring.
"""

from __future__ import annotations

import os
import time

import numpy as np

from benchmarks.conftest import write_result
from repro.core import Attr, DeepLens
from repro.core.patch import Patch

N_PATCHES = int(os.environ.get("REPRO_BENCH_VIEW_N", "10000"))
REPEATS = 3


def build_patches(n: int):
    rng = np.random.default_rng(11)
    frames = rng.integers(0, 255, (n, 8, 8, 3), dtype=np.uint8)
    for i in range(n):
        patch = Patch.from_frame("cam0", i, frames[i])
        patch.metadata["label"] = "vehicle" if i % 2 == 0 else "person"
        yield patch


def spectral_score(patch: Patch) -> Patch:
    """A deliberately inference-priced UDF: spectral energy of the patch
    via an SVD — the stand-in for a model forward pass."""
    vector = patch.data.astype(np.float64).ravel()[:64]
    gram = np.outer(vector, vector)
    singular = np.linalg.svd(gram, compute_uv=False)
    return patch.derive(
        patch.data, "spectral", score=float(singular[:8].sum())
    )


def _best_of(fn, repeats: int = REPEATS) -> tuple[float, int]:
    best, rows = float("inf"), 0
    for _ in range(repeats):
        started = time.perf_counter()
        rows = fn()
        best = min(best, time.perf_counter() - started)
    return best, rows


def test_view_reuse(tmp_path):
    with DeepLens(tmp_path / "db") as db:
        db.materialize(build_patches(N_PATCHES), "patches")
        query = (
            db.scan("patches")
            .map(spectral_score, name="spectral", provides={"score"})
            .filter(Attr("score") > 0.0)  # reads the UDF output: not pushable
        )

        recompute_seconds, recompute_rows = _best_of(lambda: len(query.patches()))

        db.materialize_view(
            "spectral_view",
            db.scan("patches").map(
                spectral_score, name="spectral", provides={"score"}
            ),
        )
        explanation = query.explain()
        assert any(
            "view-match: rewrote" in line for line in explanation.rewrites
        ), f"planner did not reuse the view:\n{explanation}"

        view_seconds, view_rows = _best_of(lambda: len(query.patches()))
        assert view_rows == recompute_rows == N_PATCHES

    speedup = recompute_seconds / view_seconds
    lines = [
        f"pipeline: scan -> map(spectral UDF) -> filter(score), "
        f"{N_PATCHES} patches",
        "",
        "| execution | seconds | rows/s | speedup |",
        "|---|---|---|---|",
        f"| recompute (no view) | {recompute_seconds:.4f} | "
        f"{recompute_rows / recompute_seconds:,.0f} | 1.0x |",
        f"| view-served (planner rewrite) | {view_seconds:.4f} | "
        f"{view_rows / view_seconds:,.0f} | {speedup:.2f}x |",
    ]
    write_result(
        "view_reuse",
        "View reuse — materialized view vs recomputing the UDF pipeline",
        lines,
    )
    # the materialized view must beat recomputation 2x at full scale;
    # tiny CI-smoke sizes only have to stay sane
    if N_PATCHES >= 5000:
        assert speedup >= 2.0, f"view-served speedup {speedup:.2f}x < 2x"
    else:
        assert speedup > 0.5
