"""Tests for SyntheticSSD, TemplateOCR, MonocularDepth, and TinyEmbedder."""

import numpy as np
import pytest

from repro.vision import (
    Camera,
    Detection,
    DetectorNoise,
    MonocularDepth,
    Renderer,
    Scene,
    SceneObject,
    SyntheticSSD,
    TemplateOCR,
    TinyEmbedder,
    get_device,
    iou,
)
from repro.vision.glyphs import stamp_text
from repro.vision.scene import linear_states


def traffic_scene(n_frames=4, width=320, height=180, n_vehicles=2, n_persons=2):
    scene = Scene(width=width, height=height, n_frames=n_frames)
    cam = scene.camera
    hues = [(210, 40, 40), (40, 80, 210), (230, 160, 30), (40, 180, 70)]
    for i in range(n_vehicles):
        vehicle = SceneObject(f"veh-{i}", "vehicle", hues[i % 4])
        vehicle.states = linear_states(
            cam, width, range(n_frames),
            depth0=9 + 3 * i, depth1=8 + 3 * i,
            lateral0=-5 + 3 * i, lateral1=-4.5 + 3 * i,
            real_width=4.2, real_height=1.6,
        )
        scene.add(vehicle)
    for i in range(n_persons):
        person = SceneObject(f"ped-{i}", "person", hues[(i + 2) % 4])
        person.states = linear_states(
            cam, width, range(n_frames),
            depth0=14 + 4 * i, depth1=13 + 4 * i,
            lateral0=4 - 2 * i, lateral1=4.4 - 2 * i,
            real_width=0.55, real_height=1.75,
        )
        scene.add(person)
    return scene


NO_NOISE = DetectorNoise(p_mislabel=0.0, p_miss=0.0, p_false_positive=0.0)


class TestDetectionType:
    def test_geometry_helpers(self):
        det = Detection(bbox=(10, 20, 30, 60), label="person", score=0.9)
        assert det.width() == 20
        assert det.height() == 40
        assert det.area() == 800

    def test_crop(self):
        image = np.arange(100, dtype=np.uint8).reshape(10, 10, 1).repeat(3, axis=2)
        det = Detection(bbox=(2, 3, 5, 7), label="vehicle", score=1.0)
        assert det.crop(image).shape == (4, 3, 3)

    def test_iou(self):
        a = (0, 0, 10, 10)
        assert iou(a, a) == 1.0
        assert iou(a, (10, 10, 20, 20)) == 0.0
        assert iou(a, (5, 0, 15, 10)) == pytest.approx(1 / 3)


class TestSyntheticSSD:
    def test_detects_all_objects_noise_free(self):
        scene = traffic_scene()
        frame = Renderer(scene, seed=2).render(1)
        detections = SyntheticSSD(noise=NO_NOISE).process(frame)
        truth = scene.ground_truth(1)
        assert len(detections) == len(truth)
        for gt in truth:
            best = max(iou(gt.bbox, det.bbox) for det in detections)
            assert best > 0.7

    def test_labels_match_categories(self):
        scene = traffic_scene()
        frame = Renderer(scene, seed=2).render(0)
        detections = SyntheticSSD(noise=NO_NOISE).process(frame)
        truth = {gt.bbox: gt.category for gt in scene.ground_truth(0)}
        matched = 0
        for det in detections:
            for gt_box, category in truth.items():
                if iou(det.bbox, gt_box) > 0.7:
                    assert det.label == category
                    matched += 1
        assert matched == len(truth)

    def test_empty_scene_no_detections(self):
        scene = Scene(160, 120, 1)
        frame = Renderer(scene, seed=2).render(0)
        assert SyntheticSSD(noise=NO_NOISE).process(frame) == []

    def test_deterministic_with_noise(self):
        scene = traffic_scene()
        frame = Renderer(scene, seed=2).render(0)
        ssd = SyntheticSSD(noise=DetectorNoise(seed=5))
        assert ssd.process(frame) == ssd.process(frame)

    def test_mislabeling_rate_nonzero(self):
        # with an aggressive mislabel rate, some labels flip vs the clean run
        scene = traffic_scene(n_frames=12, n_vehicles=3, n_persons=3)
        renderer = Renderer(scene, seed=2)
        clean = SyntheticSSD(noise=NO_NOISE)
        noisy = SyntheticSSD(noise=DetectorNoise(p_mislabel=0.5, seed=11))
        flips = 0
        for idx in range(scene.n_frames):
            frame = renderer.render(idx)
            clean_dets = {d.bbox: d.label for d in clean.process(frame)}
            for det in noisy.process(frame):
                if det.bbox in clean_dets and det.label != clean_dets[det.bbox]:
                    flips += 1
        assert flips > 0

    def test_misses_tiny_objects(self):
        # an object far away projects below min_area and is organically missed
        scene = Scene(320, 180, 1)
        tiny = SceneObject("far-ped", "person", (200, 30, 30))
        tiny.states = linear_states(
            scene.camera, 320, range(1),
            depth0=200, depth1=200, lateral0=0, lateral1=0,
            real_width=0.55, real_height=1.75,
        )
        scene.add(tiny)
        frame = Renderer(scene, seed=2).render(0)
        assert SyntheticSSD(noise=NO_NOISE).process(frame) == []

    def test_charges_device(self):
        device = get_device("gpu")
        scene = traffic_scene()
        frame = Renderer(scene, seed=2).render(0)
        SyntheticSSD(device=device, noise=NO_NOISE).process(frame)
        assert device.clock.elapsed > 0


class TestTemplateOCR:
    def make_text_patch(self, text, scale=2, fg=(20, 20, 20), bg=230):
        width = (len(text) * 6 + 4) * scale + 8
        canvas = np.full((7 * scale + 12, width, 3), bg, dtype=np.uint8)
        stamp_text(canvas, text, 4, 6, scale=scale, color=fg)
        return canvas

    @pytest.mark.parametrize("text", ["HELLO", "42", "PLAY 7", "X9"])
    def test_reads_clean_text(self, text):
        result = TemplateOCR().process(self.make_text_patch(text))
        assert result.text == text

    def test_reads_light_on_dark(self):
        patch = self.make_text_patch("88", fg=(240, 240, 240), bg=30)
        assert TemplateOCR().process(patch).text == "88"

    def test_blank_patch_empty(self):
        patch = np.full((20, 40, 3), 128, dtype=np.uint8)
        result = TemplateOCR().process(patch)
        assert result.text == ""
        assert result.confidence == 0.0

    def test_multiline(self):
        canvas = np.full((46, 120, 3), 235, dtype=np.uint8)
        stamp_text(canvas, "AB", 4, 4, scale=2, color=(20, 20, 20))
        stamp_text(canvas, "CD", 4, 26, scale=2, color=(20, 20, 20))
        result = TemplateOCR().process(canvas)
        assert result.text == "AB\nCD"
        assert result.n_lines == 2

    def test_tokens(self):
        result = TemplateOCR().process(self.make_text_patch("TO BE"))
        assert result.tokens() == ["TO", "BE"]

    def test_degrades_with_heavy_compression(self):
        from repro.storage.codecs import decode_image, encode_image

        patch = self.make_text_patch("HELLO 42", scale=1)
        ocr = TemplateOCR()
        crushed = decode_image(encode_image(patch, 5), 5)
        clean_conf = ocr.process(patch).confidence
        crushed_result = ocr.process(crushed)
        assert (
            crushed_result.text != "HELLO 42"
            or crushed_result.confidence < clean_conf
        )

    def test_confidence_in_unit_interval(self):
        result = TemplateOCR().process(self.make_text_patch("ABC"))
        assert 0.0 < result.confidence <= 1.0


class TestMonocularDepth:
    def test_estimates_close_to_truth(self):
        scene = traffic_scene()
        model = MonocularDepth(scene.camera, noise_sigma=0.0)
        for gt in scene.ground_truth(0):
            estimate = model.estimate(gt.bbox)
            assert estimate == pytest.approx(gt.depth, rel=0.25)

    def test_ordering_preserved(self):
        # the property q6 actually needs: farther pedestrian = larger estimate
        scene = traffic_scene(n_persons=2, n_vehicles=0)
        model = MonocularDepth(scene.camera, noise_sigma=0.03)
        truth = sorted(scene.ground_truth(0), key=lambda g: g.depth)
        estimates = [model.estimate(g.bbox) for g in truth]
        assert estimates == sorted(estimates)

    def test_deterministic(self):
        cam = Camera(horizon_y=45, focal=216, cam_height=5)
        model = MonocularDepth(cam, seed=3)
        assert model.estimate((10, 60, 20, 90)) == model.estimate((10, 60, 20, 90))

    def test_patch_only_path(self):
        cam = Camera(horizon_y=45, focal=216, cam_height=5)
        model = MonocularDepth(cam, noise_sigma=0.0)
        patch = np.zeros((36, 12, 3), dtype=np.uint8)
        # scale cue: depth = focal * 1.7 / 36
        assert model.process(patch) == pytest.approx(216 * 1.7 / 36, rel=1e-6)


class TestTinyEmbedder:
    def test_unit_norm(self):
        embedder = TinyEmbedder(dim=32)
        patch = np.random.default_rng(0).integers(0, 255, (40, 30, 3), dtype=np.uint8)
        vec = embedder.process(patch)
        assert vec.shape == (32,)
        assert np.linalg.norm(vec) == pytest.approx(1.0)

    def test_deterministic_given_seed(self):
        patch = np.random.default_rng(1).integers(0, 255, (24, 24, 3), dtype=np.uint8)
        a = TinyEmbedder(dim=16, seed=9).process(patch)
        b = TinyEmbedder(dim=16, seed=9).process(patch)
        np.testing.assert_array_equal(a, b)

    def test_near_duplicates_closer_than_distinct(self):
        rng = np.random.default_rng(2)
        base = rng.integers(0, 255, (40, 40, 3)).astype(np.uint8)
        near = np.clip(
            base.astype(int) + rng.integers(-6, 6, base.shape), 0, 255
        ).astype(np.uint8)
        other = rng.integers(0, 255, (40, 40, 3)).astype(np.uint8)
        embedder = TinyEmbedder(dim=32)
        e_base, e_near, e_other = (
            embedder.process(base), embedder.process(near), embedder.process(other),
        )
        assert np.linalg.norm(e_base - e_near) < np.linalg.norm(e_base - e_other)

    def test_batch_matches_single(self):
        rng = np.random.default_rng(3)
        patches = [rng.integers(0, 255, (20, 25, 3)).astype(np.uint8) for _ in range(4)]
        embedder = TinyEmbedder(dim=16)
        batch = embedder.embed_batch(patches)
        for idx, patch in enumerate(patches):
            np.testing.assert_allclose(batch[idx], embedder.process(patch))

    def test_empty_batch(self):
        assert TinyEmbedder(dim=8).embed_batch([]).shape == (0, 8)

    def test_grayscale_and_tiny_patches(self):
        embedder = TinyEmbedder(dim=8)
        assert embedder.process(np.zeros((5, 5), dtype=np.uint8)).shape == (8,)
        assert embedder.process(np.zeros((1, 1, 3), dtype=np.uint8)).shape == (8,)

    def test_gpu_batch_cheaper_per_item_than_per_patch(self):
        rng = np.random.default_rng(4)
        patches = [rng.integers(0, 255, (20, 20, 3)).astype(np.uint8) for _ in range(16)]
        batched_device = get_device("gpu")
        TinyEmbedder(device=batched_device, dim=16).embed_batch(patches)
        serial_device = get_device("gpu")
        embedder = TinyEmbedder(device=serial_device, dim=16)
        for patch in patches:
            embedder.process(patch)
        assert batched_device.clock.elapsed < serial_device.clock.elapsed
