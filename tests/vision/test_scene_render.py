"""Tests for the scene model, camera geometry, glyphs, and renderer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DatasetError, DeepLensError
from repro.vision import Camera, Renderer, Scene, SceneObject
from repro.vision.glyphs import ALPHABET, glyph_bitmap, stamp_text, text_bitmap
from repro.vision.scene import ObjectState, linear_states


def simple_scene(n_frames=3, width=160, height=120):
    scene = Scene(width=width, height=height, n_frames=n_frames)
    vehicle = SceneObject("veh-1", "vehicle", (210, 40, 40))
    vehicle.states = linear_states(
        scene.camera, width, range(n_frames),
        depth0=10, depth1=9, lateral0=-2, lateral1=-1,
        real_width=4.0, real_height=1.6,
    )
    scene.add(vehicle)
    return scene


class TestCamera:
    def test_projection_shrinks_with_depth(self):
        cam = Camera(horizon_y=30, focal=150, cam_height=5)
        _, _, w_near, h_near = cam.place(10, 0, 4, 1.6, 320)
        _, _, w_far, h_far = cam.place(30, 0, 4, 1.6, 320)
        assert w_far < w_near
        assert h_far < h_near

    def test_foot_line_inverts_projection(self):
        cam = Camera(horizon_y=30, focal=150, cam_height=5)
        for depth in (5.0, 12.0, 40.0):
            _, cy, _, h = cam.place(depth, 0, 0.5, 1.7, 320)
            y_bottom = cy + h / 2
            assert cam.depth_from_foot(y_bottom) == pytest.approx(depth)

    def test_rejects_nonpositive_depth(self):
        cam = Camera(horizon_y=30, focal=150, cam_height=5)
        with pytest.raises(DatasetError, match="positive"):
            cam.place(0, 0, 1, 1, 320)

    def test_rejects_above_horizon_foot(self):
        cam = Camera(horizon_y=30, focal=150, cam_height=5)
        with pytest.raises(DatasetError, match="horizon"):
            cam.depth_from_foot(20)

    @given(st.floats(min_value=2.0, max_value=80.0))
    @settings(max_examples=50)
    def test_roundtrip_depth_any(self, depth):
        cam = Camera(horizon_y=45, focal=216, cam_height=5)
        _, cy, _, h = cam.place(depth, 0, 0.5, 1.7, 320)
        assert cam.depth_from_foot(cy + h / 2) == pytest.approx(depth, rel=1e-9)


class TestScene:
    def test_painter_order_far_first(self):
        scene = Scene(160, 120, 1)
        near = SceneObject("a", "vehicle", (200, 0, 0))
        near.states = {0: ObjectState(0, 50, 60, 20, 10, depth=5.0)}
        far = SceneObject("b", "vehicle", (0, 0, 200))
        far.states = {0: ObjectState(0, 50, 60, 20, 10, depth=50.0)}
        scene.add(near)
        scene.add(far)
        order = [obj.object_id for obj, _ in scene.objects_at(0)]
        assert order == ["b", "a"]

    def test_ground_truth_clips_to_frame(self):
        scene = Scene(100, 100, 1)
        obj = SceneObject("edge", "person", (0, 200, 0))
        obj.states = {0: ObjectState(0, 2, 50, 20, 30, depth=10.0)}
        scene.add(obj)
        (box,) = scene.ground_truth(0)
        assert box.bbox[0] == 0
        assert box.bbox[2] > 0

    def test_offscreen_object_excluded(self):
        scene = Scene(100, 100, 1)
        obj = SceneObject("gone", "person", (0, 200, 0))
        obj.states = {0: ObjectState(0, -50, 50, 20, 30, depth=10.0)}
        scene.add(obj)
        assert scene.ground_truth(0) == []

    def test_rejects_bad_dimensions(self):
        with pytest.raises(DatasetError):
            Scene(0, 100, 10)

    def test_all_ground_truth_covers_frames(self):
        scene = simple_scene(n_frames=4)
        frames = {box.frame for box in scene.all_ground_truth()}
        assert frames == {0, 1, 2, 3}


class TestGlyphs:
    def test_bitmap_shape(self):
        assert glyph_bitmap("A").shape == (7, 5)

    def test_distinct_glyphs(self):
        assert not np.array_equal(glyph_bitmap("0"), glyph_bitmap("8"))

    def test_unknown_char_raises(self):
        with pytest.raises(DeepLensError, match="glyph font"):
            glyph_bitmap("@")

    def test_lowercase_maps_to_upper(self):
        np.testing.assert_array_equal(glyph_bitmap("a"), glyph_bitmap("A"))

    def test_text_bitmap_width(self):
        assert text_bitmap("AB").shape == (7, 11)  # 5 + 1 + 5
        assert text_bitmap("").shape == (7, 0)

    def test_stamp_clips_at_edges(self):
        canvas = np.zeros((10, 10, 3), dtype=np.float64)
        box = stamp_text(canvas, "88", x=7, y=8, color=(255, 255, 255))
        assert box[2] <= 10 and box[3] <= 10
        assert canvas.max() == 255

    def test_stamp_fully_outside_is_noop(self):
        canvas = np.zeros((10, 10, 3), dtype=np.float64)
        stamp_text(canvas, "8", x=50, y=50)
        assert canvas.max() == 0

    def test_alphabet_all_renderable(self):
        for char in ALPHABET:
            assert glyph_bitmap(char).shape == (7, 5)


class TestRenderer:
    def test_deterministic(self):
        scene = simple_scene()
        a = Renderer(scene, seed=3).render(1)
        b = Renderer(scene, seed=3).render(1)
        np.testing.assert_array_equal(a, b)

    def test_static_background_between_frames(self):
        # frames differ only where objects moved: top-left corner is empty
        scene = simple_scene()
        renderer = Renderer(scene, seed=3)
        f0, f1 = renderer.render(0), renderer.render(1)
        np.testing.assert_array_equal(f0[:20, :20], f1[:20, :20])

    def test_object_pixels_saturated(self):
        scene = simple_scene()
        frame = Renderer(scene, seed=3).render(0).astype(np.int16)
        (gt,) = scene.ground_truth(0)
        x1, y1, x2, y2 = gt.bbox
        body = frame[(y1 + y2) // 2, (x1 + x2) // 2]
        assert body.max() - body.min() > 60

    def test_background_unsaturated(self):
        scene = Scene(160, 120, 1)
        frame = Renderer(scene, seed=3).render(0).astype(np.int16)
        saturation = frame.max(axis=2) - frame.min(axis=2)
        assert saturation.mean() < 25

    def test_render_all_yields_n_frames(self):
        scene = simple_scene(n_frames=5)
        frames = list(Renderer(scene).render_all())
        assert len(frames) == 5

    def test_temporal_noise_changes_frames(self):
        scene = Scene(64, 48, 2)
        renderer = Renderer(scene, seed=3, temporal_noise=2.0)
        assert not np.array_equal(renderer.render(0), renderer.render(1))

    def test_occlusion_near_wins(self):
        scene = Scene(100, 100, 1)
        far = SceneObject("far", "vehicle", (0, 0, 220))
        far.states = {0: ObjectState(0, 50, 52, 40, 20, depth=30.0)}
        near = SceneObject("near", "vehicle", (220, 0, 0))
        near.states = {0: ObjectState(0, 50, 52, 40, 20, depth=5.0)}
        scene.add(far)
        scene.add(near)
        frame = Renderer(scene, seed=0).render(0)
        center = frame[52, 50]
        assert center[0] > center[2]  # red (near) on top
