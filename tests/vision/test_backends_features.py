"""Tests for device cost models, compute kernels, and featurizers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import DeviceError, ETLError
from repro.vision.backends import kernels
from repro.vision.backends.device import DEVICE_SPECS, get_device
from repro.vision.features import (
    color_histogram,
    gradient_histogram,
    histogram_distance,
    marginal_histogram,
)


class TestDeviceModel:
    def test_get_device_names(self):
        for name in ("cpu", "avx", "gpu"):
            assert get_device(name).name == name

    def test_unknown_device(self):
        with pytest.raises(DeviceError, match="unknown device"):
            get_device("tpu")

    def test_clock_accumulates(self):
        device = get_device("cpu")
        device.execute(lambda: 1, flops=1.5e9)
        assert device.clock.elapsed == pytest.approx(1.0)
        device.execute(lambda: 1, flops=1.5e9)
        assert device.clock.elapsed == pytest.approx(2.0)

    def test_clock_reset(self):
        device = get_device("avx")
        device.execute(lambda: 1, flops=24e9)
        assert device.clock.reset() == pytest.approx(1.0)
        assert device.clock.elapsed == 0.0

    def test_avx_faster_than_cpu(self):
        flops = 1e9
        assert get_device("avx").cost(flops) < get_device("cpu").cost(flops)

    def test_gpu_wins_big_kernels_loses_small(self):
        gpu, avx = get_device("gpu"), get_device("avx")
        big = dict(flops=50e9, bytes_in=10_000_000, kernels=1)
        small = dict(flops=1e6, bytes_in=1_000, kernels=50)
        assert gpu.cost(**big) < avx.cost(**big)
        assert gpu.cost(**small) > avx.cost(**small)

    def test_transfer_only_charged_on_gpu(self):
        flops = 1e9
        avx_base = get_device("avx").cost(flops)
        avx_heavy = get_device("avx").cost(flops, bytes_in=10**9)
        assert avx_base == avx_heavy
        gpu_base = get_device("gpu").cost(flops)
        gpu_heavy = get_device("gpu").cost(flops, bytes_in=10**9)
        assert gpu_heavy > gpu_base

    def test_session_overhead(self):
        device = get_device("gpu")
        device.open_session()
        assert device.clock.elapsed == DEVICE_SPECS["gpu"].session_overhead_seconds

    def test_negative_charge_rejected(self):
        device = get_device("cpu")
        with pytest.raises(DeviceError):
            device.clock.charge(-1.0)

    def test_execute_returns_result(self):
        assert get_device("avx").execute(lambda: 42, flops=1) == 42


class TestKernels:
    def test_matmul_matches_numpy(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(7, 5)), rng.normal(size=(5, 3))
        np.testing.assert_allclose(kernels.matmul(get_device("avx"), a, b), a @ b)

    def test_matmul_shape_check(self):
        with pytest.raises(DeviceError, match="mismatch"):
            kernels.matmul(get_device("avx"), np.zeros((2, 3)), np.zeros((4, 2)))

    def test_conv2d_matches_reference(self):
        rng = np.random.default_rng(1)
        images = rng.normal(size=(2, 9, 8, 3))
        weights = rng.normal(size=(3, 3, 3, 4))
        fast = kernels.conv2d(get_device("avx"), images, weights, stride=2)
        slow = kernels.conv2d_reference(images, weights, stride=2)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_conv2d_channel_mismatch(self):
        with pytest.raises(DeviceError, match="channel"):
            kernels.conv2d(
                get_device("avx"), np.zeros((1, 8, 8, 3)), np.zeros((3, 3, 4, 2))
            )

    def test_conv2d_kernel_too_large(self):
        with pytest.raises(DeviceError, match="larger"):
            kernels.conv2d(
                get_device("avx"), np.zeros((1, 2, 2, 1)), np.zeros((3, 3, 1, 1))
            )

    def test_pairwise_matches_reference(self):
        rng = np.random.default_rng(2)
        left, right = rng.normal(size=(6, 4)), rng.normal(size=(5, 4))
        fast = kernels.pairwise_sq_dists(get_device("avx"), left, right)
        slow = kernels.pairwise_sq_dists_reference(left, right)
        np.testing.assert_allclose(fast, slow, atol=1e-10)

    def test_pairwise_never_negative(self):
        x = np.ones((3, 2))
        dists = kernels.pairwise_sq_dists(get_device("avx"), x, x)
        assert (dists >= 0).all()

    def test_pairwise_kernel_batching_charges_more_on_gpu(self):
        rng = np.random.default_rng(3)
        left, right = rng.normal(size=(256, 8)), rng.normal(size=(64, 8))
        one_launch = get_device("gpu")
        kernels.pairwise_sq_dists(one_launch, left, right)
        many_launches = get_device("gpu")
        kernels.pairwise_sq_dists(many_launches, left, right, rows_per_kernel=1)
        assert many_launches.clock.elapsed > one_launch.clock.elapsed

    def test_relu(self):
        x = np.array([-1.0, 0.0, 2.0])
        np.testing.assert_array_equal(
            kernels.relu(get_device("avx"), x), [0.0, 0.0, 2.0]
        )

    def test_avg_pool_to(self):
        maps = np.arange(16, dtype=np.float64).reshape(1, 4, 4, 1)
        pooled = kernels.avg_pool_to(get_device("avx"), maps, 2, 2)
        np.testing.assert_allclose(pooled[0, :, :, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_avg_pool_upscale_rejected(self):
        with pytest.raises(DeviceError, match="pool"):
            kernels.avg_pool_to(get_device("avx"), np.zeros((1, 2, 2, 1)), 4, 4)

    def test_resize_mean_shapes(self):
        image = np.random.default_rng(4).normal(size=(15, 9, 3))
        assert kernels.resize_mean(image, 7, 5).shape == (7, 5, 3)
        gray = np.random.default_rng(4).normal(size=(15, 9))
        assert kernels.resize_mean(gray, 4, 4).shape == (4, 4)

    def test_resize_mean_preserves_mean(self):
        image = np.full((16, 16), 7.0)
        np.testing.assert_allclose(kernels.resize_mean(image, 4, 4), 7.0)


class TestFeatures:
    def test_color_histogram_shape_and_norm(self):
        patch = np.random.default_rng(0).integers(0, 255, (20, 20, 3), np.uint8)
        hist = color_histogram(patch, bins=4)
        assert hist.shape == (64,)
        assert np.sum(hist**2) == pytest.approx(1.0)

    def test_marginal_histogram_shape(self):
        patch = np.random.default_rng(0).integers(0, 255, (20, 20, 3), np.uint8)
        assert marginal_histogram(patch, bins=8).shape == (24,)

    def test_identical_patches_zero_distance(self):
        patch = np.random.default_rng(1).integers(0, 255, (16, 16, 3), np.uint8)
        assert histogram_distance(
            color_histogram(patch), color_histogram(patch)
        ) == pytest.approx(0.0)

    def test_different_colors_far(self):
        red = np.zeros((8, 8, 3), np.uint8)
        red[:, :, 0] = 250
        blue = np.zeros((8, 8, 3), np.uint8)
        blue[:, :, 2] = 250
        assert histogram_distance(color_histogram(red), color_histogram(blue)) > 1.0

    def test_histogram_scale_invariance(self):
        # same colour distribution at different sizes -> same histogram
        patch = np.zeros((8, 8, 3), np.uint8)
        patch[:4] = (200, 30, 30)
        patch[4:] = (30, 30, 200)
        big = np.kron(patch, np.ones((4, 4, 1))).astype(np.uint8)
        np.testing.assert_allclose(
            color_histogram(patch), color_histogram(big), atol=1e-12
        )

    def test_rejects_bad_bins(self):
        patch = np.zeros((4, 4, 3), np.uint8)
        with pytest.raises(ETLError):
            color_histogram(patch, bins=1)
        with pytest.raises(ETLError):
            marginal_histogram(patch, bins=100)

    def test_rejects_empty_patch(self):
        with pytest.raises(ETLError):
            color_histogram(np.zeros((0, 4, 3), np.uint8))

    def test_grayscale_promoted(self):
        gray = np.full((8, 8), 100, np.uint8)
        assert color_histogram(gray).shape == (64,)

    def test_gradient_histogram_shape_and_norm(self):
        patch = np.random.default_rng(2).integers(0, 255, (24, 24, 3), np.uint8)
        descriptor = gradient_histogram(patch, grid=2, orientations=8)
        assert descriptor.shape == (32,)
        assert np.linalg.norm(descriptor) == pytest.approx(1.0)

    def test_gradient_flat_patch_zero(self):
        flat = np.full((16, 16), 80, np.uint8)
        descriptor = gradient_histogram(flat)
        assert np.linalg.norm(descriptor) == 0.0

    def test_gradient_distinguishes_orientation(self):
        yy, xx = np.mgrid[0:16, 0:16]
        horizontal = (xx * 16).astype(np.uint8)
        vertical = (yy * 16).astype(np.uint8)
        dist = np.linalg.norm(
            gradient_histogram(horizontal) - gradient_histogram(vertical)
        )
        assert dist > 0.5

    def test_gradient_rejects_tiny(self):
        with pytest.raises(ETLError, match="smaller"):
            gradient_histogram(np.zeros((1, 1), np.uint8), grid=2)

    @given(st.integers(2, 8))
    @settings(max_examples=10, deadline=None)
    def test_histogram_dims_scale_with_bins(self, bins):
        patch = np.zeros((6, 6, 3), np.uint8)
        assert color_histogram(patch, bins=bins).shape == (bins**3,)
