"""Tests for Ball-tree, R-tree, LSH, and the single-dimensional indexes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.indexes import (
    BallTree,
    BTreeIndex,
    HashIndex,
    RandomHyperplaneLSH,
    RTree,
    SortedFileIndex,
    rect_from_bbox,
)
from repro.storage.kvstore import Pager


def brute_radius(points, query, radius):
    dists = np.sqrt(((points - query) ** 2).sum(axis=1))
    return set(np.flatnonzero(dists <= radius).tolist())


class TestBallTree:
    def test_radius_matches_brute_force(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(500, 8))
        tree = BallTree(points, leaf_size=8)
        for _ in range(20):
            query = rng.normal(size=8)
            expected = brute_radius(points, query, 1.5)
            assert set(tree.query_radius(query, 1.5)) == expected

    def test_knn_matches_brute_force(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(300, 6))
        tree = BallTree(points, leaf_size=4)
        query = rng.normal(size=6)
        dists = np.sqrt(((points - query) ** 2).sum(axis=1))
        expected = set(np.argsort(dists)[:7].tolist())
        got = {row for _, row in tree.query_knn(query, 7)}
        assert got == expected

    def test_knn_sorted_ascending(self):
        rng = np.random.default_rng(2)
        tree = BallTree(rng.normal(size=(100, 4)))
        result = tree.query_knn(rng.normal(size=4), 5)
        dists = [dist for dist, _ in result]
        assert dists == sorted(dists)

    def test_custom_ids(self):
        points = np.array([[0.0, 0.0], [10.0, 10.0]])
        tree = BallTree(points, ids=["a", "b"])
        assert tree.query_radius([0.1, 0.1], 1.0) == ["a"]

    def test_duplicate_points(self):
        points = np.zeros((50, 3))
        tree = BallTree(points, leaf_size=4)
        assert len(tree.query_radius(np.zeros(3), 0.0)) == 50

    def test_zero_radius_exact_match(self):
        points = np.array([[1.0, 2.0], [3.0, 4.0]])
        tree = BallTree(points)
        assert tree.query_radius([1.0, 2.0], 0.0) == [0]

    def test_rejects_empty(self):
        with pytest.raises(IndexError_, match="zero points"):
            BallTree(np.zeros((0, 4)))

    def test_rejects_bad_query_dim(self):
        tree = BallTree(np.zeros((3, 4)))
        with pytest.raises(IndexError_, match="dim"):
            tree.query_radius(np.zeros(3), 1.0)

    def test_rejects_negative_radius(self):
        tree = BallTree(np.zeros((3, 2)))
        with pytest.raises(IndexError_, match="non-negative"):
            tree.query_radius(np.zeros(2), -1.0)

    def test_rejects_bad_k(self):
        tree = BallTree(np.zeros((3, 2)))
        with pytest.raises(IndexError_, match="k must be"):
            tree.query_knn(np.zeros(2), 0)

    def test_id_count_mismatch(self):
        with pytest.raises(IndexError_, match="ids"):
            BallTree(np.zeros((3, 2)), ids=["only-one"])

    @given(
        st.integers(min_value=1, max_value=200),
        st.integers(min_value=1, max_value=16),
        st.floats(min_value=0.0, max_value=3.0),
    )
    @settings(max_examples=25, deadline=None)
    def test_radius_property(self, n, dim, radius):
        rng = np.random.default_rng(n * 31 + dim)
        points = rng.normal(size=(n, dim))
        tree = BallTree(points, leaf_size=5)
        query = rng.normal(size=dim)
        assert set(tree.query_radius(query, radius)) == brute_radius(
            points, query, radius
        )


def brute_intersect(rects, query):
    out = set()
    for idx, (mins, maxs) in enumerate(rects):
        if all(
            lo <= q_hi and q_lo <= hi
            for lo, hi, q_lo, q_hi in zip(mins, maxs, query[0], query[1])
        ):
            out.add(idx)
    return out


class TestRTree:
    def _random_rects(self, rng, n, dim=2, extent=100.0):
        rects = []
        for _ in range(n):
            mins = rng.uniform(0, extent, size=dim)
            sizes = rng.uniform(0.5, extent / 10, size=dim)
            rects.append((tuple(mins), tuple(mins + sizes)))
        return rects

    def test_intersect_matches_brute_force(self):
        rng = np.random.default_rng(3)
        rects = self._random_rects(rng, 400)
        tree = RTree(max_entries=8)
        for idx, rect in enumerate(rects):
            tree.insert(rect, idx)
        for _ in range(20):
            query = self._random_rects(rng, 1)[0]
            assert set(tree.search_intersect(query)) == brute_intersect(rects, query)

    def test_bulk_load_matches_inserts(self):
        rng = np.random.default_rng(4)
        rects = self._random_rects(rng, 300)
        inserted = RTree()
        for idx, rect in enumerate(rects):
            inserted.insert(rect, idx)
        bulk = RTree()
        bulk.bulk_load(list(zip(rects, range(len(rects)))))
        assert len(bulk) == len(inserted) == 300
        query = ((20.0, 20.0), (60.0, 60.0))
        assert set(bulk.search_intersect(query)) == set(
            inserted.search_intersect(query)
        )

    def test_containment(self):
        tree = RTree()
        tree.insert(((1, 1), (2, 2)), "inside")
        tree.insert(((0, 0), (10, 10)), "outside")
        assert tree.search_contained_in(((0, 0), (5, 5))) == ["inside"]

    def test_point_query(self):
        tree = RTree()
        tree.insert(((0, 0), (5, 5)), "a")
        tree.insert(((10, 10), (20, 20)), "b")
        assert tree.search_point((3, 3)) == ["a"]
        assert tree.search_point((7, 7)) == []

    def test_higher_dimensions(self):
        rng = np.random.default_rng(5)
        rects = self._random_rects(rng, 150, dim=6)
        tree = RTree(max_entries=8)
        for idx, rect in enumerate(rects):
            tree.insert(rect, idx)
        query = self._random_rects(rng, 1, dim=6)[0]
        assert set(tree.search_intersect(query)) == brute_intersect(rects, query)

    def test_empty_tree_queries(self):
        tree = RTree()
        assert tree.search_intersect(((0, 0), (1, 1))) == []

    def test_rect_from_bbox(self):
        assert rect_from_bbox((5, 7, 2, 3)) == ((2.0, 3.0), (5.0, 7.0))

    def test_rejects_min_gt_max(self):
        tree = RTree()
        with pytest.raises(IndexError_, match="min > max"):
            tree.insert(((5, 5), (1, 1)), "bad")

    def test_rejects_dim_mismatch(self):
        tree = RTree()
        tree.insert(((0, 0), (1, 1)), "2d")
        with pytest.raises(IndexError_, match="dims"):
            tree.insert(((0, 0, 0), (1, 1, 1)), "3d")

    def test_height_grows(self):
        tree = RTree(max_entries=4)
        rng = np.random.default_rng(6)
        for idx, rect in enumerate(self._random_rects(rng, 200)):
            tree.insert(rect, idx)
        assert tree.height() >= 3

    def test_duplicates_allowed(self):
        tree = RTree()
        rect = ((0, 0), (1, 1))
        tree.insert(rect, "a")
        tree.insert(rect, "b")
        assert set(tree.search_intersect(rect)) == {"a", "b"}


class TestLSH:
    def test_exact_duplicates_always_candidates(self):
        rng = np.random.default_rng(7)
        lsh = RandomHyperplaneLSH(dim=16, n_tables=4, n_bits=8, seed=1)
        vectors = rng.normal(size=(50, 16))
        for idx, vec in enumerate(vectors):
            lsh.insert(vec, idx)
        for idx, vec in enumerate(vectors):
            assert idx in lsh.candidates(vec)

    def test_near_neighbors_usually_found(self):
        rng = np.random.default_rng(8)
        lsh = RandomHyperplaneLSH(dim=32, n_tables=12, n_bits=8, seed=2)
        base = rng.normal(size=(100, 32))
        for idx, vec in enumerate(base):
            lsh.insert(vec, idx)
        found = 0
        for idx in range(100):
            probe = base[idx] + rng.normal(0, 0.01, size=32)
            if idx in lsh.candidates(probe):
                found += 1
        assert found >= 90

    def test_candidates_shrink_with_more_bits(self):
        rng = np.random.default_rng(9)
        vectors = rng.normal(size=(400, 16))
        few_bits = RandomHyperplaneLSH(dim=16, n_tables=2, n_bits=4, seed=3)
        many_bits = RandomHyperplaneLSH(dim=16, n_tables=2, n_bits=16, seed=3)
        for idx, vec in enumerate(vectors):
            few_bits.insert(vec, idx)
            many_bits.insert(vec, idx)
        query = rng.normal(size=16)
        assert len(many_bits.candidates(query)) <= len(few_bits.candidates(query))

    def test_rejects_bad_params(self):
        with pytest.raises(IndexError_):
            RandomHyperplaneLSH(dim=0)
        with pytest.raises(IndexError_):
            RandomHyperplaneLSH(dim=4, n_bits=99)

    def test_rejects_wrong_dim_vector(self):
        lsh = RandomHyperplaneLSH(dim=4)
        with pytest.raises(IndexError_, match="dim"):
            lsh.insert(np.zeros(5), "x")


class TestSingleDimIndexes:
    def test_hash_index(self, tmp_path):
        with Pager(tmp_path / "idx.db") as pager:
            index = HashIndex(pager, "labels")
            index.insert("car", 1)
            index.insert("car", 2)
            index.insert("person", 3)
            assert sorted(index.lookup("car")) == [1, 2]
            assert index.lookup("bus") == []
            assert len(index) == 3

    def test_hash_index_no_range(self, tmp_path):
        with Pager(tmp_path / "idx.db") as pager:
            index = HashIndex(pager, "labels")
            with pytest.raises(IndexError_, match="range"):
                list(index.range(1, 2))

    def test_btree_index_range(self, tmp_path):
        with Pager(tmp_path / "idx.db") as pager:
            index = BTreeIndex(pager, "frameno")
            for frame in range(50):
                index.insert(frame, frame * 10)
            hits = list(index.range(10, 12))
            assert hits == [(10, 100), (11, 110), (12, 120)]

    def test_btree_bulk_load(self, tmp_path):
        with Pager(tmp_path / "idx.db") as pager:
            index = BTreeIndex(pager, "frameno")
            index.bulk_load([(i, i) for i in range(100)])
            assert index.lookup(42) == [42]

    def test_btree_delete(self, tmp_path):
        with Pager(tmp_path / "idx.db") as pager:
            index = BTreeIndex(pager, "x")
            index.insert(1, 10)
            index.insert(1, 11)
            assert index.delete(1, 10) == 1
            assert index.lookup(1) == [11]

    def test_sorted_file_index(self, tmp_path):
        index = SortedFileIndex(tmp_path / "sorted.idx")
        index.bulk_build([(3, 30), (1, 10), (2, 20)])
        assert index.lookup(2) == [20]
        assert [key for key, _ in index.range(1, 2)] == [1, 2]
        index.close()

    def test_sorted_file_append_ordered(self, tmp_path):
        index = SortedFileIndex(tmp_path / "sorted.idx")
        index.append(1, 10)
        index.append(5, 50)
        assert index.lookup(5) == [50]
        index.close()
