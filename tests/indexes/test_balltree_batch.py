"""Property tests: batch Ball-tree probing is equivalent to single probes.

The batch probe (`query_radius_batch`) is the hot path of every similarity
join, so its equivalence with the straightforward per-query walk — and
with brute force — is checked across random sizes, dimensions, and radii.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import IndexError_
from repro.indexes import BallTree


class TestBatchEquivalence:
    @given(
        st.integers(min_value=1, max_value=300),
        st.integers(min_value=1, max_value=24),
        st.integers(min_value=1, max_value=40),
        st.floats(min_value=0.0, max_value=4.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_batch_equals_single(self, n, dim, n_queries, radius):
        rng = np.random.default_rng(n * 7 + dim * 13 + n_queries)
        points = rng.normal(size=(n, dim))
        tree = BallTree(points, leaf_size=7)
        queries = rng.normal(size=(n_queries, dim))
        batch = tree.query_radius_batch(queries, radius)
        for query, hits in zip(queries, batch):
            assert sorted(map(int, hits)) == sorted(
                map(int, tree.query_radius(query, radius))
            )

    @given(
        st.integers(min_value=2, max_value=150),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_equals_brute_force(self, n, dim):
        rng = np.random.default_rng(n * 31 + dim)
        points = rng.normal(size=(n, dim))
        queries = rng.normal(size=(8, dim))
        radius = 1.2
        tree = BallTree(points, leaf_size=5)
        batch = tree.query_radius_batch(queries, radius)
        dists = np.sqrt(
            ((queries[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        )
        for row, hits in enumerate(batch):
            expected = set(np.flatnonzero(dists[row] <= radius).tolist())
            assert set(map(int, hits)) == expected

    def test_batch_preserves_custom_ids(self):
        points = np.array([[0.0, 0.0], [5.0, 5.0]])
        tree = BallTree(points, ids=["near", "far"])
        (hits,) = tree.query_radius_batch(np.array([[0.1, 0.0]]), 1.0)
        assert hits == ["near"]

    def test_batch_shape_validation(self):
        tree = BallTree(np.zeros((4, 3)))
        with pytest.raises(IndexError_, match="queries"):
            tree.query_radius_batch(np.zeros((2, 5)), 1.0)
        with pytest.raises(IndexError_, match="non-negative"):
            tree.query_radius_batch(np.zeros((2, 3)), -0.5)

    def test_empty_query_batch(self):
        tree = BallTree(np.zeros((4, 3)))
        assert tree.query_radius_batch(np.zeros((0, 3)), 1.0) == []

    def test_self_probe_returns_every_point(self):
        rng = np.random.default_rng(3)
        points = rng.normal(size=(60, 6))
        tree = BallTree(points, leaf_size=4)
        batch = tree.query_radius_batch(points, 0.0)
        for row, hits in enumerate(batch):
            assert row in {int(h) for h in hits}
