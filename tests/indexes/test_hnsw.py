"""HNSW graph index: construction, search quality, and serialization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexes import HNSWIndex
from repro.indexes.hnsw import expected_recall


def brute_topk(points, ids, query, k):
    dists = np.sqrt(((points - query) ** 2).sum(axis=1))
    order = np.argsort(dists, kind="stable")[:k]
    return [ids[i] for i in order]


def clustered_points(rng, n, dim, clusters=6):
    centers = rng.normal(scale=8.0, size=(clusters, dim))
    assignment = rng.integers(0, clusters, size=n)
    return centers[assignment] + rng.normal(scale=0.6, size=(n, dim))


class TestBuildAndSearch:
    def test_search_returns_k_nearest_first(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(400, 16))
        index = HNSWIndex.build(points, list(range(400)), m=8, seed=3)
        query = rng.normal(size=16)
        result = index.search(query, 5)
        assert len(result) == 5
        dists = [d for d, _ in result]
        assert dists == sorted(dists)

    def test_high_ef_recovers_exact_topk(self):
        rng = np.random.default_rng(1)
        points = rng.normal(size=(300, 8))
        ids = [i * 7 for i in range(300)]
        index = HNSWIndex.build(points, ids, m=8, seed=5)
        query = rng.normal(size=8)
        got = [pid for _, pid in index.search(query, 10, ef=len(index))]
        assert got == brute_topk(points, ids, query, 10)

    def test_recall_on_clustered_embeddings(self):
        rng = np.random.default_rng(2)
        points = clustered_points(rng, 1500, 16)
        index = HNSWIndex.build(points, list(range(1500)), m=12, seed=0)
        hits = total = 0
        for _ in range(20):
            query = clustered_points(rng, 1, 16)[0]
            exact = set(brute_topk(points, list(range(1500)), query, 10))
            got = {pid for _, pid in index.search(query, 10, ef=80)}
            hits += len(exact & got)
            total += 10
        assert hits / total >= 0.9

    def test_membership_and_len(self):
        rng = np.random.default_rng(3)
        index = HNSWIndex.build(rng.normal(size=(50, 4)), list(range(50)))
        assert len(index) == 50
        assert 17 in index
        assert 99 not in index

    def test_incremental_add_is_searchable(self):
        rng = np.random.default_rng(4)
        index = HNSWIndex(4, m=6, seed=1)
        for i in range(100):
            index.add(rng.normal(size=4), i)
        target = np.array([50.0, 50.0, 50.0, 50.0])
        index.add(target, 1000)
        got = [pid for _, pid in index.search(target, 1)]
        assert got == [1000]

    def test_rejects_wrong_dim_and_duplicate_id(self):
        index = HNSWIndex(4)
        index.add(np.zeros(4), 0)
        with pytest.raises(Exception):
            index.add(np.zeros(3), 1)

    def test_stats_track_search_work(self):
        rng = np.random.default_rng(5)
        index = HNSWIndex.build(rng.normal(size=(200, 8)), list(range(200)))
        index.search(rng.normal(size=8), 5)
        assert index.last_stats["candidates"] > 0
        assert index.last_stats["hops"] > 0

    def test_params_normalized_and_reported(self):
        index = HNSWIndex(8, m=10, ef_construction=64, ef_search=33, seed=9)
        params = index.params()
        assert params["m"] == 10
        assert params["ef_search"] == 33


class TestDeterminismAndSerialization:
    def test_same_seed_same_graph(self):
        rng = np.random.default_rng(6)
        points = rng.normal(size=(200, 8))
        a = HNSWIndex.build(points, list(range(200)), m=8, seed=42)
        b = HNSWIndex.build(points, list(range(200)), m=8, seed=42)
        query = rng.normal(size=8)
        assert a.search(query, 10) == b.search(query, 10)

    def test_value_round_trip_preserves_results(self):
        rng = np.random.default_rng(7)
        points = rng.normal(size=(150, 6))
        index = HNSWIndex.build(points, list(range(150)), m=6, seed=2)
        clone = HNSWIndex.from_value(index.to_value())
        query = rng.normal(size=6)
        assert clone.search(query, 8) == index.search(query, 8)
        assert len(clone) == len(index)
        assert clone.params() == index.params()

    def test_from_value_rejects_inconsistent_snapshot(self):
        rng = np.random.default_rng(8)
        index = HNSWIndex.build(rng.normal(size=(30, 4)), list(range(30)))
        value = index.to_value()
        value["ids"] = value["ids"][:-1]  # torn snapshot
        with pytest.raises(ValueError):
            HNSWIndex.from_value(value)


class TestExpectedRecall:
    def test_monotone_in_ef(self):
        recalls = [expected_recall(ef, 10) for ef in (10, 20, 40, 80, 160)]
        assert recalls == sorted(recalls)
        assert 0.0 < recalls[0] <= recalls[-1] <= 1.0

    def test_huge_ef_saturates(self):
        assert expected_recall(10_000, 10) > 0.99


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    n=st.integers(80, 400),
    dim=st.sampled_from([4, 8, 16]),
    clustered=st.booleans(),
)
def test_recall_floor_property(seed, n, dim, clustered):
    """Recall@k against brute force stays above a floor across uniform
    and clustered embedding distributions — the index may be
    approximate, but never degenerate."""
    rng = np.random.default_rng(seed)
    points = (
        clustered_points(rng, n, dim)
        if clustered
        else rng.normal(size=(n, dim))
    )
    index = HNSWIndex.build(points, list(range(n)), m=8, seed=seed)
    k = 10
    query = points[rng.integers(0, n)] + rng.normal(scale=0.05, size=dim)
    exact = set(brute_topk(points, list(range(n)), query, k))
    got = {pid for _, pid in index.search(query, k, ef=64)}
    assert len(got) == k
    assert len(exact & got) / k >= 0.7
