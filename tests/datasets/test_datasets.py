"""Tests for the three synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import FootballDataset, PCDataset, TrafficCamDataset
from repro.datasets.words import WORDS, sample_sentence
from repro.errors import DatasetError


class TestTrafficCam:
    def test_deterministic(self):
        a = TrafficCamDataset(scale=0.002, seed=3)
        b = TrafficCamDataset(scale=0.002, seed=3)
        np.testing.assert_array_equal(a.frame(5), b.frame(5))

    def test_seed_changes_content(self):
        a = TrafficCamDataset(scale=0.002, seed=3)
        b = TrafficCamDataset(scale=0.002, seed=4)
        assert not np.array_equal(a.frame(5), b.frame(5))

    def test_scale_controls_frames(self):
        small = TrafficCamDataset(scale=0.001)
        large = TrafficCamDataset(scale=0.004)
        assert large.n_frames > small.n_frames

    def test_ground_truth_consistent_with_ids(self):
        dataset = TrafficCamDataset(scale=0.002, seed=3)
        for box in dataset.ground_truth(dataset.n_frames // 2):
            prefix = "veh-" if box.category == "vehicle" else "ped-"
            assert box.object_id.startswith(prefix)
            assert box.depth > 0

    def test_vehicle_frames_subset(self):
        dataset = TrafficCamDataset(scale=0.002, seed=3)
        frames = dataset.frames_with_vehicles()
        assert frames <= set(range(dataset.n_frames))
        assert frames  # traffic video has traffic

    def test_distinct_pedestrians_nonempty(self):
        dataset = TrafficCamDataset(scale=0.002, seed=3)
        peds = dataset.distinct_pedestrians()
        assert peds
        assert all(p.startswith("ped-") for p in peds)

    def test_identity_colors_distinct(self):
        dataset = TrafficCamDataset(scale=0.004, seed=3)
        colors = [obj.color for obj in dataset.scene.objects]
        # golden-angle spacing: no two identities share a colour
        assert len(set(colors)) == len(colors)

    def test_frame_bounds_checked(self):
        dataset = TrafficCamDataset(scale=0.001)
        with pytest.raises(DatasetError, match="out of range"):
            dataset.frame(10**6)

    def test_rejects_bad_scale(self):
        with pytest.raises(DatasetError):
            TrafficCamDataset(scale=0.0)
        with pytest.raises(DatasetError):
            TrafficCamDataset(scale=1.5)


class TestPC:
    def test_counts_and_kinds(self):
        dataset = PCDataset(scale=0.05, seed=1)
        kinds = {img.kind for img in dataset}
        assert kinds <= {"photo", "screenshot", "document"}
        assert len(dataset) >= 12

    def test_duplicates_reference_existing(self):
        dataset = PCDataset(scale=0.1, seed=1)
        ids = {img.image_id for img in dataset}
        for pair in dataset.duplicate_pairs():
            assert pair <= ids

    def test_duplicates_are_near_identical(self):
        dataset = PCDataset(scale=0.1, seed=1)
        for img in dataset:
            if img.duplicate_of:
                source = dataset.by_id(img.duplicate_of)
                assert img.pixels.shape == source.pixels.shape
                diff = np.abs(
                    img.pixels.astype(int) - source.pixels.astype(int)
                ).mean()
                # the 1-px translate shifts every glyph edge, so the mean
                # difference is edge-density-dependent; bound it loosely
                assert diff < 25.0

    def test_words_ground_truth(self):
        dataset = PCDataset(scale=0.1, seed=1)
        words = dataset.present_words()
        assert words <= set(WORDS) | {""}
        some_word = sorted(w for w in words if w)[0]
        hits = dataset.images_with_word(some_word)
        assert hits
        for image_id in hits:
            assert some_word in dataset.by_id(image_id).words

    def test_by_id_missing(self):
        dataset = PCDataset(scale=0.05, seed=1)
        with pytest.raises(DatasetError, match="no image"):
            dataset.by_id("pc-9999")

    def test_deterministic(self):
        a = PCDataset(scale=0.05, seed=9)
        b = PCDataset(scale=0.05, seed=9)
        np.testing.assert_array_equal(a.images[3].pixels, b.images[3].pixels)


class TestFootball:
    def test_clip_structure(self):
        dataset = FootballDataset(scale=0.004, n_clips=3, seed=2)
        assert dataset.n_clips == 3
        assert dataset.total_frames == sum(c.n_frames for c in dataset.clips)

    def test_tracked_player_in_every_clip(self):
        dataset = FootballDataset(scale=0.004, n_clips=3, seed=2)
        for clip in dataset.clips:
            assert dataset.tracked_number in clip.player_numbers
            assert clip.tracked_trajectory()

    def test_numbers_unique_within_clip(self):
        dataset = FootballDataset(scale=0.004, n_clips=2, seed=2)
        for clip in dataset.clips:
            assert len(set(clip.player_numbers)) == len(clip.player_numbers)

    def test_clip_bounds(self):
        dataset = FootballDataset(scale=0.004, n_clips=2, seed=2)
        with pytest.raises(DatasetError, match="out of range"):
            dataset.clip(5)

    def test_rejects_bad_params(self):
        with pytest.raises(DatasetError):
            FootballDataset(scale=0, n_clips=2)
        with pytest.raises(DatasetError):
            FootballDataset(scale=0.01, n_clips=0)


class TestWords:
    def test_sentence_uses_stock(self):
        rng = np.random.default_rng(0)
        sentence = sample_sentence(rng, 4)
        assert all(word in WORDS for word in sentence.split(" "))

    def test_all_words_uppercase_renderable(self):
        from repro.vision.glyphs import ALPHABET

        for word in WORDS:
            assert all(char in ALPHABET for char in word)
