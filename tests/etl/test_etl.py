"""Tests for patch generators, transformers, and typed pipelines."""

import numpy as np
import pytest

from repro.core.patch import Patch
from repro.core.schema import frame_schema
from repro.errors import ETLError, SchemaError
from repro.etl import (
    CropTransformer,
    DepthTransformer,
    EmbeddingTransformer,
    GradientTransformer,
    HistogramTransformer,
    ObjectDetectorGenerator,
    OCRGenerator,
    Pipeline,
    TileGenerator,
    WholeImageGenerator,
)
from repro.vision import (
    Camera,
    DetectorNoise,
    MonocularDepth,
    Renderer,
    Scene,
    SceneObject,
    SyntheticSSD,
    TemplateOCR,
    TinyEmbedder,
)
from repro.vision.glyphs import stamp_text
from repro.vision.scene import linear_states

NO_NOISE = DetectorNoise(p_mislabel=0.0, p_miss=0.0, p_false_positive=0.0)


def traffic_frame_patch():
    scene = Scene(240, 140, 1)
    vehicle = SceneObject("veh", "vehicle", (210, 40, 40))
    vehicle.states = linear_states(
        scene.camera, 240, range(1), depth0=10, depth1=10,
        lateral0=-2, lateral1=-2, real_width=4.0, real_height=1.6,
    )
    scene.add(vehicle)
    person = SceneObject("ped", "person", (40, 70, 210))
    person.states = linear_states(
        scene.camera, 240, range(1), depth0=14, depth1=14,
        lateral0=3, lateral1=3, real_width=0.6, real_height=1.8,
    )
    scene.add(person)
    frame = Renderer(scene, seed=5).render(0)
    return Patch.from_frame("cam", 0, frame), scene


class TestGenerators:
    def test_object_detector_generator(self):
        patch, scene = traffic_frame_patch()
        generator = ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE))
        detections = generator.generate(patch)
        assert len(detections) == 2
        labels = {d["label"] for d in detections}
        assert labels == {"vehicle", "person"}
        for det in detections:
            assert det.bbox is not None
            assert det.lineage[-1][0] == "detect"
            assert det.data.shape[0] == det.bbox[3] - det.bbox[1]

    def test_detector_schema_declares_domain(self):
        generator = ObjectDetectorGenerator(SyntheticSSD())
        schema = generator.output_schema(frame_schema())
        assert schema.fields["label"].domain == frozenset({"vehicle", "person"})

    def test_detector_min_score(self):
        patch, _ = traffic_frame_patch()
        strict = ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE), min_score=2.0)
        assert strict.generate(patch) == []

    def test_ocr_generator(self):
        canvas = np.full((30, 90, 3), 235, dtype=np.uint8)
        stamp_text(canvas, "HELLO", 4, 8, scale=2, color=(20, 20, 20))
        patch = Patch.from_frame("doc", 0, canvas)
        results = OCRGenerator(TemplateOCR()).generate(patch)
        assert len(results) == 1
        assert results[0]["text"] == "HELLO"
        assert results[0]["tokens"] == ("HELLO",)

    def test_ocr_drops_blank_by_default(self):
        blank = Patch.from_frame("doc", 0, np.full((20, 20, 3), 128, np.uint8))
        assert OCRGenerator(TemplateOCR()).generate(blank) == []
        kept = OCRGenerator(TemplateOCR(), keep_empty=True).generate(blank)
        assert len(kept) == 1 and kept[0]["text"] == ""

    def test_whole_image_generator(self):
        patch, _ = traffic_frame_patch()
        out = WholeImageGenerator().generate(patch)
        assert len(out) == 1
        assert out[0].data.shape == patch.data.shape

    def test_tile_generator(self):
        patch, _ = traffic_frame_patch()
        tiles = TileGenerator(2, 3).generate(patch)
        assert len(tiles) == 6
        assert all(tile.bbox is not None for tile in tiles)
        total_area = sum(
            (t.bbox[2] - t.bbox[0]) * (t.bbox[3] - t.bbox[1]) for t in tiles
        )
        assert total_area == 240 * 140

    def test_tile_generator_validates(self):
        with pytest.raises(ETLError):
            TileGenerator(0, 2)


class TestTransformers:
    def test_histogram_transformer(self):
        patch, _ = traffic_frame_patch()
        out = HistogramTransformer(bins=4).transform(patch)
        assert out["hist"].shape == (64,)
        assert out.lineage[-1][0] == "color-histogram"

    def test_histogram_replace_data(self):
        patch, _ = traffic_frame_patch()
        transformer = HistogramTransformer(bins=4, replace_data=True)
        out = transformer.transform(patch)
        assert out.data.shape == (64,)
        schema = transformer.output_schema(frame_schema())
        assert schema.data_kind == "features"

    def test_embedding_transformer(self):
        patch, _ = traffic_frame_patch()
        out = EmbeddingTransformer(TinyEmbedder(dim=16)).transform(patch)
        assert out["emb"].shape == (16,)

    def test_gradient_transformer(self):
        patch, _ = traffic_frame_patch()
        out = GradientTransformer(grid=2, orientations=8).transform(patch)
        assert out["hog"].shape == (32,)

    def test_depth_transformer_needs_bbox_schema(self):
        camera = Camera(horizon_y=35, focal=168, cam_height=5)
        transformer = DepthTransformer(MonocularDepth(camera))
        with pytest.raises(ETLError, match="bbox"):
            transformer.output_schema(frame_schema())

    def test_depth_transformer_estimates(self):
        patch, scene = traffic_frame_patch()
        detector = ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE))
        transformer = DepthTransformer(MonocularDepth(scene.camera, noise_sigma=0.0))
        for det in detector.generate(patch):
            out = transformer.transform(det)
            truth = next(
                box.depth
                for box in scene.ground_truth(0)
                if box.category == out["label"]
            )
            assert out["depth"] == pytest.approx(truth, rel=0.3)

    def test_crop_transformer(self):
        patch, _ = traffic_frame_patch()
        out = CropTransformer(top=0.25, bottom=0.75).transform(patch)
        assert out.data.shape[0] == 70
        with pytest.raises(ETLError):
            CropTransformer(top=0.8, bottom=0.2)


class TestPipeline:
    def test_valid_composition(self):
        pipeline = Pipeline(
            [
                ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE)),
                HistogramTransformer(bins=4),
            ]
        )
        assert "hist" in pipeline.output_schema.fields
        assert "label" in pipeline.output_schema.fields

    def test_invalid_composition_caught_at_build(self):
        with pytest.raises(SchemaError, match="stage 1"):
            Pipeline(
                [
                    HistogramTransformer(bins=4, replace_data=True),
                    ObjectDetectorGenerator(SyntheticSSD()),  # needs pixels
                ]
            )

    def test_run_streams_and_times(self):
        patch, _ = traffic_frame_patch()
        pipeline = Pipeline(
            [
                ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE)),
                HistogramTransformer(bins=4),
            ]
        )
        out = pipeline.run_to_list([patch])
        assert len(out) == 2
        assert pipeline.last_run_seconds is not None

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ETLError, match="at least one"):
            Pipeline([])

    def test_non_stage_rejected(self):
        with pytest.raises(ETLError, match="neither"):
            Pipeline([lambda patch: patch])

    def test_depth_after_detector_composes(self):
        patch, scene = traffic_frame_patch()
        pipeline = Pipeline(
            [
                ObjectDetectorGenerator(SyntheticSSD(noise=NO_NOISE)),
                DepthTransformer(MonocularDepth(scene.camera)),
            ]
        )
        out = pipeline.run_to_list([patch])
        assert all("depth" in p.metadata for p in out)
