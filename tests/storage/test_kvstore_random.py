"""Seeded randomized round-trip tests for the kvstore and serialization.

The example-based tests in ``test_kvstore.py`` / ``test_serialization.py``
pin individual behaviors; these drive long random interleavings of
operations against oracles — a B+ tree against a plain dict, the record
codec against arbitrary nested patch payloads — so structural bugs
(split/delete interactions, leaf-chain walks, escape-sequence handling)
surface under workloads no example would think to write.
"""

import random

import numpy as np
import pytest

from repro.core.patch import ImgRef, Patch
from repro.storage.kvstore import BPlusTree, Pager
from repro.storage.kvstore import serialization as ser


@pytest.fixture
def pager(tmp_path):
    with Pager(tmp_path / "random.db") as pg:
        yield pg


def random_key(rng: random.Random):
    kind = rng.randrange(4)
    if kind == 0:
        return rng.randrange(-500, 500)
    if kind == 1:
        return round(rng.uniform(-100, 100), 3)
    if kind == 2:
        return "k" + str(rng.randrange(200))
    return ("cam" + str(rng.randrange(4)), rng.randrange(100))


class TestBPlusTreeRandomized:
    """Random insert/delete/range interleavings vs a dict-of-lists oracle."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_multimap_interleavings(self, pager, seed):
        rng = random.Random(seed)
        tree = BPlusTree(pager, f"rand{seed}", order=8)
        oracle: dict = {}
        for step in range(600):
            action = rng.random()
            if action < 0.55:  # insert
                key = random_key(rng)
                value = rng.randbytes(rng.randrange(1, 20))
                tree.insert(key, value)
                oracle.setdefault(self._okey(key), []).append(value)
            elif action < 0.7 and oracle:  # delete whole key
                key = rng.choice(list(oracle))
                removed = tree.delete(self._unokey(key))
                assert removed == len(oracle.pop(key))
            elif action < 0.8 and oracle:  # delete one specific value
                key = rng.choice(list(oracle))
                values = oracle[key]
                value = rng.choice(values)
                removed = tree.delete(self._unokey(key), value)
                expected = values.count(value)
                assert removed == expected
                oracle[key] = [v for v in values if v != value]
                if not oracle[key]:
                    del oracle[key]
            else:  # point lookup of a (maybe absent) key
                key = random_key(rng)
                got = tree.get(key)
                assert sorted(got) == sorted(oracle.get(self._okey(key), []))
        assert len(tree) == sum(len(v) for v in oracle.values())
        self._check_full_scan(tree, oracle)
        self._check_ranges(tree, oracle, rng)

    @pytest.mark.parametrize("seed", [7, 8])
    def test_unique_mode_with_reopen(self, tmp_path, seed):
        rng = random.Random(seed)
        oracle: dict = {}
        with Pager(tmp_path / "uniq.db") as pg:
            tree = BPlusTree(pg, "uniq", order=8, unique=True)
            for _ in range(300):
                key = rng.randrange(120)
                value = rng.randbytes(8)
                if key in oracle and rng.random() < 0.3:
                    tree.delete(key)
                    del oracle[key]
                else:
                    tree.insert(key, value, replace=True)
                    oracle[key] = value
            pg.sync()
        with Pager(tmp_path / "uniq.db") as pg:
            tree = BPlusTree(pg, "uniq", order=8, unique=True)
            assert len(tree) == len(oracle)
            for key, value in oracle.items():
                assert tree.get_one(key) == value

    @staticmethod
    def _okey(key):
        """Oracle key: encoded bytes, the tree's own equality domain
        (2 and 2.0 are the same key under the numeric encoding)."""
        return ser.encode_key(key)

    @staticmethod
    def _unokey(key_bytes):
        return ser.decode_key(key_bytes)

    def _check_full_scan(self, tree, oracle):
        got = [(ser.encode_key(k), v) for k, v in tree.items()]
        want = sorted(
            (key, value) for key, values in oracle.items() for value in values
        )
        assert sorted(got) == want
        # keys come back in encoded order
        assert [k for k, _ in got] == sorted(k for k, _ in got)

    def _check_ranges(self, tree, oracle, rng):
        # integer sub-ranges exercise the linked-leaf walk with bounds
        int_keys = sorted(
            ser.decode_key(k) for k in oracle if isinstance(ser.decode_key(k), int)
        )
        if not int_keys:
            return
        for _ in range(10):
            lo, hi = sorted((rng.choice(int_keys), rng.choice(int_keys)))
            got = [k for k, _ in tree.range(lo, hi) if isinstance(k, (int, float))]
            want = sorted(
                k
                for k in (ser.decode_key(okey) for okey in oracle)
                if isinstance(k, (int, float)) and lo <= k <= hi
            )
            count = sum(
                len(oracle[ser.encode_key(k)]) for k in want
            )
            assert len(got) == count


def random_value(rng: random.Random, depth: int = 0):
    """An arbitrary serializable patch-attribute payload."""
    leaf_kinds = ["none", "bool", "int", "float", "str", "bytes", "array"]
    kinds = leaf_kinds + (["list", "tuple", "dict"] if depth < 3 else [])
    kind = rng.choice(kinds)
    if kind == "none":
        return None
    if kind == "bool":
        return rng.random() < 0.5
    if kind == "int":
        return rng.randrange(-(2**70), 2**70)
    if kind == "float":
        return rng.uniform(-1e9, 1e9)
    if kind == "str":
        return "".join(rng.choice("abc\x00éλ🎥 ") for _ in range(rng.randrange(8)))
    if kind == "bytes":
        return rng.randbytes(rng.randrange(12))
    if kind == "array":
        dtype = rng.choice([np.uint8, np.int32, np.float64])
        shape = tuple(rng.randrange(1, 4) for _ in range(rng.randrange(1, 3)))
        return (np.arange(int(np.prod(shape)) * 10) % 251).astype(dtype)[
            : int(np.prod(shape))
        ].reshape(shape)
    if kind == "list":
        return [random_value(rng, depth + 1) for _ in range(rng.randrange(4))]
    if kind == "tuple":
        return tuple(random_value(rng, depth + 1) for _ in range(rng.randrange(4)))
    return {
        "f" + str(i): random_value(rng, depth + 1) for i in range(rng.randrange(4))
    }


def values_equal(a, b) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return (
            isinstance(a, np.ndarray)
            and isinstance(b, np.ndarray)
            and a.dtype == b.dtype
            and a.shape == b.shape
            and bool(np.array_equal(a, b))
        )
    if isinstance(a, (list, tuple)):
        return (
            type(a) is type(b)
            and len(a) == len(b)
            and all(values_equal(x, y) for x, y in zip(a, b))
        )
    if isinstance(a, dict):
        return (
            isinstance(b, dict)
            and a.keys() == b.keys()
            and all(values_equal(a[k], b[k]) for k in a)
        )
    return type(a) is type(b) and a == b


class TestSerializationRandomized:
    @pytest.mark.parametrize("seed", [11, 12, 13])
    def test_value_round_trips(self, seed):
        rng = random.Random(seed)
        for _ in range(150):
            value = random_value(rng)
            assert values_equal(ser.loads(ser.dumps(value)), value)

    @pytest.mark.parametrize("seed", [21, 22])
    def test_patch_record_round_trips(self, seed):
        rng = random.Random(seed)
        for i in range(40):
            metadata = {
                "f" + str(j): random_value(rng) for j in range(rng.randrange(6))
            }
            patch = Patch(
                img_ref=ImgRef("video:rand", i, None),
                data=np.arange(rng.randrange(1, 64), dtype=np.float32),
                metadata=metadata,
            )
            back = Patch.from_record(patch.to_record(), patch_id=i)
            assert back.img_ref == patch.img_ref
            assert np.array_equal(back.data, patch.data)
            for key, value in metadata.items():
                assert values_equal(back.metadata[key], value), key

    @pytest.mark.parametrize("seed", [31, 32])
    def test_key_encoding_preserves_order(self, seed):
        rng = random.Random(seed)
        groups = {
            "num": [rng.uniform(-1e6, 1e6) for _ in range(40)]
            + [rng.randrange(-(2**53), 2**53) for _ in range(40)],
            "str": [
                "".join(rng.choice("ab\x00c") for _ in range(rng.randrange(6)))
                for _ in range(60)
            ],
            "tuple": [
                (rng.randrange(5), rng.randrange(1000)) for _ in range(60)
            ],
        }
        for values in groups.values():
            for _ in range(200):
                a, b = rng.choice(values), rng.choice(values)
                ea, eb = ser.encode_key(a), ser.encode_key(b)
                if a < b:
                    assert ea < eb
                elif a > b:
                    assert ea > eb
                else:
                    assert ea == eb
                assert ser.decode_key(ea) == a
