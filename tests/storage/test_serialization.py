"""Tests for the binary record codec and order-preserving key encoding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import StorageError
from repro.storage.kvstore import serialization as ser


class TestValueRoundTrip:
    @pytest.mark.parametrize(
        "value",
        [
            None,
            True,
            False,
            0,
            -1,
            2**100,
            -(2**77),
            3.5,
            -0.0,
            float("inf"),
            "",
            "héllo wörld",
            b"",
            b"\x00\xff raw",
            [],
            [1, "two", 3.0, None],
            (),
            (1, (2, 3)),
            {},
            {"a": 1, 2: "b", None: [True]},
        ],
    )
    def test_scalars_and_containers(self, value):
        assert ser.loads(ser.dumps(value)) == value

    def test_nan_round_trips(self):
        result = ser.loads(ser.dumps(float("nan")))
        assert np.isnan(result)

    def test_ndarray_round_trip(self):
        arr = np.arange(24, dtype=np.float32).reshape(2, 3, 4)
        out = ser.loads(ser.dumps(arr))
        np.testing.assert_array_equal(out, arr)
        assert out.dtype == arr.dtype

    def test_large_array_is_compressed(self):
        arr = np.zeros((128, 128, 3), dtype=np.uint8)
        compressed = ser.dumps(arr)
        uncompressed = ser.dumps(arr, compress_arrays=False)
        assert len(compressed) < len(uncompressed) // 10

    def test_nested_dict_with_arrays(self):
        record = {"bbox": np.array([1, 2, 3, 4]), "meta": {"label": "car"}}
        out = ser.loads(ser.dumps(record))
        np.testing.assert_array_equal(out["bbox"], record["bbox"])
        assert out["meta"] == {"label": "car"}

    def test_rejects_unknown_type(self):
        with pytest.raises(StorageError, match="cannot serialize"):
            ser.dumps(object())

    def test_rejects_bad_magic(self):
        with pytest.raises(StorageError, match="magic"):
            ser.loads(b"XXXX\x01")

    def test_rejects_trailing_garbage(self):
        with pytest.raises(StorageError, match="trailing"):
            ser.loads(ser.dumps(1) + b"\x00")

    def test_numpy_scalars_coerce(self):
        assert ser.loads(ser.dumps(np.int64(7))) == 7
        assert ser.loads(ser.dumps(np.float64(2.5))) == 2.5


_KEY_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
    st.text(max_size=40),
    st.binary(max_size=40),
)

_KEYS = st.one_of(_KEY_SCALARS, st.tuples(_KEY_SCALARS, _KEY_SCALARS))


def _type_rank(value):
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, (int, float)):
        return 2
    if isinstance(value, str):
        return 3
    if isinstance(value, bytes):
        return 4
    return 5


def _natural_lt(a, b):
    """Cross-type comparison matching the documented key order."""
    ra, rb = _type_rank(a), _type_rank(b)
    if ra != rb:
        return ra < rb
    if isinstance(a, tuple):
        for xa, xb in zip(a, b):
            if _natural_lt(xa, xb):
                return True
            if _natural_lt(xb, xa):
                return False
        return len(a) < len(b)
    if a is None:
        return False
    if ra == 2 and a == b:
        # numerically equal int/float keys: the encoding's type
        # discriminator puts the int first, which keeps the order total
        # inside tuple keys (e.g. (0, x) vs (0.0, y) must not fall
        # through to comparing x with y)
        return isinstance(a, int) and isinstance(b, float)
    return a < b


class TestKeyEncoding:
    @given(_KEYS)
    @settings(max_examples=300)
    def test_round_trip(self, key):
        assert ser.decode_key(ser.encode_key(key)) == key

    @given(_KEYS, _KEYS)
    @settings(max_examples=500)
    def test_order_preserved(self, a, b):
        ea, eb = ser.encode_key(a), ser.encode_key(b)
        if _natural_lt(a, b):
            assert ea < eb
        elif _natural_lt(b, a):
            assert eb < ea

    def test_int_float_interleave(self):
        keys = [1, 1.5, 2, 2.5, -3, 0.0]
        encoded = sorted(ser.encode_key(k) for k in keys)
        decoded = [ser.decode_key(e) for e in encoded]
        assert decoded == [-3, 0.0, 1, 1.5, 2, 2.5]

    def test_int_type_survives(self):
        assert isinstance(ser.decode_key(ser.encode_key(5)), int)
        assert isinstance(ser.decode_key(ser.encode_key(5.0)), float)

    def test_strings_with_nuls(self):
        a, b = "a\x00b", "a\x00c"
        assert ser.decode_key(ser.encode_key(a)) == a
        assert ser.encode_key(a) < ser.encode_key(b)

    def test_tuple_prefix_sorts_first(self):
        assert ser.encode_key(("cam", 1)) < ser.encode_key(("cam", 1, 0))

    def test_rejects_huge_int(self):
        with pytest.raises(StorageError, match="2\\*\\*53"):
            ser.encode_key(2**60)

    def test_rejects_unkeyable(self):
        with pytest.raises(StorageError, match="as a key"):
            ser.encode_key([1, 2])

    def test_prefix_range_covers_compound_keys(self):
        lo, hi = ser.key_range_prefix(("cam1",))
        inside = ser.encode_key(("cam1", 42))
        outside = ser.encode_key(("cam2", 0))
        assert lo <= inside < hi
        assert not (lo <= outside < hi)
