"""Tests for the pager, B+ tree, hash file, sorted record file, and blob heap."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import (
    DuplicateKeyError,
    KeyNotFoundError,
    PageError,
    StorageError,
)
from repro.storage.kvstore import (
    BlobHeap,
    BlobRef,
    BPlusTree,
    HashFile,
    Pager,
    SortedRecordFile,
)


@pytest.fixture
def pager(tmp_path):
    with Pager(tmp_path / "store.db") as pg:
        yield pg


class TestPager:
    def test_allocate_and_rw(self, pager):
        page = pager.allocate()
        pager.write(page, b"hello")
        assert bytes(pager.read(page))[:5] == b"hello"

    def test_pages_are_zeroed(self, pager):
        page = pager.allocate()
        assert bytes(pager.read(page)) == bytes(pager.page_size)

    def test_free_list_reuse(self, pager):
        a = pager.allocate()
        pager.free(a)
        b = pager.allocate()
        assert b == a
        assert bytes(pager.read(b)) == bytes(pager.page_size)

    def test_write_too_large_rejected(self, pager):
        page = pager.allocate()
        with pytest.raises(PageError, match="exceeds page size"):
            pager.write(page, b"x" * (pager.page_size + 1))

    def test_invalid_page_id(self, pager):
        with pytest.raises(PageError):
            pager.read(9999)
        with pytest.raises(PageError):
            pager.read(0)

    def test_meta_round_trip(self, pager):
        pager.set_meta({"root": 7, "name": "idx"})
        assert pager.get_meta() == {"root": 7, "name": "idx"}

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "persist.db"
        with Pager(path) as pg:
            page = pg.allocate()
            pg.write(page, b"durable")
            pg.set_meta({"page": page})
        with Pager(path) as pg:
            page = pg.get_meta()["page"]
            assert bytes(pg.read(page))[:7] == b"durable"

    def test_eviction_under_small_cache(self, tmp_path):
        with Pager(tmp_path / "small.db", cache_pages=8) as pg:
            pages = [pg.allocate() for _ in range(64)]
            for i, page in enumerate(pages):
                pg.write(page, bytes([i]) * 16)
            for i, page in enumerate(pages):
                assert bytes(pg.read(page))[:16] == bytes([i]) * 16

    def test_closed_pager_raises(self, tmp_path):
        pg = Pager(tmp_path / "closed.db")
        pg.close()
        with pytest.raises(StorageError, match="closed"):
            pg.allocate()

    def test_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "not_a_pager.db"
        path.write_bytes(b"GARBAGE!" * 100)
        with pytest.raises(StorageError, match="magic"):
            Pager(path)


class TestBPlusTree:
    def test_insert_get(self, pager):
        tree = BPlusTree(pager, "t")
        tree.insert(5, b"five")
        assert tree.get(5) == [b"five"]
        assert tree.get(6) == []

    def test_many_inserts_sorted_scan(self, pager):
        tree = BPlusTree(pager, "t", order=8)
        rng = np.random.default_rng(0)
        keys = rng.permutation(500).tolist()
        for key in keys:
            tree.insert(int(key), str(key).encode())
        scanned = [k for k, _ in tree.items()]
        assert scanned == sorted(range(500))
        assert len(tree) == 500

    def test_range_scan_bounds(self, pager):
        tree = BPlusTree(pager, "t", order=8)
        for i in range(100):
            tree.insert(i, b"v")
        assert [k for k, _ in tree.range(10, 20)] == list(range(10, 21))
        assert [k for k, _ in tree.range(10, 20, include_lo=False)] == list(
            range(11, 21)
        )
        assert [k for k, _ in tree.range(10, 20, include_hi=False)] == list(
            range(10, 20)
        )
        assert [k for k, _ in tree.range(None, 3)] == [0, 1, 2, 3]
        assert [k for k, _ in tree.range(97, None)] == [97, 98, 99]

    def test_duplicate_keys_multimap(self, pager):
        tree = BPlusTree(pager, "t", order=8)
        for i in range(10):
            tree.insert("dup", str(i).encode())
        assert sorted(tree.get("dup")) == sorted(str(i).encode() for i in range(10))

    def test_duplicates_across_leaf_splits(self, pager):
        tree = BPlusTree(pager, "t", order=4)
        for i in range(50):
            tree.insert("same", str(i).encode())
        assert len(tree.get("same")) == 50

    def test_unique_mode(self, pager):
        tree = BPlusTree(pager, "u", unique=True)
        tree.insert("k", b"1")
        with pytest.raises(DuplicateKeyError):
            tree.insert("k", b"2")
        tree.insert("k", b"3", replace=True)
        assert tree.get("k") == [b"3"]

    def test_get_one(self, pager):
        tree = BPlusTree(pager, "t")
        tree.insert("k", b"v")
        assert tree.get_one("k") == b"v"
        with pytest.raises(KeyNotFoundError):
            tree.get_one("missing")

    def test_delete(self, pager):
        tree = BPlusTree(pager, "t", order=8)
        for i in range(100):
            tree.insert(i, b"v")
        assert tree.delete(50) == 1
        assert tree.get(50) == []
        assert len(tree) == 99
        assert tree.delete(50) == 0

    def test_delete_specific_value(self, pager):
        tree = BPlusTree(pager, "t")
        tree.insert("k", b"a")
        tree.insert("k", b"b")
        assert tree.delete("k", b"a") == 1
        assert tree.get("k") == [b"b"]

    def test_mixed_key_types(self, pager):
        tree = BPlusTree(pager, "t")
        tree.insert(("cam1", 5), b"a")
        tree.insert(("cam1", 2), b"b")
        tree.insert(("cam2", 1), b"c")
        keys = [k for k, _ in tree.items()]
        assert keys == [("cam1", 2), ("cam1", 5), ("cam2", 1)]

    def test_persistence(self, tmp_path):
        path = tmp_path / "tree.db"
        with Pager(path) as pg:
            tree = BPlusTree(pg, "frames")
            for i in range(200):
                tree.insert(i, str(i).encode())
        with Pager(path) as pg:
            tree = BPlusTree(pg, "frames")
            assert len(tree) == 200
            assert tree.get(123) == [b"123"]

    def test_two_trees_one_pager(self, pager):
        a = BPlusTree(pager, "a")
        b = BPlusTree(pager, "b")
        a.insert(1, b"a1")
        b.insert(1, b"b1")
        assert a.get(1) == [b"a1"]
        assert b.get(1) == [b"b1"]

    def test_bulk_load(self, pager):
        tree = BPlusTree(pager, "bulk", order=8)
        items = [(i, str(i).encode()) for i in range(300)]
        tree.bulk_load(items)
        assert len(tree) == 300
        assert tree.get(250) == [b"250"]
        assert [k for k, _ in tree.range(5, 8)] == [5, 6, 7, 8]

    def test_bulk_load_rejects_unsorted(self, pager):
        tree = BPlusTree(pager, "bulk")
        with pytest.raises(StorageError, match="not sorted"):
            tree.bulk_load([(2, b"b"), (1, b"a")])

    def test_oversized_value_rejected(self, pager):
        tree = BPlusTree(pager, "t")
        with pytest.raises(StorageError, match="BlobHeap"):
            tree.insert(1, b"x" * pager.page_size)

    def test_first_on_empty(self, pager):
        tree = BPlusTree(pager, "empty")
        with pytest.raises(KeyNotFoundError):
            tree.first()

    @given(
        st.lists(
            st.tuples(st.integers(-1000, 1000), st.binary(min_size=1, max_size=8)),
            max_size=120,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_matches_reference_multimap(self, tmp_path_factory, items):
        path = tmp_path_factory.mktemp("hyp") / "tree.db"
        reference: dict[int, list[bytes]] = {}
        with Pager(path) as pg:
            tree = BPlusTree(pg, "t", order=6)
            for key, value in items:
                tree.insert(key, value)
                reference.setdefault(key, []).append(value)
            for key, expected in reference.items():
                assert sorted(tree.get(key)) == sorted(expected)
            assert [k for k, _ in tree.items()] == sorted(
                key for key, values in reference.items() for _ in values
            )


class TestHashFile:
    def test_put_get(self, pager):
        hf = HashFile(pager, "h")
        hf.put("car", b"p1")
        hf.put("car", b"p2")
        hf.put("bus", b"p3")
        assert sorted(hf.get("car")) == [b"p1", b"p2"]
        assert hf.get("bus") == [b"p3"]
        assert hf.get("bike") == []

    def test_many_keys(self, pager):
        hf = HashFile(pager, "h", n_buckets=16)
        for i in range(1000):
            hf.put(i, str(i).encode())
        assert len(hf) == 1000
        for i in (0, 17, 999):
            assert hf.get(i) == [str(i).encode()]

    def test_overflow_chains(self, pager):
        hf = HashFile(pager, "h", n_buckets=1)
        for i in range(500):
            hf.put(i, b"x" * 32)
        assert len(hf) == 500
        assert hf.get(499) == [b"x" * 32]

    def test_delete(self, pager):
        hf = HashFile(pager, "h")
        hf.put("k", b"a")
        hf.put("k", b"b")
        assert hf.delete("k", b"a") == 1
        assert hf.get("k") == [b"b"]
        assert hf.delete("k") == 1
        assert hf.get("k") == []

    def test_items(self, pager):
        hf = HashFile(pager, "h")
        hf.put("a", b"1")
        hf.put("b", b"2")
        assert sorted(hf.items()) == [("a", b"1"), ("b", b"2")]

    def test_rejects_bad_bucket_count(self, pager):
        with pytest.raises(StorageError, match="power of two"):
            HashFile(pager, "bad", n_buckets=3)

    def test_persistence(self, tmp_path):
        path = tmp_path / "hash.db"
        with Pager(path) as pg:
            hf = HashFile(pg, "labels")
            hf.put("person", b"p7")
        with Pager(path) as pg:
            hf = HashFile(pg, "labels")
            assert hf.get("person") == [b"p7"]


class TestSortedRecordFile:
    def test_append_and_get(self, tmp_path):
        with SortedRecordFile(tmp_path / "sorted.db") as sf:
            for i in range(50):
                sf.append(i, str(i).encode())
            assert sf.get(25) == [b"25"]
            assert sf.get(99) == []

    def test_rejects_out_of_order_append(self, tmp_path):
        with SortedRecordFile(tmp_path / "sorted.db") as sf:
            sf.append(10, b"a")
            with pytest.raises(StorageError, match="out of order"):
                sf.append(5, b"b")

    def test_range(self, tmp_path):
        with SortedRecordFile(tmp_path / "sorted.db") as sf:
            for i in range(0, 100, 2):
                sf.append(i, str(i).encode())
            assert [k for k, _ in sf.range(10, 20)] == [10, 12, 14, 16, 18, 20]
            assert [k for k, _ in sf.range(11, 15)] == [12, 14]

    def test_bulk_build_sorts(self, tmp_path):
        with SortedRecordFile(tmp_path / "sorted.db") as sf:
            sf.bulk_build([(3, b"c"), (1, b"a"), (2, b"b")])
            assert [k for k, _ in sf.items()] == [1, 2, 3]

    def test_duplicate_keys(self, tmp_path):
        with SortedRecordFile(tmp_path / "sorted.db") as sf:
            sf.append(1, b"a")
            sf.append(1, b"b")
            assert sorted(sf.get(1)) == [b"a", b"b"]

    def test_reopen_rebuilds_index(self, tmp_path):
        path = tmp_path / "sorted.db"
        with SortedRecordFile(path) as sf:
            for i in range(20):
                sf.append(i, str(i).encode())
        with SortedRecordFile(path) as sf:
            assert len(sf) == 20
            assert sf.get(7) == [b"7"]


class TestBlobHeap:
    def test_put_get(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(b"hello world")
            assert heap.get(ref) == b"hello world"

    def test_compression(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            data = b"\x00" * 100_000
            ref = heap.put(data, compress=True)
            assert ref.length < 1000
            assert heap.get(ref) == data

    def test_incompressible_stays_raw(self, tmp_path):
        rng = np.random.default_rng(0)
        data = rng.integers(0, 256, size=10_000, dtype=np.uint8).tobytes()
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(data, compress=True)
            assert heap.get(ref) == data

    def test_ref_round_trip(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(b"x")
            restored = BlobRef.from_tuple(ref.to_tuple())
            assert heap.get(restored) == b"x"

    def test_bad_offset_rejected(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            heap.put(b"x")
            with pytest.raises(StorageError, match="out of range"):
                heap.get(BlobRef(offset=10**9, length=1))

    def test_persistence(self, tmp_path):
        path = tmp_path / "heap.db"
        with BlobHeap(path) as heap:
            ref = heap.put(b"persisted")
        with BlobHeap(path) as heap:
            assert heap.get(ref) == b"persisted"


class TestBlobHeapMultiGet:
    """The coalesced batch read path behind scans and index fetches."""

    def test_empty(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            assert heap.multi_get([]) == []

    def test_matches_get_in_request_order(self, tmp_path):
        rng = np.random.default_rng(3)
        with BlobHeap(tmp_path / "heap.db") as heap:
            blobs = [
                rng.integers(0, 256, size=int(n), dtype=np.uint8).tobytes()
                for n in rng.integers(0, 5_000, size=200)
            ]
            refs = [
                heap.put(blob, compress=(i % 3 == 0))
                for i, blob in enumerate(blobs)
            ]
            order = rng.permutation(len(refs)).tolist()
            got = heap.multi_get([refs[i] for i in order])
            assert got == [blobs[i] for i in order]

    def test_duplicates_and_subsets(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            refs = [heap.put(bytes([i]) * (i + 1)) for i in range(50)]
            want = [refs[7], refs[7], refs[0], refs[49], refs[7]]
            assert heap.multi_get(want) == [
                b"\x07" * 8,
                b"\x07" * 8,
                b"\x00",
                b"\x31" * 50,
                b"\x07" * 8,
            ]

    def test_far_apart_blobs_split_runs(self, tmp_path):
        # blobs separated by more than the coalescing gap exercise the
        # run-flush path; a blob larger than MAX_RUN_BYTES caps a run
        from repro.storage.kvstore import heap as heap_module

        with BlobHeap(tmp_path / "heap.db") as heap:
            first = heap.put(b"a" * 10)
            filler = heap.put(b"\x00" * (heap_module.COALESCE_GAP_BYTES + 1))
            big = heap.put(b"b" * (heap_module.MAX_RUN_BYTES + 1))
            last = heap.put(b"c" * 10)
            got = heap.multi_get([last, big, first, filler])
            assert got[0] == b"c" * 10
            assert got[1] == b"b" * (heap_module.MAX_RUN_BYTES + 1)
            assert got[2] == b"a" * 10

    def test_bad_offset_rejected(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(b"x")
            with pytest.raises(StorageError, match="out of range"):
                heap.multi_get([ref, BlobRef(offset=10**9, length=1)])

    def test_length_mismatch_rejected(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(b"hello")
            heap.put(b"trailing so the over-long read stays inside the file")
            wrong = BlobRef(offset=ref.offset, length=ref.length + 2)
            with pytest.raises(StorageError, match="length mismatch"):
                heap.multi_get([wrong])

    def test_truncated_tail_rejected(self, tmp_path):
        with BlobHeap(tmp_path / "heap.db") as heap:
            ref = heap.put(b"hello")
            wrong = BlobRef(offset=ref.offset, length=ref.length + 2)
            with pytest.raises(StorageError, match="short read"):
                heap.multi_get([wrong])
