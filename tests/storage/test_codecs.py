"""Tests for the RAW, JPEG-like, and H.264-like codecs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, RandomAccessUnsupportedError
from repro.storage.codecs import (
    H264LikeCodec,
    JpegLikeCodec,
    RawCodec,
    decode_image,
    encode_image,
    get_codec,
    psnr,
)
from repro.storage.codecs import blocks
from repro.storage.codecs.quality import get_preset


def make_frames(n=12, height=48, width=64, seed=0, motion=True):
    """Synthetic CCTV-ish frames: smooth background + one moving square."""
    rng = np.random.default_rng(seed)
    yy, xx = np.mgrid[0:height, 0:width]
    background = (
        96
        + 40 * np.sin(xx / 17.0)
        + 30 * np.cos(yy / 11.0)
        + rng.normal(0, 2, size=(height, width))
    )
    frames = []
    for t in range(n):
        frame = np.stack([background, background * 0.9, background * 0.8], axis=2)
        if motion:
            x = (3 * t) % max(width - 12, 1)
            frame[10:22, x : x + 12, 0] = 220
            frame[10:22, x : x + 12, 1] = 40
            frame[10:22, x : x + 12, 2] = 40
        frames.append(np.clip(frame, 0, 255).astype(np.uint8))
    return frames


class TestBlocks:
    def test_blockify_round_trip(self):
        arr = np.arange(16 * 24, dtype=np.float64).reshape(16, 24)
        tiles = blocks.blockify(arr)
        assert tiles.shape == (6, 8, 8)
        np.testing.assert_array_equal(blocks.unblockify(tiles, 16, 24), arr)

    def test_blockify_rejects_unaligned(self):
        with pytest.raises(CodecError, match="multiples"):
            blocks.blockify(np.zeros((10, 16)))

    def test_pad_to_blocks(self):
        padded = blocks.pad_to_blocks(np.ones((10, 13)))
        assert padded.shape == (16, 16)

    def test_quant_matrix_monotone_in_quality(self):
        q90 = blocks.quant_matrix(90)
        q10 = blocks.quant_matrix(10)
        assert np.all(q90 <= q10)
        assert np.all(q90 >= 1)

    def test_quant_matrix_rejects_bad_quality(self):
        with pytest.raises(CodecError):
            blocks.quant_matrix(0)
        with pytest.raises(CodecError):
            blocks.quant_matrix(101)

    def test_plane_round_trip_high_quality_close(self):
        rng = np.random.default_rng(1)
        plane = rng.normal(0, 30, size=(32, 40))
        quant = blocks.quant_matrix(95)
        decoded, used = blocks.decode_plane(
            blocks.encode_plane(plane, quant), quant
        )
        assert decoded.shape == plane.shape
        assert np.abs(decoded - plane).mean() < 4.0

    def test_psnr_identical_is_inf(self):
        img = np.zeros((8, 8), dtype=np.uint8)
        assert psnr(img, img) == float("inf")

    def test_psnr_decreases_with_noise(self):
        rng = np.random.default_rng(2)
        img = rng.integers(0, 256, size=(32, 32), dtype=np.uint8)
        small = np.clip(img + rng.normal(0, 2, img.shape), 0, 255).astype(np.uint8)
        large = np.clip(img + rng.normal(0, 30, img.shape), 0, 255).astype(np.uint8)
        assert psnr(img, small) > psnr(img, large)


class TestRawCodec:
    def test_lossless_round_trip(self):
        frames = make_frames(5)
        codec = RawCodec()
        stream = codec.encode_stream(frames)
        decoded = list(codec.decode_stream(stream))
        assert len(decoded) == 5
        for original, restored in zip(frames, decoded):
            np.testing.assert_array_equal(original, restored)

    def test_random_access(self):
        frames = make_frames(8)
        codec = RawCodec()
        stream = codec.encode_stream(frames)
        np.testing.assert_array_equal(codec.decode_frame(stream, 5), frames[5])

    def test_frame_count(self):
        codec = RawCodec()
        assert codec.frame_count(codec.encode_stream(make_frames(7))) == 7

    def test_size_is_exact(self):
        frames = make_frames(4, height=16, width=16)
        stream = RawCodec().encode_stream(frames)
        assert len(stream) == 24 + 4 * 16 * 16 * 3

    def test_rejects_empty(self):
        with pytest.raises(CodecError, match="empty"):
            RawCodec().encode_stream([])

    def test_rejects_mixed_shapes(self):
        frames = [
            np.zeros((16, 16, 3), dtype=np.uint8),
            np.zeros((8, 8, 3), dtype=np.uint8),
        ]
        with pytest.raises(CodecError, match="must match"):
            RawCodec().encode_stream(frames)

    def test_rejects_bad_dtype(self):
        with pytest.raises(CodecError, match="uint8"):
            RawCodec().encode_stream([np.zeros((8, 8, 3), dtype=np.float32)])

    def test_out_of_range_index(self):
        stream = RawCodec().encode_stream(make_frames(3))
        with pytest.raises(CodecError, match="out of range"):
            RawCodec().decode_frame(stream, 3)


class TestJpegLikeCodec:
    def test_high_quality_near_lossless(self):
        frames = make_frames(3)
        codec = JpegLikeCodec(quality="high")
        decoded = list(codec.decode_stream(codec.encode_stream(frames)))
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 30.0

    def test_compresses_vs_raw(self):
        frames = make_frames(6)
        raw = RawCodec().encode_stream(frames)
        jpeg = JpegLikeCodec(quality="high").encode_stream(frames)
        assert len(jpeg) < len(raw) / 2

    def test_lower_quality_smaller_and_worse(self):
        frames = make_frames(4)
        high = JpegLikeCodec(quality="high")
        low = JpegLikeCodec(quality="low")
        high_stream = high.encode_stream(frames)
        low_stream = low.encode_stream(frames)
        assert len(low_stream) < len(high_stream)
        high_frame = next(iter(high.decode_stream(high_stream)))
        low_frame = next(iter(low.decode_stream(low_stream)))
        assert psnr(frames[0], low_frame) < psnr(frames[0], high_frame)

    def test_random_access(self):
        frames = make_frames(10)
        codec = JpegLikeCodec(quality=90)
        stream = codec.encode_stream(frames)
        frame = codec.decode_frame(stream, 7)
        assert psnr(frames[7], frame) > 30.0

    def test_single_image_round_trip(self):
        image = make_frames(1)[0]
        restored = decode_image(encode_image(image, 90), 90)
        assert restored.shape == image.shape
        assert psnr(image, restored) > 30.0

    def test_frame_count(self):
        codec = JpegLikeCodec()
        assert codec.frame_count(codec.encode_stream(make_frames(9))) == 9

    def test_odd_dimensions(self):
        frames = [np.full((13, 21, 3), 100, dtype=np.uint8)]
        codec = JpegLikeCodec(quality=90)
        decoded = next(iter(codec.decode_stream(codec.encode_stream(frames))))
        assert decoded.shape == (13, 21, 3)


class TestH264LikeCodec:
    def test_round_trip_quality(self):
        frames = make_frames(12)
        codec = H264LikeCodec(quality="high", gop=5)
        decoded = list(codec.decode_stream(codec.encode_stream(frames)))
        assert len(decoded) == 12
        for original, restored in zip(frames, decoded):
            assert psnr(original, restored) > 28.0

    def test_beats_jpeg_on_static_video(self):
        frames = make_frames(30, motion=False)
        jpeg = JpegLikeCodec(quality="high").encode_stream(frames)
        h264 = H264LikeCodec(quality="high", gop=30).encode_stream(frames)
        assert len(h264) < len(jpeg) / 3

    def test_large_compression_vs_raw(self):
        frames = make_frames(30)
        raw = RawCodec().encode_stream(frames)
        h264 = H264LikeCodec(quality="high", gop=30).encode_stream(frames)
        # small noisy test frames compress modestly; the Figure 2 benchmark
        # shows the paper-scale ratio on real-size smooth CCTV frames
        assert len(raw) / len(h264) > 5.0

    def test_no_drift_across_long_gop(self):
        frames = make_frames(25)
        codec = H264LikeCodec(quality="high", gop=25)
        decoded = list(codec.decode_stream(codec.encode_stream(frames)))
        # last P-frame in the GOP should still be faithful
        assert psnr(frames[-1], decoded[-1]) > 28.0

    def test_random_access_refused(self):
        codec = H264LikeCodec()
        stream = codec.encode_stream(make_frames(5))
        with pytest.raises(RandomAccessUnsupportedError, match="sequential"):
            codec.decode_frame(stream, 3)

    def test_decode_prefix(self):
        frames = make_frames(10)
        codec = H264LikeCodec(quality="high", gop=4)
        stream = codec.encode_stream(frames)
        frame = codec.decode_prefix(stream, 6)
        assert psnr(frames[6], frame) > 28.0

    def test_decode_prefix_beyond_end(self):
        codec = H264LikeCodec()
        stream = codec.encode_stream(make_frames(3))
        with pytest.raises(CodecError, match="beyond"):
            codec.decode_prefix(stream, 10)

    def test_gop_one_is_all_intra(self):
        frames = make_frames(6)
        codec = H264LikeCodec(quality="high", gop=1)
        decoded = list(codec.decode_stream(codec.encode_stream(frames)))
        assert len(decoded) == 6

    def test_rejects_bad_gop(self):
        with pytest.raises(CodecError, match="GOP"):
            H264LikeCodec(gop=0)

    def test_frame_count(self):
        codec = H264LikeCodec(gop=4)
        assert codec.frame_count(codec.encode_stream(make_frames(11))) == 11


class TestFactoryAndPresets:
    def test_get_codec(self):
        assert isinstance(get_codec("raw"), RawCodec)
        assert isinstance(get_codec("jpeg", quality=80), JpegLikeCodec)
        assert isinstance(get_codec("h264", quality="low", gop=8), H264LikeCodec)

    def test_get_codec_unknown(self):
        with pytest.raises(CodecError, match="unknown codec"):
            get_codec("av1")

    def test_preset_lookup(self):
        assert get_preset("high").quality == 90
        assert get_preset("LOW").quality == 10
        with pytest.raises(CodecError, match="unknown quality"):
            get_preset("ultra")

    @given(st.integers(min_value=1, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_any_quality_round_trips_shape(self, quality):
        image = make_frames(1, height=16, width=24)[0]
        restored = decode_image(encode_image(image, quality), quality)
        assert restored.shape == image.shape
        assert restored.dtype == np.uint8
