"""Checksum verification, positioned corruption errors, and rebuilds.

Every pager page, blob-heap record, and metadata-segment block carries a
CRC32 verified on read. These tests flip single bits in each file kind
and assert the failure mode the design promises: primary data
(``patches.heap``, ``catalog.db``) surfaces a positioned
:class:`~repro.errors.CorruptionError`; derived state (``metadata.seg``
blocks, statistics snapshots) is quarantined and rebuilt transparently,
with the repair visible in ``db.metrics()`` and ``recovery_report()``.
"""

import os
import struct
import zlib

import numpy as np
import pytest

from repro.core import DeepLens
from repro.core.catalog import Catalog
from repro.core.patch import Patch
from repro.errors import CorruptionError, StorageError
from repro.storage.faultfs import FileOps
from repro.storage.kvstore import serialization
from repro.storage.kvstore.heap import BlobHeap, BlobRef
from repro.storage.kvstore.pager import Pager


def _patches(n, start=0):
    rng = np.random.default_rng(start)
    for i in range(start, start + n):
        patch = Patch.from_frame(
            "vid", i, rng.integers(0, 255, (4, 4, 3), dtype=np.uint8)
        )
        patch.metadata["label"] = "car" if i % 2 == 0 else "person"
        yield patch


def _flip_bit(path, offset):
    with open(path, "r+b") as file:
        file.seek(offset)
        byte = file.read(1)
        file.seek(offset)
        file.write(bytes([byte[0] ^ 0x01]))


def _seed(workdir, n=12):
    with Catalog(workdir, durability="flush") as catalog:
        catalog.materialize(_patches(n), "base")


# -- primary data: corruption is surfaced, positioned ------------------


def test_bitflipped_heap_record_raises_positioned_error(tmp_path):
    _seed(tmp_path)
    heap_path = tmp_path / "patches.heap"
    # past the 16-byte header and the first 13-byte record header: inside
    # the first patch record's payload
    _flip_bit(heap_path, 48)
    with Catalog(tmp_path, durability="flush") as catalog:
        with pytest.raises(CorruptionError) as excinfo:
            list(catalog.collection("base").scan())
    assert excinfo.value.file == str(heap_path)
    assert excinfo.value.offset is not None
    assert "patches.heap" in str(excinfo.value)


def test_bitflipped_pager_page_raises_positioned_error(tmp_path):
    _seed(tmp_path)
    pager_path = str(tmp_path / "catalog.db")
    with Catalog(tmp_path, durability="flush") as catalog:
        page_size = catalog.pager.page_size
        meta_page = catalog.pager._meta_page
    _flip_bit(pager_path, meta_page * page_size + 100)
    with pytest.raises(CorruptionError) as excinfo:
        Catalog(tmp_path, durability="flush")
    assert excinfo.value.file == pager_path
    assert excinfo.value.offset == meta_page * page_size


def test_zeroed_meta_page_raises_positioned_error(tmp_path):
    """Satellite: a meta page that reads as all zeroes (a hole left by a
    partial write) must not present a populated catalog as empty."""
    _seed(tmp_path)
    pager_path = str(tmp_path / "catalog.db")
    with Catalog(tmp_path, durability="flush") as catalog:
        page_size = catalog.pager.page_size
        meta_page = catalog.pager._meta_page
    with open(pager_path, "r+b") as file:
        file.seek(meta_page * page_size)
        file.write(bytes(page_size))
    with pytest.raises(CorruptionError) as excinfo:
        Catalog(tmp_path, durability="flush")
    assert excinfo.value.file == pager_path
    assert excinfo.value.offset == meta_page * page_size
    assert str(excinfo.value.offset) in str(excinfo.value)


def test_truncated_pager_header_raises_positioned_error(tmp_path):
    _seed(tmp_path)
    pager_path = str(tmp_path / "catalog.db")
    with open(pager_path, "r+b") as file:
        file.truncate(10)
    with pytest.raises(CorruptionError) as excinfo:
        Catalog(tmp_path, durability="flush")
    assert excinfo.value.file == pager_path
    assert excinfo.value.offset == 0


def test_torn_heap_tail_raises_positioned_error(tmp_path):
    """A record whose payload never fully landed reads back short."""
    heap = BlobHeap(tmp_path / "t.heap")
    ref = heap.put(b"x" * 1000)
    heap.close()
    with open(tmp_path / "t.heap", "r+b") as file:
        file.truncate(ref.offset + 13 + 500)
    heap = BlobHeap(tmp_path / "t.heap")
    with pytest.raises(CorruptionError) as excinfo:
        heap.get(ref)
    assert excinfo.value.offset == ref.offset
    heap.close()


# -- derived data: corruption is quarantined and rebuilt ----------------


def test_bitflipped_segment_block_rebuilds_transparently(tmp_path):
    with DeepLens(tmp_path, durability="flush") as db:
        db.catalog.materialize(_patches(12), "base")
        expected = [
            (p.patch_id, p.metadata["label"])
            for p in db.catalog.collection("base").scan()
        ]
    seg_path = tmp_path / "catalog" / "metadata.seg"
    size = os.path.getsize(seg_path)
    assert size > 16
    _flip_bit(seg_path, (16 + size) // 2)

    with DeepLens(tmp_path, durability="flush") as db:
        got = [
            (p.patch_id, p.metadata["label"])
            for p in db.catalog.collection("base").scan(load_data=False)
        ]
        assert got == expected  # the scan never saw the corruption
        counters = db.metrics()["counters"]
        assert counters["deeplens_segment_rebuilds_total"] >= 1
        kinds = [e["kind"] for e in db.recovery_report()["events"]]
        assert "segment_quarantined" in kinds

    # the rebuild persisted: a later clean session scans without repair
    with DeepLens(tmp_path, durability="flush") as db:
        got = [
            (p.patch_id, p.metadata["label"])
            for p in db.catalog.collection("base").scan(load_data=False)
        ]
        assert got == expected
        assert (
            db.metrics()["counters"].get("deeplens_segment_rebuilds_total", 0)
            == 0
        )


def test_corrupt_sealed_block_mid_scan_resumes_without_dup_or_loss(
    tmp_path, monkeypatch
):
    """A scan that already yielded rows hits a corrupt sealed block: the
    segment rebuilds and the scan resumes after the last delivered row —
    no duplicates, no gaps."""
    import repro.storage.metadata_segment as seg_mod

    monkeypatch.setattr(seg_mod, "BLOCK_ROWS", 4)
    with Catalog(tmp_path, durability="flush") as catalog:
        catalog.materialize(_patches(12), "base")
        expected = [
            (p.patch_id, p.metadata["label"])
            for p in catalog.collection("base").scan()
        ]
        blocks = catalog.segments.segment("base")._blocks
        assert len(blocks) == 3
        second_block_offset = blocks[1].ref.offset
    _flip_bit(tmp_path / "metadata.seg", second_block_offset + 20)
    with Catalog(tmp_path, durability="flush") as catalog:
        rows = []
        for batch in catalog.collection("base").scan_batches(
            2, load_data=False
        ):
            rows.extend((p.patch_id, p.metadata["label"]) for p in batch)
        assert rows == expected
        kinds = [e["kind"] for e in catalog.recovery_report()["events"]]
        assert "segment_quarantined" in kinds


def test_corrupt_stats_snapshot_rebuilds_from_scan(tmp_path):
    _seed(tmp_path)
    with Catalog(tmp_path, durability="flush") as catalog:
        good = catalog.statistics_for("base")
        assert good is not None
        row_count = good.row_count
        # corrupt the persisted snapshot in place: point its ref at a
        # blob that is not a statistics payload
        bogus = catalog.heap.put(b"not a stats snapshot")
        catalog._stats_refs["base"] = list(bogus.to_tuple())
        catalog._stats.pop("base", None)
        rebuilt = catalog.statistics_for("base")
        assert rebuilt is not None
        assert rebuilt.row_count == row_count
        kinds = [e["kind"] for e in catalog.recovery_report()["events"]]
        assert "stats_rebuilt" in kinds


# -- format back-compat: v1 files open with checksums off ---------------


def test_v1_pager_file_opens_without_checksums(tmp_path):
    path = tmp_path / "v1.db"
    page_size = 4096
    meta = serialization.dumps({"hello": 1})
    header = struct.pack(
        ">8sIQQQ", b"DLPG0001", page_size, 2, 0, 1
    ).ljust(page_size, b"\x00")
    meta_image = struct.pack(">I", len(meta)) + meta
    with open(path, "wb") as file:
        file.write(header)
        file.write(meta_image.ljust(page_size, b"\x00"))
    pager = Pager(path)
    assert pager.checksums is False
    assert pager.capacity == page_size  # no trailer reserved
    assert pager.get_meta() == {"hello": 1}
    # round-trips keep working (no CRC stamped into v1 pages)
    page = pager.allocate()
    pager.write(page, b"payload" * 10)
    pager.sync()
    pager.close()
    pager = Pager(path)
    assert bytes(pager.read(page))[:7] == b"payload"
    pager.close()


def test_v1_heap_file_opens_without_checksums(tmp_path):
    path = tmp_path / "v1.heap"
    payload = b"legacy blob"
    with open(path, "wb") as file:
        file.write(b"DLHP0001".ljust(16, b"\x00"))
        file.write(struct.pack(">QB", len(payload), 0))
        file.write(payload)
    heap = BlobHeap(path)
    assert heap.checksums is False
    ref = BlobRef(offset=16, length=len(payload))
    assert heap.get(ref) == payload
    assert heap.multi_get([ref, ref]) == [payload, payload]
    # appends continue in the v1 record format
    ref2 = heap.put(b"appended")
    assert heap.get(ref2) == b"appended"
    heap.close()
    heap = BlobHeap(path)
    assert heap.get(ref2) == b"appended"
    heap.close()


def test_v2_page_crc_actually_on_disk(tmp_path):
    """The trailer holds a real CRC of the payload (not zeroes), and a
    cached read never leaks it into the image handed back."""
    pager = Pager(tmp_path / "p.db")
    page = pager.allocate()
    pager.write(page, b"hello")
    pager.sync()
    image = bytes(pager.read(page))  # cache hit
    assert image[:5] == b"hello"
    assert image == b"hello".ljust(pager.page_size, b"\x00")
    with open(tmp_path / "p.db", "rb") as file:
        file.seek(page * pager.page_size)
        raw = file.read(pager.page_size)
    (stored,) = struct.unpack_from(">I", raw, pager.capacity)
    assert stored == zlib.crc32(raw[: pager.capacity])
    pager.close()


# -- durability knob ----------------------------------------------------


class _RecordingOps(FileOps):
    def __init__(self):
        self.syncs = []

    def sync_file(self, file, durability="fsync"):
        self.syncs.append(durability)
        file.flush()  # never fsync inside the test suite


@pytest.mark.parametrize("durability", ["fsync", "flush"])
def test_durability_mode_reaches_every_sync_barrier(tmp_path, durability):
    ops = _RecordingOps()
    with Catalog(tmp_path, durability=durability, fs=ops) as catalog:
        catalog.materialize(_patches(3), "base")
    assert ops.syncs  # journal + data barriers all routed through fs
    assert set(ops.syncs) == {durability}


def test_fileops_fsyncs_only_in_fsync_mode(tmp_path, monkeypatch):
    from repro.storage.faultfs import OS_OPS

    calls = []
    monkeypatch.setattr(os, "fsync", lambda fd: calls.append(fd))
    with open(tmp_path / "x", "wb") as file:
        OS_OPS.sync_file(file, "fsync")
        assert calls
        calls.clear()
        OS_OPS.sync_file(file, "flush")
        assert not calls


def test_unknown_durability_mode_is_rejected(tmp_path):
    with pytest.raises(StorageError, match="unknown durability mode"):
        Catalog(tmp_path, durability="bogus")


def test_durability_none_disables_the_journal(tmp_path):
    with Catalog(tmp_path, durability="none") as catalog:
        catalog.materialize(_patches(3), "base")
        assert catalog._journal is None
    assert not os.path.exists(tmp_path / "journal.log")
    with Catalog(tmp_path, durability="none") as catalog:
        assert len(catalog.collection("base")) == 3
