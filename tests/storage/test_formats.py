"""Tests for the three video layouts and the loading API (Section 3.1)."""

import numpy as np
import pytest

from repro.core.expressions import Attr, Predicate
from repro.errors import RandomAccessUnsupportedError, StorageError
from repro.storage.codecs import psnr
from repro.storage.formats import (
    EncodedFile,
    FrameFile,
    SegmentedFile,
    load_patches,
    open_store,
)


def make_frames(n=20, height=32, width=48):
    rng = np.random.default_rng(7)
    background = rng.integers(70, 100, (height, width, 3)).astype(np.uint8)
    frames = []
    for t in range(n):
        frame = background.copy()
        x = (2 * t) % (width - 8)
        frame[8:20, x : x + 8] = (220, 40, 40)
        frames.append(frame)
    return frames


ALL_LAYOUTS = ["frame-raw", "frame-jpeg", "encoded", "segmented"]


@pytest.mark.parametrize("layout", ALL_LAYOUTS)
class TestAllLayouts:
    def _store(self, layout, tmp_path, frames):
        kwargs = {"clip_len": 6} if layout == "segmented" else {}
        store = open_store(layout, tmp_path, f"v-{layout}", **kwargs)
        store.ingest(iter(frames))
        return store

    def test_full_scan_order_and_fidelity(self, layout, tmp_path):
        frames = make_frames()
        store = self._store(layout, tmp_path, frames)
        scanned = list(store.scan())
        assert [frameno for frameno, _ in scanned] == list(range(len(frames)))
        for (_, decoded), original in zip(scanned, frames):
            assert psnr(original, decoded) > 28.0
        store.close()

    def test_range_scan_bounds(self, layout, tmp_path):
        frames = make_frames()
        store = self._store(layout, tmp_path, frames)
        got = [frameno for frameno, _ in store.scan(7, 11)]
        assert got == [7, 8, 9, 10, 11]
        store.close()

    def test_out_of_range_clamped(self, layout, tmp_path):
        frames = make_frames(8)
        store = self._store(layout, tmp_path, frames)
        assert [f for f, _ in store.scan(-5, 100)] == list(range(8))
        store.close()

    def test_n_frames_and_size(self, layout, tmp_path):
        frames = make_frames(10)
        store = self._store(layout, tmp_path, frames)
        assert store.n_frames == 10
        assert store.size_bytes > 0
        store.close()

    def test_loader_pushdown_and_residual(self, layout, tmp_path):
        frames = make_frames()
        store = self._store(layout, tmp_path, frames)
        expr = Attr("frameno").between(4, 9) & Predicate(
            lambda patch: patch["frameno"] % 2 == 0, "even"
        )
        got = [patch["frameno"] for patch in load_patches(store, filter=expr)]
        assert got == [4, 6, 8]
        store.close()

    def test_empty_store_scan_raises(self, layout, tmp_path):
        kwargs = {"clip_len": 6} if layout == "segmented" else {}
        store = open_store(layout, tmp_path, f"empty-{layout}", **kwargs)
        with pytest.raises(StorageError, match="empty|no frames"):
            list(store.scan())


class TestFrameFile:
    def test_random_access(self, tmp_path):
        frames = make_frames(10)
        store = FrameFile(tmp_path, "v", codec="raw")
        store.ingest(iter(frames))
        np.testing.assert_array_equal(store.get_frame(6), frames[6])
        with pytest.raises(StorageError, match="not in FrameFile"):
            store.get_frame(99)
        store.close()

    def test_jpeg_codec_smaller(self, tmp_path):
        frames = make_frames(10)
        raw = FrameFile(tmp_path, "raw", codec="raw")
        raw.ingest(iter(frames))
        jpeg = FrameFile(tmp_path, "jpeg", codec="jpeg")
        jpeg.ingest(iter(frames))
        # tiny noisy test frames compress modestly; the real ratio is the
        # Figure 2/3 benchmarks' business
        assert jpeg.size_bytes < raw.size_bytes * 0.7
        raw.close()
        jpeg.close()

    def test_rejects_sequential_codec(self, tmp_path):
        with pytest.raises(StorageError, match="frame-independent"):
            FrameFile(tmp_path, "v", codec="h264")

    def test_reopen_preserves_codec(self, tmp_path):
        store = FrameFile(tmp_path, "v", codec="jpeg", quality=80)
        store.ingest(iter(make_frames(4)))
        store.close()
        reopened = FrameFile(tmp_path, "v", codec="jpeg")
        assert reopened.quality == 80
        assert reopened.n_frames == 4
        reopened.close()
        with pytest.raises(StorageError, match="was created with codec"):
            FrameFile(tmp_path, "v", codec="raw")


class TestEncodedFile:
    def test_no_random_access(self, tmp_path):
        store = EncodedFile(tmp_path, "v")
        store.ingest(iter(make_frames(6)))
        with pytest.raises(RandomAccessUnsupportedError, match="sequential"):
            store.get_frame(2)

    def test_no_append_after_finalize(self, tmp_path):
        store = EncodedFile(tmp_path, "v")
        store.ingest(iter(make_frames(4)))
        with pytest.raises(StorageError, match="finalized"):
            store.append(make_frames(1)[0])

    def test_size_requires_finalize(self, tmp_path):
        store = EncodedFile(tmp_path, "v")
        store.append(make_frames(1)[0])
        with pytest.raises(StorageError, match="not finalized"):
            _ = store.size_bytes

    def test_reopen_from_disk(self, tmp_path):
        store = EncodedFile(tmp_path, "v")
        store.ingest(iter(make_frames(5)))
        reopened = EncodedFile(tmp_path, "v")
        assert reopened.n_frames == 5


class TestSegmentedFile:
    def test_clip_boundaries_exact(self, tmp_path):
        frames = make_frames(20)
        store = SegmentedFile(tmp_path, "v", clip_len=6)
        store.ingest(iter(frames))
        # a range crossing two clip boundaries
        got = [f for f, _ in store.scan(5, 13)]
        assert got == list(range(5, 14))
        store.close()

    def test_partial_last_clip(self, tmp_path):
        store = SegmentedFile(tmp_path, "v", clip_len=8)
        store.ingest(iter(make_frames(11)))  # 8 + 3
        assert store.n_frames == 11
        assert [f for f, _ in store.scan(9, 10)] == [9, 10]
        store.close()

    def test_coarse_random_access(self, tmp_path):
        frames = make_frames(16)
        store = SegmentedFile(tmp_path, "v", clip_len=4)
        store.ingest(iter(frames))
        decoded = store.get_frame(10)
        assert psnr(frames[10], decoded) > 28.0
        with pytest.raises(StorageError, match="not in SegmentedFile"):
            store.get_frame(50)
        store.close()

    def test_reopen(self, tmp_path):
        store = SegmentedFile(tmp_path, "v", clip_len=5)
        store.ingest(iter(make_frames(12)))
        store.close()
        reopened = SegmentedFile(tmp_path, "v")
        assert reopened.n_frames == 12
        assert reopened.clip_len == 5
        assert [f for f, _ in reopened.scan(3, 4)] == [3, 4]
        reopened.close()

    def test_rejects_bad_clip_len(self, tmp_path):
        with pytest.raises(StorageError, match="clip_len"):
            SegmentedFile(tmp_path, "v", clip_len=0)


class TestOpenStore:
    def test_unknown_layout(self, tmp_path):
        with pytest.raises(StorageError, match="unknown layout"):
            open_store("holographic", tmp_path, "v")
