"""Crash-consistency matrix: kill/tear the process at every I/O step.

The deterministic :class:`~repro.storage.faultfs.FaultInjector` counts
every mutating file operation (write/truncate) across all catalog files.
For each workload we first run a fault-free probe to learn how many
mutating ops it performs, then re-run it from the same starting state
crashing at op 1, op 2, ... op N (sampled by stride when the matrix is
large — ``REPRO_CRASH_STEPS`` bounds the steps per cell). After every
crash the store is reopened with real file ops and must present either
the complete pre-mutation state or the complete post-mutation state —
never a mix — with the blob heap, B+ trees, and metadata segment all
agreeing with each other.

The crash model is in-process (the "dead" handles are closed, the store
reopens in the same OS page cache), so ``durability="flush"`` gives the
same coverage as ``"fsync"`` without paying a real fsync per barrier.
"""

import os
import shutil

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DeepLens
from repro.core.catalog import Catalog
from repro.core.patch import Patch
from repro.storage.faultfs import OS_OPS, FaultInjector, SimulatedCrash

#: per (workload, mode) cell: at most this many crash points are tested
#: (stride-sampled across the op range, endpoints always included)
STEP_BUDGET = int(os.environ.get("REPRO_CRASH_STEPS", "30"))

DURABILITY = "flush"  # see module docstring: equivalent under this model


def _patches(n, start=0):
    rng = np.random.default_rng(start)
    for i in range(start, start + n):
        patch = Patch.from_frame(
            "vid", i, rng.integers(0, 255, (4, 4, 3), dtype=np.uint8)
        )
        patch.metadata["label"] = "car" if i % 2 == 0 else "person"
        patch.metadata["emb"] = [float(x) for x in rng.normal(size=8)]
        yield patch


def _seed_base(workdir):
    """A committed catalog with one collection, cleanly closed."""
    with Catalog(workdir, durability=DURABILITY) as catalog:
        catalog.materialize(_patches(8), "base")


# -- workloads: one interrupted catalog mutation each -------------------


def _wl_materialize(workdir, fs):
    catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
    catalog.materialize(_patches(6, start=100), "fresh")
    catalog.close()


def _wl_add_sync(workdir, fs):
    catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
    collection = catalog.collection("base")
    for patch in _patches(3, start=200):
        collection.add(patch)
    catalog.sync()
    catalog.close()


def _wl_create_index(workdir, fs):
    catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
    catalog.create_index("base", "label", "hash")
    catalog.close()


def _wl_create_hnsw_index(workdir, fs):
    catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
    catalog.create_index("base", "emb", "hnsw", params={"m": 4, "ef": 8})
    catalog.close()


def _wl_materialize_replace(workdir, fs):
    catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
    catalog.materialize(_patches(4, start=300), "base", replace=True)
    catalog.close()


WORKLOADS = {
    "materialize": _wl_materialize,
    "add_sync": _wl_add_sync,
    "create_index": _wl_create_index,
    "create_hnsw_index": _wl_create_hnsw_index,
    "materialize_replace": _wl_materialize_replace,
}


# -- state fingerprint + invariants -------------------------------------


def _fingerprint(workdir):
    """Full logical state through a clean reopen, with cross-structure
    invariants asserted: a full (heap) scan and a metadata-only
    (segment) scan must agree row for row, and every checksum on the
    read path must verify."""
    with Catalog(workdir, durability=DURABILITY) as catalog:
        state = {}
        for name in catalog.collections():
            collection = catalog.collection(name)
            full = [
                (p.patch_id, p.metadata["label"]) for p in collection.scan()
            ]
            meta_only = [
                (p.patch_id, p.metadata["label"])
                for p in collection.scan(load_data=False)
            ]
            assert full == meta_only, f"segment disagrees with heap in {name!r}"
            assert len(full) == len(collection)
            state[name] = tuple(full)
        state["__indexes__"] = tuple(
            sorted(tuple(key) for key in catalog.indexes())
        )
        # an interrupted hnsw build must leave either no index or a
        # complete one — never a torn graph
        for key in catalog.indexes():
            name, attr, kind = tuple(key)
            if kind != "hnsw":
                continue
            index = catalog.get_index(name, attr, kind)
            assert len(index) == len(catalog.collection(name))
            state[f"__hnsw__{name}.{attr}"] = tuple(index.ids())
        return state


def _steps_for(total):
    if total <= STEP_BUDGET:
        return list(range(1, total + 1))
    stride = max(1, total // STEP_BUDGET)
    steps = sorted(set(range(1, total + 1, stride)) | {1, total})
    return steps


def _crash_run(workdir, workload, step, mode):
    """Run ``workload`` with a fault at ``step``; True if it crashed."""
    injector = FaultInjector(fail_at=step, mode=mode)
    try:
        workload(workdir, injector)
        return False
    except SimulatedCrash:
        return True
    finally:
        injector.close_all()


@pytest.mark.parametrize("mode", ["kill", "torn"])
@pytest.mark.parametrize("workload_name", sorted(WORKLOADS))
def test_crash_at_every_step_is_all_or_nothing(tmp_path, workload_name, mode):
    workload = WORKLOADS[workload_name]
    base = tmp_path / "base"
    _seed_base(base)
    pre_state = _fingerprint(base)

    # fault-free probe: count the mutating ops and capture the post state
    probe = tmp_path / "probe"
    shutil.copytree(base, probe)
    counter = FaultInjector(fail_at=None)
    workload(probe, counter)
    counter.close_all()
    total_ops = counter.ops
    assert total_ops > 0
    post_state = _fingerprint(probe)
    assert post_state != pre_state

    for step in _steps_for(total_ops):
        workdir = tmp_path / f"step{step}"
        shutil.copytree(base, workdir)
        crashed = _crash_run(workdir, workload, step, mode)
        assert crashed, f"op {step} of {total_ops} did not fire"
        state = _fingerprint(workdir)
        assert state in (pre_state, post_state), (
            f"{workload_name}/{mode}: crash at op {step}/{total_ops} left a "
            f"mixed state"
        )


def test_crash_past_the_last_op_changes_nothing(tmp_path):
    """A fault point beyond the workload's op count never fires: the
    workload completes and the store shows exactly the post state."""
    base = tmp_path / "base"
    _seed_base(base)
    probe = tmp_path / "probe"
    shutil.copytree(base, probe)
    counter = FaultInjector(fail_at=None)
    _wl_add_sync(probe, counter)
    counter.close_all()
    post_state = _fingerprint(probe)

    workdir = tmp_path / "run"
    shutil.copytree(base, workdir)
    injector = FaultInjector(fail_at=counter.ops + 50, mode="kill")
    _wl_add_sync(workdir, injector)
    injector.close_all()
    assert not injector.fired
    assert _fingerprint(workdir) == post_state


def test_crash_during_recovery_is_idempotent(tmp_path):
    """Recovery itself can die at any write and simply runs again."""
    base = tmp_path / "base"
    _seed_base(base)
    pre_state = _fingerprint(base)
    counter = FaultInjector(fail_at=None)
    probe = tmp_path / "probe"
    shutil.copytree(base, probe)
    _wl_materialize_replace(probe, counter)
    counter.close_all()

    workdir = tmp_path / "run"
    shutil.copytree(base, workdir)
    # die mid-mutation, leaving a journal with real rollback work
    assert _crash_run(workdir, _wl_materialize_replace, counter.ops // 2, "kill")

    # now die during the recovery pass too, at each of its first writes
    for recovery_step in (1, 2, 3):
        injector = FaultInjector(fail_at=recovery_step, mode="kill")
        try:
            Catalog(workdir, durability=DURABILITY, fs=injector)
        except SimulatedCrash:
            pass
        finally:
            injector.close_all()

    assert _fingerprint(workdir) == pre_state


def test_transient_eio_aborts_but_never_corrupts(tmp_path):
    """An injected EIO surfaces synchronously as OSError; the journal
    still rolls the half-done mutation back on the next open."""
    base = tmp_path / "base"
    _seed_base(base)
    pre_state = _fingerprint(base)
    workdir = tmp_path / "run"
    shutil.copytree(base, workdir)
    injector = FaultInjector(fail_at=4, mode="eio")
    with pytest.raises(OSError):
        _wl_materialize(workdir, injector)
    injector.close_all()
    assert injector.fired
    assert _fingerprint(workdir) == pre_state


def test_garbage_journal_is_cleared_on_open(tmp_path):
    """A journal holding no valid BEGIN record (pure garbage) is inert:
    the open clears it and touches nothing else."""
    base = tmp_path / "base"
    _seed_base(base)
    pre_state = _fingerprint(base)
    journal = base / "journal.log"
    with open(journal, "r+b") as file:
        file.seek(0, os.SEEK_END)
        file.write(b"\xde\xad\xbe\xef" * 32)
    assert _fingerprint(base) == pre_state
    assert os.path.getsize(journal) == 16


def test_replay_is_reported_and_counted(tmp_path):
    """A rolled-back mutation shows up in recovery_report() and in the
    deeplens_journal_replays_total counter of the reopening session."""
    base = tmp_path / "base"
    _seed_base(base)
    counter = FaultInjector(fail_at=None)
    probe = tmp_path / "probe"
    shutil.copytree(base, probe)
    _wl_materialize(probe, counter)
    counter.close_all()
    assert _crash_run(base, _wl_materialize, counter.ops // 2, "torn")

    with DeepLens(tmp_path, durability=DURABILITY) as db:
        # DeepLens(workdir) keeps its catalog under workdir/catalog
        pass
    shutil.rmtree(tmp_path / "catalog")
    shutil.copytree(base, tmp_path / "catalog")
    with DeepLens(tmp_path, durability=DURABILITY) as db:
        report = db.recovery_report()
        kinds = [event["kind"] for event in report["events"]]
        assert "journal_replay" in kinds
        assert kinds == [event["kind"] for event in report["history"][-len(kinds):]]
        counters = db.metrics()["counters"]
        assert counters["deeplens_journal_replays_total"] == 1
        assert list(db.catalog.collection("base").scan())


@settings(max_examples=12, deadline=None)
@given(data=st.data())
def test_crash_lands_on_a_committed_checkpoint(tmp_path_factory, data):
    """Property: whatever interleaving of adds and syncs a session runs,
    a crash at any op reopens to a state some sync actually committed."""
    tmp_path = tmp_path_factory.mktemp("hypo")
    base = tmp_path / "base"
    _seed_base(base)
    plan = data.draw(
        st.lists(
            st.sampled_from(["add", "add", "sync"]), min_size=2, max_size=8
        ),
        label="plan",
    )

    def workload(workdir, fs):
        catalog = Catalog(workdir, durability=DURABILITY, fs=fs)
        collection = catalog.collection("base")
        next_frame = 1000
        for op in plan:
            if op == "add":
                for patch in _patches(1, start=next_frame):
                    collection.add(patch)
                next_frame += 1
            else:
                catalog.sync()
                checkpoints.append(tuple(collection.ids()))
        catalog.close()
        checkpoints.append(tuple(collection.ids()))

    # fault-free probe: collect every committed checkpoint + the op count
    checkpoints: list[tuple] = []
    probe = tmp_path / "probe"
    shutil.copytree(base, probe)
    with Catalog(probe, durability=DURABILITY) as catalog:
        checkpoints.append(tuple(catalog.collection("base").ids()))
    counter = FaultInjector(fail_at=None)
    workload(probe, counter)
    counter.close_all()

    step = data.draw(st.integers(1, counter.ops), label="crash_op")
    mode = data.draw(st.sampled_from(["kill", "torn"]), label="mode")
    workdir = tmp_path / "run"
    shutil.copytree(base, workdir)
    _crash_run(workdir, workload, step, mode)
    with Catalog(workdir, durability=DURABILITY) as catalog:
        ids = tuple(catalog.collection("base").ids())
    assert ids in checkpoints
