"""EXPLAIN ANALYZE end-to-end: instrumented execution, Q-error
reporting, the plan-quality log, and the estimate feedback loop.

The instrumentation contract mirrors the parallel engine's: profiling
is an execution detail, never a semantics change. An analyzed run
returns bit-identical rows, its counters are exact (no lost updates
under ``workers=4``), and the observed cardinalities feed back as
per-predicate correction factors the optimizer consults on the next
plan of the same predicate (source ``feedback`` in ``explain()``).
"""

import threading

import numpy as np
import pytest

from repro.core import Attr, DeepLens
from repro.core.patch import Patch
from repro.core.sql import ast, parse

N = 120


def make_patches(n=N):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 7, np.uint8))
        # label and kind are perfectly correlated: the independence
        # assumption underestimates their conjunction by 2x
        patch.metadata["label"] = "car" if i % 2 == 0 else "person"
        patch.metadata["kind"] = "road" if i % 2 == 0 else "indoor"
        patch.metadata["score"] = float(i)
        patch.metadata["bucket"] = "hot" if i % 30 == 0 else "cold"
        yield patch


def row_signature(patches):
    return [
        (p.patch_id, p.lineage, p.data.tobytes(), sorted(p.metadata.items()))
        for p in patches
    ]


def scoring_udf(patch):
    return patch.derive(patch.data, "scored", total=float(patch.data.sum()))


@pytest.fixture
def db(tmp_path):
    with DeepLens(tmp_path) as session:
        session.materialize(make_patches(), "det")
        yield session


def correlated_query(session):
    return (
        session.scan("det")
        .filter(Attr("label") == "car")
        .filter(Attr("kind") == "road")
    )


class TestExplainAnalyze:
    def test_profile_attached_with_q_errors(self, db):
        explanation = correlated_query(db).explain(analyze=True)
        profile = explanation.profile
        assert profile is not None
        assert profile.entries
        # the scan group is graded: est from stats, actual from the run
        scan = next(e for e in profile.entries if "Scan" in e.label)
        assert scan.est_rows == 30  # 120 * 0.5 * 0.5 under independence
        assert scan.rows_out == 60
        assert scan.q == pytest.approx(2.0)
        rendered = str(explanation)
        assert "runtime profile" in rendered
        assert "q-error 2.00" in rendered

    def test_plain_explain_has_no_profile(self, db):
        assert correlated_query(db).explain().profile is None
        assert len(db.plan_quality_log()) == 0

    def test_analyzed_run_matches_unprofiled_rows(self, db):
        want = [p.patch_id for p in correlated_query(db).patches()]
        correlated_query(db).explain(analyze=True)
        got = [p.patch_id for p in correlated_query(db).patches()]
        assert got == want

    def test_operator_tree_structure(self, db):
        explanation = (
            db.scan("det")
            .filter(Attr("label") == "car")
            .order_by("score", reverse=True)
            .limit(5)
            .explain(analyze=True)
        )
        lines = explanation.profile.lines()
        # root first, children indented below
        assert lines[0].startswith("Limit(5)")
        assert any(line.lstrip().startswith("OrderBy") for line in lines)
        roots = explanation.profile.roots()
        assert len(roots) == 1 and roots[0].label.startswith("Limit")

    def test_limit_truncation_records_no_feedback(self, db):
        (
            db.scan("det")
            .filter(Attr("label") == "car")
            .limit(5)
            .explain(analyze=True)
        )
        # the scan stopped after 5 matches: the observed selectivity is
        # not the predicate's selectivity, so no correction is learned
        estimate = db.optimizer.predicate_estimate("det", Attr("label") == "car")
        assert estimate.source != "feedback"


class TestFeedbackLoop:
    def test_correlated_conjunction_estimate_improves(self, db):
        before = correlated_query(db).explain()
        assert any("(mcv)" in line for line in before.estimates)

        analyzed = correlated_query(db).explain(analyze=True)
        scan = next(e for e in analyzed.profile.entries if "Scan" in e.label)
        assert scan.q == pytest.approx(2.0)  # independence was off 2x

        after = correlated_query(db).explain()
        assert any("(feedback)" in line for line in after.estimates)
        expr = (Attr("label") == "car") & (Attr("kind") == "road")
        estimate = db.optimizer.predicate_estimate("det", expr)
        assert estimate.source == "feedback"
        assert estimate.selectivity == pytest.approx(0.5)
        # re-analyzing under the corrected estimate grades at q ~= 1
        regraded = correlated_query(db).explain(analyze=True)
        scan = next(e for e in regraded.profile.entries if "Scan" in e.label)
        assert scan.q == pytest.approx(1.0)

    def test_corrections_persist_across_sessions(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "det")
            correlated_query(db).explain(analyze=True)
            fingerprints = len(db.plan_quality_log())
        with DeepLens(tmp_path) as db:
            explanation = correlated_query(db).explain()
            assert any("(feedback)" in line for line in explanation.estimates)
            assert len(db.plan_quality_log()) == fingerprints

    def test_parameterized_fingerprint_pools_literals(self, db):
        db.scan("det").filter(Attr("score") > 10.0).explain(analyze=True)
        db.scan("det").filter(Attr("score") > 90.0).explain(analyze=True)
        # same plan shape, different literals: one pooled history...
        assert len(db.plan_quality_log()) == 1
        # ...but distinct predicates learn distinct corrections
        low = db.optimizer.predicate_estimate("det", Attr("score") > 10.0)
        high = db.optimizer.predicate_estimate("det", Attr("score") > 90.0)
        assert low.source == high.source == "feedback"
        assert low.selectivity == pytest.approx(109 / 120)
        assert high.selectivity == pytest.approx(29 / 120)


class TestSQLFrontend:
    def test_explain_analyze_statement(self, db):
        explanation = db.sql(
            "EXPLAIN ANALYZE SELECT * FROM det WHERE label = 'car'"
        )
        assert explanation.profile is not None
        assert "q-error" in str(explanation)

    def test_plain_explain_statement_unchanged(self, db):
        explanation = db.sql("EXPLAIN SELECT * FROM det WHERE label = 'car'")
        assert explanation.profile is None

    def test_aggregate_explain_analyze(self, db):
        explanation = db.sql(
            "EXPLAIN ANALYZE SELECT count(*) FROM det WHERE kind = 'road'"
        )
        scan = next(
            e for e in explanation.profile.entries if "Scan" in e.label
        )
        assert scan.rows_out == 60
        assert scan.exhausted

    def test_parse_round_trip(self):
        statement = parse("EXPLAIN ANALYZE SELECT * FROM det")
        assert isinstance(statement, ast.Explain)
        assert statement.analyze
        assert statement.to_sql() == "EXPLAIN ANALYZE SELECT * FROM det"
        assert parse(statement.to_sql()) == statement

    def test_parse_plain_explain_not_analyze(self):
        statement = parse("EXPLAIN SELECT * FROM det")
        assert not statement.analyze
        assert statement.to_sql() == "EXPLAIN SELECT * FROM det"


class TestCounters:
    def test_udf_cache_counters(self, db):
        query = db.scan("det").map(
            scoring_udf, name="scored", provides={"total"}, cache=True
        )
        first = query.explain(analyze=True)
        entry = next(e for e in first.profile.entries if "Map" in e.label)
        assert entry.cache_misses == N and entry.cache_hits == 0
        second = query.explain(analyze=True)
        entry = next(e for e in second.profile.entries if "Map" in e.label)
        assert entry.cache_hits == N and entry.cache_misses == 0

    def test_index_probes_counted(self, db):
        db.create_index("det", "bucket", "hash")
        explanation = (
            db.scan("det").filter(Attr("bucket") == "hot").explain(analyze=True)
        )
        assert explanation.chosen.kind == "hash-lookup"
        probes = sum(e.index_probes for e in explanation.profile.entries)
        assert probes == 4  # every fetched row came through the index

    def test_join_entry_spans_both_children(self, db):
        explanation = (
            db.scan("det")
            .filter(Attr("score") < 6.0)
            .similarity_join(
                db.scan("det").filter(Attr("score") < 6.0), threshold=0.0
            )
            .explain(analyze=True)
        )
        join = next(
            e for e in explanation.profile.entries if "SimilarityJoin" in e.label
        )
        assert len(join.children) == 2
        # 6 rows per side; data repeats every 7 scores, so distance 0
        # pairs are exactly the identity pairs here
        assert join.rows_in == 12
        assert join.rows_out == 6


class TestThreadSafety:
    """Satellite: counter totals stay exact under the parallel engine."""

    def test_parallel_counters_exact_and_rows_identical(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "det")
            query = (
                db.scan("det")
                .map(scoring_udf, name="scored", provides={"total"}, cache=True)
                .filter(Attr("total") >= 0.0)
            )
            want = row_signature(query.patches())

            parallel = query.with_execution(workers=4, prefetch_batches=2)
            for run in range(3):
                explanation = parallel.explain(analyze=True)
                entries = explanation.profile.entries
                scan = next(e for e in entries if "Scan" in e.label)
                mapped = next(e for e in entries if "Map" in e.label)
                assert scan.rows_out == N  # no lost updates
                assert mapped.rows_out == N
                assert mapped.cache_hits + mapped.cache_misses == N
                if run > 0:
                    assert mapped.cache_hits == N
            got = row_signature(parallel.patches())
            assert got == want

    def test_concurrent_analyzed_runs_record_all(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "det")
            query = correlated_query(db)
            profiles, errors = [], []

            def hammer():
                try:
                    profiles.append(query.explain(analyze=True).profile)
                except Exception as exc:  # pragma: no cover
                    errors.append(exc)

            threads = [threading.Thread(target=hammer) for _ in range(6)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            # every run saw exactly the full scan: profiles are per-run,
            # so concurrent queries never share or corrupt counters
            for profile in profiles:
                scan = next(e for e in profile.entries if "Scan" in e.label)
                assert scan.rows_out == 60
            history = db.plan_quality_log().history(
                _fingerprint_of(query)
            )
            assert len(history) == 6


def _fingerprint_of(query):
    from repro.core import logical

    return logical.plan_parameterized_fingerprint(query.logical_plan())
