"""ANN similarity access path, end to end: SQL/fluent parity, the
costed hnsw-vs-exact decision, EXPLAIN ANALYZE grading, incremental
maintenance across reopen, SHOW INDEXES, zone-map MIN/MAX, and the
on-demand checksum scrubber."""

import numpy as np
import pytest

from repro.core import Attr
from repro.core.patch import Patch
from repro.core.session import DeepLens
from repro.errors import QueryError
from repro.storage import metadata_segment


def make_patches(n, dim=8, seed=0):
    rng = np.random.default_rng(seed)
    for i in range(n):
        patch = Patch.from_frame(
            "vid", i, rng.integers(0, 255, (4, 4, 3), dtype=np.uint8)
        )
        patch.metadata["emb"] = [float(x) for x in rng.normal(size=dim)]
        patch.metadata["label"] = "cat" if i % 2 else "dog"
        patch.metadata["score"] = float(i)
        yield patch


def brute_topk(db, collection, query, k, attr="emb"):
    query = np.asarray(query, dtype=np.float64)
    ranked = sorted(
        (np.linalg.norm(np.array(p.metadata[attr]) - query), p.patch_id)
        for p in db.scan(collection).patches()
    )
    return [pid for _, pid in ranked[:k]]


@pytest.fixture(scope="module")
def ann_db(tmp_path_factory):
    workdir = tmp_path_factory.mktemp("ann")
    with DeepLens(workdir, durability="flush") as db:
        db.materialize(make_patches(300), "objs")
        db.create_index("objs", "emb", "hnsw", params={"m": 8, "ef": 48})
        yield db


class TestSimilarityAccessPath:
    def test_sql_and_fluent_share_one_plan(self, ann_db):
        query = np.random.default_rng(1).normal(size=8)
        fluent = ann_db.scan("objs").similarity_search(query, 5, attr="emb")
        via_sql = ann_db.sql_query(
            "SELECT * FROM objs ORDER BY SIMILARITY LIMIT 5",
            query_vector=query,
            vector_attr="emb",
        )
        assert via_sql.plan_fingerprint() == fluent.plan_fingerprint()
        assert [p.patch_id for p in via_sql.patches()] == [
            p.patch_id for p in fluent.patches()
        ]

    def test_explain_shows_costed_hnsw_decision(self, ann_db):
        query = np.random.default_rng(2).normal(size=8)
        text = str(
            ann_db.scan("objs").similarity_search(query, 5, attr="emb").explain()
        )
        assert "hnsw" in text
        assert "exact-topk-scan" in text
        assert "recall" in text

    def test_explain_analyze_grades_candidate_estimate(self, ann_db):
        query = np.random.default_rng(3).normal(size=8)
        analyzed = (
            ann_db.scan("objs")
            .similarity_search(query, 5, attr="emb")
            .explain(analyze=True)
        )
        ann_lines = [
            entry.describe()
            for entry in analyzed.profile.entries
            if "ann" in entry.describe()
        ]
        assert ann_lines, "EXPLAIN ANALYZE must profile the ann operator"
        assert any("candidates" in line and "est" in line for line in ann_lines)

    def test_search_counts_probes_in_metrics(self, ann_db):
        query = np.random.default_rng(4).normal(size=8)
        before = ann_db.metrics()["counters"].get("deeplens_ann_probes_total", 0)
        ann_db.scan("objs").similarity_search(query, 3, attr="emb").patches()
        after = ann_db.metrics()["counters"]["deeplens_ann_probes_total"]
        assert after > before

    def test_exhaustive_ef_matches_brute_force(self, ann_db):
        """Differential oracle: an hnsw probe at ef >= n is exact."""
        query = np.random.default_rng(5).normal(size=8)
        index = ann_db.catalog.get_index("objs", "emb", "hnsw")
        got = [pid for _, pid in index.search(query, 10, ef=len(index))]
        assert got == brute_topk(ann_db, "objs", query, 10)

    def test_without_index_falls_back_to_exact(self, tmp_path):
        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(make_patches(60, seed=6), "plain")
            query = np.random.default_rng(6).normal(size=8)
            builder = db.scan("plain").similarity_search(query, 4, attr="emb")
            assert "exact" in str(builder.explain())
            got = [p.patch_id for p in builder.patches()]
            assert got == brute_topk(db, "plain", query, 4)

    def test_show_indexes_reports_type_params_and_rows(self, ann_db):
        rows = ann_db.sql("SHOW INDEXES")
        assert {
            "collection": "objs",
            "attr": "emb",
            "kind": "hnsw",
            "params": {"m": 8, "ef_search": 48},
            "rows": 300,
        } in rows


class TestSimilarityBinding:
    def test_desc_similarity_rejected(self, ann_db):
        with pytest.raises(QueryError, match="DESC"):
            ann_db.sql(
                "SELECT * FROM objs ORDER BY SIMILARITY DESC LIMIT 5",
                query_vector=np.zeros(8),
                vector_attr="emb",
            )

    def test_similarity_without_limit_rejected(self, ann_db):
        with pytest.raises(QueryError, match="LIMIT"):
            ann_db.sql(
                "SELECT * FROM objs ORDER BY SIMILARITY",
                query_vector=np.zeros(8),
                vector_attr="emb",
            )

    def test_similarity_without_query_vector_rejected(self, ann_db):
        with pytest.raises(QueryError, match="query_vector"):
            ann_db.sql("SELECT * FROM objs ORDER BY SIMILARITY LIMIT 5")


class TestIncrementalMaintenance:
    def test_add_after_create_index_survives_reopen(self, tmp_path):
        target = [50.0] * 8
        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(make_patches(80, seed=7), "objs")
            db.create_index("objs", "emb", "hnsw", params={"m": 8})
            extra = Patch.from_frame(
                "vid", 99, np.zeros((4, 4, 3), np.uint8)
            )
            extra.metadata["emb"] = list(target)
            extra.metadata["label"] = "new"
            extra.metadata["score"] = 99.0
            new_id = db.catalog.collection("objs").add(extra)
            got = db.scan("objs").similarity_search(target, 1, attr="emb")
            assert [p.patch_id for p in got.patches()] == [new_id]
        with DeepLens(tmp_path, durability="flush") as db:
            index = db.catalog.get_index("objs", "emb", "hnsw")
            assert new_id in index
            assert len(index) == 81
            got = db.scan("objs").similarity_search(target, 1, attr="emb")
            assert [p.patch_id for p in got.patches()] == [new_id]


class TestZoneMapMinMax:
    def test_min_max_never_decode_sealed_blocks(self, tmp_path, monkeypatch):
        monkeypatch.setattr(metadata_segment, "BLOCK_ROWS", 32)
        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(make_patches(100, seed=8), "objs")
            counters = lambda: db.metrics()["counters"].get(  # noqa: E731
                "deeplens_zonemap_blocks_scanned_total", 0
            )
            before = counters()
            assert db.scan("objs").min_of("score") == 0.0
            assert db.scan("objs").max_of("score") == 99.0
            assert db.sql("SELECT MIN(score) FROM objs") == 0.0
            assert db.sql("SELECT MAX(label) FROM objs") == "dog"
            assert counters() == before, "MIN/MAX must come from block zones"

    def test_unprovable_zones_fall_back_to_decode(self, tmp_path, monkeypatch):
        monkeypatch.setattr(metadata_segment, "BLOCK_ROWS", 16)

        def mixed(n):
            for i, patch in enumerate(make_patches(n, seed=9)):
                # strings and numbers interleave: zones cannot order them
                patch.metadata["mixed"] = i if i % 2 else f"s{i}"
                yield patch

        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(mixed(48), "objs")
            before = db.metrics()["counters"].get(
                "deeplens_zonemap_blocks_scanned_total", 0
            )
            # a filtered aggregate is ineligible for the zone shortcut:
            # it decodes blocks and still answers correctly
            narrowed = db.scan("objs").filter(Attr("score") >= 10.0)
            assert narrowed.min_of("score") == 10.0
            after = db.metrics()["counters"].get(
                "deeplens_zonemap_blocks_scanned_total", 0
            )
            assert after > before, "filtered MIN must decode blocks"
            # mixed-type zones cannot prove bounds; the fallback surfaces
            # the incomparability instead of answering from zones
            with pytest.raises(QueryError, match="incomparable"):
                db.scan("objs").min_of("mixed")


class TestScrub:
    def test_clean_database_scrubs_clean(self, tmp_path):
        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(make_patches(40, seed=10), "objs")
            report = db.scrub()
            assert report["errors"] == []
            assert report["pages_checked"] > 0
            assert report["records_checked"] >= 40

    def test_scrub_detects_flipped_heap_byte(self, tmp_path):
        with DeepLens(tmp_path, durability="flush") as db:
            db.materialize(make_patches(40, seed=11), "objs")
        heap_path = tmp_path / "catalog" / "patches.heap"
        size = heap_path.stat().st_size
        with open(heap_path, "r+b") as file:
            file.seek(size // 2)
            byte = file.read(1)
            file.seek(size // 2)
            file.write(bytes([byte[0] ^ 0xFF]))
        with DeepLens(tmp_path, durability="flush") as db:
            detected = lambda: sum(  # noqa: E731
                count
                for key, count in db.metrics()["counters"].items()
                if key.startswith("deeplens_corruption_detected_total")
            )
            before = detected()
            report = db.scrub()
            assert report["errors"]
            assert any(
                e["kind"] == "scrub_corruption"
                for e in db.recovery_report()["events"]
            )
            assert detected() > before
