"""Materialization manager: derived views, cost-based view reuse,
lineage-driven invalidation, and the catalog-persisted UDF result store."""

import numpy as np
import pytest

from repro.core import Attr, DeepLens, PersistentUDFCache
from repro.core import logical
from repro.core.catalog import Catalog
from repro.core.materialization import view_fingerprint
from repro.core.patch import Patch
from repro.errors import QueryError, StorageError


def make_patches(n=40, source="vid"):
    for i in range(n):
        patch = Patch.from_frame(source, i, np.full((4, 4, 3), i % 7, np.uint8))
        patch.metadata["label"] = "vehicle" if i % 4 == 0 else "person"
        patch.metadata["score"] = float(i)
        yield patch


# module-level UDFs: their identity (module.qualname) survives reopen,
# which cross-session view matching and UDF-result persistence rely on
def brighten(patch):
    return patch.derive(
        patch.data, "brighten", brightness=float(patch.data.mean())
    )


CALLS = {"n": 0}


def counting_udf(patch):
    CALLS["n"] += 1
    return patch.derive(patch.data, "count", tagged=True)


def exploding_udf(patch):
    return [
        patch.derive(patch.data, "explode", part=i) for i in range(3)
    ]


def dropping_udf(patch):
    if patch["label"] == "person":
        return None
    return patch.derive(patch.data, "keep", kept=True)


def poisonable_udf(patch):
    if patch["label"] == "poison":
        raise RuntimeError("model blew up")
    return patch.derive(patch.data, "poison", ok=True)


@pytest.fixture
def db(tmp_path):
    with DeepLens(tmp_path) as session:
        session.materialize(make_patches(), "c")
        yield session


def bright_query(db):
    return db.scan("c").map(
        brighten, name="brighten", provides={"brightness"}
    )


class TestViewRegistry:
    def test_materialize_view_is_a_real_collection(self, db):
        db.materialize_view("v", bright_query(db))
        assert db.views() == ["v"]
        collection = db.collection("v")
        assert len(collection) == 40
        assert all(
            "brightness" in p.metadata for p in collection.scan()
        )
        # views are profiled like any collection
        assert db.statistics("v").row_count == 40

    def test_definition_records_lineage_and_fingerprint(self, db):
        db.materialize_view("v", bright_query(db))
        definition = db.view("v")
        assert definition.bases == {"c": db.catalog.collection_version("c")}
        assert definition.fingerprint == view_fingerprint(
            bright_query(db).logical_plan()
        )
        assert definition.portable
        assert definition.row_count == 40
        assert "Map(brighten)" in definition.plan_text

    def test_duplicate_view_rejected_then_replaced(self, db):
        db.materialize_view("v", bright_query(db))
        with pytest.raises(StorageError, match="already exists"):
            db.materialize_view("v", bright_query(db))
        db.materialize_view("v", bright_query(db), replace=True)
        assert len(db.collection("v")) == 40

    def test_drop_view_unregisters_but_keeps_collection(self, db):
        db.materialize_view("v", bright_query(db))
        db.drop_view("v")
        assert db.views() == []
        assert len(db.collection("v")) == 40  # data stays
        with pytest.raises(QueryError, match="no materialized view"):
            db.view("v")

    def test_aggregate_and_join_plans_rejected(self, db):
        plan = logical.Aggregate(
            logical.Scan("c"), "count"
        )
        with pytest.raises(QueryError, match="scalars"):
            db.materialization.materialize_view("v", plan)
        join = db.scan("c").similarity_join(
            "c", threshold=0.0, features=lambda p: np.zeros(2), dim=2
        )
        with pytest.raises(QueryError, match="arity-1"):
            db.materialize_view("v", join)

    def test_self_referential_view_rejected(self, db):
        db.materialize_view("v", bright_query(db))
        with pytest.raises(QueryError, match="over itself"):
            db.materialize_view("v", db.scan("v").limit(3), replace=True)


class TestViewReuse:
    def test_matching_prefix_rewritten_with_cost_comparison(self, db):
        db.materialize_view("v", bright_query(db))
        query = bright_query(db).filter(Attr("label") == "vehicle")
        explanation = query.explain()
        assert any(
            "view-match: rewrote" in line and "'v'" in line
            for line in explanation.rewrites
        )
        # the decision shows both costs, view-scan winning
        kinds = {c.kind for c in explanation.candidates}
        assert {"view-scan", "recompute"} <= kinds
        view_choice = next(
            c for c in explanation.candidates if c.kind == "view-scan"
        )
        recompute = next(
            c for c in explanation.candidates if c.kind == "recompute"
        )
        assert view_choice.cost_seconds < recompute.cost_seconds
        assert "Scan(v)" in explanation.logical_plan
        # and the answers match the recomputing plan
        assert query.count() == 10

    def test_view_served_rows_equal_recomputed_rows(self, db):
        db.materialize_view("v", bright_query(db))
        reused = bright_query(db).filter(Attr("score") >= 20.0).patches()
        recomputed = (
            db.scan("c")
            .filter(Attr("score") >= 20.0)
            .map(brighten, name="brighten", provides={"brightness"})
            .patches()
        )
        key = lambda p: (p["frameno"], p["brightness"])
        assert sorted(key(p) for p in reused) == sorted(
            key(p) for p in recomputed
        )

    def test_fingerprint_survives_equivalent_rewrites(self, db):
        # filter written above the map vs below: push-down erases the
        # difference, so both shapes share a fingerprint and both match
        above = bright_query(db).filter(Attr("label") == "vehicle")
        below = db.scan("c").filter(Attr("label") == "vehicle").map(
            brighten, name="brighten", provides={"brightness"}
        )
        assert view_fingerprint(above.logical_plan()) == view_fingerprint(
            below.logical_plan()
        )
        db.materialize_view("v", above)
        assert any(
            "view-match: rewrote" in line for line in below.explain().rewrites
        )

    def test_non_matching_query_untouched(self, db):
        db.materialize_view("v", bright_query(db))
        other = db.scan("c").filter(Attr("label") == "person")
        explanation = other.explain()
        assert not any("view-match" in line for line in explanation.rewrites)
        assert "Scan(c)" in explanation.logical_plan

    def test_recompute_chosen_when_cheaper(self, db):
        # a 3x-exploding UDF priced at zero: scanning the (larger) view
        # models as more expensive than recomputing the base
        query = db.scan("c").map(exploding_udf, name="explode")
        db.materialize_view("v", query)
        db.optimizer.cost.udf_per_patch = 0.0
        explanation = query.explain()
        assert any(
            "recomputation is cheaper" in line for line in explanation.rewrites
        )
        assert "Scan(v)" not in explanation.logical_plan
        assert query.count() == 120

    def test_aggregate_over_view_prefix(self, db):
        db.materialize_view("v", bright_query(db))
        assert bright_query(db).aggregate("count") == 40
        # dropped-row UDF views reuse too
        db.materialize_view(
            "kept", db.scan("c").map(dropping_udf, name="keep")
        )
        q = db.scan("c").map(dropping_udf, name="keep")
        assert any(
            "view-match: rewrote" in line and "'kept'" in line
            for line in q.explain().rewrites
        )
        assert q.count() == 10


class TestInvalidation:
    def test_base_add_marks_view_stale(self, db):
        db.materialize_view("v", bright_query(db))
        assert not db.view_is_stale("v")
        db.collection("c").add(next(make_patches(1)))
        assert db.view_is_stale("v")
        assert db.materialization.stale_bases("v") == ["c"]

    def test_stale_view_not_used_by_default(self, db):
        db.materialize_view("v", bright_query(db))
        db.collection("c").add(next(make_patches(1)))
        query = bright_query(db)
        explanation = query.explain()
        assert any(
            "stale" in line and "recomputing" in line
            for line in explanation.rewrites
        )
        assert "Scan(v)" not in explanation.logical_plan
        # recomputation sees the new row; the stale view would not
        assert query.count() == 41

    def test_allow_stale_opts_into_old_rows(self, db):
        db.materialize_view("v", bright_query(db))
        db.collection("c").add(next(make_patches(1)))
        query = bright_query(db).allow_stale()
        explanation = query.explain()
        assert any("stale tolerated" in line for line in explanation.rewrites)
        assert query.count() == 40  # the view's snapshot, missing the add

    def test_refresh_restores_freshness_and_reuse(self, db):
        db.materialize_view("v", bright_query(db))
        db.collection("c").add(next(make_patches(1)))
        db.refresh_view("v")
        assert not db.view_is_stale("v")
        assert len(db.collection("v")) == 41
        query = bright_query(db)
        assert any(
            "view-match: rewrote" in line for line in query.explain().rewrites
        )
        assert query.count() == 41

    def test_failed_refresh_preserves_old_snapshot(self, db):
        """A UDF failure during refresh must not leave a half-built view:
        the plan executes eagerly before the old rows are replaced."""
        query = db.scan("c").map(poisonable_udf, name="poison")
        db.materialize_view("v", query)
        assert len(db.collection("v")) == 40
        bad = next(make_patches(1))
        bad.metadata["label"] = "poison"
        db.collection("c").add(bad)
        with pytest.raises(RuntimeError, match="model blew up"):
            db.refresh_view("v")
        # old snapshot and definition intact; the view is still stale
        assert len(db.collection("v")) == 40
        assert db.view("v").row_count == 40
        assert db.view_is_stale("v")

    def test_replace_of_base_invalidates_view(self, db):
        """Replacing a base collection — even with an empty one — is a
        mutation: dependent views must go stale."""
        db.materialize_view("v", bright_query(db))
        db.materialize([], "c", replace=True)
        assert db.view_is_stale("v")

    def test_statistics_surface_staleness(self, db):
        assert db.statistics("c").stale is False
        assert db.statistics("c").staleness == 0
        db.collection("c").add(next(make_patches(1)))
        db.collection("c").add(next(make_patches(1)))
        stats = db.statistics("c")
        assert stats.stale is True
        assert stats.staleness == 2
        # a full rebuild re-baselines the counter (stats now reflect
        # every row) without touching view invalidation
        db.materialize_view("v", bright_query(db))
        db.collection("c").add(next(make_patches(1)))
        db.rebuild_statistics("c")
        assert db.statistics("c").stale is False
        assert db.view_is_stale("v")  # the view still predates the add


class TestPersistenceAcrossSessions:
    def test_view_round_trip_reopen_still_rewrites(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.materialize_view("v", bright_query(db))
        with DeepLens(tmp_path) as db:
            assert db.views() == ["v"]
            definition = db.view("v")
            assert definition.bases == {"c": 40}
            query = bright_query(db).filter(Attr("label") == "vehicle")
            explanation = query.explain()
            assert any(
                "view-match: rewrote" in line for line in explanation.rewrites
            ), explanation.rewrites
            assert "Scan(v)" in explanation.logical_plan
            assert query.count() == 10

    def test_staleness_survives_reopen(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.materialize_view("v", bright_query(db))
            db.collection("c").add(next(make_patches(1)))
        with DeepLens(tmp_path) as db:
            assert db.view_is_stale("v")
            assert db.statistics("c").staleness == 1
            # refresh needs the defining query back (callables are gone)
            with pytest.raises(QueryError, match="another session"):
                db.refresh_view("v")
            db.refresh_view("v", bright_query(db))
            assert not db.view_is_stale("v")
            assert len(db.collection("v")) == 41

    def test_refresh_rejects_mismatched_query(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.materialize_view("v", bright_query(db))
        with DeepLens(tmp_path) as db:
            wrong = db.scan("c").filter(Attr("label") == "person")
            with pytest.raises(QueryError, match="does not match"):
                db.refresh_view("v", wrong)

    def test_lambda_views_do_not_match_after_reopen(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            query = db.scan("c").map(
                lambda p: p.derive(p.data, "anon", anon=1.0), name="anon"
            )
            db.materialize_view("v", query)
            assert db.view("v").portable is False
            # within the defining session the lambda's identity holds
            assert any(
                "view-match: rewrote" in line for line in query.explain().rewrites
            )
        with DeepLens(tmp_path) as db:
            fresh = db.scan("c").map(
                lambda p: p.derive(p.data, "anon", anon=1.0), name="anon"
            )
            assert not any(
                "view-match" in line for line in fresh.explain().rewrites
            )


class TestPersistentUDFCache:
    def test_results_served_across_sessions(self, tmp_path):
        CALLS["n"] = 0
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.scan("c").map(counting_udf, name="count", cache=True).patches()
            assert CALLS["n"] == 40
            assert db.udf_cache.persisted_count() == 40
        with DeepLens(tmp_path) as db:
            result = (
                db.scan("c").map(counting_udf, name="count", cache=True).patches()
            )
            assert CALLS["n"] == 40  # no model invocations at all
            assert db.udf_cache.disk_hits == 40
            assert db.udf_cache.hits == 40
            assert len(result) == 40
            assert all(p["tagged"] for p in result)

    def test_none_and_list_results_round_trip(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            drop = db.scan("c").map(dropping_udf, name="drop", cache=True)
            explode = db.scan("c").map(exploding_udf, name="explode", cache=True)
            assert drop.count() == 10
            assert explode.count() == 120
        with DeepLens(tmp_path) as db:
            drop = db.scan("c").map(dropping_udf, name="drop", cache=True)
            explode = db.scan("c").map(exploding_udf, name="explode", cache=True)
            assert drop.count() == 10
            assert explode.count() == 120
            assert db.udf_cache.disk_hits == 80
            parts = explode.patches()
            assert sorted({p["part"] for p in parts}) == [0, 1, 2]

    def test_lambdas_stay_memory_only(self, db):
        db.scan("c").map(
            lambda p: p.derive(p.data, "anon", anon=1.0), name="anon", cache=True
        ).patches()
        assert db.udf_cache.persisted_count() == 0
        assert db.udf_cache.misses == 40

    def test_lru_eviction_backstopped_by_disk(self, tmp_path):
        CALLS["n"] = 0
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.udf_cache = PersistentUDFCache(db.catalog, max_entries=5)
            db.materialization.udf_cache = db.udf_cache
            query = db.scan("c").map(counting_udf, name="count", cache=True)
            query.patches()
            assert CALLS["n"] == 40
            assert len(db.udf_cache) == 5  # memory stays bounded
            assert db.udf_cache.persisted_count() == 40
            query.patches()  # evicted entries come back from the catalog
            assert CALLS["n"] == 40
            assert db.udf_cache.disk_hits >= 35

    def test_batch_and_row_paths_share_disk_entries(self, tmp_path):
        CALLS["n"] = 0

        def batch(patches):
            return [counting_udf(p) for p in patches]

        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(), "c")
            db.scan("c").map(
                counting_udf, name="count", batch_fn=batch, cache=True
            ).patches()
            assert CALLS["n"] == 40
        with DeepLens(tmp_path) as db:
            db.scan("c").map(
                counting_udf, name="count", batch_fn=batch, cache=True
            ).patches(batch_size=8)
            assert CALLS["n"] == 40
            assert db.udf_cache.disk_hits == 40


class TestCallableIdentity:
    @staticmethod
    def _named(source):
        """A function that *looks* module-level (portable) but whose body
        we control — simulating an edited UDF across sessions."""
        namespace = {}
        exec(source, namespace)
        fn = namespace["udf"]
        fn.__module__ = "fakemod"
        fn.__qualname__ = "udf"
        return fn

    def test_identity_tracks_function_body(self):
        """Editing a UDF's source (even just a constant) must change its
        identity, or the persistent cache and view fingerprints would
        silently serve results of the old code."""
        one = self._named("def udf(p): return 1.0")
        two = self._named("def udf(p): return 2.0")
        same = self._named("def udf(p): return 1.0")
        assert logical.callable_identity(one) != logical.callable_identity(two)
        assert logical.callable_identity(one) == logical.callable_identity(same)
        defaults = self._named("def udf(p, k=3): return k")
        redefaults = self._named("def udf(p, k=4): return k")
        assert logical.callable_identity(defaults) != logical.callable_identity(
            redefaults
        )

    def test_identity_is_deterministic_for_builtins(self):
        assert logical.callable_identity(len) == logical.callable_identity(len)
        assert "#" not in logical.callable_identity(len)  # portable form

    def test_edited_udf_misses_persistent_cache(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(5), "c")
            v1 = self._named("def udf(p): return p.derive(p.data, 'u', out=1.0)")
            db.scan("c").map(v1, name="u", cache=True).patches()
            assert db.udf_cache.persisted_count() == 5
        with DeepLens(tmp_path) as db:
            v2 = self._named("def udf(p): return p.derive(p.data, 'u', out=2.0)")
            result = db.scan("c").map(v2, name="u", cache=True).patches()
            assert db.udf_cache.disk_hits == 0  # old results not served
            assert all(p["out"] == 2.0 for p in result)


class TestCollectionVersions:
    def test_versions_persist_and_advance(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(3), "c")
            assert catalog.collection_version("c") == 3
            assert catalog.mutations_since_fresh("c") == 0
            catalog.collection("c").add(next(make_patches(1)))
            assert catalog.collection_version("c") == 4
            assert catalog.mutations_since_fresh("c") == 1
        with Catalog(tmp_path) as catalog:
            assert catalog.collection_version("c") == 4
            assert catalog.mutations_since_fresh("c") == 1

    def test_replace_keeps_versions_monotone(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(5), "c")
            version = catalog.collection_version("c")
            catalog.materialize(make_patches(2), "c", replace=True)
            assert catalog.collection_version("c") > version
            assert catalog.mutations_since_fresh("c") == 0
