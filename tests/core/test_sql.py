"""LensQL frontend tests: lexer, parser, binder, and SQL/fluent equivalence.

The load-bearing properties:

* **round-trip** — generated AST -> ``to_sql()`` -> ``parse`` -> the same
  AST, and binding both yields the same ``plan_fingerprint`` (Hypothesis);
* **equivalence** — the quickstart queries written in SQL and with the
  fluent builder produce identical ``explain()`` output, identical plan
  fingerprints, and identical rows;
* **positioned errors** — every lexer/parser/binder failure is a
  :class:`ParseError` / :class:`BindError` carrying line/column and a
  caret-annotated excerpt, never a bare ValueError.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import Attr, DeepLens, attribute_key
from repro.core.expressions import Comparison
from repro.core.patch import Patch
from repro.core.sql import ast, parse, tokenize
from repro.core.sql.lexer import EOF, IDENT, KEYWORD, NUMBER, STRING
from repro.core.statistics import EQ_SELECTIVITY, fallback_estimate
from repro.errors import BindError, ParseError, QueryError


def tint(patch):
    """Module-level test UDF (portable identity, like real model UDFs)."""
    return patch.derive(
        patch.data, "tint", tint=float(patch.data.mean()) * 0.5
    )


def vecfeat(patch):
    """Feature extractor for ON clauses: a 2-d point per patch."""
    return np.array([float(patch["score"]) % 5.0, 0.0])


def make_patches(n=30):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 7, np.uint8))
        patch.metadata["label"] = "vehicle" if i % 3 == 0 else "person"
        patch.metadata["score"] = float(i)
        patch.metadata["tag"] = ("fast", "red") if i % 5 == 0 else ("slow",)
        yield patch


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    with DeepLens(tmp_path_factory.mktemp("sql-db")) as session:
        session.materialize(make_patches(), "c")
        session.register_udf(
            "tint", tint, provides={"tint"}, one_to_one=True, cache=True
        )
        session.register_udf("vecfeat", vecfeat)
        yield session


# -- lexer ---------------------------------------------------------------------


class TestLexer:
    def test_token_stream_and_positions(self):
        tokens = tokenize("SELECT label\nFROM c")
        kinds = [(t.type, t.value) for t in tokens]
        assert kinds == [
            (KEYWORD, "SELECT"),
            (IDENT, "label"),
            (KEYWORD, "FROM"),
            (IDENT, "c"),
            (EOF, ""),
        ]
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[2].line, tokens[2].column) == (2, 1)
        assert (tokens[3].line, tokens[3].column) == (2, 6)

    def test_keywords_case_insensitive(self):
        assert tokenize("select")[0].value == "SELECT"
        assert tokenize("SeLeCt")[0].value == "SELECT"

    def test_string_escapes_and_numbers(self):
        tokens = tokenize("'it''s' 3 2.5 1e-3")
        assert tokens[0].type == STRING and tokens[0].value == "it's"
        assert tokens[1].number == 3 and isinstance(tokens[1].number, int)
        assert tokens[2].number == 2.5
        assert tokens[3].number == pytest.approx(1e-3)

    def test_quoted_identifier_and_comment(self):
        tokens = tokenize('"select" -- a comment\nx')
        assert tokens[0].type == IDENT and tokens[0].value == "select"
        assert tokens[1].value == "x"

    def test_unterminated_string_has_position(self):
        with pytest.raises(ParseError) as excinfo:
            tokenize("SELECT 'oops")
        assert excinfo.value.line == 1
        assert excinfo.value.column == 8
        assert "^" in str(excinfo.value)

    def test_unexpected_character(self):
        with pytest.raises(ParseError, match="unexpected character"):
            tokenize("SELECT @")

    def test_number_token_carries_value(self):
        assert tokenize("42")[0].type == NUMBER


# -- parser --------------------------------------------------------------------


class TestParser:
    def test_full_select(self):
        statement = parse(
            "SELECT label, frameno FROM c WHERE score >= 5 AND label = "
            "'vehicle' ORDER BY score DESC LIMIT 3"
        )
        assert isinstance(statement, ast.Select)
        assert statement.items == (
            ast.ColumnRef("label"),
            ast.ColumnRef("frameno"),
        )
        assert statement.source == ast.TableRef("c")
        assert isinstance(statement.where, ast.And)
        assert statement.order_by == ast.OrderSpec("score", True)
        assert statement.limit == 3

    def test_operator_normalization(self):
        a = parse("SELECT * FROM c WHERE x = 1")
        b = parse("SELECT * FROM c WHERE x == 1")
        assert a == b
        a = parse("SELECT * FROM c WHERE x <> 1")
        b = parse("SELECT * FROM c WHERE x != 1")
        assert a == b

    def test_precedence_and_parens(self):
        flat = parse("SELECT * FROM c WHERE a = 1 OR b = 2 AND d = 3")
        assert isinstance(flat.where, ast.Or)
        assert isinstance(flat.where.children[1], ast.And)
        grouped = parse("SELECT * FROM c WHERE (a = 1 OR b = 2) AND d = 3")
        assert isinstance(grouped.where, ast.And)
        assert isinstance(grouped.where.children[0], ast.Or)

    def test_between_in_contains_not(self):
        statement = parse(
            "SELECT * FROM c WHERE a BETWEEN 1 AND 5 AND b IN (1, 'x', "
            "NULL) AND tag CONTAINS 'fast' AND NOT d = 2 AND e NOT IN (7)"
        )
        kinds = [type(child) for child in statement.where.children]
        assert kinds == [ast.Between, ast.InList, ast.Contains, ast.Not, ast.Not]
        assert statement.where.children[1].items[2].value is None
        assert isinstance(statement.where.children[4].child, ast.InList)

    def test_negative_and_boolean_literals(self):
        statement = parse("SELECT * FROM c WHERE a > -2.5 AND b = TRUE")
        assert statement.where.children[0].value.value == -2.5
        assert statement.where.children[1].value.value is True

    def test_aggregates(self):
        assert parse("SELECT count(*) FROM c").items == (
            ast.AggregateCall("count"),
        )
        assert parse("SELECT COUNT(DISTINCT label) FROM c").items == (
            ast.AggregateCall("distinct_count", "label"),
        )
        assert parse("SELECT avg(score) FROM c").items == (
            ast.AggregateCall("avg", "score"),
        )

    def test_similarity_join_clause(self):
        statement = parse(
            "SELECT * FROM c SIMILARITY JOIN d ON vecfeat WITHIN 2.5 "
            "DIM 2 TOP 10 EXCLUDE SELF WHERE left.label = 'x'"
        )
        join = statement.join
        assert join.right == ast.TableRef("d")
        assert join.on == "vecfeat"
        assert join.threshold == 2.5
        assert (join.dim, join.top, join.exclude_self) == (2, 10, True)
        assert statement.where.column.side == "left"

    def test_join_subselect(self):
        statement = parse(
            "SELECT * FROM c SIMILARITY JOIN "
            "(SELECT * FROM d WHERE score > 1) WITHIN 1.0"
        )
        assert isinstance(statement.join.right, ast.Select)

    def test_statements(self):
        assert parse("EXPLAIN SELECT * FROM c") == ast.Explain(
            ast.Select((ast.Star(),), ast.TableRef("c"))
        )
        create = parse(
            "CREATE OR REPLACE MATERIALIZED VIEW v AS SELECT * FROM c"
        )
        assert create.name == "v" and create.replace is True
        refresh = parse("REFRESH VIEW v AS SELECT * FROM c")
        assert refresh.name == "v" and refresh.select is not None
        assert parse("DROP VIEW v") == ast.DropView("v")
        index = parse("CREATE INDEX ON c (label) USING hash")
        assert (index.collection, index.attr, index.kind) == ("c", "label", "hash")
        assert parse("CREATE INDEX ON c (score)").kind == "btree"
        assert parse("SHOW COLLECTIONS") == ast.Show("collections")
        assert parse("SHOW VIEWS;") == ast.Show("views")
        assert parse("SHOW STATS FOR c") == ast.Show("stats", "c")

    def test_parse_error_position_and_caret(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT label detections WHERE x = 1")
        error = excinfo.value
        assert isinstance(error, QueryError)
        assert (error.line, error.column) == (1, 14)
        assert error.excerpt.splitlines()[1].startswith(" " * 13 + "^")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError, match="trailing"):
            parse("SELECT * FROM c nonsense")

    def test_limit_must_be_integer(self):
        with pytest.raises(ParseError, match="non-negative integer"):
            parse("SELECT * FROM c LIMIT 2.5")

    def test_empty_statement(self):
        with pytest.raises(ParseError, match="expected a statement"):
            parse("")


# -- canonical rendering / round-trip -----------------------------------------


FIXED_ROUND_TRIPS = [
    "SELECT * FROM c",
    "SELECT label, frameno FROM c WHERE label = 'vehicle' "
    "ORDER BY score DESC LIMIT 3",
    "SELECT *, tint() FROM c",
    "SELECT count(*) FROM c WHERE score < 10",
    "SELECT COUNT(DISTINCT frameno) FROM c",
    "SELECT AVG(score) FROM c WHERE label != 'person'",
    "SELECT * FROM c WHERE (a = 1 OR b = 2) AND NOT d BETWEEN 1 AND 5",
    "SELECT * FROM c WHERE tag CONTAINS 'fast' AND b IN (1, 2.5, 'x', NULL)",
    "SELECT * FROM c SIMILARITY JOIN c ON vecfeat WITHIN 2.5 TOP 4 "
    "EXCLUDE SELF WHERE left.label = 'vehicle' AND right.score > 2",
    "EXPLAIN SELECT * FROM c WHERE score >= -1",
    "CREATE MATERIALIZED VIEW v AS SELECT *, tint() FROM c",
    "REFRESH VIEW v",
    "DROP VIEW v",
    "CREATE INDEX ON c (label) USING hash",
    "SHOW STATS FOR c",
]


@pytest.mark.parametrize("sql", FIXED_ROUND_TRIPS)
def test_fixed_round_trip(sql):
    statement = parse(sql)
    rendered = statement.to_sql()
    assert parse(rendered) == statement
    # canonical form is a fixpoint
    assert parse(rendered).to_sql() == rendered


def test_round_trip_hostile_characters():
    # multi-line string literals (standard SQL) survive rendering
    node = ast.Select(
        (ast.Star(),),
        ast.TableRef("c"),
        where=ast.Comparison(
            ast.ColumnRef("label"), "==", ast.Literal("line1\nline2")
        ),
    )
    assert parse(node.to_sql()) == node
    # double quotes inside quoted identifiers escape as ""
    node = ast.Select((ast.ColumnRef('we"ird'),), ast.TableRef('ta"ble'))
    assert parse(node.to_sql()) == node
    tokens = tokenize('"a""b"')
    assert tokens[0].value == 'a"b'


# -- Hypothesis: generated AST -> to_sql -> parse -> equal AST ----------------

_names = st.one_of(
    st.sampled_from(["label", "score", "frameno", "tag"]),
    st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,8}", fullmatch=True),
)
_strings = st.text(
    alphabet=st.characters(
        codec="ascii", exclude_characters="\n\r", exclude_categories=("C",)
    ),
    max_size=12,
)
_numbers = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=64),
)
_scalars = st.one_of(_strings, _numbers, st.booleans(), st.none())


def _literal(values=_scalars):
    return st.builds(ast.Literal, values)


_column = st.builds(ast.ColumnRef, _names)

_leaf = st.one_of(
    st.builds(
        ast.Comparison,
        _column,
        st.sampled_from(ast.COMPARISON_OPS),
        _literal(),
    ),
    st.builds(ast.Between, _column, _literal(_numbers), _literal(_numbers)),
    st.builds(
        ast.InList,
        _column,
        st.lists(_literal(), min_size=1, max_size=4).map(tuple),
    ),
    st.builds(ast.Contains, _column, _literal(_strings)),
)

_expr = st.recursive(
    _leaf,
    lambda children: st.one_of(
        st.builds(ast.Not, children),
        st.builds(
            ast.And, st.lists(children, min_size=2, max_size=3).map(tuple)
        ),
        st.builds(
            ast.Or, st.lists(children, min_size=2, max_size=3).map(tuple)
        ),
    ),
    max_leaves=6,
)

_plain_items = st.one_of(
    st.just((ast.Star(),)),
    st.just((ast.Star(), ast.UdfCall("tint"))),
    st.lists(
        st.one_of(st.builds(ast.ColumnRef, _names), st.just(ast.UdfCall("tint"))),
        min_size=1,
        max_size=3,
    ).map(tuple),
    st.one_of(
        st.just((ast.AggregateCall("count"),)),
        st.builds(
            lambda a: (ast.AggregateCall("distinct_count", a),),
            # aggregate attributes are bind-validated against the
            # collection's statistics, so draw from profiled ones
            st.sampled_from(["label", "score", "frameno", "tag"]),
        ),
        st.builds(
            lambda a: (ast.AggregateCall("avg", a),),
            # AVG targets are bind-validated as numeric
            st.sampled_from(["score", "frameno"]),
        ),
    ),
)

_order = st.one_of(st.none(), st.builds(ast.OrderSpec, _names, st.booleans()))
_limit = st.one_of(st.none(), st.integers(0, 50))

_subselect = st.builds(
    ast.Select,
    items=st.just((ast.Star(),)),
    source=st.just(ast.TableRef("c")),
    join=st.none(),
    where=st.one_of(st.none(), _expr),
    order_by=st.none(),
    limit=_limit,
)

_join = st.builds(
    ast.SimilarityJoinClause,
    right=st.one_of(st.just(ast.TableRef("c")), _subselect),
    threshold=st.floats(0.1, 10.0, allow_nan=False),
    on=st.one_of(st.none(), st.just("vecfeat")),
    dim=st.one_of(st.none(), st.integers(1, 64)),
    top=st.one_of(st.none(), st.integers(0, 9)),
    exclude_self=st.booleans(),
)


@st.composite
def _selects(draw):
    joined = draw(st.booleans())
    if joined:
        items: tuple = (ast.Star(),)
        join = draw(_join)
    else:
        items = draw(_plain_items)
        join = None
    aggregated = any(isinstance(item, ast.AggregateCall) for item in items)
    if aggregated and joined:
        # only COUNT(*) may aggregate pair rows
        items = (ast.AggregateCall("count"),)
    return ast.Select(
        items=items,
        source=ast.TableRef("c"),
        # unqualified WHERE/ORDER BY attributes above a join are
        # BindErrors (ambiguous side); sides are covered by fixed tests
        join=join,
        where=None if joined else draw(st.one_of(st.none(), _expr)),
        # ORDER BY/LIMIT on an aggregate's scalar result is a BindError
        order_by=None if aggregated or joined else draw(_order),
        limit=None if aggregated else draw(_limit),
    )


@given(statement=_selects())
@settings(
    deadline=None, suppress_health_check=[HealthCheck.function_scoped_fixture]
)
def test_round_trip_property(db, statement):
    """AST -> to_sql -> parse gives the same AST; binding the original
    and the reparsed statement gives the same plan fingerprint."""
    rendered = statement.to_sql()
    reparsed = parse(rendered)
    assert reparsed == statement
    assert reparsed.to_sql() == rendered
    from repro.core.sql import Binder

    first = Binder(db, rendered).bind(statement)
    second = Binder(db, rendered).bind(reparsed)
    assert first.plan_fingerprint() == second.plan_fingerprint()


# -- binder --------------------------------------------------------------------


class TestBinder:
    def test_unknown_collection(self, db):
        with pytest.raises(BindError) as excinfo:
            db.sql("SELECT * FROM nope")
        assert "nope" in str(excinfo.value)
        assert (excinfo.value.line, excinfo.value.column) == (1, 15)
        assert "^" in str(excinfo.value)

    def test_unknown_udf(self, db):
        with pytest.raises(BindError, match="no registered UDF"):
            db.sql("SELECT mystery() FROM c")

    def test_unknown_view(self, db):
        with pytest.raises(BindError, match="no materialized view"):
            db.sql("DROP VIEW ghost")

    def test_aggregate_must_be_sole_item(self, db):
        with pytest.raises(BindError, match="only select item"):
            db.sql("SELECT label, count(*) FROM c")

    def test_star_mixes_only_with_udfs(self, db):
        with pytest.raises(BindError, match="UDF calls"):
            db.sql("SELECT *, label FROM c")

    def test_side_qualifier_outside_join(self, db):
        with pytest.raises(BindError, match="outside a similarity join"):
            db.sql("SELECT * FROM c WHERE left.label = 'x'")

    def test_mixed_sides_in_one_conjunct(self, db):
        with pytest.raises(BindError, match="one side only"):
            db.sql(
                "SELECT * FROM c SIMILARITY JOIN c WITHIN 1.0 "
                "WHERE left.score > 1 OR right.score > 1"
            )

    def test_unknown_side(self, db):
        with pytest.raises(BindError, match="unknown join side"):
            db.sql(
                "SELECT * FROM c SIMILARITY JOIN c WITHIN 1.0 "
                "WHERE middle.score > 1"
            )

    def test_unqualified_attr_above_join_is_ambiguous(self, db):
        with pytest.raises(BindError, match="left.attr or right.attr"):
            db.sql(
                "SELECT * FROM c SIMILARITY JOIN c WITHIN 1.0 "
                "WHERE label = 'vehicle'"
            )

    def test_order_by_above_join_is_ambiguous(self, db):
        with pytest.raises(BindError, match="left side only"):
            db.sql(
                "SELECT * FROM c SIMILARITY JOIN c WITHIN 1.0 "
                "ORDER BY score DESC"
            )

    def test_only_count_star_aggregates_pairs(self, db):
        n = db.sql("SELECT count(*) FROM c SIMILARITY JOIN c WITHIN 100.0")
        assert n == db.scan("c").similarity_join("c", threshold=100.0).count()
        with pytest.raises(BindError, match="COUNT\\(\\*\\)"):
            db.sql("SELECT avg(score) FROM c SIMILARITY JOIN c WITHIN 1.0")
        with pytest.raises(BindError, match="COUNT\\(\\*\\)"):
            db.sql(
                "SELECT COUNT(DISTINCT label) FROM c "
                "SIMILARITY JOIN c WITHIN 1.0"
            )

    def test_udf_without_provides_cannot_project(self, db):
        with pytest.raises(BindError, match="declares no provides"):
            db.sql("SELECT label, vecfeat() FROM c")

    def test_view_of_aggregate_rejected(self, db):
        with pytest.raises(BindError, match="scalars"):
            db.sql("CREATE MATERIALIZED VIEW v AS SELECT count(*) FROM c")

    def test_sql_query_rejects_non_select(self, db):
        with pytest.raises(QueryError, match="SELECT statement"):
            db.sql_query("SHOW COLLECTIONS")
        with pytest.raises(QueryError, match="aggregate"):
            db.sql_query("SELECT count(*) FROM c")


# -- execution & SQL/fluent equivalence ---------------------------------------


class TestExecutionEquivalence:
    def test_quickstart_filter_order_limit(self, db):
        sql = (
            "SELECT label, frameno, tint() FROM c WHERE label = 'vehicle' "
            "ORDER BY tint DESC LIMIT 5"
        )
        fluent = (
            db.scan("c")
            .map(tint, name="tint", provides={"tint"}, one_to_one=True,
                 cache=True)
            .filter(Attr("label") == "vehicle")
            .order_by("tint", reverse=True)
            .limit(5)
            .select("label", "frameno", "tint")
        )
        bound = db.sql_query(sql)
        assert bound.plan_fingerprint() == fluent.plan_fingerprint()
        assert str(bound.explain()) == str(fluent.explain())
        sql_rows = db.sql(sql)
        fluent_rows = fluent.patches()
        assert [p.metadata for p in sql_rows] == [
            p.metadata for p in fluent_rows
        ]

    def test_map_by_name_matches_sql(self, db):
        fluent = db.scan("c").map("tint").filter(Attr("score") > 3)
        bound = db.sql_query("SELECT *, tint() FROM c WHERE score > 3")
        assert bound.plan_fingerprint() == fluent.plan_fingerprint()
        assert str(bound.explain()) == str(fluent.explain())

    def test_aggregates_match_fluent(self, db):
        assert db.sql("SELECT count(*) FROM c") == db.scan("c").count()
        assert db.sql(
            "SELECT COUNT(DISTINCT frameno) FROM c WHERE label = 'vehicle'"
        ) == (
            db.scan("c")
            .filter(Attr("label") == "vehicle")
            .aggregate("distinct_count", key=attribute_key("frameno"))
        )
        scores = [p["score"] for p in make_patches() if p["label"] == "person"]
        assert db.sql(
            "SELECT avg(score) FROM c WHERE label = 'person'"
        ) == pytest.approx(sum(scores) / len(scores))

    def test_avg_of_empty_is_null(self, db):
        assert db.sql("SELECT avg(score) FROM c WHERE label = 'nothing'") is None
        assert db.scan("c").filter(Attr("label") == "nothing").avg(
            attribute_key("score")
        ) is None

    def test_avg_skips_null_values(self, db):
        # SQL AVG ignores NULLs: None values must not abort the query
        values = [1.0, None, 3.0]
        result = (
            db.scan("c")
            .limit(3)
            .map(
                lambda p, it=iter(values): p.derive(
                    p.data, "nullable", maybe=next(it)
                ),
                name="nullable",
            )
            .avg(attribute_key("maybe"))
        )
        assert result == pytest.approx(2.0)

    def test_aggregate_on_limited_input_is_rejected(self, db):
        # SQL applies LIMIT to the (single) result row; silently lowering
        # it below the aggregate would truncate the input instead
        with pytest.raises(BindError, match="aggregate's single result"):
            db.sql("SELECT count(*) FROM c LIMIT 3")
        with pytest.raises(BindError, match="aggregate's single result"):
            db.sql("SELECT avg(score) FROM c ORDER BY score")

    def test_aggregate_attr_typo_is_positioned(self, db):
        with pytest.raises(BindError) as excinfo:
            db.sql("SELECT AVG(nope) FROM c")
        assert "nope" in str(excinfo.value)
        assert "^" in str(excinfo.value)
        with pytest.raises(BindError, match="unknown attribute"):
            db.sql("SELECT COUNT(DISTINCT nope) FROM c")

    def test_avg_of_non_numeric_attr_is_positioned(self, db):
        with pytest.raises(BindError, match="numeric"):
            db.sql("SELECT AVG(label) FROM c")
        # without bind-time evidence the runtime error is still a named
        # QueryError, not a bare ValueError
        with pytest.raises(QueryError, match="non-numeric"):
            db.scan("c").avg(attribute_key("label"))

    def test_missing_attribute_reads_as_null(self, db):
        # AttributeKey has SQL NULL semantics: a missing attribute is
        # None, so AVG skips it and COUNT(DISTINCT) folds missing rows
        # into one bucket — no KeyError mid-query
        patch = db.scan("c").first()
        assert attribute_key("absent")(patch) is None
        assert db.scan("c").avg(attribute_key("absent")) is None
        assert db.scan("c").distinct_count(attribute_key("absent")) == 1

    def test_overflowing_float_literal_rejected(self):
        with pytest.raises(ParseError, match="out of range"):
            parse("SELECT * FROM c WHERE x = 1e999")

    def test_index_selection_identical(self, db):
        db.sql("CREATE INDEX ON c (label) USING hash")
        sql_explain = db.sql("EXPLAIN SELECT * FROM c WHERE label = 'vehicle'")
        fluent_explain = (
            db.scan("c").filter(Attr("label") == "vehicle").explain()
        )
        # the index is a candidate for both frontends, the same plan wins
        # for both, and the whole explanation matches line for line
        assert "hash-lookup" in [c.kind for c in sql_explain.candidates]
        assert sql_explain.chosen.kind == fluent_explain.chosen.kind
        assert str(sql_explain) == str(fluent_explain)

    def test_similarity_join_matches_fluent(self, db):
        sql_rows = db.sql(
            "SELECT * FROM c SIMILARITY JOIN c ON vecfeat WITHIN 0.1 "
            "EXCLUDE SELF WHERE left.label = 'vehicle'"
        )
        fluent = (
            db.scan("c")
            .similarity_join(
                "c", threshold=0.1, features=vecfeat, exclude_self=True
            )
            .filter(Attr("label") == "vehicle", on=0)
        )
        bound = db.sql_query(
            "SELECT * FROM c SIMILARITY JOIN c ON vecfeat WITHIN 0.1 "
            "EXCLUDE SELF WHERE left.label = 'vehicle'"
        )
        assert bound.plan_fingerprint() == fluent.plan_fingerprint()
        fluent_rows = fluent.rows()
        assert len(sql_rows) == len(fluent_rows)
        assert all(len(row) == 2 for row in sql_rows)
        key = lambda row: (row[0].patch_id, row[1].patch_id)
        assert sorted(map(key, sql_rows)) == sorted(map(key, fluent_rows))

    def test_join_top_lowered_to_limit(self, db):
        rows = db.sql(
            "SELECT * FROM c SIMILARITY JOIN c WITHIN 100.0 TOP 7"
        )
        assert len(rows) == 7
        fluent = db.scan("c").similarity_join("c", threshold=100.0).limit(7)
        bound = db.sql_query(
            "SELECT * FROM c SIMILARITY JOIN c WITHIN 100.0 TOP 7"
        )
        assert bound.plan_fingerprint() == fluent.plan_fingerprint()

    def test_shared_udf_cache_across_frontends(self, db):
        db.sql("SELECT *, tint() FROM c")  # populate the cache
        misses_before = db.udf_cache.misses
        hits_before = db.udf_cache.hits
        db.scan("c").map("tint").patches()  # fluent re-run: all hits
        assert db.udf_cache.misses == misses_before
        assert db.udf_cache.hits > hits_before


class TestViewsAndDDL:
    def test_view_lifecycle_and_cross_frontend_match(self, db):
        db.sql("CREATE MATERIALIZED VIEW tinted AS SELECT *, tint() FROM c")
        assert "tinted" in db.views()
        # both frontends' matching prefixes rewrite onto the view
        sql_explain = db.sql("EXPLAIN SELECT *, tint() FROM c")
        assert any("view-match" in line for line in sql_explain.rewrites)
        fluent_explain = db.scan("c").map("tint").explain()
        assert any("view-match" in line for line in fluent_explain.rewrites)
        assert str(sql_explain) == str(fluent_explain)

        rows = db.sql("SHOW VIEWS")
        entry = next(row for row in rows if row["name"] == "tinted")
        assert entry["stale"] is False and entry["portable"] is True

        # mutating the base marks it stale; REFRESH re-runs the plan
        sample = db.scan("c").first()
        db.collection("c").add(sample.derive(sample.data, "copy"))
        assert db.view_is_stale("tinted")
        db.sql("REFRESH VIEW tinted")
        assert not db.view_is_stale("tinted")

        db.sql("DROP VIEW tinted")
        assert "tinted" not in db.views()

    def test_refresh_as_validates_like_create(self, db):
        db.sql("CREATE MATERIALIZED VIEW v3 AS SELECT * FROM c LIMIT 3")
        # an aggregate select must not silently refresh from its bare
        # pipeline (dropping the COUNT the user wrote)
        with pytest.raises(BindError, match="scalars"):
            db.sql("REFRESH VIEW v3 AS SELECT count(*) FROM c")
        db.sql("DROP VIEW v3")

    def test_create_view_replace(self, db):
        db.sql("CREATE MATERIALIZED VIEW v2 AS SELECT * FROM c LIMIT 3")
        with pytest.raises(Exception, match="already exists"):
            db.sql("CREATE MATERIALIZED VIEW v2 AS SELECT * FROM c LIMIT 4")
        view = db.sql(
            "CREATE OR REPLACE MATERIALIZED VIEW v2 AS "
            "SELECT * FROM c LIMIT 4"
        )
        assert len(view) == 4
        db.sql("DROP VIEW v2")

    def test_show_collections_and_stats(self, db):
        names = [row["name"] for row in db.sql("SHOW COLLECTIONS")]
        assert "c" in names
        stats = db.sql("SHOW STATS FOR c")
        by_attr = {row["attr"]: row for row in stats}
        assert by_attr["label"]["distinct"] == 2.0
        assert by_attr["score"]["min"] == 0.0


# -- satellite 1: in/contains semantics + selectivity -------------------------


class TestInContainsSemantics:
    def test_in_degrades_to_false_on_non_container(self):
        expr = Comparison("score", "in", 5)  # 5 is no container
        patch = next(make_patches(1))
        assert expr.evaluate(patch) is False

    def test_in_degrades_on_unhashable_needle(self):
        expr = Comparison("tag", "in", {("fast", "red")})
        patch = next(make_patches(1))
        patch.metadata["tag"] = ["fast", "red"]  # unhashable vs a set
        assert expr.evaluate(patch) is False

    def test_contains_degrades_on_non_container_attr(self):
        expr = Comparison("score", "contains", "x")  # float contains str
        patch = next(make_patches(1))
        assert expr.evaluate(patch) is False

    def test_sql_contains_and_in_never_raise(self, db):
        assert db.sql("SELECT count(*) FROM c WHERE score CONTAINS 'x'") == 0
        rows = db.sql("SELECT * FROM c WHERE label IN ('vehicle', 5)")
        assert all(p["label"] == "vehicle" for p in rows)
        assert db.sql("SELECT * FROM c WHERE tag CONTAINS 'fast'")

    def test_in_selectivity_from_mcvs(self, db):
        expr = Attr("label").isin(["vehicle", "person"])
        estimated, source = db.optimizer.estimate_filter_rows("c", expr)
        actual = db.scan("c", load_data=False).filter(expr).count()
        assert source == "mcv"
        assert estimated == pytest.approx(actual, rel=0.35)
        one, source_one = db.optimizer.estimate_filter_rows(
            "c", Attr("label").isin(["vehicle"])
        )
        eq, _ = db.optimizer.estimate_filter_rows(
            "c", Attr("label") == "vehicle"
        )
        assert one == pytest.approx(eq)

    def test_in_fallback_scales_with_members(self):
        estimate = fallback_estimate(Comparison("x", "in", (1, 2, 3)))
        assert estimate.selectivity == pytest.approx(3 * EQ_SELECTIVITY)
        capped = fallback_estimate(Comparison("x", "in", tuple(range(99))))
        assert capped.selectivity == 1.0
        # a non-container operand never matches anything
        bad = fallback_estimate(Comparison("x", "in", 7))
        assert bad.selectivity == 0.0
        # a string operand is substring membership, not a 7-member list
        substring = fallback_estimate(Comparison("x", "in", "vehicle"))
        assert substring.selectivity == pytest.approx(0.3)
        # any sized container counts members, not just list/tuple/set
        ranged = fallback_estimate(Comparison("x", "in", range(3)))
        assert ranged.selectivity == pytest.approx(3 * EQ_SELECTIVITY)

    def test_in_range_operand_uses_statistics(self, db):
        a, src_a = db.optimizer.estimate_filter_rows(
            "c", Comparison("frameno", "in", range(3))
        )
        b, src_b = db.optimizer.estimate_filter_rows(
            "c", Comparison("frameno", "in", (0, 1, 2))
        )
        assert (a, src_a) == (b, src_b)

    def test_in_string_operand_not_estimated_per_char(self, db):
        # the statistics path must not explode a string into characters
        # (or consume a one-shot iterator the evaluator still needs)
        _, source = db.optimizer.estimate_filter_rows(
            "c", Comparison("label", "in", "vehicle")
        )
        assert source == "fallback-constant"


# -- registry ------------------------------------------------------------------


class TestRegistry:
    def test_register_conflicts_and_replace(self, db):
        with pytest.raises(QueryError, match="already registered"):
            db.register_udf("tint", tint)
        db.register_udf("tint", tint, provides={"tint"}, replace=True)
        db.register_udf(
            "tint", tint, provides={"tint"}, one_to_one=True, cache=True,
            replace=True,
        )

    def test_builtins_seeded(self, db):
        assert "brightness" in db.udfs
        assert "embedding" in db.udfs
        rows = db.sql("SELECT label, brightness() FROM c LIMIT 2")
        assert all("brightness" in p.metadata for p in rows)

    def test_map_by_name_rejects_contract_overrides(self, db):
        with pytest.raises(QueryError, match="registry"):
            db.scan("c").map("tint", provides={"other"})

    def test_attribute_key_memoized_and_portable(self):
        from repro.core.logical import callable_identity, callable_is_portable

        key = attribute_key("frameno")
        assert attribute_key("frameno") is key
        assert callable_is_portable(key)
        identity = callable_identity(key)
        assert "AttributeKey[frameno]" in identity
