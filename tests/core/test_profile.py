"""Unit tests for the runtime-instrumentation layer.

:mod:`repro.core.profile` is pure bookkeeping — per-operator counters,
the profile tree rendering, Q-error math, and the catalog-persisted
plan-quality log — so these tests exercise it directly, without a
session. End-to-end ``explain(analyze=True)`` coverage lives in
``test_explain_analyze.py``.
"""

import pytest

from repro.core.profile import (
    MAX_PLANS,
    PLAN_HISTORY,
    OperatorProfile,
    PlanQualityLog,
    RuntimeProfile,
    q_error,
)


class TestQError:
    def test_exact_estimate_is_one(self):
        assert q_error(10, 10) == 1.0

    def test_symmetric(self):
        assert q_error(10, 40) == q_error(40, 10) == 4.0

    def test_floors_at_one_row(self):
        # 0 estimated vs 0 actual is a perfect estimate, not a 0/0
        assert q_error(0, 0) == 1.0
        assert q_error(5, 0) == 5.0
        assert q_error(0, 5) == 5.0


class TestOperatorProfile:
    def test_batch_and_row_counters(self):
        entry = OperatorProfile("op", est_rows=8)
        entry.add_batch(5, 0.25)
        entry.add_batch(3, 0.25)
        entry.add_rows(2, 0.1)
        assert entry.rows_out == 10
        assert entry.batches == 2
        assert entry.seconds == pytest.approx(0.6)
        assert entry.q == pytest.approx(10 / 8)

    def test_rows_in_prefers_children(self):
        child = OperatorProfile("child")
        child.add_batch(7, 0.0)
        parent = OperatorProfile("parent", children=[child])
        parent.add_input(99)  # ignored: children are authoritative
        assert parent.rows_in == 7

    def test_input_and_index_probes(self):
        entry = OperatorProfile("scan")
        entry.add_input(4)
        entry.add_input(2, index=True)
        assert entry.rows_in == 6
        assert entry.index_probes == 2

    def test_describe_renders_q_error_and_extras(self):
        entry = OperatorProfile("Scan(c)", est_rows=40)
        entry.add_batch(10, 0.002)
        entry.add_input(30)
        entry.add_cache(3, 1)
        line = entry.describe()
        assert "Scan(c): est ~40 rows, actual 10 rows, q-error 4.00" in line
        assert "in 30" in line
        assert "cache 3 hits / 1 misses" in line

    def test_describe_without_estimate(self):
        entry = OperatorProfile("Limit(3)")
        entry.add_rows(3, 0.0)
        assert "est ? rows" in entry.describe()
        assert "q-error" not in entry.describe()
        assert entry.q is None


class TestRuntimeProfile:
    def test_tree_rendering_root_first(self):
        profile = RuntimeProfile()
        scan = profile.operator("Scan(c)", est_rows=40)
        limit = profile.operator("Limit(3)", est_rows=3, children=[scan])
        scan.add_batch(3, 0.0)
        limit.add_batch(3, 0.0)
        profile.finish()
        lines = profile.lines()
        assert lines[0].startswith("Limit(3)")
        assert lines[1].startswith("  Scan(c)")
        assert profile.roots() == [limit]
        assert str(profile).startswith("runtime profile (")

    def test_q_errors_collects_estimated_entries(self):
        profile = RuntimeProfile()
        a = profile.operator("a", est_rows=10)
        a.add_rows(10, 0.0)
        b = profile.operator("b")  # no estimate: not graded
        b.add_rows(5, 0.0)
        assert profile.q_errors() == [1.0]


class TestPlanQualityLog:
    def _profile(self, est, actual, *, feedback=None, exhausted=True):
        profile = RuntimeProfile()
        entry = profile.operator("op", est_rows=est)
        entry.add_batch(actual, 0.0)
        if feedback is not None:
            entry.set_feedback(*feedback)
        if exhausted:
            entry.mark_exhausted()
        profile.finish()
        return profile

    def test_record_and_history(self):
        log = PlanQualityLog()
        log.record("fp", self._profile(40, 10))
        log.record("fp", self._profile(40, 12))
        assert len(log) == 1
        assert log.history("fp") == [[["op", 40, 10]], [["op", 40, 12]]]
        assert log.plan_q_errors() == [4.0, pytest.approx(40 / 12)]
        assert log.dirty

    def test_history_bounded(self):
        log = PlanQualityLog()
        for i in range(PLAN_HISTORY + 5):
            log.record("fp", self._profile(10, i + 1))
        assert len(log.history("fp")) == PLAN_HISTORY

    def test_plan_eviction(self):
        log = PlanQualityLog()
        for i in range(MAX_PLANS + 1):
            log.record(f"fp{i}", self._profile(1, 1))
        assert len(log) == MAX_PLANS
        assert log.history("fp0") == []  # oldest evicted

    def test_eviction_is_least_recently_updated(self):
        # a hot recurring plan refreshes its recency on every record,
        # so a burst of one-off fingerprints evicts cold entries first
        log = PlanQualityLog()
        for i in range(MAX_PLANS):
            log.record(f"fp{i}", self._profile(1, 1))
        log.record("fp0", self._profile(1, 2))  # fp0 is hot again
        log.record("newcomer", self._profile(1, 1))
        assert len(log.history("fp0")) == 2  # survived the eviction
        assert log.history("fp1") == []  # the least-recently-updated went

    def test_has_predicate_history(self):
        # distinguishes "never profiled" from a correction() abstention
        log = PlanQualityLog()
        assert not log.has_predicate_history("c", "key")
        log.record("fp", self._profile(25, 10, feedback=("c", "key", 100)))
        assert log.has_predicate_history("c", "key")
        assert not log.has_predicate_history("c", "other")
        assert not log.has_predicate_history("d", "key")

    def test_correction_upper_median(self):
        log = PlanQualityLog()
        for actual in (10, 20, 30):
            log.record(
                "fp",
                self._profile(25, actual, feedback=("c", "key", 100)),
            )
        # observed selectivities 0.1 / 0.2 / 0.3 -> median 0.2
        assert log.correction("c", "key") == pytest.approx(0.2)
        assert log.correction("c", "other") is None
        assert log.correction("d", "key") is None

    def test_truncated_runs_record_no_correction(self):
        # a Limit above the filter stopped the scan early: the observed
        # selectivity is meaningless and must not poison the feedback
        log = PlanQualityLog()
        log.record(
            "fp",
            self._profile(25, 10, feedback=("c", "key", 100), exhausted=False),
        )
        assert log.correction("c", "key") is None
        # ...but the plan history still records the (truncated) run
        assert log.history("fp") == [[["op", 25, 10]]]

    def test_value_round_trip(self):
        log = PlanQualityLog()
        log.record("fp", self._profile(40, 10, feedback=("c", "key", 100)))
        restored = PlanQualityLog.from_value(log.to_value())
        assert restored.history("fp") == log.history("fp")
        assert restored.correction("c", "key") == log.correction("c", "key")
        assert not restored.dirty

    def test_from_value_tolerates_old_snapshots(self):
        assert len(PlanQualityLog.from_value({})) == 0
