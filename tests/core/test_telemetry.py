"""End-to-end telemetry tests: the session-owned registry threaded
through every layer, per-query tracing, and the slow-query log.

The load-bearing properties:

* **coverage** — one quickstart-shaped workload leaves nonzero pager,
  heap, UDF-cache, zone-map, optimizer, and executor counters behind,
  and the Prometheus render of all of it passes the line validator;
* **tracing** — every LensQL query exports a parse -> bind -> rewrite
  -> lower -> execute span tree (fluent queries the engine-side
  suffix), stamped with the parameterized plan fingerprint;
* **determinism under threads** — counter totals are exact: a
  ``workers=4`` + prefetch run produces bit-identical rows and the
  same executor batch count as serial, and six concurrent query
  threads land exactly their query count while snapshots stay readable;
* **the slow-query log** — threshold behavior driven by injected fake
  clocks (never ``time.sleep``), persistence across close/reopen, and
  the ``SHOW SLOW QUERIES`` / ``SHOW METRICS`` statement surface.
"""

import json
import threading

import numpy as np
import pytest

from repro.core import Attr, DeepLens
from repro.core.patch import Patch
from repro.core.sql import parse

from tests.core.test_metrics import StepClock, validate_prometheus_text


def make_patches(n=60):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 9, np.uint8))
        patch.metadata["label"] = "vehicle" if i % 3 == 0 else "person"
        patch.metadata["score"] = float(i)
        yield patch


def brightness(patch):
    return patch.derive(
        patch.data, "brightness", brightness=float(patch.data.mean())
    )


@pytest.fixture
def db(tmp_path):
    with DeepLens(tmp_path) as session:
        session.materialize(make_patches(), "c")
        session.register_udf(
            "brightness",
            brightness,
            provides={"brightness"},
            one_to_one=True,
            cache=True,
            replace=True,  # shadow the built-in brightness UDF
        )
        yield session


# -- counter coverage ----------------------------------------------------------


class TestEngineCoverage:
    def test_workload_leaves_counters_everywhere(self, db):
        # a UDF query twice: the second run hits the UDF cache
        query = db.sql_query(
            "SELECT brightness() FROM c WHERE label = 'vehicle'"
        )
        query.patches()
        query.patches()
        query.with_execution(workers=2, prefetch_batches=2).patches()
        db.sql("SELECT COUNT(*) FROM c WHERE score >= 30")
        counters = db.metrics()["counters"]
        assert counters["deeplens_queries_total"] == 4
        assert counters["deeplens_optimizer_plans_total"] >= 3
        assert counters['deeplens_pager_page_reads_total{result="hit"}'] > 0
        assert counters['deeplens_heap_reads_total{store="blob"}'] > 0
        assert counters['deeplens_udf_cache_lookups_total{result="miss"}'] > 0
        assert counters['deeplens_udf_cache_lookups_total{result="hit"}'] > 0
        assert counters["deeplens_executor_batches_total"] > 0

    def test_prometheus_render_validates(self, db):
        db.sql("SELECT COUNT(*) FROM c WHERE label = 'vehicle'")
        text = db.metrics_text()
        assert validate_prometheus_text(text) > 20
        assert "deeplens_queries_total 1" in text.splitlines()

    def test_disabled_registry_still_answers_queries(self, tmp_path):
        with DeepLens(tmp_path, metrics_enabled=False) as session:
            session.materialize(make_patches(), "c")
            rows = session.sql("SELECT label FROM c WHERE score >= 30")
            assert len(rows) == 30
            assert session.metrics() == {
                "counters": {},
                "gauges": {},
                "histograms": {},
            }
            assert session.metrics_text() == ""
            assert session.sql("SHOW METRICS") == []
            # tracing is independent of the registry switch
            tree = json.loads(session.trace_json())
            assert tree["name"] == "query"


# -- tracing -------------------------------------------------------------------


class TestQueryTracing:
    def test_sql_span_tree_covers_every_phase(self, db):
        db.sql("SELECT label FROM c WHERE label = 'vehicle'")
        tree = json.loads(db.trace_json())
        assert tree["name"] == "query"
        assert [c["name"] for c in tree["children"]] == [
            "parse",
            "bind",
            "rewrite",
            "lower",
            "execute",
        ]
        assert all(c["seconds"] >= 0 for c in tree["children"])
        assert tree["attrs"]["sql"] == "SELECT label FROM c WHERE label = 'vehicle'"
        assert tree["attrs"]["fingerprint"]

    def test_fluent_span_tree_and_fingerprint(self, db):
        query = db.scan("c").filter(Attr("label") == "vehicle")
        query.patches()
        tree = json.loads(db.trace_json())
        assert [c["name"] for c in tree["children"]] == [
            "rewrite",
            "lower",
            "execute",
        ]
        assert "sql" not in tree.get("attrs", {})
        assert tree["attrs"]["fingerprint"]

    def test_one_root_per_user_query(self, db):
        # the SQL statement drives builder terminals internally; the
        # nested scopes must fold into one root, counted once
        before = db.metrics()["counters"].get("deeplens_queries_total", 0)
        db.sql("SELECT COUNT(*) FROM c")
        after = db.metrics()["counters"]["deeplens_queries_total"]
        assert after - before == 1

    def test_trace_survives_worker_pool(self, db):
        query = (
            db.sql_query("SELECT brightness() FROM c")
            .with_execution(workers=4, prefetch_batches=2)
        )
        query.patches()
        tree = json.loads(db.trace_json())
        assert [c["name"] for c in tree["children"]] == [
            "rewrite",
            "lower",
            "execute",
        ]


# -- zone-map actuals ----------------------------------------------------------


class TestZoneMapActuals:
    def test_analyze_grades_block_skip_estimate(self, tmp_path, monkeypatch):
        monkeypatch.setattr("repro.storage.metadata_segment.BLOCK_ROWS", 16)
        with DeepLens(tmp_path) as session:
            session.materialize(make_patches(120), "det")
            query = session.scan("det", load_data=False).filter(
                Attr("score") >= 112.0
            )
            explanation = query.explain(analyze=True)
            assert explanation.chosen.kind == "zone-map-scan"
            entry = next(
                e
                for e in explanation.profile.entries
                if e.blocks_skipped or e.est_blocks_skipped is not None
            )
            # actuals observed by the scan, estimate graded like a
            # cardinality: the zone maps are exact, so q-error == 1
            assert entry.blocks_skipped > 0
            # 120 rows at 16/block: 7 sealed blocks (the matching rows
            # all live in the unsealed tail, so every block is skipped)
            assert entry.blocks_skipped + entry.blocks_scanned == 7
            assert entry.est_blocks_skipped == entry.blocks_skipped
            assert entry.blocks_q == 1.0
            assert explanation.profile.block_q_errors() == [1.0]
            line = next(
                l for l in explanation.profile.lines() if "zone-map" in l
            )
            assert "blocks skipped" in line and "q-error 1.00" in line
            counters = session.metrics()["counters"]
            assert (
                counters["deeplens_zonemap_blocks_skipped_total"]
                == entry.blocks_skipped
            )
            assert (
                counters["deeplens_zonemap_blocks_scanned_total"]
                == entry.blocks_scanned
            )


# -- exactness under threads ---------------------------------------------------


class TestConcurrencyExactness:
    def test_parallel_run_same_batches_and_rows_as_serial(self, db):
        query = db.sql_query("SELECT brightness() FROM c").with_execution(
            batch_size=8
        )
        serial_before = db.metrics()["counters"].get(
            "deeplens_executor_batches_total", 0
        )
        serial_rows = query.patches()
        assert (
            db.metrics()["counters"].get("deeplens_executor_batches_total", 0)
            == serial_before
        )  # serial path never enters the fan-out loop

        parallel = query.with_execution(workers=4, prefetch_batches=2)
        parallel_rows = parallel.patches()
        counters = db.metrics()["counters"]
        # 60 patches in batches of 8 -> exactly 8 batches through the pool
        assert counters["deeplens_executor_batches_total"] == 8
        assert counters["deeplens_executor_worker_seconds_total"] > 0
        gauges = db.metrics()["gauges"]
        assert gauges["deeplens_prefetch_queue_depth_highwater"] >= 1
        # bit-identical parallelism, with metrics on
        assert [p.patch_id for p in parallel_rows] == [
            p.patch_id for p in serial_rows
        ]
        assert [p["brightness"] for p in parallel_rows] == [
            p["brightness"] for p in serial_rows
        ]

    def test_six_threads_count_exactly(self, db):
        QUERIES_PER_THREAD = 5
        before = db.metrics()["counters"].get("deeplens_queries_total", 0)
        errors = []
        stop_snapshots = threading.Event()

        def run_queries():
            try:
                for _ in range(QUERIES_PER_THREAD):
                    rows = db.sql("SELECT label FROM c WHERE label = 'vehicle'")
                    assert len(rows) == 20
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def snapshot_loop():
            while not stop_snapshots.is_set():
                snapshot = db.metrics()
                # a snapshot taken mid-flight is internally consistent:
                # plain data, every counter non-negative
                assert all(v >= 0 for v in snapshot["counters"].values())
                db.metrics_text()

        threads = [threading.Thread(target=run_queries) for _ in range(6)]
        reader = threading.Thread(target=snapshot_loop)
        reader.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop_snapshots.set()
        reader.join()
        assert not errors
        after = db.metrics()["counters"]["deeplens_queries_total"]
        assert after - before == 6 * QUERIES_PER_THREAD  # exact


# -- the slow-query log --------------------------------------------------------


class TestSlowQueryCapture:
    def test_fake_clock_records_over_threshold(self, tmp_path):
        # every clock read advances 1s, so any query "takes" seconds
        with DeepLens(
            tmp_path, clock=StepClock(step=1.0), slow_query_threshold=1.0
        ) as session:
            session.materialize(make_patches(), "c")
            session.sql("SELECT label FROM c WHERE label = 'vehicle'")
            entries = session.slow_query_log().entries()
            assert len(entries) == 1
            entry = entries[0]
            assert entry["sql"] == "SELECT label FROM c WHERE label = 'vehicle'"
            assert entry["fingerprint"]
            assert entry["seconds"] >= 1.0
            assert entry["span"]["name"] == "query"
            assert {c["name"] for c in entry["span"]["children"]} >= {
                "parse",
                "execute",
            }
            # counter deltas cover the work inside the query scope
            assert entry["counters"]["deeplens_optimizer_plans_total"] == 1
            assert (
                session.metrics()["counters"]["deeplens_slow_queries_total"]
                == 1
            )

    def test_fast_clock_records_nothing(self, tmp_path):
        # every clock read advances a nanosecond: far under threshold
        with DeepLens(
            tmp_path, clock=StepClock(step=1e-9), slow_query_threshold=1.0
        ) as session:
            session.materialize(make_patches(), "c")
            session.sql("SELECT label FROM c")
            session.scan("c").count()
            assert session.slow_query_log().entries() == []
            counters = session.metrics()["counters"]
            assert counters["deeplens_slow_queries_total"] == 0
            assert counters["deeplens_queries_total"] == 2

    def test_fluent_queries_log_without_sql_text(self, tmp_path):
        with DeepLens(
            tmp_path, clock=StepClock(step=1.0), slow_query_threshold=0.5
        ) as session:
            session.materialize(make_patches(), "c")
            session.scan("c").filter(Attr("score") >= 30).count()
            entry = session.slow_query_log().entries()[0]
            assert entry["sql"] is None
            assert entry["fingerprint"]

    def test_log_persists_across_reopen(self, tmp_path):
        with DeepLens(
            tmp_path, clock=StepClock(step=1.0), slow_query_threshold=1.0
        ) as session:
            session.materialize(make_patches(), "c")
            session.sql("SELECT COUNT(*) FROM c")
        with DeepLens(tmp_path) as reopened:
            rows = reopened.sql("SHOW SLOW QUERIES")
            assert len(rows) == 1
            assert rows[0]["sql"] == "SELECT COUNT(*) FROM c"
            assert rows[0]["span"]["children"]


# -- the statement surface -----------------------------------------------------


class TestShowStatements:
    def test_round_trip(self):
        for text in ("SHOW METRICS", "SHOW SLOW QUERIES"):
            node = parse(text)
            assert node.to_sql() == text
            assert parse(node.to_sql()) == node

    def test_show_metrics_rows(self, db):
        db.sql("SELECT COUNT(*) FROM c")
        rows = db.sql("SHOW METRICS")
        by_name = {row["metric"]: row for row in rows}
        queries = by_name["deeplens_queries_total"]
        assert queries["type"] == "counter"
        assert queries["value"] >= 1
        # histograms flatten to five rows each
        heap_runs = [
            row
            for row in rows
            if row["metric"].startswith("deeplens_heap_run_bytes")
        ]
        assert len(heap_runs) % 5 == 0
        assert all(row["type"] == "histogram" for row in heap_runs)

    def test_show_slow_queries_rows(self, tmp_path):
        with DeepLens(
            tmp_path, clock=StepClock(step=1.0), slow_query_threshold=1.0
        ) as session:
            session.materialize(make_patches(), "c")
            session.sql("SELECT label FROM c LIMIT 3")
            rows = session.sql("SHOW SLOW QUERIES")
            # SHOW SLOW QUERIES itself ran after the entry was cut, so
            # only the SELECT is in it
            assert [row["sql"] for row in rows] == [
                "SELECT label FROM c LIMIT 3"
            ]
