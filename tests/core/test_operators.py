"""Tests for the dataflow operators (scans, selects, joins, aggregates)."""

import numpy as np
import pytest

from repro.core.expressions import Attr
from repro.core.operators import (
    BallTreeSimilarityJoin,
    Distinct,
    DistinctCount,
    GroupBy,
    IteratorScan,
    Limit,
    MapPatches,
    NestedLoopJoin,
    OrderBy,
    Select,
    UnionFind,
    cluster_pairs,
)
from repro.core.patch import Patch
from repro.errors import QueryError


def patches(n=10, **extra):
    out = []
    for i in range(n):
        patch = Patch.from_frame("v", i, np.zeros((4, 4, 3), np.uint8))
        patch.patch_id = i
        patch.metadata["label"] = "car" if i % 2 == 0 else "person"
        patch.metadata["vec"] = np.array([float(i // 3), 0.0])
        for key, fn in extra.items():
            patch.metadata[key] = fn(i)
        out.append(patch)
    return out


class TestScansAndSelect:
    def test_iterator_scan(self):
        rows = IteratorScan(patches(4)).collect()
        assert len(rows) == 4
        assert all(len(row) == 1 for row in rows)

    def test_iterator_scan_one_shot_guard(self):
        scan = IteratorScan(iter(patches(2)))
        scan.collect()
        with pytest.raises(QueryError, match="already consumed"):
            scan.collect()

    def test_iterator_scan_list_rescannable(self):
        scan = IteratorScan(patches(2))
        assert scan.count() == 2
        assert scan.count() == 2

    def test_select(self):
        result = Select(IteratorScan(patches(10)), Attr("label") == "car").patches()
        assert len(result) == 5

    def test_patches_rejects_joined_rows(self):
        join = NestedLoopJoin(
            IteratorScan(patches(2)), IteratorScan(patches(2)), lambda a, b: True
        )
        with pytest.raises(QueryError, match="arity"):
            join.patches()

    def test_map_patches_expansion_and_drop(self):
        def split(patch):
            if patch["frameno"] % 3 == 0:
                return None
            return [patch, patch]

        result = MapPatches(IteratorScan(patches(6)), split).patches()
        assert len(result) == 8  # frames 1,2,4,5 doubled

    def test_limit(self):
        assert Limit(IteratorScan(patches(10)), 3).count() == 3
        assert Limit(IteratorScan(patches(10)), 0).count() == 0
        with pytest.raises(QueryError):
            Limit(IteratorScan(patches(1)), -1)

    def test_orderby(self):
        result = OrderBy(
            IteratorScan(patches(5)), key=lambda p: -p["frameno"]
        ).patches()
        assert [p["frameno"] for p in result] == [4, 3, 2, 1, 0]


class TestJoins:
    def test_nested_loop_theta(self):
        left = IteratorScan(patches(4))
        right = IteratorScan(patches(4))
        join = NestedLoopJoin(
            left, right, lambda a, b: a["frameno"] == b["frameno"]
        )
        rows = join.collect()
        assert len(rows) == 4
        assert all(a["frameno"] == b["frameno"] for a, b in rows)

    def test_nested_loop_exclude_self(self):
        items = patches(3)
        join = NestedLoopJoin(
            IteratorScan(items), IteratorScan(items), lambda a, b: True,
            exclude_self=True,
        )
        assert join.count() == 6  # 3x3 minus diagonal

    def test_balltree_on_the_fly_matches_nested_loop(self):
        items = patches(12)

        def close(a, b):
            return float(np.linalg.norm(a["vec"] - b["vec"])) <= 0.5

        nested = {
            (a.patch_id, b.patch_id)
            for a, b in NestedLoopJoin(
                IteratorScan(items), IteratorScan(items), close, exclude_self=True
            )
        }
        balltree = {
            (a.patch_id, b.patch_id)
            for a, b in BallTreeSimilarityJoin(
                IteratorScan(items),
                IteratorScan(items),
                threshold=0.5,
                features=lambda p: p["vec"],
                exclude_self=True,
            )
        }
        assert balltree == nested
        assert nested  # non-trivial

    def test_balltree_requires_exactly_one_side_spec(self):
        items = patches(3)
        with pytest.raises(QueryError, match="exactly one"):
            BallTreeSimilarityJoin(
                IteratorScan(items), None, threshold=0.5
            )

    def test_balltree_empty_right(self):
        join = BallTreeSimilarityJoin(
            IteratorScan(patches(3)),
            IteratorScan([]),
            threshold=1.0,
            features=lambda p: p["vec"],
        )
        assert join.count() == 0


class TestAggregates:
    def test_distinct_count(self):
        assert DistinctCount(
            IteratorScan(patches(10)), key=lambda p: p["label"]
        ).execute() == 2

    def test_distinct_operator(self):
        result = Distinct(IteratorScan(patches(10)), key=lambda p: p["label"])
        assert [p["frameno"] for p in result.patches()] == [0, 1]

    def test_group_by(self):
        groups = GroupBy(
            IteratorScan(patches(10)), key=lambda p: p["label"], reducer=len
        ).execute()
        assert groups == {"car": 5, "person": 5}

    def test_group_by_custom_reducer(self):
        groups = GroupBy(
            IteratorScan(patches(6)),
            key=lambda p: p["label"],
            reducer=lambda rows: max(r[0]["frameno"] for r in rows),
        ).execute()
        assert groups == {"car": 4, "person": 5}


class TestUnionFind:
    def test_components(self):
        uf = UnionFind()
        for item in range(6):
            uf.add(item)
        uf.union(0, 1)
        uf.union(1, 2)
        uf.union(4, 5)
        components = {frozenset(c) for c in uf.components()}
        assert components == {
            frozenset({0, 1, 2}),
            frozenset({3}),
            frozenset({4, 5}),
        }
        assert uf.n_components() == 3

    def test_find_unknown_raises(self):
        with pytest.raises(QueryError):
            UnionFind().find("ghost")

    def test_cluster_pairs(self):
        clusters = cluster_pairs([1, 2, 3, 4], [(1, 2), (2, 3)])
        assert {frozenset(c) for c in clusters} == {
            frozenset({1, 2, 3}),
            frozenset({4}),
        }

    def test_cluster_pairs_idempotent_unions(self):
        clusters = cluster_pairs([1, 2], [(1, 2), (2, 1), (1, 2)])
        assert len(clusters) == 1
