"""Statistics layer tests: seeded property tests for the estimators,
persistence round-trips, and incremental-vs-rebuild consistency."""

import numpy as np
import pytest

from repro.core import DeepLens
from repro.core.catalog import Catalog
from repro.core.expressions import Attr
from repro.core.patch import Patch
from repro.core.statistics import (
    EQ_SELECTIVITY,
    HISTOGRAM_BUCKETS,
    KMV_SIZE,
    MAX_NUMERIC_SAMPLE,
    MAX_TRACKED_VALUES,
    NEQ_SELECTIVITY,
    RANGE_SELECTIVITY,
    SOURCE_FALLBACK,
    SOURCE_HISTOGRAM,
    SOURCE_MCV,
    AttributeStatistics,
    CollectionStatistics,
    fallback_estimate,
)

#: absolute selectivity error allowed for histogram-backed estimates: two
#: boundary buckets of an equi-depth histogram plus interpolation slack
HISTOGRAM_TOLERANCE = 2.0 / HISTOGRAM_BUCKETS + 0.02


def attr_stats(values):
    stats = AttributeStatistics()
    for value in values:
        stats.observe(value)
    return stats


def exact_fraction(values, predicate):
    return sum(1 for v in values if predicate(v)) / len(values)


def numeric_column(rng, kind, n):
    if kind == "uniform":
        return rng.uniform(-50.0, 50.0, n).tolist()
    if kind == "normal":
        return rng.normal(10.0, 4.0, n).tolist()
    if kind == "ints":  # heavy duplicates: zero-width histogram buckets
        return [int(v) for v in rng.integers(0, 25, n)]
    raise AssertionError(kind)


class TestNumericPropertyEstimates:
    """Histogram/MCV estimates stay within bounded error of brute force
    across EQ/LT/GT/range predicates on random numeric columns."""

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("kind", ["uniform", "normal", "ints"])
    def test_range_predicates_bounded_error(self, seed, kind):
        rng = np.random.default_rng(seed)
        values = numeric_column(rng, kind, 1500)
        stats = attr_stats(values)
        lo_pool = rng.uniform(min(values), max(values), 12)
        for bound in lo_pool:
            for op, predicate in [
                ("<", lambda v, b=bound: v < b),
                ("<=", lambda v, b=bound: v <= b),
                (">", lambda v, b=bound: v > b),
                (">=", lambda v, b=bound: v >= b),
            ]:
                estimate = stats.estimate_cmp(op, bound)
                assert estimate is not None
                exact = exact_fraction(values, predicate)
                assert abs(estimate.selectivity - exact) <= HISTOGRAM_TOLERANCE, (
                    f"{kind} seed={seed} {op} {bound}: "
                    f"{estimate.selectivity} vs exact {exact}"
                )

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("kind", ["uniform", "normal", "ints"])
    def test_between_bounded_error(self, seed, kind):
        rng = np.random.default_rng(100 + seed)
        values = numeric_column(rng, kind, 1500)
        stats = attr_stats(values)
        for _ in range(12):
            a, b = sorted(rng.uniform(min(values), max(values), 2))
            estimate = stats.estimate_range(a, b)
            assert estimate is not None
            exact = exact_fraction(values, lambda v: a <= v <= b)
            assert abs(estimate.selectivity - exact) <= HISTOGRAM_TOLERANCE

    @pytest.mark.parametrize("seed", range(4))
    def test_eq_on_duplicate_heavy_ints_is_exact(self, seed):
        rng = np.random.default_rng(200 + seed)
        values = [int(v) for v in rng.integers(0, 25, 1500)]
        stats = attr_stats(values)
        for target in range(-2, 27):
            estimate = stats.estimate_eq(target)
            assert estimate is not None
            assert estimate.source == SOURCE_MCV  # < MAX_TRACKED_VALUES distinct
            exact = exact_fraction(values, lambda v: v == target)
            assert estimate.selectivity == pytest.approx(exact)

    @pytest.mark.parametrize("seed", range(2))
    def test_eq_on_continuous_column_uses_distinct_sketch(self, seed):
        rng = np.random.default_rng(300 + seed)
        values = rng.uniform(0.0, 1.0, 2000).tolist()  # ~all distinct
        stats = attr_stats(values)
        estimate = stats.estimate_eq(values[17])
        assert estimate is not None
        # either still tracked (mcv) or estimated via the distinct sketch;
        # both must land near 1/n
        assert estimate.selectivity <= 10.0 / len(values)

    def test_frozen_histogram_still_bounded(self):
        rng = np.random.default_rng(7)
        values = rng.uniform(0.0, 100.0, MAX_NUMERIC_SAMPLE + 3000).tolist()
        stats = attr_stats(values)
        assert stats.bucket_edges is not None  # sample cap exceeded: frozen
        for bound in rng.uniform(0.0, 100.0, 15):
            estimate = stats.estimate_cmp("<=", bound)
            exact = exact_fraction(values, lambda v: v <= bound)
            # the frozen histogram only interpolates post-freeze inserts,
            # so allow a slightly wider band
            assert abs(estimate.selectivity - exact) <= HISTOGRAM_TOLERANCE + 0.04

    def test_min_max_and_out_of_range(self):
        stats = attr_stats([5.0, 1.0, 9.0, 3.0])
        assert stats.min_value == 1.0
        assert stats.max_value == 9.0
        assert stats.estimate_range(10.0, 20.0).selectivity == 0.0
        assert stats.estimate_range(None, None).selectivity == pytest.approx(1.0)


class TestCategoricalEstimates:
    @pytest.mark.parametrize("seed", range(4))
    def test_mcv_eq_and_neq_exact(self, seed):
        rng = np.random.default_rng(400 + seed)
        labels = [f"label-{int(v)}" for v in rng.integers(0, 20, 1000)]
        stats = attr_stats(labels)
        for target in {labels[0], labels[1], "label-0", "nope"}:
            estimate = stats.estimate_eq(target)
            exact = exact_fraction(labels, lambda v: v == target)
            assert estimate.source == SOURCE_MCV
            assert estimate.selectivity == pytest.approx(exact)
            neq = stats.estimate_cmp("!=", target)
            assert neq.selectivity == pytest.approx(1.0 - exact)

    def test_most_common_ranked(self):
        stats = attr_stats(["a"] * 5 + ["b"] * 3 + ["c"])
        assert stats.most_common(2) == [("a", 5), ("b", 3)]

    def test_overflow_keeps_estimates_sane(self):
        # more distinct values than the tracking cap: the untracked tail
        # is estimated through the distinct sketch and stays a probability
        values = [f"v{i}" for i in range(MAX_TRACKED_VALUES + 500)]
        stats = attr_stats(values)
        assert stats.tracked_full
        untracked = stats.estimate_eq(f"v{MAX_TRACKED_VALUES + 100}")
        assert untracked is not None
        assert 0.0 <= untracked.selectivity <= 0.05
        # a tracked value is still exact
        tracked = stats.estimate_eq("v0")
        assert tracked.source == SOURCE_MCV
        assert tracked.selectivity == pytest.approx(1.0 / len(values))

    def test_in_predicate_sums_members(self):
        stats = attr_stats(["x"] * 6 + ["y"] * 3 + ["z"])
        estimate = stats.estimate_cmp("in", ("x", "z"))
        assert estimate.selectivity == pytest.approx(0.7)

    def test_string_range_uses_value_dictionary(self):
        stats = attr_stats(["apple", "banana", "cherry", "banana"])
        estimate = stats.estimate_range("b", "c")
        assert estimate is not None
        assert estimate.selectivity == pytest.approx(0.5)  # the two bananas


class TestDistinctAndVectors:
    def test_kmv_distinct_within_factor_two(self):
        rng = np.random.default_rng(11)
        values = [int(v) for v in rng.integers(0, 100_000, 20_000)]
        true_distinct = len(set(values))
        stats = attr_stats(values)
        assert len(stats._kmv) == KMV_SIZE
        estimate = stats.distinct_estimate()
        assert true_distinct / 2 <= estimate <= true_distinct * 2

    def test_small_distinct_exact(self):
        stats = attr_stats(["a", "b", "a", "c"])
        assert stats.distinct_estimate() == 3.0

    def test_vector_dim_recorded(self):
        stats = attr_stats([np.zeros(64), np.zeros(64), np.zeros(64)])
        assert stats.dim == 64
        assert stats.vector_count == 3
        # numeric tuples count as vectors too (bboxes)
        bbox = attr_stats([(0, 0, 4, 4), (1, 1, 5, 5)])
        assert bbox.dim == 4


class TestCollectionStatistics:
    def _patches(self, n=60):
        for i in range(n):
            patch = Patch.from_frame("v", i, np.zeros((4, 4, 3), np.uint8))
            patch.metadata["label"] = "rare" if i % 20 == 0 else "common"
            patch.metadata["score"] = float(i)
            if i % 2 == 0:  # present on half the rows only
                patch.metadata["flag"] = "on"
            yield patch

    def _collect(self, n=60):
        stats = CollectionStatistics()
        for patch in self._patches(n):
            stats.observe(patch)
        return stats

    def test_presence_scaling(self):
        stats = self._collect()
        estimate = stats.estimate_predicate(Attr("flag") == "on")
        assert estimate.selectivity == pytest.approx(0.5)

    def test_null_semantics(self):
        stats = self._collect()
        absent = stats.estimate_predicate(Attr("flag") == None)  # noqa: E711
        assert absent.selectivity == pytest.approx(0.5)
        present = stats.estimate_predicate(Attr("flag").is_not_none())
        assert present.selectivity == pytest.approx(0.5)
        # != constant also matches the rows where the attr is absent
        neq = stats.estimate_predicate(Attr("flag") != "on")
        assert neq.selectivity == pytest.approx(0.5)

    def test_conjunction_multiplies(self):
        stats = self._collect()
        expr = (Attr("label") == "rare") & (Attr("score") <= 29.5)
        estimate = stats.estimate_predicate(expr)
        assert estimate.selectivity == pytest.approx(0.05 * 0.5, abs=0.02)
        assert SOURCE_MCV in estimate.source
        assert SOURCE_HISTOGRAM in estimate.source

    def test_disjunction_and_negation(self):
        stats = self._collect()
        # Or combines under independence: 1 - (1-0.05)(1-0.95)
        disjunction = stats.estimate_predicate(
            (Attr("label") == "rare") | (Attr("label") == "common")
        )
        assert disjunction.selectivity == pytest.approx(0.9525)
        negation = stats.estimate_predicate(~(Attr("label") == "rare"))
        assert negation.selectivity == pytest.approx(0.95)

    def test_unknown_attr_falls_back(self):
        stats = self._collect()
        estimate = stats.estimate_predicate(Attr("nothing") == 1)
        assert estimate.source == SOURCE_FALLBACK
        assert estimate.selectivity == EQ_SELECTIVITY

    def test_data_dim_recorded(self):
        stats = self._collect()
        assert stats.data_dim == 4 * 4 * 3
        assert stats.embedding_dim() == 48


class TestFallbackEstimates:
    def test_neq_gets_its_own_estimate(self):
        # regression: != used to share RANGE_SELECTIVITY with ranges
        neq = fallback_estimate(Attr("a") != 1)
        assert neq.selectivity == NEQ_SELECTIVITY
        assert neq.selectivity == pytest.approx(1.0 - EQ_SELECTIVITY)
        assert neq.source == SOURCE_FALLBACK
        assert fallback_estimate(Attr("a") < 1).selectivity == RANGE_SELECTIVITY
        assert fallback_estimate(Attr("a") == 1).selectivity == EQ_SELECTIVITY

    def test_connectives(self):
        conj = fallback_estimate((Attr("a") == 1) & (Attr("b") == 2))
        assert conj.selectivity == pytest.approx(EQ_SELECTIVITY**2)
        neg = fallback_estimate(~(Attr("a") == 1))
        assert neg.selectivity == pytest.approx(1.0 - EQ_SELECTIVITY)


def _make_patches(n=40, start=0):
    rng = np.random.default_rng(start)
    for i in range(start, start + n):
        patch = Patch.from_frame(
            "vid", i, rng.integers(0, 255, (4, 4, 3), dtype=np.uint8)
        )
        patch.metadata["label"] = "vehicle" if i % 5 == 0 else "person"
        patch.metadata["score"] = float(i % 17)
        yield patch


class TestPersistence:
    def test_round_trip_identical_estimates(self, tmp_path):
        expr = (Attr("label") == "vehicle") & (Attr("score") <= 8.0)
        with Catalog(tmp_path) as catalog:
            catalog.materialize(_make_patches(), "c")
            before = catalog.statistics_for("c")
            snapshot = before.to_value()
            estimate_before = before.estimate_predicate(expr)
        with Catalog(tmp_path) as catalog:
            after = catalog.statistics_for("c")
            assert after is not None
            assert after.to_value() == snapshot
            assert after.estimate_predicate(expr) == estimate_before

    def test_incremental_add_matches_rebuild(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(_make_patches(30), "c")
            for patch in _make_patches(25, start=30):
                collection.add(patch)
            incremental = catalog.statistics_for("c").to_value()
            rebuilt = catalog.rebuild_statistics("c").to_value()
            assert incremental == rebuilt

    def test_incremental_add_survives_reopen(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(_make_patches(30), "c")
            for patch in _make_patches(5, start=30):
                collection.add(patch)
            snapshot = catalog.statistics_for("c").to_value()
        with Catalog(tmp_path) as catalog:
            assert catalog.statistics_for("c").to_value() == snapshot
            assert catalog.statistics_for("c").row_count == 35

    def test_replace_resets_statistics(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(_make_patches(30), "c")
            catalog.materialize(_make_patches(10), "c", replace=True)
            assert catalog.statistics_for("c").row_count == 10

    def test_drop_statistics_falls_back(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(_make_patches(30), "c")
            db.catalog.drop_statistics("c")
            assert db.statistics("c") is None
            rows, source = db.optimizer.estimate_filter_rows(
                "c", Attr("label") == "vehicle"
            )
            assert source == SOURCE_FALLBACK
            assert rows == pytest.approx(30 * EQ_SELECTIVITY)
            # and a rebuild brings the estimates back
            db.rebuild_statistics("c")
            rows, source = db.optimizer.estimate_filter_rows(
                "c", Attr("label") == "vehicle"
            )
            assert source == SOURCE_MCV
            assert rows == pytest.approx(6.0)

    def test_unknown_collection_has_no_statistics(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            assert catalog.statistics_for("nope") is None

    def test_add_after_drop_does_not_seed_partial_stats(self, tmp_path):
        """Regression: an add() on a collection whose statistics were
        dropped (or that predates statistics) must NOT lazily create
        stats seeded from that one patch — one row posing as the whole
        collection's profile gives wildly wrong 'measured' estimates."""
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(_make_patches(100), "c")
            catalog.drop_statistics("c")
            for patch in _make_patches(3, start=100):
                collection.add(patch)
            # still no statistics: the planner stays on fallback constants
            assert catalog.statistics_for("c") is None
            from repro.core.optimizer import Optimizer

            rows, source = Optimizer(catalog).estimate_filter_rows(
                "c", Attr("label") == "vehicle"
            )
            assert source == SOURCE_FALLBACK
            assert rows == pytest.approx(103 * EQ_SELECTIVITY)
            # an explicit rebuild restores measured estimates over all rows
            assert catalog.rebuild_statistics("c").row_count == 103


class TestStaleness:
    """The mutation counter: post-materialization add()s flip the stale
    flag (the signal view invalidation also keys on) without perturbing
    the statistical profile or its persistence invariants."""

    def test_stale_flag_counts_post_materialize_adds(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(_make_patches(20), "c")
            assert db.statistics("c").stale is False
            collection = db.collection("c")
            for patch in _make_patches(3, start=20):
                collection.add(patch)
            stats = db.statistics("c")
            assert stats.stale is True
            assert stats.staleness == 3
            # the profile itself stayed exact under the incremental adds
            assert stats.row_count == 23

    def test_staleness_excluded_from_snapshot_equality(self, tmp_path):
        # staleness is bookkeeping about the collection, not part of the
        # statistical profile: incremental-vs-rebuild equality must hold
        # even when the incremental side saw post-materialization adds
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(_make_patches(20), "c")
            for patch in _make_patches(5, start=20):
                collection.add(patch)
            incremental = catalog.statistics_for("c")
            assert incremental.staleness == 5
            snapshot = incremental.to_value()
            assert "staleness" not in repr(snapshot)
            rebuilt = catalog.rebuild_statistics("c")
            assert rebuilt.to_value() == snapshot
            # and the rebuild re-baselined the counter
            assert catalog.statistics_for("c").staleness == 0

    def test_staleness_survives_reopen(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(_make_patches(10), "c")
            collection.add(next(iter(_make_patches(1, start=10))))
        with Catalog(tmp_path) as catalog:
            assert catalog.statistics_for("c").staleness == 1
            assert catalog.statistics_for("c").stale is True
