"""Tests for the cost model, planner, storage advisor, and synthesizer."""

import numpy as np
import pytest

from repro.core.catalog import Catalog
from repro.core.optimizer import (
    ComponentSpec,
    CostModel,
    Optimizer,
    PipelineSynthesizer,
    StorageAdvisor,
    WorkloadProfile,
)
from repro.core.patch import Patch
from repro.errors import OptimizerError
from repro.etl import WholeImageGenerator


def populate(catalog, n=30, person_every=2):
    """Materialize n patches; every ``person_every``-th is a person."""

    def gen():
        for i in range(n):
            patch = Patch.from_frame("v", i, np.zeros((4, 4, 3), np.uint8))
            patch.metadata["label"] = (
                "person" if i % person_every == 0 else "vehicle"
            )
            yield patch

    return catalog.materialize(gen(), "c")


class TestCostModel:
    def test_nested_loop_scales_quadratically(self):
        cost = CostModel()
        assert cost.nested_loop_join(2000, 2000, 64) > 3.5 * cost.nested_loop_join(
            1000, 1000, 64
        )

    def test_balltree_beats_nested_loop_at_scale(self):
        cost = CostModel()
        n = 20_000
        assert cost.balltree_join(n, n, 16) < cost.nested_loop_join(n, n, 16)

    def test_probe_alpha_rises_with_dim(self):
        cost = CostModel()
        assert cost.probe_alpha(64) > cost.probe_alpha(4)
        assert cost.probe_alpha(200) == 1.0

    def test_prebuilt_cheaper_than_fresh(self):
        cost = CostModel()
        assert cost.balltree_join(100, 5000, 8, prebuilt=True) < cost.balltree_join(
            100, 5000, 8, prebuilt=False
        )

    def test_calibrate_sets_flag_and_positive_constants(self):
        cost = CostModel().calibrate()
        assert cost.calibrated
        assert cost.dist_per_dim > 0
        assert cost.build_per_point > 0
        assert 0 < cost.probe_alpha(4) <= 1


class TestOptimizerPlans:
    def test_access_path_selection(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            # persons are 1-in-10: selective enough that the recorded
            # statistics send the planner to the index
            populate(catalog, n=100, person_every=10)
            catalog.create_index("c", "label", "hash")
            optimizer = Optimizer(catalog)
            from repro.core.expressions import Attr

            operator, explanation = optimizer.plan_filter("c", Attr("label") == "person")
            assert explanation.chosen.kind == "hash-lookup"
            assert len(list(operator)) == 10
            # explanation keeps the rejected full scan
            kinds = {choice.kind for choice in explanation.candidates}
            assert "full-scan" in kinds

    def test_similarity_join_strategy_flips_with_size(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            # in high dimension the Ball-tree degrades to a linear probe
            # plus build cost, so the nested loop wins; in low dimension
            # pruning pays off at scale
            high_dim = optimizer.plan_similarity_join(100, 100, 64)
            low_dim = optimizer.plan_similarity_join(30_000, 30_000, 8)
            assert high_dim.chosen.kind == "nested-loop"
            assert low_dim.chosen.kind.startswith("balltree")

    def test_similarity_join_prefers_prebuilt_side(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            explanation = optimizer.plan_similarity_join(
                5000, 5000, 16, prebuilt_side="right"
            )
            assert explanation.chosen.params.get("build_side") == "right"

    def test_similarity_join_validates(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            with pytest.raises(OptimizerError):
                Optimizer(catalog).plan_similarity_join(0, 10, 4)

    def test_device_placement(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            big = optimizer.plan_device(50e9, 10_000_000, kernels=2)
            assert big.chosen.params["device"] == "gpu"
            small = optimizer.plan_device(1e6, 1_000, kernels=40)
            assert small.chosen.params["device"] == "avx"

    def test_dedup_accuracy_tradeoff(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            explanation = Optimizer(catalog).plan_dedup_filter_placement(
                n_patches=1000, person_fraction=0.4, mislabel_rate=0.08
            )
            by_kind = {c.kind: c for c in explanation.candidates}
            push = by_kind["filter-then-match"]
            late = by_kind["match-then-filter"]
            assert late.accuracy.recall > push.accuracy.recall
            assert late.cost_seconds > push.cost_seconds


class TestOptimizerEdgeCases:
    def test_attr_of_non_comparison_conjuncts(self):
        from repro.core.expressions import Attr, Between, Predicate
        from repro.core.optimizer.optimizer import _attr_of

        assert _attr_of(Attr("label") == "x") == "label"
        # Between carries an attr attribute, so it is introspectable
        assert _attr_of(Between("frameno", 1, 5)) == "frameno"
        # connectives and opaque predicates expose nothing
        assert _attr_of((Attr("a") == 1) | (Attr("b") == 2)) == ""
        assert _attr_of(~(Attr("a") == 1)) == ""
        assert _attr_of(Predicate(lambda p: True)) == ""

    def test_or_and_not_fall_back_to_full_scan(self, tmp_path):
        from repro.core.expressions import Attr

        with Catalog(tmp_path) as catalog:
            populate(catalog, n=200)
            catalog.create_index("c", "label", "hash")
            catalog.create_index("c", "frameno", "btree")
            optimizer = Optimizer(catalog)
            disjunction = (Attr("label") == "person") | (Attr("frameno") < 5)
            operator, explanation = optimizer.plan_filter("c", disjunction)
            assert explanation.chosen.kind == "full-scan"
            assert len(explanation.candidates) == 1  # no index candidate at all
            assert len(list(operator)) == 102  # 100 persons + frames 1, 3 extra

            negation = ~(Attr("label") == "person")
            _, explanation = optimizer.plan_filter("c", negation)
            assert explanation.chosen.kind == "full-scan"

    def test_index_candidate_with_multi_conjunct_residual(self, tmp_path):
        from repro.core.expressions import Attr

        with Catalog(tmp_path) as catalog:
            populate(catalog, n=200, person_every=10)
            catalog.create_index("c", "label", "hash")
            optimizer = Optimizer(catalog)
            expr = (
                (Attr("label") == "person")
                & (Attr("frameno") >= 10)
                & (Attr("frameno") < 30)
            )
            operator, explanation = optimizer.plan_filter("c", expr)
            assert explanation.chosen.kind == "hash-lookup"
            # residual (two frameno conjuncts) still applied on top
            frames = [p["frameno"] for (p,) in operator]
            assert frames and all(10 <= f < 30 for f in frames)
            assert all(f % 10 == 0 for f in frames)  # persons: every 10th frame

    def test_similarity_join_tie_breaking_with_prebuilt_side(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            for side in ("left", "right"):
                explanation = optimizer.plan_similarity_join(
                    20_000, 20_000, 8, prebuilt_side=side
                )
                # with equal cardinalities, the sunk build cost breaks the tie
                assert explanation.chosen.params["build_side"] == side
                by_kind = {c.kind: c for c in explanation.candidates}
                prebuilt = by_kind[f"balltree-index-{side}"]
                other = "left" if side == "right" else "right"
                fresh = by_kind[f"balltree-index-{other}"]
                assert prebuilt.cost_seconds < fresh.cost_seconds


class TestStatisticsDrivenPlanning:
    """Access-path selection driven by real statistics, not constants."""

    def test_selective_stats_pick_index_uniform_stats_pick_scan(self, tmp_path):
        from repro.core.expressions import Attr

        with Catalog(tmp_path) as catalog:
            # same physical design, two collections, opposite data shapes
            populate(catalog, n=100, person_every=10)  # persons rare
            catalog.create_index("c", "label", "hash")

            def uniform():
                for i in range(100):
                    patch = Patch.from_frame("v", i, np.zeros((4, 4, 3), np.uint8))
                    patch.metadata["label"] = "person" if i % 2 == 0 else "vehicle"
                    yield patch

            catalog.materialize(uniform(), "u")
            catalog.create_index("u", "label", "hash")

            optimizer = Optimizer(catalog)
            expr = Attr("label") == "person"
            _, selective = optimizer.plan_filter("c", expr)
            _, uniform_plan = optimizer.plan_filter("u", expr)
            assert selective.chosen.kind == "hash-lookup"
            assert uniform_plan.chosen.kind == "full-scan"
            # both decisions expose their estimates and sources
            assert round(selective.chosen.params["est_rows"]) == 10
            assert selective.chosen.params["stat_source"] == "mcv"
            assert round(uniform_plan.chosen.params["est_rows"]) == 50

    def test_btree_range_estimate_from_histogram(self, tmp_path):
        from repro.core.expressions import Attr

        with Catalog(tmp_path) as catalog:
            populate(catalog, n=200)
            catalog.create_index("c", "frameno", "btree")
            optimizer = Optimizer(catalog)
            _, explanation = optimizer.plan_filter(
                "c", Attr("frameno").between(10, 29)
            )
            assert explanation.chosen.kind == "btree-range"
            assert explanation.chosen.params["stat_source"] == "histogram"
            # frames are uniform over 0..199: ~20 rows in [10, 29]
            assert explanation.chosen.params["est_rows"] == pytest.approx(20, abs=4)
            assert any("histogram" in line for line in explanation.estimates)
            assert "histogram" in str(explanation)

    def test_estimate_filter_rows_close_to_actual(self, tmp_path):
        from repro.core.expressions import Attr

        with Catalog(tmp_path) as catalog:
            collection = populate(catalog, n=120, person_every=3)
            optimizer = Optimizer(catalog)
            expr = Attr("label") == "person"
            rows, source = optimizer.estimate_filter_rows("c", expr)
            actual = sum(
                1 for patch in collection.scan() if expr.evaluate(patch)
            )
            assert source == "mcv"
            assert rows == pytest.approx(actual)

    def test_custom_statistics_provider_threads_through(self, tmp_path):
        from repro.core.expressions import Attr
        from repro.core.statistics import CollectionStatistics

        class Canned:
            def __init__(self, stats):
                self._stats = stats

            def statistics_for(self, collection_name):
                return self._stats

        with Catalog(tmp_path) as catalog:
            collection = populate(catalog, n=50)
            canned = CollectionStatistics()
            for patch in collection.scan():
                canned.observe(patch)
            optimizer = Optimizer(catalog, statistics=Canned(canned))
            rows, source = optimizer.estimate_filter_rows(
                "c", Attr("label") == "person"
            )
            assert source == "mcv"
            assert rows == pytest.approx(25.0)


class TestStorageAdvisor:
    def test_selective_workload_prefers_pushdown_layout(self):
        advisor = StorageAdvisor()
        recommendation = advisor.advise(
            WorkloadProfile(
                n_frames=30_000,
                frame_bytes=170_000,
                temporal_selectivity=0.02,
            )
        )
        assert recommendation.layout in ("frame-raw", "frame-jpeg", "segmented")

    def test_budget_forces_compression(self):
        advisor = StorageAdvisor()
        raw_size = 30_000 * 170_000
        recommendation = advisor.advise(
            WorkloadProfile(
                n_frames=30_000,
                frame_bytes=170_000,
                temporal_selectivity=0.02,
                storage_budget_bytes=raw_size // 20,
            )
        )
        assert recommendation.layout in ("encoded", "segmented")
        assert recommendation.expected_size_bytes <= raw_size // 20

    def test_impossible_budget_raises(self):
        advisor = StorageAdvisor()
        with pytest.raises(OptimizerError, match="budget"):
            advisor.advise(
                WorkloadProfile(
                    n_frames=1000,
                    frame_bytes=100_000,
                    temporal_selectivity=0.5,
                    storage_budget_bytes=10,
                )
            )

    def test_accuracy_sensitive_gets_high_quality(self):
        advisor = StorageAdvisor()
        recommendation = advisor.advise(
            WorkloadProfile(
                n_frames=10_000,
                frame_bytes=170_000,
                temporal_selectivity=0.3,
                storage_budget_bytes=10_000 * 170_000 // 10,
                accuracy_sensitive=True,
            )
        )
        assert recommendation.quality == "high"

    def test_clip_len_in_bounds(self):
        advisor = StorageAdvisor()
        profile = WorkloadProfile(
            n_frames=5_000, frame_bytes=170_000, temporal_selectivity=0.05
        )
        clip_len = advisor.optimal_clip_len(profile)
        assert 4 <= clip_len <= 5_000

    def test_validates_profile(self):
        advisor = StorageAdvisor()
        with pytest.raises(OptimizerError):
            advisor.advise(
                WorkloadProfile(n_frames=0, frame_bytes=1, temporal_selectivity=0.5)
            )
        with pytest.raises(OptimizerError):
            advisor.advise(
                WorkloadProfile(n_frames=10, frame_bytes=1, temporal_selectivity=2.0)
            )


def _component(name, provides, requires=frozenset(), latency=1e-3, recall=1.0):
    return ComponentSpec(
        name=name,
        factory=WholeImageGenerator,
        provides=frozenset(provides),
        requires=frozenset(requires),
        latency_per_item=latency,
        recall=recall,
    )


class TestPipelineSynthesis:
    def test_chooses_cheapest_chain(self):
        library = [
            _component("det-big", {"bbox", "label"}, {"pixels"}, latency=10e-3),
            _component("det-small", {"bbox", "label"}, {"pixels"}, latency=2e-3,
                       recall=0.8),
            _component("depth", {"depth"}, {"bbox"}, latency=1e-3),
        ]
        result = PipelineSynthesizer(library).synthesize({"depth"})
        names = [c.name for c in result.components]
        assert names == ["det-small", "depth"]

    def test_accuracy_constraint_switches_model(self):
        library = [
            _component("det-big", {"bbox"}, {"pixels"}, latency=10e-3, recall=0.95),
            _component("det-small", {"bbox"}, {"pixels"}, latency=2e-3, recall=0.7),
        ]
        result = PipelineSynthesizer(library).synthesize(
            {"bbox"}, min_recall=0.9
        )
        assert result.components[0].name == "det-big"

    def test_unreachable_fields(self):
        library = [_component("det", {"bbox"}, {"pixels"})]
        with pytest.raises(OptimizerError, match="no composition"):
            PipelineSynthesizer(library).synthesize({"depth"})

    def test_accuracy_infeasible_reported_distinctly(self):
        library = [_component("det", {"bbox"}, {"pixels"}, recall=0.5)]
        with pytest.raises(OptimizerError, match="recall"):
            PipelineSynthesizer(library).synthesize({"bbox"}, min_recall=0.9)

    def test_result_builds_pipeline(self):
        library = [_component("whole", {"whole"}, {"pixels"})]
        result = PipelineSynthesizer(library).synthesize({"whole"})
        assert result.build() is not None
        assert "whole" in result.describe()

    def test_rejects_empty_library(self):
        with pytest.raises(OptimizerError, match="empty"):
            PipelineSynthesizer([])
