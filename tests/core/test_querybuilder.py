"""QueryBuilder pipeline API and error-path tests."""

import numpy as np
import pytest

from repro.core import Attr, DeepLens
from repro.core.patch import Patch
from repro.errors import QueryError


def make_patches(n=20):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 7, np.uint8))
        patch.metadata["label"] = "vehicle" if i % 3 == 0 else "person"
        patch.metadata["score"] = float(i)
        patch.metadata["vec"] = np.array([float(i // 2), 0.0])
        yield patch


@pytest.fixture
def db(tmp_path):
    with DeepLens(tmp_path) as session:
        session.materialize(make_patches(), "c")
        yield session


class TestPipelineStages:
    def test_map_derives_new_attrs(self, db):
        result = (
            db.scan("c")
            .map(
                lambda p: p.derive(p.data, "bright", brightness=float(p.data.mean())),
                name="bright",
                provides={"brightness"},
            )
            .filter(Attr("brightness") >= 0.0)
            .patches()
        )
        assert len(result) == 20
        assert all("brightness" in p.metadata for p in result)

    def test_metadata_only_scan(self, db):
        result = db.scan("c", load_data=False).filter(
            Attr("label") == "vehicle"
        ).patches()
        assert len(result) == 7
        assert all(p.data.size == 0 for p in result)
        assert all(p["score"] >= 0.0 for p in result)  # metadata intact

    def test_select_projects_metadata(self, db):
        result = db.scan("c").select("label").patches()
        assert all("score" not in p.metadata for p in result)
        assert all(p["label"] in ("vehicle", "person") for p in result)

    def test_select_requires_attrs(self, db):
        with pytest.raises(QueryError, match="at least one"):
            db.scan("c").select()

    def test_limit_and_order_by(self, db):
        result = (
            db.scan("c").order_by("score", reverse=True).limit(4).patches()
        )
        assert [p["score"] for p in result] == [19.0, 18.0, 17.0, 16.0]

    def test_limit_zero_returns_empty(self, db):
        assert db.scan("c").limit(0).patches() == []
        assert db.scan("c").limit(0).count() == 0

    def test_limit_negative_raises(self, db):
        with pytest.raises(QueryError, match="non-negative"):
            db.scan("c").limit(-1)

    def test_order_by_missing_attr_raises(self, db):
        with pytest.raises(QueryError, match="ghost"):
            db.scan("c").order_by("ghost").patches()

    def test_filter_chaining_ands(self, db):
        chained = (
            db.scan("c")
            .filter(Attr("label") == "vehicle")
            .filter(Attr("score") >= 6.0)
        )
        combined = db.scan("c").filter(
            (Attr("label") == "vehicle") & (Attr("score") >= 6.0)
        )
        assert {p.patch_id for p in chained.patches()} == {
            p.patch_id for p in combined.patches()
        }
        assert chained.count() == 5  # scores 6, 9, 12, 15, 18

    def test_builders_are_shareable(self, db):
        base = db.scan("c").filter(Attr("label") == "vehicle")
        narrowed = base.filter(Attr("score") > 10.0)
        # extending `narrowed` did not mutate `base`
        assert base.count() == 7
        assert narrowed.count() == 3

    def test_batched_and_row_paths_agree(self, db):
        query = db.scan("c").filter(Attr("label") == "person").limit(7)
        batched = [p.patch_id for p in query.patches(batch_size=3)]
        rowwise = [p.patch_id for p in query.patches(batch_size=None)]
        assert batched == rowwise
        assert query.count(batch_size=3) == query.count(batch_size=None) == 7


class TestSimilarityJoinAndAggregate:
    def test_similarity_join_counts_pairs(self, db):
        join = db.scan("c").similarity_join(
            "c",
            threshold=0.0,
            features=lambda p: p["vec"],
            dim=2,
            exclude_self=True,
        )
        # vecs come in equal pairs (i//2): each of 10 pairs matches both ways
        assert join.count() == 20
        rows = join.rows()
        assert all(len(row) == 2 for row in rows)

    def test_join_default_features_reject_projected_data(self, db):
        join = db.scan("c").select("label").similarity_join("c", threshold=0.1)
        with pytest.raises(QueryError, match="projected away"):
            join.count()

    def test_filter_after_join_sides(self, db):
        join = db.scan("c").similarity_join(
            "c", threshold=0.0, features=lambda p: np.array([1.0])
        )
        # every pair matches; filter one side at a time
        left = join.filter(Attr("label") == "vehicle").rows()
        assert left and all(a["label"] == "vehicle" for a, _ in left)
        assert any(b["label"] == "person" for _, b in left)
        right = join.filter(Attr("label") == "vehicle", on=1).rows()
        assert right and all(b["label"] == "vehicle" for _, b in right)
        both = (
            join.filter(Attr("label") == "vehicle")
            .filter(Attr("label") == "person", on=1)
            .rows()
        )
        assert len(both) == 7 * 13

    def test_filter_on_out_of_range_raises(self, db):
        with pytest.raises(QueryError, match="single patch"):
            db.scan("c").filter(Attr("label") == "vehicle", on=1).patches()

    def test_patches_on_join_raises(self, db):
        join = db.scan("c").similarity_join(
            "c", threshold=0.0, features=lambda p: p["vec"], dim=2
        )
        with pytest.raises(QueryError, match="arity"):
            join.patches()
        with pytest.raises(QueryError, match="arity"):
            join.patches(batch_size=None)
        with pytest.raises(QueryError, match="arity"):
            join.first()

    def test_aggregate_count_and_group(self, db):
        assert db.scan("c").aggregate("count") == 20
        groups = db.scan("c").aggregate("group", key=lambda p: p["label"])
        assert groups == {"vehicle": 7, "person": 13}

    def test_aggregate_distinct_count(self, db):
        assert (
            db.scan("c").aggregate("distinct_count", key=lambda p: p["label"]) == 2
        )
        assert db.scan("c").distinct_count(lambda p: p["label"]) == 2

    def test_aggregate_validates(self, db):
        with pytest.raises(QueryError, match="unknown aggregate"):
            db.scan("c").aggregate("median")
        with pytest.raises(QueryError, match="needs a key"):
            db.scan("c").aggregate("distinct_count")
        # arguments a kind would silently ignore are rejected
        with pytest.raises(QueryError, match="takes no key"):
            db.scan("c").aggregate("count", key=lambda p: p["label"])
        with pytest.raises(QueryError, match="takes no reducer"):
            db.scan("c").aggregate(
                "distinct_count", key=lambda p: p["label"], reducer=sum
            )

    def test_join_explain_keeps_decisions_separate(self, db):
        # a selective collection so the stats-driven planner picks the
        # index path for the left side
        def rare(n=90):
            for patch in make_patches(n):
                patch.metadata["label"] = (
                    "vehicle" if patch.metadata["frameno"] % 30 == 0 else "person"
                )
                yield patch

        db.materialize(rare(), "cj")
        db.create_index("cj", "label", "hash")
        join = (
            db.scan("cj")
            .filter(Attr("label") == "vehicle")
            .similarity_join("cj", threshold=0.5, features=lambda p: p["vec"], dim=2)
        )
        explanation = join.explain()
        # one section per cost decision: left access path, right access
        # path, join strategy — each with its own winner
        assert len(explanation.sections) == 3
        assert explanation.sections[0].chosen.kind == "hash-lookup"
        assert explanation.chosen is explanation.sections[-1].chosen
        assert "decision 1" in str(explanation)


class TestExplainAndErrors:
    def test_first_on_empty_raises(self, db):
        empty = db.scan("c").filter(Attr("label") == "nothing")
        with pytest.raises(QueryError, match="no patches"):
            empty.first()

    def test_explain_reports_rewrite_and_candidates(self, db):
        query = (
            db.scan("c")
            .map(
                lambda p: p.derive(p.data, "b", brightness=1.0),
                name="b",
                provides={"brightness"},
            )
            .filter(Attr("label") == "vehicle")
        )
        explanation = query.explain()
        assert any("pushed" in line for line in explanation.rewrites)
        assert any(c.kind == "full-scan" for c in explanation.candidates)
        text = str(explanation)
        assert "applied rewrites" in text and "logical plan" in text

    def test_cached_map_uses_session_cache(self, db):
        query = db.scan("c").map(
            lambda p: p.derive(p.data, "u", u=1.0), name="u", cache=True
        )
        query.patches()
        assert db.udf_cache.misses == 20
        query.patches()
        assert db.udf_cache.hits == 20

    def test_projected_and_full_data_do_not_share_cache(self, db):
        def measure(p):
            value = float(p.data.mean()) if p.data.size else -1.0
            return p.derive(p.data, "m", m=value)

        stripped = (
            db.scan("c").select("label").map(measure, name="m", cache=True).patches()
        )
        assert all(p["m"] == -1.0 for p in stripped)
        # same UDF over full data must not hit the stripped-data entries
        full = db.scan("c").map(measure, name="m", cache=True).patches()
        assert all(p["m"] >= 0.0 for p in full)

    def test_cache_hits_are_isolated_from_materialize(self, db):
        query = db.scan("c").map(
            lambda p: p.derive(p.data, "u", u=1.0), name="u", cache=True
        )
        first_run = query.patches()
        db.materialize(first_run, "derived")  # assigns patch_ids in place
        assert all(p.patch_id is not None for p in first_run)
        second_run = query.patches()  # all cache hits
        assert db.udf_cache.hits == 20
        assert all(p.patch_id is None for p in second_run)
