"""Tests for the Patch ADT, schema/type system, and expression DSL."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.expressions import (
    AlwaysTrue,
    Attr,
    Predicate,
    extract_bounds,
)
from repro.core.patch import ImgRef, Patch
from repro.core.schema import (
    Field,
    PatchSchema,
    frame_schema,
    validate_filter_constant,
)
from repro.errors import QueryError, SchemaError, ValidationError


def make_patch(**meta) -> Patch:
    return Patch.from_frame("vid", 3, np.zeros((8, 8, 3), np.uint8), **meta)


class TestPatch:
    def test_from_frame_sets_metadata(self):
        patch = make_patch()
        assert patch["source"] == "vid"
        assert patch["frameno"] == 3
        assert patch.lineage == (("load", "vid", 3),)

    def test_derive_extends_lineage(self):
        child = make_patch().derive(
            np.zeros((4, 4, 3), np.uint8), "detect", (1, 2, 3, 4), label="car"
        )
        assert child.lineage[-1] == ("detect", (1, 2, 3, 4))
        assert child["label"] == "car"
        assert child.base_ref() == ("vid", 3)

    def test_derive_parent_pointer_tracks_materialized_ancestor(self):
        parent = make_patch()
        parent.patch_id = 42
        child = parent.derive(parent.data, "crop")
        assert child.img_ref.parent_id == 42
        # an unmaterialized intermediate passes the pointer through
        grandchild = child.derive(child.data, "ocr", text="7")
        assert grandchild.img_ref.parent_id == 42

    def test_record_round_trip(self):
        patch = make_patch(label="car", score=0.5)
        patch.metadata["hist"] = np.arange(4.0)
        restored = Patch.from_record(patch.to_record(), patch_id=9)
        assert restored.patch_id == 9
        assert restored["label"] == "car"
        assert restored.lineage == patch.lineage
        np.testing.assert_array_equal(restored["hist"], np.arange(4.0))
        np.testing.assert_array_equal(restored.data, patch.data)

    def test_record_metadata_only_projection(self):
        patch = make_patch(label="car")
        restored = Patch.from_record(patch.to_record(), with_data=False)
        assert restored["label"] == "car"
        assert restored.data.size == 0

    def test_bbox_property(self):
        patch = make_patch(bbox=(1, 2, 3, 4))
        assert patch.bbox == (1, 2, 3, 4)
        assert make_patch().bbox is None

    def test_getitem_and_get(self):
        patch = make_patch(label="car")
        assert patch["label"] == "car"
        assert patch.get("missing", "dflt") == "dflt"
        with pytest.raises(KeyError):
            patch["missing"]


class TestSchema:
    def test_field_domain_check(self):
        field = Field("label", "str", domain=frozenset({"car", "person"}))
        field.check_value("car")
        with pytest.raises(ValidationError, match="closed domain"):
            field.check_value("bicycle")

    def test_field_kind_check(self):
        field = Field("score", "float")
        field.check_value(0.5)
        with pytest.raises(ValidationError, match="kind"):
            field.check_value("high")

    def test_required_field(self):
        field = Field("label", "str", required=True)
        with pytest.raises(ValidationError, match="required"):
            field.check_value(None)

    def test_bad_kind_rejected(self):
        with pytest.raises(SchemaError, match="unknown field kind"):
            Field("x", "complex")

    def test_bbox_arity(self):
        field = Field("bbox", "bbox")
        field.check_value((1, 2, 3, 4))
        with pytest.raises(ValidationError, match="4-tuple"):
            field.check_value((1, 2, 3))

    def test_validate_patch_pixels(self):
        schema = frame_schema()
        schema.validate_patch(make_patch())
        bad = Patch.from_frame("v", 0, np.zeros((2, 2, 3, 1), np.uint8))
        with pytest.raises(ValidationError):
            schema.validate_patch(bad)

    def test_validate_resolution(self):
        schema = frame_schema(resolution=(16, 16))
        with pytest.raises(ValidationError, match="resolution"):
            schema.validate_patch(make_patch())

    def test_feature_schema(self):
        schema = PatchSchema(data_kind="features", dim=4)
        good = Patch(ImgRef("s", 0), np.zeros(4))
        schema.validate_patch(good)
        with pytest.raises(ValidationError, match="dim"):
            schema.validate_patch(Patch(ImgRef("s", 0), np.zeros(5)))

    def test_filter_constant_validation(self):
        schema = frame_schema().with_field(
            Field("label", "str", domain=frozenset({"vehicle", "person"}))
        )
        validate_filter_constant(schema, "label", "vehicle")
        with pytest.raises(ValidationError, match="upstream"):
            validate_filter_constant(schema, "label", "unicorn")
        # open fields pass anything
        validate_filter_constant(schema, "note", "whatever")

    def test_schema_evolution(self):
        schema = frame_schema().with_fields(
            Field("a", "int"), Field("b", "float")
        )
        assert set(schema.fields) >= {"a", "b", "source", "frameno"}
        features = schema.as_features(8)
        assert features.data_kind == "features"
        assert features.dim == 8


class TestExpressions:
    def test_comparisons(self):
        patch = make_patch(label="car", score=0.7)
        assert (Attr("label") == "car").evaluate(patch)
        assert (Attr("label") != "bus").evaluate(patch)
        assert (Attr("score") > 0.5).evaluate(patch)
        assert (Attr("score") <= 0.7).evaluate(patch)
        assert not (Attr("score") < 0.7).evaluate(patch)

    def test_none_attrs_fail_ordering_silently(self):
        patch = make_patch()
        assert not (Attr("score") > 0.5).evaluate(patch)

    def test_between_and_isin_contains(self):
        patch = make_patch(label="car", text="HELLO WORLD")
        assert Attr("frameno").between(0, 5).evaluate(patch)
        assert not Attr("frameno").between(4, 5).evaluate(patch)
        assert Attr("label").isin(["car", "bus"]).evaluate(patch)
        assert Attr("text").contains("WORLD").evaluate(patch)

    def test_boolean_algebra(self):
        patch = make_patch(label="car", score=0.7)
        expr = (Attr("label") == "car") & (Attr("score") > 0.5)
        assert expr.evaluate(patch)
        assert not (~expr).evaluate(patch)
        assert ((Attr("label") == "bus") | (Attr("score") > 0.5)).evaluate(patch)

    def test_conjuncts_flatten(self):
        expr = (Attr("a") == 1) & (Attr("b") == 2) & (Attr("c") == 3)
        assert len(expr.conjuncts()) == 3

    def test_predicate_escape_hatch(self):
        expr = Predicate(lambda patch: patch["frameno"] % 2 == 1, "odd")
        assert expr.evaluate(make_patch())  # frame 3

    def test_always_true(self):
        assert AlwaysTrue().evaluate(make_patch())

    def test_extract_bounds_between(self):
        lo, hi, residual = extract_bounds(Attr("frameno").between(5, 9), "frameno")
        assert (lo, hi, residual) == (5, 9, None)

    def test_extract_bounds_mixed(self):
        expr = (Attr("frameno") >= 5) & (Attr("label") == "car") & (
            Attr("frameno") <= 9
        )
        lo, hi, residual = extract_bounds(expr, "frameno")
        assert (lo, hi) == (5, 9)
        assert residual is not None
        assert residual.evaluate(make_patch(label="car"))

    def test_extract_bounds_equality(self):
        lo, hi, residual = extract_bounds(Attr("frameno") == 7, "frameno")
        assert (lo, hi, residual) == (7, 7, None)

    def test_extract_bounds_strict_keeps_residual(self):
        lo, hi, residual = extract_bounds(Attr("frameno") < 9, "frameno")
        assert hi == 9
        assert residual is not None  # the strict check survives

    def test_extract_bounds_none(self):
        assert extract_bounds(None, "frameno") == (None, None, None)

    def test_invalid_op(self):
        from repro.core.expressions import Comparison

        with pytest.raises(QueryError, match="unknown comparison"):
            Comparison("a", "~=", 1)

    @given(st.integers(-50, 50), st.integers(-50, 50), st.integers(-50, 50))
    @settings(max_examples=60)
    def test_between_matches_bounds_semantics(self, lo, hi, value):
        patch = Patch.from_frame("v", 0, np.zeros((2, 2, 3), np.uint8))
        patch.metadata["x"] = value
        expr = Attr("x").between(min(lo, hi), max(lo, hi))
        assert expr.evaluate(patch) == (min(lo, hi) <= value <= max(lo, hi))
