"""Columnar metadata segment: zone maps, persistence, planner wiring.

The bug this guards against: ``load_data=False`` used to decode every
full pixel record anyway. Metadata-only reads now come from a columnar
segment in its own heap file, so the patch heap must register **zero**
reads on every metadata path — scans, point gets, index fetches, SQL
``METADATA ONLY``, and planner-flipped aggregates alike.
"""

import os
from types import SimpleNamespace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Attr, DeepLens
from repro.core.catalog import Catalog
from repro.core.expressions import Between, Comparison, Predicate
from repro.core.patch import Patch
from repro.core.profile import PlanQualityLog, RuntimeProfile
from repro.errors import BindError, QueryError
from repro.storage.kvstore import BlobHeap
from repro.storage.metadata_segment import (
    CollectionSegment,
    block_may_match,
    zone_of,
)


def make_patches(n=50, source="vid"):
    for i in range(n):
        patch = Patch.from_frame(
            source, i, np.full((5, 5, 3), i % 11, dtype=np.uint8)
        )
        patch.metadata["label"] = ("car", "bus", "bike")[i % 3]
        patch.metadata["score"] = float(i)
        yield patch


class HeapSpy:
    """Counts reads against one BlobHeap."""

    def __init__(self, heap):
        self.heap = heap
        self.reads = 0
        self._get, self._multi = heap.get, heap.multi_get
        heap.get = self._spy(self._get)
        heap.multi_get = self._spy(self._multi)

    def _spy(self, fn):
        def wrapped(*args, **kwargs):
            self.reads += 1
            return fn(*args, **kwargs)

        return wrapped

    def restore(self):
        self.heap.get, self.heap.multi_get = self._get, self._multi


def meta_signature(patches):
    """Everything but pixel data, bit-for-bit."""
    return [
        (p.patch_id, p.img_ref.to_value(), sorted(p.metadata.items()))
        for p in patches
    ]


# -- zone maps (property-based) -------------------------------------------

MISSING = object()

column_elements = st.one_of(
    st.just(MISSING),
    st.none(),
    st.booleans(),
    st.integers(-20, 20),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.sampled_from(["", "a", "bus", "car", "zz"]),
)

probe_values = st.one_of(
    st.integers(-20, 20),
    st.floats(allow_nan=True, allow_infinity=True, width=32),
    st.sampled_from(["", "a", "bus", "car", "zz"]),
    st.booleans(),
)


@st.composite
def probes(draw):
    attr = draw(st.sampled_from(["x", "y"]))  # "y": column nobody wrote
    if draw(st.booleans()):
        lo = draw(st.none() | probe_values)
        hi = draw(probe_values) if lo is None else draw(st.none() | probe_values)
        return Between(attr, lo, hi)
    op = draw(st.sampled_from(["==", "!=", "<", "<=", ">", ">="]))
    if op in ("==", "!="):
        value = draw(st.none() | probe_values)
    else:
        value = draw(probe_values)  # ordered ops reject None at eval time
    return Comparison(attr, op, value)


@st.composite
def columns(draw):
    cells = draw(st.lists(column_elements, min_size=1, max_size=12))
    present = [cell is not MISSING for cell in cells]
    values = [None if cell is MISSING else cell for cell in cells]
    return values, present


@given(column=columns(), probe=probes())
@settings(max_examples=400, deadline=None)
def test_zone_pruning_never_drops_a_matching_row(column, probe):
    """The core soundness property: a pruned block provably holds no
    matching row — over None, missing, NaN, infinities, and mixed-type
    columns alike."""
    values, present = column
    zones = {"x": zone_of(values, present)}
    rows = [
        {"x": value} if is_present else {}
        for value, is_present in zip(values, present)
    ]
    if not block_may_match(zones, probe):
        for metadata in rows:
            try:
                matched = probe.evaluate(SimpleNamespace(metadata=metadata))
            except TypeError:
                continue  # the DSL itself rejects this row/probe pairing
            assert not matched, (values, present, probe)


@given(column=columns(), probe=probes(), data=st.data())
@settings(max_examples=100, deadline=None)
def test_conjunction_pruning_never_drops_a_matching_row(column, probe, data):
    values, present = column
    second = data.draw(probes())
    expr = probe & second
    zones = {"x": zone_of(values, present)}
    rows = [
        {"x": value} if is_present else {}
        for value, is_present in zip(values, present)
    ]
    if not block_may_match(zones, expr):
        for metadata in rows:
            try:
                matched = expr.evaluate(SimpleNamespace(metadata=metadata))
            except TypeError:
                continue
            assert not matched


def test_zone_of_mixed_and_nan_columns_disable_range_pruning():
    zone = zone_of([1, "a", 3], [True, True, True])
    assert zone.group is None and zone.n_values == 3
    assert block_may_match({"x": zone}, Comparison("x", ">", 100))
    nan_zone = zone_of([1.0, float("nan")], [True, True])
    assert nan_zone.group is None
    assert block_may_match({"x": nan_zone}, Comparison("x", "<", -100))


def test_eq_none_prunes_on_presence_not_values():
    all_present = zone_of([1, 2], [True, True])
    assert not block_may_match({"x": all_present}, Comparison("x", "==", None))
    # a missing attribute reads as None, so the block may match == None
    with_gap = zone_of([1, None], [True, False])
    assert block_may_match({"x": with_gap}, Comparison("x", "==", None))
    # and an absent column is all-None: ordered probes can never match
    assert not block_may_match({}, Comparison("x", ">", 0))
    assert block_may_match({}, Comparison("x", "==", None))


@pytest.fixture(scope="module")
def segment_heap(tmp_path_factory):
    heap = BlobHeap(tmp_path_factory.mktemp("seg") / "zones.seg")
    yield heap
    heap.close()


@given(column=columns(), probe=probes())
@settings(max_examples=100, deadline=None)
def test_segment_scan_with_expr_keeps_every_matching_row(
    segment_heap, column, probe
):
    """End-to-end over sealed blocks: scan_rows(expr) may skip blocks but
    never a block containing a matching row."""
    values, present = column
    segment = CollectionSegment(segment_heap, "c", block_rows=3)
    rows = []
    for i, (value, is_present) in enumerate(zip(values, present)):
        metadata = {"x": value} if is_present else {}
        rows.append((i, ("v", i, None), metadata))
        segment.append(i, ("v", i, None), metadata)
    scanned = {row[0] for row in segment.scan_rows(probe)}
    for patch_id, _, metadata in rows:
        try:
            matched = probe.evaluate(SimpleNamespace(metadata=metadata))
        except TypeError:
            continue
        if matched:
            assert patch_id in scanned


# -- storage layer ---------------------------------------------------------


class TestSegmentStorage:
    def test_metadata_scan_is_heap_free_and_bit_identical(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(40), "c")
            full = list(collection.scan(load_data=True))
            spy = HeapSpy(catalog.heap)
            try:
                lean = list(collection.scan(load_data=False))
                point = collection.get_many([3, 17, 38], load_data=False)
                single = collection.get(21, load_data=False)
            finally:
                spy.restore()
            assert spy.reads == 0
            assert meta_signature(lean) == meta_signature(full)
            assert all(p.data.size == 0 for p in lean)
            assert [p.patch_id for p in point] == [3, 17, 38]
            assert single.metadata == full[21].metadata
            assert single.lineage == full[21].lineage

    def test_get_many_missing_id_raises_query_error(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(5), "c")
            with pytest.raises(QueryError, match="not in collection"):
                collection.get_many([2, 999], load_data=False)

    def test_segment_survives_reopen_without_heap_reads(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(30), "c")
            expected = meta_signature(
                catalog.collection("c").scan(load_data=False)
            )
        with Catalog(tmp_path) as catalog:
            spy = HeapSpy(catalog.heap)
            try:
                rows = list(catalog.collection("c").scan(load_data=False))
            finally:
                spy.restore()
            assert spy.reads == 0
            assert meta_signature(rows) == expected

    def test_pre_segment_catalog_backfills_lazily(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(25), "c")
            expected = meta_signature(
                catalog.collection("c").scan(load_data=False)
            )
        # simulate a catalog created before the segment existed: no
        # segment heap on disk, no descriptor refs in the pager meta
        os.remove(os.path.join(tmp_path, "metadata.seg"))
        with Catalog(tmp_path) as catalog:
            catalog.segments.attach({})
        with Catalog(tmp_path) as catalog:
            collection = catalog.collection("c")
            # the first metadata read backfills from the record heap...
            assert meta_signature(collection.scan(load_data=False)) == expected
            # ...after which the heap goes quiet again
            spy = HeapSpy(catalog.heap)
            try:
                rows = list(collection.scan(load_data=False))
            finally:
                spy.restore()
            assert spy.reads == 0
            assert meta_signature(rows) == expected
            # and lockstep appends resume on the rebuilt segment
            extra = Patch.from_frame("vid", 99, np.zeros((2, 2), np.uint8))
            extra.metadata["label"] = "van"
            collection.add(extra)
            lean = list(collection.scan(load_data=False))
            assert lean[-1]["label"] == "van"

    def test_rematerialize_replaces_segment(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(10), "c")
            catalog.materialize(make_patches(4, source="v2"), "c", replace=True)
            rows = list(catalog.collection("c").scan(load_data=False))
            assert len(rows) == 4
            assert {p["source"] for p in rows} == {"v2"}


# -- planner wiring --------------------------------------------------------


class TestPlannerMetadataPaths:
    def test_explain_shows_metadata_scan_choice(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(40), "det")
            explanation = (
                db.scan("det", load_data=False)
                .filter(Attr("label") == "car")
                .explain()
            )
            assert explanation.chosen.kind == "metadata-scan"

    def test_zone_map_scan_skips_blocks(self, tmp_path, monkeypatch):
        monkeypatch.setattr(
            "repro.storage.metadata_segment.BLOCK_ROWS", 16
        )
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(120), "det")
            query = db.scan("det", load_data=False).filter(
                Attr("score") >= 112.0
            )
            explanation = query.explain()
            assert explanation.chosen.kind == "zone-map-scan"
            assert explanation.chosen.params["blocks_skipped"] > 0
            assert "skipping" in str(explanation)
            assert any("zone maps skip" in line for line in explanation.estimates)
            spy = HeapSpy(db.catalog.heap)
            try:
                rows = query.patches()
            finally:
                spy.restore()
            assert spy.reads == 0
            assert sorted(p["score"] for p in rows) == [
                float(v) for v in range(112, 120)
            ]

    def test_count_flips_to_metadata_scan(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(40), "det")
            query = db.scan("det").filter(Attr("label") == "car")
            explanation = query.aggregate_explain("count")
            assert any(
                "metadata-only" in line for line in explanation.rewrites
            )
            assert explanation.chosen.kind == "metadata-scan"
            spy = HeapSpy(db.catalog.heap)
            try:
                n = query.count()
            finally:
                spy.restore()
            assert spy.reads == 0
            assert n == 14

    def test_projection_without_data_flips_scan(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(30), "det")
            spy = HeapSpy(db.catalog.heap)
            try:
                rows = db.scan("det").select("label", "score").patches()
            finally:
                spy.restore()
            assert spy.reads == 0
            assert len(rows) == 30 and all(p.data.size == 0 for p in rows)

    def test_opaque_predicate_blocks_the_flip(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(30), "det")
            probe = Predicate(lambda p: p.data.size > 0, "has-pixels")
            spy = HeapSpy(db.catalog.heap)
            try:
                n = db.scan("det").filter(probe).count()
            finally:
                spy.restore()
            assert n == 30  # the predicate really saw pixel data
            assert spy.reads > 0

    def test_explicit_full_scan_is_untouched(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(10), "det")
            patches = db.scan("det").patches()
            assert all(p.data.size > 0 for p in patches)

    def test_index_metadata_fetches_skip_the_heap(self, tmp_path):
        with DeepLens(tmp_path) as db:
            # large enough that the point-fetch index path out-costs even
            # the cheap columnar scan
            db.materialize(make_patches(1000), "det")
            db.create_index("det", "score", "btree")
            query = db.scan("det", load_data=False).filter(
                Attr("score").between(10.0, 14.0)
            )
            assert query.explain().chosen.kind == "btree-range"
            spy = HeapSpy(db.catalog.heap)
            try:
                rows = query.patches()
            finally:
                spy.restore()
            assert spy.reads == 0
            assert [p["score"] for p in rows] == [10.0, 11.0, 12.0, 13.0, 14.0]


# -- LensQL METADATA ONLY --------------------------------------------------


class TestSqlMetadataOnly:
    @pytest.fixture()
    def db(self, tmp_path):
        with DeepLens(tmp_path) as session:
            session.materialize(make_patches(45), "det")
            yield session

    def test_fingerprint_identical_to_fluent(self, db):
        sql = db.sql_query(
            "SELECT * FROM det METADATA ONLY WHERE score >= 30.0"
        )
        fluent = db.scan("det", load_data=False).filter(
            Attr("score") >= 30.0
        )
        assert sql.plan_fingerprint() == fluent.plan_fingerprint()

    def test_rows_match_full_scan_exactly(self, db):
        lean = db.sql("SELECT * FROM det METADATA ONLY WHERE label = 'bus'")
        full = db.sql("SELECT * FROM det WHERE label = 'bus'")
        assert meta_signature(lean) == meta_signature(full)
        assert all(p.data.size == 0 for p in lean)

    def test_to_sql_round_trip(self, db):
        from repro.core.sql.parser import parse

        text = "SELECT label FROM det METADATA ONLY WHERE score < 9.0 LIMIT 3"
        statement = parse(text)
        assert statement.metadata_only
        assert "METADATA ONLY" in statement.to_sql()
        assert parse(statement.to_sql()).to_sql() == statement.to_sql()

    def test_udf_call_rejected(self, db):
        db.register_udf("noop", lambda p: p)
        with pytest.raises(BindError, match="data-less"):
            db.sql("SELECT noop() FROM det METADATA ONLY")

    def test_similarity_join_rejected(self, db):
        with pytest.raises(BindError, match="no pixel data to join"):
            db.sql(
                "SELECT COUNT(*) FROM det METADATA ONLY "
                "SIMILARITY JOIN det WITHIN 1.0"
            )

    def test_count_star_runs_heap_free(self, db):
        spy = HeapSpy(db.catalog.heap)
        try:
            n = db.sql("SELECT COUNT(*) FROM det METADATA ONLY")
        finally:
            spy.restore()
        assert n == 45 and spy.reads == 0


# -- with_children (indexed rebuild) --------------------------------------


class TestWithChildren:
    def test_replaces_children_in_field_order(self):
        from repro.core import logical

        join = logical.SimilarityJoin(
            logical.Scan("a"), logical.Scan("b"), threshold=1.0
        )
        rebuilt = join.with_children(logical.Scan("x"), logical.Scan("y"))
        assert rebuilt.left.collection == "x"
        assert rebuilt.right.collection == "y"
        assert rebuilt.threshold == 1.0

    def test_too_few_and_too_many_children_raise(self):
        from repro.core import logical

        node = logical.Filter(logical.Scan("a"), Comparison("x", "==", 1))
        with pytest.raises(QueryError, match="too few children"):
            node.with_children()
        with pytest.raises(QueryError, match="too many children"):
            node.with_children(logical.Scan("a"), logical.Scan("b"))


# -- feedback staleness ----------------------------------------------------


def profile_with_feedback(est, actual, *, base_rows=100, version=0):
    profile = RuntimeProfile()
    entry = profile.operator("op", est_rows=est)
    entry.add_batch(actual, 0.0)
    entry.set_feedback("c", "key", base_rows, version=version)
    entry.mark_exhausted()
    profile.finish()
    return profile


class TestFeedbackStaleness:
    def test_fresh_observations_still_serve_corrections(self):
        log = PlanQualityLog()
        log.record("fp", profile_with_feedback(40, 10, version=5))
        assert log.correction("c", "key") == pytest.approx(0.1)
        # exactly at the threshold: not yet expired
        assert log.correction(
            "c", "key", current_version=21, staleness=16
        ) == pytest.approx(0.1)

    def test_all_expired_observations_abstain(self):
        log = PlanQualityLog()
        log.record("fp", profile_with_feedback(40, 10, version=5))
        assert (
            log.correction("c", "key", current_version=22, staleness=16)
            is None
        )

    def test_one_fresh_observation_keeps_the_pool_alive(self):
        log = PlanQualityLog()
        log.record("fp", profile_with_feedback(40, 10, version=0))
        log.record("fp", profile_with_feedback(40, 30, version=40))
        correction = log.correction(
            "c", "key", current_version=41, staleness=16
        )
        # pooled upper median over both runs, old one included
        assert correction == pytest.approx(0.3)

    def test_legacy_two_element_observations_read_as_version_zero(self):
        log = PlanQualityLog.from_value(
            {"plans": [], "predicates": [["c", "key", [[0.5, 0.25]]]]}
        )
        assert log.correction(
            "c", "key", current_version=10, staleness=16
        ) == pytest.approx(0.25)
        assert (
            log.correction("c", "key", current_version=17, staleness=16)
            is None
        )

    def test_corrections_expire_end_to_end(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(30), "det")
            query = db.scan("det").filter(Attr("label") == "car")
            query.explain(analyze=True)  # records the observed selectivity
            estimate = db.optimizer.predicate_estimate(
                "det", Attr("label") == "car"
            )
            assert estimate.source == "feedback"
            collection = db.collection("det")
            for patch in make_patches(17, source="later"):
                collection.add(patch)  # each add bumps the version
            estimate = db.optimizer.predicate_estimate(
                "det", Attr("label") == "car"
            )
            assert estimate.source != "feedback"
