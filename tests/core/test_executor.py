"""Parallel execution engine tests.

The engine's contract is *bit-identical parallelism*: for pure per-row
UDF maps, a plan run with ``workers=4`` must produce exactly the rows,
order, lineage keys, and UDF-cache contents of the serial plan — the
thread pool is an execution detail, never a semantics change. These
tests pin that equivalence, the single-flight/thread-safety guarantees
of the shared UDF cache, worker exception propagation, the prefetch
stage, and the planner's batch-size/execution-config surface.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import Attr, DeepLens, ExecutionContext
from repro.core.executor import (
    BATCHES_PER_WORKER,
    MIN_BATCH_SIZE,
    PrefetchBatches,
    choose_batch_size,
    resolve_execution,
    run_ordered,
)
from repro.core.operators import (
    DEFAULT_BATCH_SIZE,
    IndexLookupScan,
    IndexRangeScan,
    IteratorScan,
    MapPatches,
)
from repro.core.patch import Patch
from repro.errors import QueryError

N_PATCHES = 60


def make_patches(n=N_PATCHES):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 11, np.uint8))
        patch.metadata["label"] = "vehicle" if i % 3 == 0 else "person"
        patch.metadata["score"] = float(i)
        yield patch


def scoring_udf(patch):
    """Module-level (portable) UDF: derives a stable per-patch score."""
    return patch.derive(
        patch.data, "scored", total=float(patch.data.sum()) + patch["score"]
    )


def expanding_udf(patch):
    """One->many/none UDF: drops every fifth patch, doubles every third."""
    score = int(patch["score"])
    if score % 5 == 0:
        return None
    if score % 3 == 0:
        return [
            patch.derive(patch.data, "twin", side=s) for s in ("a", "b")
        ]
    return patch.derive(patch.data, "solo", side="only")


@pytest.fixture
def db(tmp_path):
    with DeepLens(tmp_path) as session:
        session.materialize(make_patches(), "c")
        yield session


def cached_query(session):
    return (
        session.scan("c")
        .map(scoring_udf, name="scored", provides={"total"}, cache=True)
        .filter(Attr("total") > 0.0)
    )


def row_signature(patches):
    """Everything the equivalence contract pins, per row, in order."""
    return [
        (p.patch_id, p.lineage, p.data.tobytes(), sorted(p.metadata.items()))
        for p in patches
    ]


class TestParallelSerialEquivalence:
    """workers=4 must be indistinguishable from workers=1 in results."""

    def test_map_filter_pipeline_identical(self, tmp_path):
        outputs = {}
        caches = {}
        for workers in (1, 4):
            with DeepLens(tmp_path / f"w{workers}") as session:
                session.materialize(make_patches(), "c")
                query = cached_query(session).with_execution(workers=workers)
                outputs[workers] = row_signature(query.patches())
                caches[workers] = {
                    key[0:1] + key[2:]: value.metadata["total"]
                    for key, value in session.udf_cache._store.items()
                }
        assert outputs[1] == outputs[4]
        assert len(outputs[1]) == N_PATCHES - 1  # patch 0 totals 0.0
        # identical UDF-cache contents (keys minus the session-local fn
        # identity slot, plus the cached values themselves)
        assert caches[1] == caches[4]

    def test_expanding_and_dropping_udf_identical(self, tmp_path):
        outputs = {}
        for workers in (1, 4):
            with DeepLens(tmp_path / f"w{workers}") as session:
                session.materialize(make_patches(), "c")
                query = session.scan("c").map(
                    expanding_udf, name="expand"
                ).with_execution(workers=workers, batch_size=7)
                outputs[workers] = row_signature(query.patches())
        assert outputs[1] == outputs[4]
        sides = [meta for *_, meta in outputs[4]]
        assert any(("side", "a") in meta for meta in sides)

    def test_parallel_matches_row_at_a_time_path(self, db):
        query = cached_query(db)
        serial_rows = row_signature(query.patches(batch_size=None))
        parallel = row_signature(
            query.with_execution(workers=3).patches()
        )
        assert serial_rows == parallel

    def test_aggregates_identical(self, db):
        serial = db.scan("c").aggregate(
            "group", key=lambda p: p["label"], reducer=len
        )
        parallel = (
            db.scan("c")
            .with_execution(workers=4)
            .aggregate("group", key=lambda p: p["label"], reducer=len)
        )
        assert serial == parallel == {"vehicle": 20, "person": 40}

    def test_cache_hits_served_across_runs(self, db):
        query = cached_query(db).with_execution(workers=4)
        first = row_signature(query.patches())
        baseline_misses = db.udf_cache.misses
        second = row_signature(query.patches())
        assert first == second
        # the second run is served entirely from the cache
        assert db.udf_cache.misses == baseline_misses
        assert db.udf_cache.hits >= N_PATCHES

    def test_parallel_reopen_serves_persistent_cache(self, tmp_path):
        # regression: the prefetch thread scans the collection B+ tree /
        # heap while workers fetch spilled UDF results through the same
        # pager and heap — unsynchronized file handles corrupted page
        # reads here before the storage layer grew its locks
        workdir = tmp_path / "db"
        with DeepLens(workdir) as session:
            session.materialize(make_patches(400), "c")
            query = session.scan("c").map(
                scoring_udf, name="scored", provides={"total"}, cache=True
            ).with_execution(workers=4)
            first = row_signature(query.patches())
            assert session.udf_cache.misses == 400
        with DeepLens(workdir) as session:
            query = session.scan("c").map(
                scoring_udf, name="scored", provides={"total"}, cache=True
            ).with_execution(workers=4)
            again = row_signature(query.patches())
            assert again == first
            # every result came from the catalog-persisted tier, fetched
            # concurrently with the prefetching scan
            assert session.udf_cache.misses == 0
            assert session.udf_cache.disk_hits == 400

    def test_worker_exception_propagates_original_error(self, db):
        def explode(patch):
            if patch["score"] == 41.0:
                raise ValueError("boom at 41")
            return patch

        query = db.scan("c").map(explode, name="explode").with_execution(
            workers=4, batch_size=4
        )
        with pytest.raises(ValueError, match="boom at 41"):
            query.patches()

    def test_worker_exception_with_cache_propagates(self, db):
        def explode(patch):
            raise RuntimeError("cached boom")

        query = db.scan("c").map(
            explode, name="explode", cache=True
        ).with_execution(workers=4)
        with pytest.raises(RuntimeError, match="cached boom"):
            query.patches()
        # the failed computation released its single-flight claim
        assert not db.udf_cache._inflight


class TestRunOrdered:
    def test_preserves_order_under_jitter(self):
        def jittered(i):
            time.sleep(0.002 * (i % 3))
            return i * i

        out = list(run_ordered(iter(range(40)), jittered, workers=4))
        assert out == [i * i for i in range(40)]

    def test_exception_type_survives(self):
        def sometimes(i):
            if i == 7:
                raise KeyError("seven")
            return i

        results = []
        with pytest.raises(KeyError, match="seven"):
            for value in run_ordered(iter(range(20)), sometimes, workers=4):
                results.append(value)
        # everything before the failing item arrived, in order
        assert results == list(range(7))

    def test_more_workers_than_items(self):
        out = list(run_ordered(iter([1, 2]), lambda x: -x, workers=8))
        assert out == [-1, -2]

    def test_rejects_bad_workers(self):
        with pytest.raises(QueryError, match="workers"):
            list(run_ordered(iter([]), lambda x: x, workers=0))


class TestPrefetchBatches:
    def test_same_batches_as_child(self):
        patches = list(make_patches(30))
        direct = list(IteratorScan(patches).iter_batches(7))
        prefetched = list(
            PrefetchBatches(IteratorScan(patches), depth=2).iter_batches(7)
        )
        assert prefetched == direct

    def test_row_path_delegates(self):
        patches = list(make_patches(10))
        rows = list(PrefetchBatches(IteratorScan(patches), depth=1))
        assert [row[0].patch_id for row in rows] == [
            p.patch_id for p in patches
        ]

    def test_early_exit_stops_producer(self):
        patches = list(make_patches(50))
        op = PrefetchBatches(IteratorScan(patches), depth=1)
        batches = op.iter_batches(5)
        assert len(next(batches)) == 5
        batches.close()  # the consumer walked away mid-stream
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if not any(
                t.name == "deeplens-prefetch" for t in threading.enumerate()
            ):
                break
            time.sleep(0.01)
        assert not any(
            t.name == "deeplens-prefetch" for t in threading.enumerate()
        )

    def test_producer_exception_reraises(self):
        def angry():
            yield from make_patches(3)
            raise OSError("disk gone")

        op = PrefetchBatches(IteratorScan(angry()), depth=2)
        with pytest.raises(OSError, match="disk gone"):
            list(op.iter_batches(2))

    def test_rejects_bad_depth(self):
        with pytest.raises(QueryError, match="depth"):
            PrefetchBatches(IteratorScan([]), depth=0)


class TestSingleFlightCache:
    """Concurrent hit/miss correctness of the shared (persistent) cache."""

    def test_hammering_threads_compute_each_key_once(self, db):
        computed = []
        mutex = threading.Lock()

        def probe(patch):
            with mutex:
                computed.append(patch.patch_id)
            time.sleep(0.002)  # widen the double-compute window
            return patch.derive(patch.data, "probe", probed=patch.patch_id)

        wrapped = db.udf_cache.wrap("probe", probe)
        stored = db.collection("c").get_many(db.collection("c").ids())
        results: dict[int, list] = {}

        def hammer(worker_id):
            results[worker_id] = [wrapped(p)["probed"] for p in stored]

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(6)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # every thread saw every result, each key computed exactly once
        expected = [p.patch_id for p in stored]
        assert all(results[i] == expected for i in range(6))
        assert sorted(computed) == sorted(expected)
        assert db.udf_cache.misses == len(stored)
        assert db.udf_cache.hits == 5 * len(stored)
        assert not db.udf_cache._inflight

    def test_hammering_batch_path_computes_each_key_once(self, db):
        computed = []
        mutex = threading.Lock()

        def probe_batch(patches):
            with mutex:
                computed.extend(p.patch_id for p in patches)
            time.sleep(0.002)
            return [
                p.derive(p.data, "probe", probed=p.patch_id) for p in patches
            ]

        wrapped = db.udf_cache.wrap_batch("probe", probe_batch)
        stored = db.collection("c").get_many(db.collection("c").ids())
        outputs: dict[int, list] = {}

        def hammer(worker_id):
            outputs[worker_id] = [
                p["probed"] for p in wrapped(stored)
            ]

        threads = [
            threading.Thread(target=hammer, args=(i,)) for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        expected = [p.patch_id for p in stored]
        assert all(outputs[i] == expected for i in range(4))
        assert sorted(computed) == sorted(expected)
        assert not db.udf_cache._inflight

    def test_store_failure_releases_claim(self):
        # regression: a _put/_spill failure must still release the
        # single-flight claim, or every later caller of that key hangs
        from repro.core.optimizer import UDFCache

        class ExplodingStore(UDFCache):
            def __init__(self):
                super().__init__()
                self.explode = True

            def _put(self, key, value):
                if self.explode:
                    self.explode = False
                    raise RuntimeError("store down")
                super()._put(key, value)

        cache = ExplodingStore()
        wrapped = cache.wrap(
            "f", lambda p: p.derive(p.data, "f", ok=True)
        )
        patch = next(make_patches(1))
        with pytest.raises(RuntimeError, match="store down"):
            wrapped(patch)
        assert not cache._inflight
        # the key is claimable again — no stranded waiter, no deadlock
        assert wrapped(patch)["ok"] is True

    def test_failed_owner_hands_off_to_waiter(self, db):
        attempts = []
        release = threading.Event()

        def flaky(patch):
            attempts.append(threading.current_thread().name)
            if len(attempts) == 1:
                release.set()
                time.sleep(0.01)  # let the second thread reach the wait
                raise RuntimeError("first owner dies")
            return patch.derive(patch.data, "flaky", ok=True)

        wrapped = db.udf_cache.wrap("flaky", flaky)
        patch = db.collection("c").get(0)
        outcomes = {}

        def first():
            try:
                wrapped(patch)
            except RuntimeError as exc:
                outcomes["first"] = exc

        def second():
            release.wait()
            outcomes["second"] = wrapped(patch)

        threads = [
            threading.Thread(target=first, name="t-first"),
            threading.Thread(target=second, name="t-second"),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert isinstance(outcomes["first"], RuntimeError)
        assert outcomes["second"]["ok"] is True
        assert not db.udf_cache._inflight


class TestBatchedIndexScans:
    @pytest.fixture
    def indexed_db(self, db):
        db.create_index("c", "label", "hash")
        db.create_index("c", "score", "btree")
        return db

    def test_lookup_scan_coalesces_and_matches_full_scan(self, indexed_db):
        scan = IndexLookupScan(
            indexed_db.collection("c"), "label", "vehicle", "hash"
        )
        via_index = sorted(row[0].patch_id for row in scan)
        brute = sorted(
            p.patch_id
            for p in indexed_db.collection("c").get_many(
                indexed_db.collection("c").ids()
            )
            if p["label"] == "vehicle"
        )
        assert via_index == brute

    def test_lookup_iter_batches_respects_size(self, indexed_db):
        scan = IndexLookupScan(
            indexed_db.collection("c"), "label", "vehicle", "hash"
        )
        batches = list(scan.iter_batches(6))
        assert [len(b) for b in batches] == [6, 6, 6, 2]
        assert all(row[0]["label"] == "vehicle" for b in batches for row in b)
        # the row path yields the same patches in the same order
        assert [row[0].patch_id for row in scan] == [
            row[0].patch_id for b in batches for row in b
        ]

    def test_row_path_fetches_lazily(self, indexed_db, monkeypatch):
        # an early-exiting row consumer must not pay for a full
        # default-sized batch of decodes: the first fetch is small
        collection = indexed_db.collection("c")
        requested: list[int] = []
        original = collection.get_many

        def counting(ids, **kwargs):
            requested.append(len(ids))
            return original(ids, **kwargs)

        monkeypatch.setattr(collection, "get_many", counting)
        scan = IndexLookupScan(collection, "label", "vehicle", "hash")
        rows = iter(scan)
        for _ in range(3):
            next(rows)
        assert requested == [scan.ROW_PATH_INITIAL_FETCH]

    def test_range_scan_batched_matches_row_path(self, indexed_db):
        scan = IndexRangeScan(
            indexed_db.collection("c"), "score", 10.0, 30.0, "btree"
        )
        batched = [row[0].patch_id for b in scan.iter_batches(4) for row in b]
        assert batched == [row[0].patch_id for row in scan]
        assert len(batched) == 21

    def test_bad_batch_size_rejected(self, indexed_db):
        scan = IndexLookupScan(
            indexed_db.collection("c"), "label", "vehicle", "hash"
        )
        with pytest.raises(QueryError, match="positive"):
            list(scan.iter_batches(0))


class TestIteratorScanConsumption:
    def test_undriven_batches_do_not_poison_later_scans(self):
        scan = IteratorScan(p for p in make_patches(5))
        undriven = scan.iter_batches(2)  # never driven
        assert len(list(scan)) == 5
        del undriven

    def test_undriven_row_iterator_does_not_poison(self):
        scan = IteratorScan(p for p in make_patches(5))
        iter(scan)  # creating an iterator is not consumption
        assert sum(len(b) for b in scan.iter_batches(2)) == 5

    def test_second_drive_still_raises(self):
        scan = IteratorScan(p for p in make_patches(5))
        assert len(list(scan)) == 5
        with pytest.raises(QueryError, match="already consumed"):
            list(scan)

    def test_lists_stay_rescannable(self):
        scan = IteratorScan(list(make_patches(5)))
        assert len(list(scan)) == 5
        assert sum(len(b) for b in scan.iter_batches(2)) == 5
        assert len(list(scan)) == 5


class TestExecutionConfig:
    def test_context_validation(self):
        with pytest.raises(QueryError, match="workers"):
            ExecutionContext(workers=0)
        with pytest.raises(QueryError, match="batch size"):
            ExecutionContext(batch_size=0)
        with pytest.raises(QueryError, match="prefetch"):
            ExecutionContext(prefetch_batches=-1)

    def test_override_merges_knobs(self):
        context = ExecutionContext(workers=2, prefetch_batches=3)
        bumped = context.override(workers=8)
        assert (bumped.workers, bumped.prefetch_batches) == (8, 3)
        assert context.override() is context

    def test_explicit_default_sized_batch_honored(self, db):
        # batch_size=256 passed explicitly must NOT be replaced by the
        # planner's cardinality-driven pick (it equals DEFAULT_BATCH_SIZE,
        # but explicit is explicit — a model's batch contract)
        query = cached_query(db).with_execution(workers=4)
        assert query.explain().execution.batch_size < DEFAULT_BATCH_SIZE
        explicit = query.patches(batch_size=DEFAULT_BATCH_SIZE)
        planner = query.patches()
        assert row_signature(explicit) == row_signature(planner)

    def test_caller_batch_size_wins(self):
        size, source = choose_batch_size(
            ExecutionContext(workers=4, batch_size=64), est_rows=10_000.0
        )
        assert (size, source) == (64, "caller-specified")

    def test_serial_keeps_default(self):
        size, source = choose_batch_size(ExecutionContext(), est_rows=10.0)
        assert (size, source) == (DEFAULT_BATCH_SIZE, "default")

    def test_parallel_sizes_from_cardinality(self):
        context = ExecutionContext(workers=4)
        size, source = choose_batch_size(context, est_rows=320.0)
        assert size == max(
            MIN_BATCH_SIZE, int(np.ceil(320 / (4 * BATCHES_PER_WORKER)))
        )
        assert source == "cardinality ~320 rows"
        huge, _ = choose_batch_size(context, est_rows=1e9)
        assert huge == DEFAULT_BATCH_SIZE
        tiny, _ = choose_batch_size(context, est_rows=3.0)
        assert tiny == MIN_BATCH_SIZE

    def test_resolve_execution_str(self):
        plan = resolve_execution(ExecutionContext(workers=4), est_rows=320.0)
        text = str(plan)
        assert "workers=4" in text and "cardinality ~320 rows" in text

    def test_explain_reports_execution_config(self, db):
        explanation = cached_query(db).with_execution(workers=4).explain()
        assert explanation.execution is not None
        assert explanation.execution.workers == 4
        assert explanation.execution.batch_size_source.startswith("cardinality")
        assert "execution: workers=4" in str(explanation)
        assert any("prefetch" in line for line in explanation.rewrites)

    def test_serial_plan_reports_default(self, db):
        explanation = db.scan("c").explain()
        assert explanation.execution.workers == 1
        assert explanation.execution.batch_size == DEFAULT_BATCH_SIZE
        assert not any("prefetch" in line for line in explanation.rewrites)

    def test_session_level_context_inherited(self, tmp_path):
        with DeepLens(
            tmp_path, execution=ExecutionContext(workers=2, prefetch_batches=1)
        ) as session:
            session.materialize(make_patches(10), "c")
            query = session.scan("c")
            assert query.execution_context().workers == 2
            assert query.explain().execution.workers == 2
            boosted = query.with_execution(workers=6)
            assert boosted.execution_context().prefetch_batches == 1
            assert boosted.explain().execution.workers == 6

    def test_no_prefetch_thread_for_serial_plans(self, db):
        cached_query(db).patches()
        assert not any(
            t.name == "deeplens-prefetch" for t in threading.enumerate()
        )

    def test_parallel_map_without_scan_child_gets_no_prefetch(self, db):
        # the second map's child is a MapPatches, not a scan: only the
        # innermost map gets the prefetch stage
        explanation = (
            db.scan("c")
            .map(scoring_udf, name="first", provides={"total"})
            .map(lambda p: p, name="second")
            .with_execution(workers=2)
            .explain()
        )
        prefetch_lines = [
            line for line in explanation.rewrites if "prefetch" in line
        ]
        assert len(prefetch_lines) == 1
        assert "'first'" in prefetch_lines[0]

    def test_map_patches_accepts_execution(self):
        patches = list(make_patches(20))
        op = MapPatches(
            IteratorScan(patches),
            scoring_udf,
            execution=ExecutionContext(workers=3),
        )
        out = [row[0]["total"] for b in op.iter_batches(4) for row in b]
        serial = [
            row[0]["total"]
            for b in MapPatches(IteratorScan(patches), scoring_udf).iter_batches(4)
            for row in b
        ]
        assert out == serial
