"""Integration tests: catalog, lineage, session, storage formats."""

import numpy as np
import pytest

from repro.core import Attr, DeepLens
from repro.core.catalog import Catalog
from repro.core.patch import Patch
from repro.core.schema import Field, frame_schema
from repro.errors import (
    IndexError_,
    QueryError,
    RandomAccessUnsupportedError,
    StorageError,
    ValidationError,
)


def make_patches(n=20, source="vid"):
    rng = np.random.default_rng(0)
    for i in range(n):
        patch = Patch.from_frame(
            source, i, rng.integers(0, 255, (6, 6, 3), dtype=np.uint8)
        )
        patch.metadata["label"] = "vehicle" if i % 3 == 0 else "person"
        patch.metadata["bbox"] = (i, i, i + 5, i + 9)
        patch.metadata["vec"] = np.array([float(i % 4), float(i % 5)])
        yield patch


def assert_same_metadata(a: dict, b: dict) -> None:
    assert a.keys() == b.keys()
    for key in a:
        if isinstance(a[key], np.ndarray):
            assert np.array_equal(a[key], b[key])
        else:
            assert a[key] == b[key]


class TestCatalog:
    def test_materialize_and_scan(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(10), "c")
            assert len(collection) == 10
            ids = [patch.patch_id for patch in collection.scan()]
            assert ids == sorted(ids)

    def test_get_and_missing(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(3), "c")
            patch = collection.get(1)
            assert patch["frameno"] == 1
            with pytest.raises(QueryError, match="not in collection"):
                collection.get(999)

    def test_duplicate_name_rejected(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(2), "c")
            with pytest.raises(StorageError, match="already exists"):
                catalog.materialize(make_patches(2), "c")
            catalog.materialize(make_patches(2), "c", replace=True)

    def test_get_many_matches_point_gets(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(25), "c")
            wanted = [7, 3, 24, 0, 3]  # out of order, with a duplicate
            batch = collection.get_many(wanted)
            assert [p.patch_id for p in batch] == wanted
            for patch, patch_id in zip(batch, wanted):
                point = collection.get(patch_id)
                assert (patch.data == point.data).all()
                assert_same_metadata(patch.metadata, point.metadata)
            assert collection.get_many([]) == []
            meta_only = collection.get_many([1, 2], load_data=False)
            assert all(p.data.size == 0 for p in meta_only)
            with pytest.raises(QueryError, match="not in collection"):
                collection.get_many([1, 999])

    def test_scan_batches_matches_scan(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(23), "c")
            batches = list(collection.scan_batches(7))
            assert [len(b) for b in batches] == [7, 7, 7, 2]
            flat = [p for batch in batches for p in batch]
            plain = list(collection.scan())
            assert [p.patch_id for p in flat] == [p.patch_id for p in plain]
            for a, b in zip(flat, plain):
                assert (a.data == b.data).all()
                assert_same_metadata(a.metadata, b.metadata)
            with pytest.raises(QueryError, match="positive"):
                list(collection.scan_batches(0))

    def test_index_lookup_helper_uses_batched_path(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(12), "c")
            catalog.create_index("c", "label", "hash")
            found = collection.lookup("label", "vehicle")
            assert sorted(p.patch_id for p in found) == [0, 3, 6, 9]

    def test_schema_enforced_at_materialize(self, tmp_path):
        schema = frame_schema().with_field(
            Field("label", "str", domain=frozenset({"vehicle"}), required=True)
        )
        with Catalog(tmp_path) as catalog:
            with pytest.raises(ValidationError):
                catalog.materialize(make_patches(5), "typed", schema=schema)

    def test_indexes_equality_and_range(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(12), "c")
            catalog.create_index("c", "label", "hash")
            catalog.create_index("c", "frameno", "btree")
            vehicle_ids = collection.index("label", "hash").lookup("vehicle")
            assert len(vehicle_ids) == 4  # frames 0,3,6,9
            ranged = [pid for _, pid in collection.index("frameno", "btree").range(2, 5)]
            assert len(ranged) == 4

    def test_rtree_index(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(8), "c")
            index = catalog.create_index("c", "bbox", "rtree")
            hits = index.search_intersect(((0, 0), (3, 3)))
            assert hits  # early boxes overlap the corner

    def test_balltree_index(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(15), "c")
            index = catalog.create_index("c", "vec", "balltree")
            sample = collection.get(4)
            assert 4 in set(index.query_radius(sample["vec"], 0.0))

    def test_multi_value_index(self, tmp_path):
        def token_patches():
            for i in range(4):
                patch = Patch.from_frame("doc", i, np.zeros((4, 4, 3), np.uint8))
                patch.metadata["tokens"] = ("ALPHA", f"W{i}")
                yield patch

        with Catalog(tmp_path) as catalog:
            catalog.materialize(token_patches(), "texts")
            index = catalog.create_index("texts", "tokens", "hash", multi_value=True)
            assert len(index.lookup("ALPHA")) == 4
            assert len(index.lookup("W2")) == 1

    def test_multi_value_requires_hash_or_btree(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(2), "c")
            with pytest.raises(IndexError_, match="multi_value"):
                catalog.create_index("c", "vec", "balltree", multi_value=True)

    def test_index_maintenance_on_add(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(5), "c")
            index = catalog.create_index("c", "label", "hash")
            before = len(index.lookup("person"))
            extra = Patch.from_frame("vid", 99, np.zeros((4, 4, 3), np.uint8))
            extra.metadata["label"] = "person"
            collection.add(extra)
            assert len(index.lookup("person")) == before + 1

    def test_unknown_index_lookup(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(2), "c")
            with pytest.raises(IndexError_, match="create_index"):
                catalog.get_index("c", "label", "hash")

    def test_persistence_across_reopen(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(6), "c")
            catalog.create_index("c", "label", "hash")
        with Catalog(tmp_path) as catalog:
            collection = catalog.collection("c")
            assert len(collection) == 6
            assert collection.get(2)["frameno"] == 2
            assert catalog.has_index("c", "label", "hash")
            assert len(catalog.get_index("c", "label", "hash").lookup("vehicle")) == 2

    def test_lineage_recorded(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            collection = catalog.materialize(make_patches(4), "c")
            ids = catalog.lineage.patches_from_base("vid", 2)
            assert ids == [collection.get(2).patch_id]
            child = collection.get(1).derive(np.zeros(3), "hist")
            child_id = collection.add(child)
            assert catalog.lineage.children(1) == [child_id]
            assert child_id in catalog.lineage.descendants(1)

    def test_lineage_range_by_source(self, tmp_path):
        with Catalog(tmp_path) as catalog:
            catalog.materialize(make_patches(6), "c")
            hits = list(catalog.lineage.patches_from_source("vid", 2, 4))
            assert [frame for frame, _ in hits] == [2, 3, 4]


class TestDeepLensSession:
    def _frames(self, n=24):
        rng = np.random.default_rng(1)
        base = rng.integers(60, 90, (24, 32, 3), dtype=np.uint8)
        return [base.copy() for _ in range(n)]

    def test_ingest_load_roundtrip(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.ingest_video("v", iter(self._frames()), layout="segmented", clip_len=8)
            loaded = list(db.load("v", filter=Attr("frameno").between(4, 6)))
            assert [p["frameno"] for p in loaded] == [4, 5, 6]

    def test_duplicate_video_rejected(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.ingest_video("v", iter(self._frames(4)), layout="frame-raw")
            with pytest.raises(StorageError, match="already ingested"):
                db.ingest_video("v", iter(self._frames(4)))

    def test_video_registry_persists(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.ingest_video("v", iter(self._frames(6)), layout="frame-jpeg")
        with DeepLens(tmp_path) as db:
            assert db.videos() == ["v"]
            assert db.video("v").n_frames == 6

    def test_encoded_layout_refuses_random_access(self, tmp_path):
        with DeepLens(tmp_path) as db:
            store = db.ingest_video("v", iter(self._frames(6)), layout="encoded")
            with pytest.raises(RandomAccessUnsupportedError):
                store.get_frame(3)

    def test_query_builder_uses_index(self, tmp_path):
        # the stats-driven planner only picks the lookup when the
        # predicate is genuinely selective: make "vehicle" rare
        def rare_vehicles(n=90):
            for patch in make_patches(n):
                patch.metadata["label"] = (
                    "vehicle" if patch.metadata["frameno"] % 30 == 0 else "person"
                )
                yield patch

        with DeepLens(tmp_path) as db:
            db.materialize(rare_vehicles(), "c")
            db.create_index("c", "label", "hash")
            query = db.scan("c").filter(Attr("label") == "vehicle")
            explanation = query.explain()
            assert explanation.chosen.kind == "hash-lookup"
            # the decision carries the estimate and its statistic
            assert explanation.chosen.params["stat_source"] == "mcv"
            assert round(explanation.chosen.params["est_rows"]) == 3
            assert query.count() == 3

    def test_query_builder_range_index(self, tmp_path):
        # at tiny cardinalities a full scan is genuinely cheaper, so use a
        # collection large enough for the range path to win on cost
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(200), "c")
            db.create_index("c", "frameno", "btree")
            query = db.scan("c").filter(Attr("frameno").between(3, 5))
            assert query.explain().chosen.kind == "btree-range"
            assert query.count() == 3

    def test_query_builder_falls_back_to_scan(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(6), "c")
            query = db.scan("c").filter(Attr("label") == "person")
            assert query.explain().chosen.kind == "full-scan"
            assert query.count() == 4

    def test_first_and_empty(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(3), "c")
            assert db.scan("c").first()["frameno"] == 0
            empty = db.scan("c").filter(Attr("label") == "nothing")
            with pytest.raises(QueryError, match="no patches"):
                empty.first()

    def test_distinct_count(self, tmp_path):
        with DeepLens(tmp_path) as db:
            db.materialize(make_patches(9), "c")
            assert db.scan("c").distinct_count(lambda p: p["label"]) == 2
