"""Unit tests for the telemetry primitives in :mod:`repro.core.metrics`.

Three surfaces, each pinned independently of the engine:

* the **registry** — counters/gauges/histograms, labeled families,
  name-collision rejection, snapshots, and a Prometheus text render
  that every line of must pass a format validator;
* **spans** — nesting through the contextvars variable, propagation
  into worker threads via copied contexts (the executor's mechanism),
  no-op behavior outside a trace, injectable clocks;
* the **slow-query log** — threshold filtering with fake durations
  (the log never reads a clock), bounding, and value round-trips.
"""

import contextvars
import json
import re
import threading

import pytest

from repro.core.metrics import (
    DEFAULT_SLOW_QUERY_THRESHOLD,
    NULL_REGISTRY,
    Histogram,
    MetricsRegistry,
    SlowQueryLog,
    current_span,
    span,
    trace,
)

# -- the registry --------------------------------------------------------------


class TestInstruments:
    def test_counter_counts(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help text")
        counter.inc()
        counter.inc(4)
        counter.inc(0.5)  # float increments carry accumulated wall time
        assert counter.value == 5.5

    def test_counter_exact_under_threads(self):
        counter = MetricsRegistry().counter("c_total")

        def hammer():
            for _ in range(10_000):
                counter.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 80_000  # exact, not approximately

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(10)
        gauge.dec(3)
        gauge.inc()
        assert gauge.value == 8
        gauge.max_of(5)  # below: no-op
        assert gauge.value == 8
        gauge.max_of(11)  # high-water
        assert gauge.value == 11

    def test_histogram_summary_and_quantiles(self):
        histogram = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 100
        assert summary["sum"] == 5050
        assert summary["p50"] == pytest.approx(50, abs=1)
        assert summary["p95"] == pytest.approx(95, abs=1)
        assert summary["p99"] == pytest.approx(99, abs=1)

    def test_histogram_sample_is_bounded_and_sliding(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(Histogram.SAMPLE_SIZE):
            histogram.observe(0)
        for _ in range(Histogram.SAMPLE_SIZE):
            histogram.observe(1000)
        # count/sum track everything; quantiles track the recent window
        assert histogram.count == 2 * Histogram.SAMPLE_SIZE
        assert len(histogram._sample) == Histogram.SAMPLE_SIZE
        assert histogram.quantile(0.5) == 1000.0

    def test_family_labels(self):
        registry = MetricsRegistry()
        family = registry.counter("reads_total", labels=("result",))
        family.labels(result="hit").inc(3)
        family.labels(result="miss").inc()
        assert family.labels(result="hit").value == 3
        assert registry.counter_totals() == {
            'reads_total{result="hit"}': 3,
            'reads_total{result="miss"}': 1,
        }

    def test_family_rejects_wrong_labels(self):
        family = MetricsRegistry().counter("c", labels=("result",))
        with pytest.raises(ValueError, match="needs labels"):
            family.labels(outcome="hit")
        with pytest.raises(ValueError, match="needs labels"):
            family.labels(result="hit", extra="x")


class TestRegistry:
    def test_refetch_returns_same_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", "help")
        second = registry.counter("c_total", "different help is fine")
        assert first is second

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("name")

    def test_label_collision_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name", labels=("a",))
        with pytest.raises(ValueError, match="already registered"):
            registry.counter("name", labels=("b",))

    def test_snapshot_is_a_plain_copy(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(7)
        registry.histogram("h").observe(1.5)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 2}
        assert snapshot["gauges"] == {"g": 7}
        assert snapshot["histograms"]["h"]["count"] == 1
        registry.counter("c").inc()  # the snapshot must not move
        assert snapshot["counters"] == {"c": 2}

    def test_disabled_registry_is_inert(self):
        registry = MetricsRegistry(enabled=False)
        counter = registry.counter("c", labels=("result",))
        counter.labels(result="hit").inc(100)
        registry.gauge("g").max_of(9)
        registry.histogram("h").observe(1)
        assert registry.snapshot() == {
            "counters": {},
            "gauges": {},
            "histograms": {},
        }
        assert registry.counter_totals() == {}
        assert registry.render_prometheus() == ""
        # every disabled instrument is the one shared no-op
        assert registry.counter("x") is registry.histogram("y")
        assert NULL_REGISTRY.counter("z").value == 0


#: one Prometheus exposition sample line: metric name, optional
#: {label="value",...} block, a space, a parseable float
_SAMPLE_NAME = re.compile(
    r"^[a-zA-Z_:][a-zA-Z0-9_:]*"
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*"'
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"\\\n]*")*\})?$'
)


def validate_prometheus_text(text: str) -> int:
    """Assert every line is well-formed; return the sample-line count."""
    assert text.endswith("\n")
    samples = 0
    typed: set[str] = set()
    for line in text.splitlines():
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            _, _, name, kind = line.split(" ", 3)
            assert kind in ("counter", "gauge", "summary")
            assert name not in typed, f"duplicate TYPE for {name}"
            typed.add(name)
            continue
        name_part, _, value_part = line.rpartition(" ")
        assert _SAMPLE_NAME.match(name_part), line
        float(value_part)  # raises if the value is malformed
        samples += 1
    return samples


class TestPrometheusRender:
    def test_lines_validate(self):
        registry = MetricsRegistry()
        registry.counter("reads_total", "reads", labels=("result",)).labels(
            result="hit"
        ).inc(3)
        registry.gauge("depth", "queue depth").set(2)
        registry.histogram("run_bytes", "run sizes", labels=("store",)).labels(
            store="blob"
        ).observe(4096)
        text = registry.render_prometheus()
        # 1 counter series + 1 gauge + (3 quantiles + sum + count)
        assert validate_prometheus_text(text) == 7

    def test_histogram_renders_as_summary(self):
        registry = MetricsRegistry()
        registry.histogram("h", "a histogram").observe(10)
        text = registry.render_prometheus()
        assert "# TYPE h summary" in text
        assert 'h{quantile="0.5"} 10' in text
        assert "h_sum 10" in text
        assert "h_count 1" in text

    def test_help_and_type_lines(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "what it counts").inc()
        text = registry.render_prometheus()
        assert "# HELP c_total what it counts" in text
        assert "# TYPE c_total counter" in text
        assert "c_total 1" in text


# -- tracing spans -------------------------------------------------------------


class StepClock:
    """Deterministic clock: each read advances by a fixed step."""

    def __init__(self, step: float = 1.0) -> None:
        self.now = 0.0
        self.step = step

    def __call__(self) -> float:
        self.now += self.step
        return self.now


class TestSpans:
    def test_span_outside_trace_is_noop(self):
        assert current_span() is None
        with span("orphan") as opened:
            assert opened is None
        assert current_span() is None

    def test_trace_nests_children(self):
        with trace("query") as root:
            assert current_span() is root
            with span("parse") as parse:
                assert current_span() is parse
            with span("execute"):
                with span("scan"):
                    pass
        assert current_span() is None
        tree = root.to_dict()
        assert tree["name"] == "query"
        assert [c["name"] for c in tree["children"]] == ["parse", "execute"]
        assert tree["children"][1]["children"][0]["name"] == "scan"

    def test_injected_clock_times_spans(self):
        clock = StepClock(step=1.0)
        with trace("query", clock=clock) as root:
            with span("child") as child:
                pass
        # child: start at t, finish at t+1 -> exactly one step
        assert child.duration_s == 1.0
        assert root.end is not None and root.duration_s >= 2.0

    def test_attrs_export_and_json(self):
        with trace("query", clock=StepClock()) as root:
            root.attrs["sql"] = "SELECT 1"
        parsed = json.loads(root.to_json())
        assert parsed["attrs"] == {"sql": "SELECT 1"}
        assert parsed["seconds"] > 0

    def test_copied_context_carries_span_into_thread(self):
        """The executor's propagation mechanism: a worker running under
        ``copy_context`` attaches children to the submitting span."""
        results = []

        def worker():
            with span("in-thread") as child:
                results.append(child)

        with trace("query") as root:
            context = contextvars.copy_context()
            thread = threading.Thread(target=context.run, args=(worker,))
            thread.start()
            thread.join()
        assert results[0] is not None
        assert results[0] in root.children

    def test_plain_thread_has_no_span(self):
        seen = []

        with trace("query"):
            thread = threading.Thread(target=lambda: seen.append(current_span()))
            thread.start()
            thread.join()
        assert seen == [None]


# -- the slow-query log --------------------------------------------------------


class TestSlowQueryLog:
    def test_threshold_filters(self):
        log = SlowQueryLog(threshold_seconds=0.5)
        assert not log.record(sql="fast", fingerprint=None, seconds=0.49)
        assert log.record(sql="slow", fingerprint="fp", seconds=0.5)
        assert len(log) == 1
        entry = log.entries()[0]
        assert entry["sql"] == "slow"
        assert entry["fingerprint"] == "fp"
        assert entry["seconds"] == 0.5
        assert log.dirty

    def test_default_threshold(self):
        log = SlowQueryLog()
        assert log.threshold_seconds == DEFAULT_SLOW_QUERY_THRESHOLD == 1.0

    def test_carries_span_and_counters(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record(
            sql=None,
            fingerprint="fp",
            seconds=2.0,
            span={"name": "query", "seconds": 2.0, "children": []},
            counters={"deeplens_queries_total": 1},
        )
        entry = log.entries()[0]
        assert entry["span"]["name"] == "query"
        assert entry["counters"] == {"deeplens_queries_total": 1}

    def test_bounded_oldest_first(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        for i in range(SlowQueryLog.MAX_ENTRIES + 10):
            log.record(sql=f"q{i}", fingerprint=None, seconds=1.0)
        entries = log.entries()
        assert len(entries) == SlowQueryLog.MAX_ENTRIES
        assert entries[0]["sql"] == "q10"  # oldest surviving
        assert entries[-1]["sql"] == f"q{SlowQueryLog.MAX_ENTRIES + 9}"

    def test_value_round_trip(self):
        log = SlowQueryLog(threshold_seconds=0.25)
        log.record(sql="s", fingerprint="fp", seconds=0.3)
        restored = SlowQueryLog.from_value(log.to_value())
        assert restored.threshold_seconds == 0.25
        assert restored.entries() == log.entries()
        assert not restored.dirty

    def test_from_value_tolerates_old_snapshots(self):
        log = SlowQueryLog.from_value({})
        assert len(log) == 0
        assert log.threshold_seconds == DEFAULT_SLOW_QUERY_THRESHOLD

    def test_clear(self):
        log = SlowQueryLog(threshold_seconds=0.0)
        log.record(sql="s", fingerprint=None, seconds=1.0)
        log.dirty = False
        log.clear()
        assert len(log) == 0 and log.dirty
