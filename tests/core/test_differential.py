"""Differential query oracle (property-based).

Hypothesis generates random queries — filters, boolean connectives,
ordering, limits, UDF maps — and executes each through independent
paths that must agree row-for-row:

* the LensQL frontend vs the fluent builder (the two compile to
  fingerprint-identical logical plans, so the optimizer cannot even
  tell them apart);
* the serial engine vs ``workers=4`` with prefetch (the parallel
  engine's bit-identical contract);
* a session holding a matching materialized view vs a session without
  one (view reuse is a cost-based *physical* choice, never a semantic
  one);
* ANN top-k at an exhaustive beam (``ef = n``) vs brute-force exact
  top-k (the approximate access path must degenerate to the exact
  answer, whichever path the optimizer costs out).

Any divergence is a planner or engine bug, reported as a shrunk
counterexample query rather than a hand-picked regression.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Attr, DeepLens
from repro.core.patch import Patch

N = 60
LABELS = ("vehicle", "person", "bike")


def make_patches(n=N):
    for i in range(n):
        patch = Patch.from_frame("vid", i, np.full((4, 4, 3), i % 9, np.uint8))
        patch.metadata["label"] = LABELS[i % 3]
        patch.metadata["score"] = float(i)
        # distinct by construction: i = 7 * (i // 7) + (i % 7)
        patch.metadata["emb"] = [
            float(i % 7),
            float(i // 7),
            float((i * 3) % 5),
            float(i % 2),
        ]
        yield patch


def brighten(patch):
    return patch.derive(
        patch.data, "bright", brightness=float(patch.data.mean())
    )


def row_signature(patches):
    return [
        (p.patch_id, p.data.tobytes(), sorted(p.metadata.items()))
        for p in patches
    ]


def semantic_signature(patches):
    """Identity-free row content: what view-served and recomputed plans
    must agree on (derived patches get fresh ids either way)."""
    return sorted(
        (p["frameno"], p["label"], p["score"], round(p["brightness"], 9))
        for p in patches
    )


@pytest.fixture(scope="module")
def db(tmp_path_factory):
    with DeepLens(tmp_path_factory.mktemp("differential")) as session:
        session.materialize(make_patches(), "det")
        session.register_udf("brighten", brighten, provides={"brightness"})
        yield session


@pytest.fixture(scope="module")
def ann_db(tmp_path_factory):
    with DeepLens(tmp_path_factory.mktemp("differential_ann")) as session:
        session.materialize(make_patches(), "det")
        # ef = n: every beam search degenerates to an exhaustive one
        session.create_index("det", "emb", "hnsw", params={"m": 8, "ef": N})
        yield session


@pytest.fixture(scope="module")
def view_db(tmp_path_factory):
    with DeepLens(tmp_path_factory.mktemp("differential_view")) as session:
        session.materialize(make_patches(), "det")
        session.register_udf("brighten", brighten, provides={"brightness"})
        session.materialize_view("bright", session.scan("det").map("brighten"))
        yield session


# -- query generator ------------------------------------------------------


@st.composite
def leaves(draw):
    """One comparison, as (fluent Expr, SQL text) — the same predicate
    through both frontends."""
    kind = draw(st.sampled_from(["label", "score", "between"]))
    if kind == "label":
        value = draw(st.sampled_from(LABELS))
        if draw(st.booleans()):
            return Attr("label") == value, f"label = '{value}'"
        return Attr("label") != value, f"label != '{value}'"
    if kind == "between":
        low = draw(st.integers(-5, 60))
        high = low + draw(st.integers(0, 30))
        return (
            Attr("score").between(float(low), float(high)),
            f"score BETWEEN {float(low)} AND {float(high)}",
        )
    value = float(draw(st.integers(-5, 65)))
    op = draw(st.sampled_from(["<", "<=", ">", ">=", "==", "!="]))
    attr = Attr("score")
    expr = {
        "<": attr < value,
        "<=": attr <= value,
        ">": attr > value,
        ">=": attr >= value,
        "==": attr == value,
        "!=": attr != value,
    }[op]
    return expr, f"score {'=' if op == '==' else op} {value}"


@st.composite
def where_clauses(draw):
    """A WHERE clause as (fluent filter exprs, SQL text). Top-level AND
    becomes *chained* filters, mirroring how the binder splits
    conjunctions — the shapes stay fingerprint-identical."""
    expr, sql = draw(leaves())
    exprs = [expr]
    if draw(st.booleans()):
        other_expr, other_sql = draw(leaves())
        if draw(st.booleans()):
            exprs, sql = [expr, other_expr], f"{sql} AND {other_sql}"
        else:
            exprs, sql = [expr | other_expr], f"({sql} OR {other_sql})"
    if draw(st.booleans()):
        combined = exprs[0]
        for extra in exprs[1:]:
            combined = combined & extra
        exprs, sql = [~combined], f"NOT ({sql})"
    return exprs, sql


@st.composite
def query_shapes(draw):
    where = draw(st.none() | where_clauses())
    order = draw(st.none() | st.booleans())  # ORDER BY score ASC/DESC
    limit = draw(st.none() | st.integers(1, 25))
    return where, order, limit


def build(session, shape, *, mapped=False, load_data=True):
    """The same random query via both frontends: a fluent builder and
    the LensQL text."""
    where, order, limit = shape
    query = session.scan("det", load_data=load_data)
    sql = "SELECT brighten() FROM det" if mapped else "SELECT * FROM det"
    if not load_data:
        sql += " METADATA ONLY"
    if mapped:
        query = query.map("brighten")
    if where is not None:
        exprs, text = where
        for expr in exprs:
            query = query.filter(expr)
        sql += f" WHERE {text}"
    if order is not None:
        query = query.order_by("score", reverse=order)
        sql += f" ORDER BY score {'DESC' if order else 'ASC'}"
    if limit is not None:
        query = query.limit(limit)
        sql += f" LIMIT {limit}"
    return query, sql


# -- the oracles ----------------------------------------------------------


@given(shape=query_shapes())
@settings(max_examples=30, deadline=None)
def test_sql_matches_fluent(db, shape):
    query, sql = build(db, shape)
    assert db.sql_query(sql).plan_fingerprint() == query.plan_fingerprint()
    assert row_signature(db.sql(sql)) == row_signature(query.patches())


@given(shape=query_shapes())
@settings(max_examples=20, deadline=None)
def test_parallel_matches_serial(db, shape):
    query, _ = build(db, shape, mapped=True)
    serial = query.with_execution(workers=1)
    parallel = query.with_execution(workers=4, prefetch_batches=2)
    assert row_signature(parallel.patches()) == row_signature(serial.patches())


@given(shape=query_shapes())
@settings(max_examples=20, deadline=None)
def test_view_served_matches_recomputed(db, view_db, shape):
    where, order, limit = shape
    # scores are unique, so ordered prefixes are deterministic; without
    # ORDER BY a LIMIT picks physical-order-dependent rows, and the view
    # scan's physical order is legitimately its own — skip that shape
    served_shape = (where, order, limit if order is not None else None)
    with_view, _ = build(view_db, served_shape, mapped=True)
    without_view, _ = build(db, served_shape, mapped=True)
    assert semantic_signature(with_view.patches()) == semantic_signature(
        without_view.patches()
    )


@given(shape=query_shapes())
@settings(max_examples=30, deadline=None)
def test_metadata_only_matches_full_scan(db, shape):
    """The columnar-segment path must agree with the full-record path on
    everything but pixel data — same rows, same order, bit-identical
    ids, refs, and metadata — through both frontends."""
    lean_query, lean_sql = build(db, shape, load_data=False)
    full_query, _ = build(db, shape)
    assert (
        db.sql_query(lean_sql).plan_fingerprint()
        == lean_query.plan_fingerprint()
    )

    def lean_signature(patches):
        return [
            (p.patch_id, p.img_ref.to_value(), sorted(p.metadata.items()))
            for p in patches
        ]

    lean = lean_query.patches()
    assert all(p.data.size == 0 for p in lean)
    assert lean_signature(lean) == lean_signature(full_query.patches())
    assert lean_signature(db.sql(lean_sql)) == lean_signature(lean)


@given(seed=st.integers(0, 2**32 - 1), k=st.integers(1, 20))
@settings(max_examples=25, deadline=None)
def test_ann_at_exhaustive_ef_matches_exact_topk(ann_db, seed, k):
    """With the index's beam as wide as the collection, the ANN top-k
    must equal the brute-force exact top-k — and the SQL and fluent
    forms of the query must share one plan."""
    query = np.random.default_rng(seed).normal(size=4)
    fluent = ann_db.scan("det").similarity_search(query, k, attr="emb")
    via_sql = ann_db.sql_query(
        f"SELECT * FROM det ORDER BY SIMILARITY LIMIT {k}",
        query_vector=query,
        vector_attr="emb",
    )
    assert via_sql.plan_fingerprint() == fluent.plan_fingerprint()
    got = [p.patch_id for p in fluent.patches()]
    exact = sorted(
        (np.linalg.norm(np.array(p.metadata["emb"]) - query), p.patch_id)
        for p in ann_db.scan("det").patches()
    )
    assert got == [pid for _, pid in exact[:k]]
    assert row_signature(via_sql.patches()) == row_signature(fluent.patches())


def test_view_reuse_actually_happens(view_db):
    # guards the third oracle's bite: the view session really does plan
    # matching queries as view scans (cost-based, but this one is an
    # obvious win — the map is the dominant cost)
    query = (
        view_db.scan("det").map("brighten").filter(Attr("label") == "vehicle")
    )
    explanation = query.explain()
    assert any("view-match" in line for line in explanation.rewrites)
    assert explanation.chosen.kind in {"view-scan", "hash-lookup", "full-scan"}
