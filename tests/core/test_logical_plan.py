"""Tests for the logical plan IR, rewrite rules, lowering, and batching."""

import numpy as np
import pytest

from repro.core import logical
from repro.core.catalog import Catalog
from repro.core.expressions import Attr, Predicate
from repro.core.operators import (
    IteratorScan,
    Limit,
    MapPatches,
    OrderBy,
    Project,
    Select,
)
from repro.core.optimizer import Optimizer, UDFCache, plan_pipeline, rewrite
from repro.core.patch import Patch
from repro.errors import QueryError


def patches(n=10):
    out = []
    for i in range(n):
        patch = Patch.from_frame("v", i, np.full((4, 4, 3), i, np.uint8))
        patch.patch_id = i
        patch.metadata["label"] = "car" if i % 2 == 0 else "person"
        patch.metadata["score"] = float(i)
        out.append(patch)
    return out


def tag(patch):
    return patch.derive(patch.data, "tag", brightness=float(patch.data.mean()))


class TestExprAttrs:
    def test_comparison_and_between(self):
        assert logical.expr_attrs(Attr("label") == "car") == {"label"}
        assert logical.expr_attrs(Attr("frameno").between(1, 5)) == {"frameno"}

    def test_connectives_union(self):
        expr = (Attr("a") == 1) & ((Attr("b") > 2) | ~(Attr("c") != 3))
        assert logical.expr_attrs(expr) == {"a", "b", "c"}

    def test_opaque_predicate_is_unknown(self):
        opaque = Predicate(lambda p: True)
        assert logical.expr_attrs(opaque) is None
        assert logical.expr_attrs((Attr("a") == 1) & opaque) is None


class TestRewriteRules:
    def test_split_conjuncts(self):
        plan = logical.Filter(
            logical.Scan("c"), (Attr("a") == 1) & (Attr("b") == 2)
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Filter)
        assert isinstance(rewritten.child, logical.Filter)
        assert isinstance(rewritten.child.child, logical.Scan)
        assert any(r.rule == "split-filter-conjuncts" for r in applied)

    def test_pushdown_below_map(self):
        plan = logical.Filter(
            logical.Map(logical.Scan("c"), tag, name="tag",
                        provides=frozenset({"brightness"})),
            Attr("label") == "car",
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Map)
        assert isinstance(rewritten.child, logical.Filter)
        assert any(r.rule == "pushdown-filter-below-map" for r in applied)

    def test_no_pushdown_when_filter_reads_udf_output(self):
        plan = logical.Filter(
            logical.Map(logical.Scan("c"), tag, name="tag",
                        provides=frozenset({"brightness"})),
            Attr("brightness") > 0.5,
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Filter)  # unchanged shape
        assert not any(r.rule == "pushdown-filter-below-map" for r in applied)

    def test_no_pushdown_for_opaque_predicate(self):
        plan = logical.Filter(
            logical.Map(logical.Scan("c"), tag, name="tag",
                        provides=frozenset()),
            Predicate(lambda p: True),
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Filter)
        assert not any(r.rule == "pushdown-filter-below-map" for r in applied)

    def test_no_pushdown_when_provides_undeclared(self):
        # a map that did not declare its outputs may write anything, so
        # pushing a filter below it would be unsound
        plan = logical.Filter(
            logical.Map(logical.Scan("c"), tag, name="detector"),
            Attr("label") == "vehicle",
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Filter)
        assert not any(r.rule == "pushdown-filter-below-map" for r in applied)

    def test_pushdown_with_explicit_empty_provides(self):
        plan = logical.Filter(
            logical.Map(logical.Scan("c"), tag, name="pure",
                        provides=frozenset()),
            Attr("label") == "car",
        )
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Map)
        assert any(r.rule == "pushdown-filter-below-map" for r in applied)

    def test_limit_pushes_below_project_and_one_to_one_map(self):
        plan = logical.Limit(
            logical.Project(
                logical.Map(logical.Scan("c"), tag, name="tag", one_to_one=True),
                ("label",),
            ),
            5,
        )
        rewritten, applied = rewrite(plan)
        # limit slid below both the projection and the 1:1 map
        assert isinstance(rewritten, logical.Project)
        assert isinstance(rewritten.child, logical.Map)
        assert isinstance(rewritten.child.child, logical.Limit)
        assert sum(r.rule == "pushdown-limit" for r in applied) == 2

    def test_limit_stays_above_expanding_map(self):
        plan = logical.Limit(logical.Map(logical.Scan("c"), tag, name="tag"), 5)
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Limit)
        assert not any(r.rule == "pushdown-limit" for r in applied)

    def test_merge_limits_keeps_tighter(self):
        plan = logical.Limit(logical.Limit(logical.Scan("c"), 3), 7)
        rewritten, applied = rewrite(plan)
        assert isinstance(rewritten, logical.Limit)
        assert rewritten.n == 3
        assert isinstance(rewritten.child, logical.Scan)
        assert any(r.rule == "merge-limits" for r in applied)

    def test_memoize_traced_at_lowering_not_rewrite(self):
        plan = logical.Map(logical.Scan("c"), tag, name="tag", cache=True)
        _, applied = rewrite(plan)
        assert not any(r.rule == "memoize-udf" for r in applied)

    def test_negative_limit_rejected(self):
        with pytest.raises(QueryError, match="non-negative"):
            logical.Limit(logical.Scan("c"), -1)

    def test_unknown_aggregate_kind_rejected(self):
        with pytest.raises(QueryError, match="unknown aggregate"):
            logical.Aggregate(logical.Scan("c"), "median")
        with pytest.raises(QueryError, match="needs a key"):
            logical.Aggregate(logical.Scan("c"), "group")

    def test_describe_renders_tree(self):
        plan = logical.Filter(logical.Scan("c"), Attr("a") == 1)
        text = plan.describe()
        assert "Scan(c)" in text and "Filter" in text
        assert text.splitlines()[1].startswith("  ")


class TestLowering:
    def _catalog(self, tmp_path, n=40):
        catalog = Catalog(tmp_path)
        catalog.materialize(iter(patches(n)), "c")
        return catalog

    def test_scan_filter_group_uses_access_path(self, tmp_path):
        # cars are 1-in-10 so the recorded statistics make the index
        # path genuinely cheaper than the full scan
        rows = patches(100)
        for patch in rows:
            patch.metadata["label"] = (
                "car" if patch.metadata["frameno"] % 10 == 0 else "person"
            )
        with Catalog(tmp_path) as catalog:
            catalog.materialize(iter(rows), "c")
            catalog.create_index("c", "label", "hash")
            optimizer = Optimizer(catalog)
            plan = logical.Filter(logical.Scan("c"), Attr("label") == "car")
            operator, explanation = plan_pipeline(optimizer, plan)
            assert explanation.chosen.kind == "hash-lookup"
            assert len(operator.patches()) == 10

    def test_filters_fused_through_map_boundary(self, tmp_path):
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.Filter(
                logical.Map(
                    logical.Scan("c"), tag, name="tag",
                    provides=frozenset({"brightness"}),
                ),
                (Attr("label") == "car") & (Attr("brightness") >= 0.0),
            )
            operator, explanation = plan_pipeline(optimizer, plan)
            # label filter pushed below the map, brightness stays above
            assert any("pushed" in line for line in explanation.rewrites)
            result = operator.patches()
            assert len(result) == 20
            assert all(p["brightness"] >= 0.0 for p in result)

    def test_cached_map_needs_cache(self, tmp_path):
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.Map(logical.Scan("c"), tag, name="tag", cache=True)
            with pytest.raises(QueryError, match="no UDF cache"):
                plan_pipeline(optimizer, plan)
            operator, _ = plan_pipeline(optimizer, plan, udf_cache=UDFCache())
            assert len(operator.patches()) == 40

    def test_each_cached_map_gets_a_memoize_line(self, tmp_path):
        with self._catalog(tmp_path, n=5) as catalog:
            optimizer = Optimizer(catalog)
            # two cached maps sharing the default name still report twice
            plan = logical.Map(
                logical.Map(logical.Scan("c"), tag, cache=True),
                lambda p: p,
                cache=True,
            )
            _, explanation = plan_pipeline(
                optimizer, plan, udf_cache=UDFCache()
            )
            assert (
                sum("memoize-udf" in line for line in explanation.rewrites) == 2
            )

    def test_udf_cache_hits_across_plans(self, tmp_path):
        with self._catalog(tmp_path, n=10) as catalog:
            optimizer = Optimizer(catalog)
            cache = UDFCache()
            plan = logical.Map(logical.Scan("c"), tag, name="tag", cache=True)
            op1, _ = plan_pipeline(optimizer, plan, udf_cache=cache)
            op1.patches()
            assert (cache.hits, cache.misses) == (0, 10)
            op2, _ = plan_pipeline(optimizer, plan, udf_cache=cache)
            op2.patches()
            assert (cache.hits, cache.misses) == (10, 10)

    def test_orderby_missing_attr_raises(self, tmp_path):
        with self._catalog(tmp_path, n=5) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.OrderBy(logical.Scan("c"), "ghost")
            operator, _ = plan_pipeline(optimizer, plan)
            with pytest.raises(QueryError, match="ghost"):
                operator.patches()

    def test_similarity_join_lowers_and_matches_bruteforce(self, tmp_path):
        with self._catalog(tmp_path, n=12) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"),
                logical.Scan("c"),
                threshold=1.0,
                features=lambda p: np.array([p["score"]]),
                exclude_self=True,
            )
            operator, explanation = plan_pipeline(optimizer, plan)
            assert operator.arity == 2
            got = {(a.patch_id, b.patch_id) for a, b in operator}
            want = {
                (a, b)
                for a in range(12)
                for b in range(12)
                if a != b and abs(a - b) <= 1
            }
            assert got == want
            kinds = {choice.kind for choice in explanation.candidates}
            assert "nested-loop" in kinds  # join candidates surfaced


class TestStatsDrivenLowering:
    """Cardinality estimation inside the lowering: recorded join dims,
    stats-backed row estimates, and the NEQ fallback regression."""

    def _catalog(self, tmp_path, n=40):
        catalog = Catalog(tmp_path)
        catalog.materialize(iter(patches(n)), "c")
        return catalog

    def test_similarity_join_uses_sampled_match_fraction(self, tmp_path):
        # patches() data vectors sit ~sqrt(48) apart per index step, so
        # within threshold 1.0 only identity pairs match — the sampled
        # pairwise fraction replaces the geometric dim-decay estimate
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0
            )
            _, explanation = plan_pipeline(optimizer, plan)
            assert any(
                "match-fraction" in line and "sampled pairwise distances" in line
                for line in explanation.estimates
            )

    def test_similarity_join_dim_fallback_without_samples(self, tmp_path):
        # below MIN_SAMPLE_VECTORS rows the sampler abstains and the
        # recorded-dim geometric estimate still applies
        with self._catalog(tmp_path, n=4) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0
            )
            _, explanation = plan_pipeline(optimizer, plan)
            assert any(
                "dim 48" in line and "recorded data dim" in line
                for line in explanation.estimates
            )
            # and the decision matches planning explicitly at dim 48
            direct = optimizer.plan_similarity_join(4, 4, 48)
            assert explanation.chosen.kind == direct.chosen.kind

    def test_clustered_join_estimate_beats_geometric_decay(self, tmp_path):
        # Two tight clusters far apart: every within-cluster pair joins,
        # no across-cluster pair does. The geometric dim-decay constant
        # is blind to that structure and floors at ~1 match per probe;
        # the sampled pairwise fraction sees it. Clusters are interleaved
        # in materialization order so the first-K vector sample covers
        # both.
        from repro.core.optimizer.lowering import estimate_join_output
        from repro.core.profile import q_error
        from repro.core.statistics import sample_match_fraction

        rng = np.random.default_rng(3)
        clustered = []
        for i in range(40):
            center = 0.0 if i % 2 == 0 else 10.0
            data = center + rng.normal(0.0, 0.01, 8)
            patch = Patch.from_frame("v", i, data)
            patch.patch_id = i
            clustered.append(patch)
        with Catalog(tmp_path) as catalog:
            catalog.materialize(iter(clustered), "clustered")
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("clustered"),
                logical.Scan("clustered"),
                threshold=1.0,
            )
            operator, _ = plan_pipeline(optimizer, plan)
            actual = sum(1 for _ in operator)
            assert actual == 2 * 20 * 20  # all within-cluster pairs

            sample = catalog.statistics_for("clustered").data_sample()
            fraction = sample_match_fraction(sample, sample, 1.0)
            sampled_est = estimate_join_output(40, 40, 8, match_fraction=fraction)
            decay_est = estimate_join_output(40, 40, 8)
            assert q_error(sampled_est, actual) < q_error(decay_est, actual)
            assert q_error(sampled_est, actual) < 2.0  # and it is *good*
            assert q_error(decay_est, actual) > 10.0  # the floor was 20x off

    def test_caller_dim_wins_over_recorded(self, tmp_path):
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0, dim=7
            )
            _, explanation = plan_pipeline(optimizer, plan)
            assert any(
                "dim 7" in line and "caller-specified" in line
                for line in explanation.estimates
            )

    def test_join_without_stats_falls_back_to_default_dim(self, tmp_path):
        from repro.core.optimizer import DEFAULT_JOIN_DIM

        with self._catalog(tmp_path) as catalog:
            catalog.drop_statistics("c")
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0
            )
            _, explanation = plan_pipeline(optimizer, plan)
            assert any(
                f"dim {DEFAULT_JOIN_DIM}" in line and "fallback-constant" in line
                for line in explanation.estimates
            )

    def test_estimate_rows_uses_statistics(self, tmp_path):
        from repro.core.optimizer import estimate_plan_rows

        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            # patches(): label "car" on even ids — exactly half
            plan = logical.Filter(logical.Scan("c"), Attr("label") == "car")
            assert estimate_plan_rows(optimizer, plan) == pytest.approx(20.0)
            limited = logical.Limit(plan, 5)
            assert estimate_plan_rows(optimizer, limited) == pytest.approx(5.0)

    def test_join_output_estimate_from_dim_and_sizes(self, tmp_path):
        """SimilarityJoin output must be estimated as a match count, not
        as the left input's row count (the old placeholder)."""
        from repro.core.optimizer import (
            JOIN_PER_DIM_MATCH,
            estimate_join_output,
            estimate_plan_rows,
        )

        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            # low dim: matches per probe follow the geometric decay model
            low = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0, dim=2
            )
            expected = 40 * 40 * JOIN_PER_DIM_MATCH**2
            assert estimate_plan_rows(optimizer, low) == pytest.approx(expected)
            assert estimate_plan_rows(optimizer, low) != pytest.approx(40.0)
            # high dim floors at ~one near-duplicate partner per left row
            high = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0, dim=64
            )
            assert estimate_plan_rows(optimizer, high) == pytest.approx(40.0)
            # exclude_self removes the identity pairs
            assert estimate_join_output(
                40, 40, 64, exclude_self=True
            ) == pytest.approx(0.0)
            # an empty side yields zero pairs (the per-probe floor must
            # not conjure matches from nothing)
            assert estimate_join_output(0, 40, 2) == 0.0
            assert estimate_join_output(40, 0, 2) == 0.0
            # filters shrink the inputs before the match model applies
            filtered = logical.SimilarityJoin(
                logical.Filter(logical.Scan("c"), Attr("label") == "car"),
                logical.Scan("c"),
                threshold=1.0,
                dim=2,
            )
            assert estimate_plan_rows(optimizer, filtered) == pytest.approx(
                20 * 40 * JOIN_PER_DIM_MATCH**2
            )

    def test_join_output_estimate_surfaces_in_explain(self, tmp_path):
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.SimilarityJoin(
                logical.Scan("c"), logical.Scan("c"), threshold=1.0, dim=4
            )
            _, explanation = plan_pipeline(optimizer, plan)
            assert any(
                "pairs" in line and "similarity-join" in line
                for line in explanation.estimates
            )

    def test_neq_estimate_regression(self, tmp_path):
        """!= must estimate as the EQ complement, not as a range.

        The old lowering lumped every non-== comparison under
        RANGE_SELECTIVITY (0.3), so `label != 'car'` claimed to drop 70%
        of rows; with stats it is the measured complement, and without
        stats it falls back to 1 - EQ_SELECTIVITY.
        """
        from repro.core.optimizer import (
            EQ_SELECTIVITY,
            NEQ_SELECTIVITY,
            RANGE_SELECTIVITY,
            estimate_plan_rows,
        )

        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.Filter(logical.Scan("c"), Attr("label") != "car")
            # with statistics: exactly the non-car half
            assert estimate_plan_rows(optimizer, plan) == pytest.approx(20.0)
            # without statistics: the complement constant, NOT the range one
            catalog.drop_statistics("c")
            rows = estimate_plan_rows(optimizer, plan)
            assert rows == pytest.approx(40 * NEQ_SELECTIVITY)
            assert rows == pytest.approx(40 * (1.0 - EQ_SELECTIVITY))
            assert rows != pytest.approx(40 * RANGE_SELECTIVITY)

    def test_scan_group_estimates_surface_in_explanation(self, tmp_path):
        with self._catalog(tmp_path) as catalog:
            optimizer = Optimizer(catalog)
            plan = logical.Filter(logical.Scan("c"), Attr("score") <= 9.5)
            _, explanation = plan_pipeline(optimizer, plan)
            assert any("histogram" in line for line in explanation.estimates)
            assert "cardinality estimates:" in str(explanation)


class TestBatchedExecution:
    def test_default_chunking(self):
        scan = IteratorScan(iter(patches(10)))
        batches = list(scan.iter_batches(4))
        assert [len(b) for b in batches] == [4, 4, 2]

    def test_list_fast_path(self):
        scan = IteratorScan(patches(10))
        batches = list(scan.iter_batches(3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert batches[0][0][0].patch_id == 0

    def test_bad_batch_size(self):
        with pytest.raises(QueryError, match="positive"):
            list(IteratorScan(patches(2)).iter_batches(0))

    def test_select_batches_match_rows(self):
        expr = Attr("label") == "car"
        rows = Select(IteratorScan(patches(10)), expr).patches()
        batched = [
            row[0]
            for batch in Select(IteratorScan(patches(10)), expr).iter_batches(3)
            for row in batch
        ]
        assert [p.patch_id for p in batched] == [p.patch_id for p in rows]

    def test_select_reaccumulates_full_batches(self):
        # 50% selective filter over 40 rows at size 10: survivors regroup
        # into full batches instead of ragged half-filled ones
        op = Select(IteratorScan(patches(40)), Attr("label") == "car")
        sizes = [len(batch) for batch in op.iter_batches(10)]
        assert sizes == [10, 10]

    def test_limit_over_orderby_keeps_upstream_batches_large(self):
        calls = []

        def batch_tag(items):
            calls.append(len(items))
            return [tag(p) for p in items]

        mapped = MapPatches(IteratorScan(patches(100)), tag, batch_fn=batch_tag)
        op = Limit(OrderBy(mapped, key=lambda p: p["score"]), 5)
        assert sum(len(b) for b in op.iter_batches(50)) == 5
        # the sort consumes everything, but the UDF still ran in large
        # batches instead of limit-sized slivers
        assert all(size >= 50 for size in calls)

    def test_limit_sees_breaker_through_intermediate_stages(self):
        calls = []

        def batch_tag(items):
            calls.append(len(items))
            return [tag(p) for p in items]

        mapped = MapPatches(IteratorScan(patches(100)), tag, batch_fn=batch_tag)
        after_sort = MapPatches(OrderBy(mapped, key=lambda p: p["score"]), tag)
        op = Limit(after_sort, 5)
        assert sum(len(b) for b in op.iter_batches(50)) == 5
        # a non-breaker between the limit and the sort must not reinstate
        # the shrink below the sort
        assert all(size >= 50 for size in calls)

    def test_map_batches_with_expansion_and_drop(self):
        def split(patch):
            if patch.patch_id % 3 == 0:
                return None
            return [patch, patch]

        rows = MapPatches(IteratorScan(patches(9)), split).patches()
        batched = [
            row[0]
            for batch in MapPatches(IteratorScan(patches(9)), split).iter_batches(4)
            for row in batch
        ]
        assert len(batched) == len(rows) == 12

    def test_expanding_map_rechunks_to_batch_size(self):
        op = MapPatches(IteratorScan(patches(8)), lambda p: [p, p, p])
        sizes = [len(batch) for batch in op.iter_batches(4)]
        assert sum(sizes) == 24
        assert all(size <= 4 for size in sizes)

    def test_map_batch_fn_used_and_validated(self):
        calls = []

        def batch_tag(items):
            calls.append(len(items))
            return [tag(p) for p in items]

        op = MapPatches(IteratorScan(patches(10)), tag, batch_fn=batch_tag)
        out = [row[0] for batch in op.iter_batches(4) for row in batch]
        assert len(out) == 10
        assert calls == [4, 4, 2]

        bad = MapPatches(
            IteratorScan(patches(4)), tag, batch_fn=lambda items: [None]
        )
        with pytest.raises(QueryError, match="batch_fn returned"):
            list(bad.iter_batches(4))

    def test_limit_batches(self):
        op = Limit(IteratorScan(patches(10)), 5)
        batched = [row for batch in op.iter_batches(3) for row in batch]
        assert len(batched) == 5
        assert list(Limit(IteratorScan(patches(10)), 0).iter_batches(3)) == []

    def test_limit_shrinks_batches_through_lazy_chains(self):
        calls = []

        def batch_tag(items):
            calls.append(len(items))
            return [tag(p) for p in items]

        op = Limit(
            MapPatches(IteratorScan(patches(100)), tag, batch_fn=batch_tag), 3
        )
        assert sum(len(b) for b in op.iter_batches(50)) == 3
        # no pipeline breaker below: the UDF ran on exactly the rows
        # the limit needs
        assert calls == [3]

    def test_limit_stops_selective_select_early(self):
        seen = []

        def observe(patch):
            seen.append(patch.patch_id)
            return patch

        # 'car' is every other patch; limit(1) must not drain the scan
        op = Limit(
            Select(
                MapPatches(IteratorScan(patches(100)), observe),
                Attr("label") == "car",
            ),
            1,
        )
        assert sum(len(b) for b in op.iter_batches(50)) == 1
        assert len(seen) <= 2  # stopped at the first survivor

    def test_orderby_batches_sorted(self):
        op = OrderBy(IteratorScan(patches(7)), key=lambda p: -p["score"])
        batched = [row[0]["score"] for b in op.iter_batches(3) for row in b]
        assert batched == sorted(batched, reverse=True)

    def test_project_batches(self):
        op = Project(IteratorScan(patches(6)), ("label",))
        out = [row[0] for batch in op.iter_batches(4) for row in batch]
        assert all("score" not in p.metadata for p in out)
        assert all(p["label"] in ("car", "person") for p in out)
        assert all(p.data.size == 0 for p in out)
        assert all(p.metadata["_lineage"] for p in out)  # lineage survives


class TestUDFCacheUnit:
    def test_wrap_batch_partial_hits(self):
        cache = UDFCache()
        items = patches(6)
        wrapped = cache.wrap_batch("b", lambda ps: [tag(p) for p in ps])
        wrapped(items[:4])
        assert (cache.hits, cache.misses) == (0, 4)
        result = wrapped(items[2:])  # 2 hits, 2 fresh
        assert (cache.hits, cache.misses) == (2, 6)
        assert len(result) == 4

    def test_distinct_udfs_sharing_a_name_do_not_collide(self):
        cache = UDFCache()
        patch = patches(1)[0]
        first = cache.wrap("udf", lambda p: "first")
        second = cache.wrap("udf", lambda p: "second")
        assert first(patch) == "first"
        assert second(patch) == "second"  # not the first UDF's cached value
        assert cache.misses == 2 and cache.hits == 0

    def test_scalar_and_batch_paths_share_entries(self):
        cache = UDFCache()
        items = patches(4)

        def scalar(p):
            return tag(p)

        wrapped_batch = cache.wrap_batch(
            "b", lambda ps: [scalar(p) for p in ps], identity=scalar
        )
        wrapped_batch(items)
        assert cache.misses == 4
        wrapped_scalar = cache.wrap("b", scalar)
        wrapped_scalar(items[0])
        assert cache.hits == 1

    def test_same_lineage_different_metadata_not_conflated(self):
        # derive() records op/params in lineage but not metadata kwargs,
        # so these two patches have identical chains; the metadata
        # fingerprint must still keep their cache entries apart
        cache = UDFCache()
        base = patches(1)[0]
        a = base.derive(base.data, "score", score=1.0)
        b = base.derive(base.data, "score", score=2.0)
        wrapped = cache.wrap("boost", lambda p: p["score"] * 10)
        assert wrapped(a) == 10.0
        assert wrapped(b) == 20.0
        assert cache.hits == 0 and cache.misses == 2

    def test_cached_data_arrays_are_isolated(self):
        cache = UDFCache()
        patch = patches(1)[0]
        wrapped = cache.wrap("u", lambda p: p.derive(np.ones(3), "u"))
        first = wrapped(patch)
        first.data *= 99  # caller post-processes its result in place
        second = wrapped(patch)
        assert cache.hits == 1
        assert np.array_equal(second.data, np.ones(3))

    def test_cached_nested_metadata_is_isolated(self):
        cache = UDFCache()
        patch = patches(1)[0]
        wrapped = cache.wrap(
            "h", lambda p: p.derive(p.data, "h", hist=np.array([1.0, 2.0]))
        )
        first = wrapped(patch)
        first.metadata["hist"][0] = 999.0  # mutate a nested array in place
        second = wrapped(patch)
        assert cache.hits == 1
        assert np.array_equal(second.metadata["hist"], [1.0, 2.0])

    def test_store_is_bounded(self):
        cache = UDFCache(max_entries=5)
        wrapped = cache.wrap("u", tag)
        for patch in patches(20):
            wrapped(patch)
        assert len(cache) == 5
        assert cache.misses == 20

    def test_unhashable_lineage_skips_cache(self):
        cache = UDFCache()
        patch = patches(1)[0]
        patch.metadata["_lineage"] = (("op", [1, 2]),)  # list is unhashable
        wrapped = cache.wrap("u", tag)
        assert wrapped(patch) is not None
        assert wrapped(patch) is not None
        assert len(cache) == 0
