"""Tests for benchmark metrics and the six queries at tiny scale.

These are the integration tests of the whole stack: dataset -> ingest ->
ETL -> materialize -> physical design -> query, with accuracy checked
against ground truth and plan pairs checked for answer agreement.
"""

import numpy as np
import pytest

from repro.bench import (
    build_football_workload,
    build_pc_workload,
    build_traffic_workload,
    prepare_football_design,
    prepare_pc_design,
    prepare_traffic_design,
    q1_near_duplicates,
    q2_vehicle_frames,
    q3_player_trajectory,
    q4_distinct_pedestrians,
    q4_plan_accuracy,
    q5_string_lookup,
    q5_token_lookup,
    q6_behind_pairs,
)
from repro.bench.metrics import (
    PRF,
    Timer,
    assign_identity,
    detection_prf,
    pairwise_cluster_prf,
    set_prf,
)
from repro.core import DeepLens
from repro.datasets import FootballDataset, PCDataset, TrafficCamDataset
from repro.errors import QueryError
from repro.vision.scene import GroundTruthBox


class TestMetrics:
    def test_set_prf(self):
        prf = set_prf({1, 2, 3}, {2, 3, 4})
        assert prf.precision == pytest.approx(2 / 3)
        assert prf.recall == pytest.approx(2 / 3)
        assert 0 < prf.f1 < 1

    def test_set_prf_edges(self):
        assert set_prf(set(), set()).precision == 1.0
        assert set_prf(set(), {1}).recall == 0.0
        assert set_prf({1}, set()).precision == 0.0

    def test_prf_f1_zero(self):
        assert PRF(precision=0.0, recall=0.0).f1 == 0.0

    def test_assign_identity(self):
        truth = [
            GroundTruthBox(0, "ped-1", "person", (10, 10, 20, 40), 12.0),
            GroundTruthBox(0, "veh-1", "vehicle", (50, 20, 90, 40), 8.0),
        ]
        assert assign_identity((11, 11, 20, 39), truth) == "ped-1"
        assert assign_identity((11, 11, 20, 39), truth, category="vehicle") is None
        assert assign_identity((200, 200, 210, 210), truth) is None

    def test_pairwise_cluster_prf_ignores_double_none(self):
        clusters = [{1, 2}, {3, 4}]
        identity = {1: "a", 2: "a", 3: None, 4: None}
        prf = pairwise_cluster_prf(clusters, identity)
        assert prf.precision == 1.0 and prf.recall == 1.0

    def test_pairwise_cluster_penalizes_mixed_pair(self):
        clusters = [{1, 2, 3}]
        identity = {1: "a", 2: "a", 3: None}
        prf = pairwise_cluster_prf(clusters, identity)
        assert prf.precision == pytest.approx(1 / 3)

    def test_detection_prf(self):
        class Det:
            def __init__(self, bbox, label, score=1.0):
                self.bbox, self.label, self.score = bbox, label, score

        truth = {0: [GroundTruthBox(0, "x", "person", (0, 0, 10, 20), 5.0)]}
        perfect = {0: [Det((0, 0, 10, 20), "person")]}
        assert detection_prf(perfect, truth).f1 == 1.0
        wrong_label = {0: [Det((0, 0, 10, 20), "vehicle")]}
        assert detection_prf(wrong_label, truth).f1 == 0.0

    def test_timer(self):
        with Timer() as timer:
            sum(range(1000))
        assert timer.seconds >= 0


@pytest.fixture(scope="module")
def traffic(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("traffic"))
    workload = build_traffic_workload(db, TrafficCamDataset(scale=0.004, seed=7))
    design = prepare_traffic_design(workload)
    yield workload, design
    db.close()


@pytest.fixture(scope="module")
def pc(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("pc"))
    workload = build_pc_workload(db, PCDataset(scale=0.08, seed=41))
    prepare_pc_design(workload)
    yield workload
    db.close()


@pytest.fixture(scope="module")
def football(tmp_path_factory):
    db = DeepLens(tmp_path_factory.mktemp("fb"))
    workload = build_football_workload(
        db, FootballDataset(scale=0.004, n_clips=3, seed=23)
    )
    prepare_football_design(workload)
    yield workload
    db.close()


class TestTrafficQueries:
    def test_q2_plans_agree_and_accurate(self, traffic):
        workload, _ = traffic
        base = q2_vehicle_frames(workload, "baseline")
        opt = q2_vehicle_frames(workload, "optimized")
        assert base.answer == opt.answer
        assert opt.accuracy.f1 > 0.9

    def test_q4_plans_agree(self, traffic):
        workload, design = traffic
        base = q4_distinct_pedestrians(workload, "baseline")
        opt = q4_distinct_pedestrians(workload, "optimized", persons=design.persons)
        otf = q4_distinct_pedestrians(
            workload, "optimized", persons=design.persons, on_the_fly=True
        )
        assert base.answer == opt.answer == otf.answer
        assert opt.accuracy.f1 > 0.75

    def test_q4_needs_design(self, traffic):
        workload, _ = traffic
        with pytest.raises(QueryError, match="prepared person"):
            q4_distinct_pedestrians(workload, "optimized")

    def test_q4_table1_tradeoff(self, traffic):
        workload, _ = traffic
        # warm-up run: at smoke scale both orders finish in tens of ms,
        # where first-call effects (page cache, BLAS init) can otherwise
        # swamp the work-ratio the timing assertion measures
        q4_plan_accuracy(workload, "filter-then-match")
        # best-of-3 per order: a single stop-the-world pause (gen-2 GC
        # over the heap the earlier module fixtures built up) is longer
        # than one run's window and can invert the ratio in suite order
        push = min(
            (q4_plan_accuracy(workload, "filter-then-match") for _ in range(3)),
            key=lambda r: r.seconds,
        )
        late = min(
            (q4_plan_accuracy(workload, "match-then-filter") for _ in range(3)),
            key=lambda r: r.seconds,
        )
        assert late.accuracy.recall >= push.accuracy.recall
        assert late.seconds > push.seconds

    def test_q6_plans_agree(self, traffic):
        workload, design = traffic
        base = q6_behind_pairs(workload, "baseline")
        opt = q6_behind_pairs(workload, "optimized", persons=design.persons)
        assert base.answer == opt.answer

    def test_unknown_plan_rejected(self, traffic):
        workload, _ = traffic
        with pytest.raises(QueryError, match="unknown"):
            q2_vehicle_frames(workload, "mystery")


class TestPCQueries:
    def test_q1_plans_agree_and_find_duplicates(self, pc):
        base = q1_near_duplicates(pc, "baseline")
        opt = q1_near_duplicates(pc, "optimized")
        assert base.answer == opt.answer
        # at this tiny scale only a handful of duplicate pairs exist, so
        # accuracy checks stay coarse (the benchmark scale is scored in
        # benchmarks/bench_fig4_indexes.py)
        assert opt.accuracy.recall > 0.1
        assert opt.accuracy.precision >= 0.5

    def test_q5_substring_and_token_agree(self, pc):
        word = sorted(w for w in pc.dataset.present_words() if w)[0]
        scan = q5_string_lookup(pc, "baseline", target=word)
        token = q5_token_lookup(pc, target=word)
        assert scan.answer == token.answer
        assert scan.accuracy.precision == 1.0

    def test_q5_missing_word(self, pc):
        result = q5_string_lookup(pc, "baseline", target="XYZZY")
        assert result.answer is None


class TestFootballQueries:
    def test_q3_plans_agree(self, football):
        base = q3_player_trajectory(football, "baseline")
        opt = q3_player_trajectory(football, "optimized")
        assert base.answer == opt.answer
        assert opt.accuracy.precision > 0.9

    def test_q3_other_number(self, football):
        clip = football.dataset.clips[0]
        other = next(
            n for n in clip.player_numbers if n != football.dataset.tracked_number
        )
        result = q3_player_trajectory(football, "optimized", number=other)
        assert isinstance(result.answer, list)

    def test_workload_etl_timed(self, football):
        assert football.etl_seconds > 0
