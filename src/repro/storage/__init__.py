"""Storage layer: embedded KV substrate, video codecs, and storage formats."""
