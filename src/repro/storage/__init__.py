"""Storage layer: embedded KV substrate, video codecs, and storage formats."""

from repro.storage.faultfs import OS_OPS, FaultInjector, FileOps, SimulatedCrash
from repro.storage.journal import CommitJournal

__all__ = [
    "OS_OPS",
    "CommitJournal",
    "FaultInjector",
    "FileOps",
    "SimulatedCrash",
]
