"""Injectable file-ops layer for deterministic storage fault testing.

Every component of the storage engine (:class:`~repro.storage.kvstore.pager.
Pager`, :class:`~repro.storage.kvstore.heap.BlobHeap`,
:class:`~repro.storage.metadata_segment.MetadataSegmentStore`,
:class:`~repro.storage.journal.CommitJournal`) opens and syncs files through
a :class:`FileOps` object instead of calling ``open``/``os.fsync`` directly.
Production uses the module-level :data:`OS_OPS` singleton; tests substitute a
:class:`FaultInjector` that counts *mutating* file operations (writes and
truncates) across every file it opened and fails the Nth one in a chosen
way:

``kill``
    Raise :class:`SimulatedCrash` before the bytes hit the file — and on
    every later mutation too, modelling a process that died mid-commit.
``torn``
    Write only a prefix of the requested bytes, then behave like ``kill``:
    a torn sector write at power loss.
``bitflip``
    Write the bytes with one bit flipped and *continue normally* — silent
    media corruption that only checksum verification can catch later.
``eio``
    Raise ``OSError(EIO)`` for this one operation, then continue: a
    transient I/O error the caller sees synchronously.

The op counter is deterministic (no randomness, no clocks), so a test can
enumerate "crash at op 1, op 2, ... op N" exhaustively and assert that a
reopen after every crash point recovers to a consistent state.
"""

from __future__ import annotations

import errno
import os
import threading


class SimulatedCrash(Exception):
    """The fault injector killed the simulated process at this operation.

    Deliberately *not* a :class:`~repro.errors.DeepLensError`: library code
    catching its own error hierarchy must never swallow a simulated crash,
    exactly as it could not swallow real power loss.
    """


class FileOps:
    """Real file operations; the production (and default) implementation."""

    def open(self, path: str | os.PathLike, mode: str):
        """Open ``path``; the handle supports the usual file protocol."""
        return open(path, mode)

    def sync_file(self, file, durability: str = "fsync") -> None:
        """Flush ``file`` and, when ``durability == "fsync"``, fsync it."""
        file.flush()
        if durability == "fsync":
            os.fsync(file.fileno())


#: shared production instance — stateless, safe to use everywhere
OS_OPS = FileOps()


class FaultInjector(FileOps):
    """A :class:`FileOps` that fails the ``fail_at``-th mutating operation.

    Parameters
    ----------
    fail_at:
        1-based index of the mutating op (write or truncate) to fail;
        ``None`` counts ops without ever failing (used to size a workload
        before enumerating its crash points).
    mode:
        One of ``"kill"``, ``"torn"``, ``"bitflip"``, ``"eio"``.
    """

    MODES = ("kill", "torn", "bitflip", "eio")

    def __init__(self, fail_at: int | None = None, mode: str = "kill") -> None:
        if mode not in self.MODES:
            raise ValueError(f"unknown fault mode {mode!r}; use one of {self.MODES}")
        self.fail_at = fail_at
        self.mode = mode
        self.ops = 0
        self.crashed = False
        self.fired = False
        self._lock = threading.RLock()
        self._files: list[_FaultFile] = []

    def open(self, path: str | os.PathLike, mode: str):
        with self._lock:
            if self.crashed:
                raise SimulatedCrash(f"open({os.fspath(path)!r}) after crash")
            wrapped = _FaultFile(open(path, mode), self)
            self._files.append(wrapped)
            return wrapped

    def sync_file(self, file, durability: str = "fsync") -> None:
        # fsync/flush are not counted as ops: the crash model is "which
        # *written bytes* made it to disk", and a barrier writes nothing
        with self._lock:
            if self.crashed:
                raise SimulatedCrash("sync after crash")
        raw = file._raw if isinstance(file, _FaultFile) else file
        raw.flush()
        if durability == "fsync":
            os.fsync(raw.fileno())

    def close_all(self) -> None:
        """Close every file the injector opened (post-crash cleanup, so a
        reopened store never shares OS handles with the 'dead' one)."""
        with self._lock:
            for wrapped in self._files:
                try:
                    wrapped._raw.close()
                except OSError:
                    pass
            self._files.clear()

    # -- called by _FaultFile on each mutating op -----------------------

    def _on_mutation(self) -> str:
        """Count one write/truncate; return the action to take for it."""
        with self._lock:
            if self.crashed:
                raise SimulatedCrash("mutation after crash")
            self.ops += 1
            if self.fail_at is None or self.ops != self.fail_at:
                return "pass"
            self.fired = True
            if self.mode == "kill":
                self.crashed = True
                raise SimulatedCrash(f"killed at op {self.ops}")
            if self.mode == "eio":
                raise OSError(errno.EIO, f"injected EIO at op {self.ops}")
            return self.mode  # "torn" | "bitflip": handled by the file


class _FaultFile:
    """File wrapper routing mutations through the injector's fault plan."""

    def __init__(self, raw, injector: FaultInjector) -> None:
        self._raw = raw
        self._injector = injector

    def write(self, data) -> int:
        action = self._injector._on_mutation()
        data = bytes(data)
        if action == "torn":
            # half the bytes land, then the process dies
            self._raw.write(data[: len(data) // 2])
            self._raw.flush()
            self._injector.crashed = True
            raise SimulatedCrash("torn write")
        if action == "bitflip":
            flipped = bytearray(data)
            if flipped:
                flipped[len(flipped) // 2] ^= 0x01
            return self._raw.write(bytes(flipped))
        return self._raw.write(data)

    def truncate(self, size=None) -> int:
        action = self._injector._on_mutation()
        if action in ("torn", "bitflip"):
            # a truncate has no byte payload to tear or flip; treat torn
            # as a kill-before-apply and bitflip as a no-fault pass
            if action == "torn":
                self._injector.crashed = True
                raise SimulatedCrash("crash at truncate")
        if size is None:
            return self._raw.truncate()
        return self._raw.truncate(size)

    # -- non-mutating passthrough ---------------------------------------

    def read(self, *args):
        return self._raw.read(*args)

    def seek(self, *args):
        return self._raw.seek(*args)

    def tell(self):
        return self._raw.tell()

    def flush(self):
        return self._raw.flush()

    def fileno(self):
        return self._raw.fileno()

    def close(self):
        return self._raw.close()

    @property
    def closed(self):
        return self._raw.closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self._raw.close()
        return False
