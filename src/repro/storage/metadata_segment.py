"""Columnar metadata segment: per-attribute arrays with zone maps.

The blob heap stores each patch as one record — pixels and metadata
interleaved — so even ``load_data=False`` readers used to pay the full
zlib decompress + record parse per patch. This module is the other half
of the storage split (Deep Lake's tensor-layout insight applied to the
patch store): every collection keeps a **columnar segment** beside the
heap holding only the metadata, written in blocks of ``BLOCK_ROWS``
rows with

* one compressed column per attribute (values + a presence mask, so a
  missing key and an explicit ``None`` stay distinct — metadata-only
  reads must be bit-identical to ``Patch.from_record``), and
* a per-block, per-attribute min/max **zone map** used for block
  skipping: a range or equality predicate whose value band provably
  misses a block never decompresses it.

The segment lives in its *own* heap file (``metadata.seg``) — a
metadata-only scan performs zero reads against the patch heap, which is
the whole point (and what the profile counters assert in CI).

Zone-map pruning is deliberately conservative. It mirrors the
expression DSL's semantics exactly: ordered comparisons are ``False``
on ``None``; ``==``/``!=`` are plain equality (``== None`` matches a
missing attribute); mixed-type or non-scalar columns (and any column
containing NaN, which breaks min/max ordering) simply opt out of
pruning rather than risk dropping a matching row.
"""

from __future__ import annotations

import struct
import threading
import zlib
from bisect import bisect_left
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import CorruptionError, StorageError
from repro.storage.kvstore import BlobHeap, BlobRef, serialization

#: rows per sealed block — one zone-map entry and one column read each
BLOCK_ROWS = 1024
#: columns smaller than this are stored raw (zlib header overhead wins)
COLUMN_COMPRESS_MIN = 64

GROUP_NUMERIC = "num"
GROUP_STRING = "str"


def _value_group(value: Any) -> str | None:
    """Ordering group of one value: values of the same group compare
    safely with ``<``; anything else opts out of zone-map pruning."""
    if isinstance(value, (bool, int, float)):
        if isinstance(value, float) and value != value:  # NaN breaks min/max
            return None
        return GROUP_NUMERIC
    if isinstance(value, str):
        return GROUP_STRING
    return None


@dataclass
class ZoneMap:
    """Min/max summary of one attribute over one sealed block."""

    lo: Any = None
    hi: Any = None
    #: ordering group of lo/hi; None means the block holds mixed or
    #: unorderable values and range pruning is disabled
    group: str | None = None
    #: non-None values in the block (0 = attribute all-None/missing)
    n_values: int = 0
    #: True when at least one row reads the attribute as None/missing
    has_none: bool = False

    def to_value(self) -> list:
        return [self.lo, self.hi, self.group, self.n_values, self.has_none]

    @classmethod
    def from_value(cls, value: list) -> "ZoneMap":
        lo, hi, group, n_values, has_none = value
        return cls(lo, hi, group, int(n_values), bool(has_none))


#: zone map of an attribute no row in the block carries: every read is
#: None, so ``has_none`` must hold or ``== None`` probes would wrongly
#: prune the block
_ABSENT = ZoneMap(has_none=True)


def zone_of(values: list, present: list[bool]) -> ZoneMap:
    """Summarize one column of a block (``present[i]`` False means the
    attribute was missing from row ``i``'s metadata)."""
    zone = ZoneMap()
    mixed = False
    for value, is_present in zip(values, present):
        if not is_present or value is None:
            zone.has_none = True
            continue
        zone.n_values += 1
        group = _value_group(value)
        if group is None or (zone.group is not None and group != zone.group):
            mixed = True
            continue
        zone.group = group
        if zone.lo is None or value < zone.lo:
            zone.lo = value
        if zone.hi is None or value > zone.hi:
            zone.hi = value
    if mixed:
        zone.group = None
        zone.lo = zone.hi = None
    return zone


def _cmp_may_match(zone: ZoneMap, op: str, value: Any) -> bool:
    """Can any row summarized by ``zone`` satisfy ``attr <op> value``?
    ``False`` only on proof; any doubt keeps the block."""
    if op == "==":
        if value is None:
            return zone.has_none
        if zone.n_values == 0:
            return False
        if zone.group is None or _value_group(value) != zone.group:
            return True
        return not (value < zone.lo or value > zone.hi)
    if op == "!=":
        if value is None:
            # None != None is False; only non-None rows match
            return zone.n_values > 0
        if zone.has_none:
            return True  # a None row satisfies any != non-None
        if (
            zone.group is not None
            and _value_group(value) == zone.group
            and zone.lo == zone.hi
            and zone.lo == value
        ):
            return False  # constant block equal to the probe
        return True
    # ordered comparisons are False on None, so an all-None block
    # cannot match regardless of the probe
    if zone.n_values == 0:
        return False
    if zone.group is None or _value_group(value) != zone.group:
        return True
    if op == "<":
        return zone.lo < value
    if op == "<=":
        return zone.lo <= value
    if op == ">":
        return zone.hi > value
    if op == ">=":
        return zone.hi >= value
    return True  # in/contains and anything future: never prune


def _between_may_match(zone: ZoneMap, low: Any, high: Any) -> bool:
    if zone.n_values == 0:
        return False  # Between is False on None
    if zone.group is None:
        return True
    if low is not None and _value_group(low) == zone.group and zone.hi < low:
        return False
    if high is not None and _value_group(high) == zone.group and zone.lo > high:
        return False
    return True


def block_may_match(zones: dict[str, ZoneMap], expr: Any) -> bool:
    """Zone-map test for one sealed block: False means *no* row in the
    block can satisfy ``expr``. Only top-level conjuncts of the two
    statically analyzable shapes (comparisons, BETWEEN) prune; every
    other conjunct — OR, NOT, opaque predicates — conservatively keeps
    the block."""
    from repro.core.expressions import Between, Comparison

    conjuncts = expr.conjuncts() if hasattr(expr, "conjuncts") else [expr]
    for conjunct in conjuncts:
        try:
            if isinstance(conjunct, Comparison):
                zone = zones.get(conjunct.attr, _ABSENT)
                if not _cmp_may_match(zone, conjunct.op, conjunct.value):
                    return False
            elif isinstance(conjunct, Between):
                zone = zones.get(conjunct.attr, _ABSENT)
                if not _between_may_match(zone, conjunct.lo, conjunct.hi):
                    return False
        except (TypeError, ValueError):
            continue  # exotic probe value: keep the block
    return True


def _pack_values(values: list) -> list:
    """Typed encoding of one value run. Homogeneous runs — the common
    case for a column, and for each ``ImgRef`` field — become one
    vector (an ndarray, or a joined string plus lengths) so decode is a
    single serializer value instead of a tagged scalar per row; anything
    mixed falls back to the general per-value encoding."""
    kinds = set(map(type, values))
    if kinds == {int}:
        try:
            return ["i", np.array(values, dtype=np.int64)]
        except OverflowError:
            return ["o", list(values)]
    if kinds == {float}:
        return ["f", np.array(values, dtype=np.float64)]
    if kinds == {str}:
        lengths = np.array([len(value) for value in values], dtype=np.int64)
        return ["s", "".join(values), lengths]
    if kinds == {type(None)}:
        return ["n", len(values)]
    if kinds == {tuple}:
        width = len(values[0])
        if width and all(len(value) == width for value in values):
            # same-shape tuples (lineage steps, refs) recurse columnwise
            return ["t", width, [
                _pack_values([value[i] for value in values])
                for i in range(width)
            ]]
    return ["o", list(values)]


def _unpack_values(packed: list) -> list:
    kind = packed[0]
    if kind == "o":
        return packed[1]
    if kind == "n":
        return [None] * packed[1]
    if kind == "s":
        joined, out, pos = packed[1], [], 0
        for length in packed[2].tolist():
            out.append(joined[pos : pos + length])
            pos += length
        return out
    if kind == "t":
        return list(zip(*(_unpack_values(run) for run in packed[2])))
    return packed[1].tolist()  # "i"/"f": back to plain int/float


def _pack_column(values: list, present: list[bool]) -> bytes:
    """One column as bytes: ``[mask, typed values]`` serialized, zlib'd
    when it pays. The mask is None when every row carries the attribute
    (the common case for schema attrs — saves the per-row byte)."""
    mask = None if all(present) else [1 if p else 0 for p in present]
    raw = serialization.dumps([mask, _pack_values(values)], compress_arrays=False)
    if len(raw) >= COLUMN_COMPRESS_MIN:
        squeezed = zlib.compress(raw, 6)
        if len(squeezed) < len(raw):
            return b"z" + squeezed
    return b"r" + raw


def _unpack_column(blob: bytes) -> tuple[list | None, list]:
    raw = zlib.decompress(blob[1:]) if blob[:1] == b"z" else blob[1:]
    mask, packed = serialization.loads(raw)
    return mask, _unpack_values(packed)


@dataclass
class _Block:
    """One sealed, immutable run of rows: a blob ref plus its summary."""

    ref: BlobRef
    n_rows: int
    min_id: int
    max_id: int
    zones: dict[str, ZoneMap]

    def to_value(self) -> list:
        return [
            list(self.ref.to_tuple()),
            self.n_rows,
            self.min_id,
            self.max_id,
            [[attr, zone.to_value()] for attr, zone in self.zones.items()],
        ]

    @classmethod
    def from_value(cls, value: list) -> "_Block":
        ref, n_rows, min_id, max_id, zones = value
        return cls(
            ref=BlobRef.from_tuple(tuple(ref)),
            n_rows=int(n_rows),
            min_id=int(min_id),
            max_id=int(max_id),
            zones={attr: ZoneMap.from_value(z) for attr, z in zones},
        )


#: one segment row: (patch_id, img_ref value tuple, metadata dict)
Row = tuple[int, tuple, dict]


class CollectionSegment:
    """One collection's columnar metadata: sealed blocks plus an open
    tail of rows not yet worth a block.

    Tail rows are kept pre-serialized so appends snapshot the metadata
    exactly like ``Patch.to_record`` does — a caller mutating the patch
    after ``add`` cannot desynchronize the two stores — and so scans
    hand out fresh objects, never shared mutable state.
    """

    def __init__(
        self,
        heap: BlobHeap,
        name: str,
        *,
        block_rows: int | None = None,
        metrics=None,
    ) -> None:
        self._heap = heap
        self.name = name
        self.block_rows = block_rows or BLOCK_ROWS
        if metrics is None:
            # runtime import: repro.core imports this module at load
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._metric_blocks_scanned = metrics.counter(
            "deeplens_zonemap_blocks_scanned_total",
            "sealed metadata blocks decoded by scans",
        )
        self._metric_blocks_skipped = metrics.counter(
            "deeplens_zonemap_blocks_skipped_total",
            "sealed metadata blocks zone-map pruning never read",
        )
        self._blocks: list[_Block] = []
        #: (patch_id, ref value tuple, serialized metadata)
        self._tail: list[tuple[int, tuple, bytes]] = []
        self._lock = threading.RLock()
        self.dirty = False

    @property
    def row_count(self) -> int:
        with self._lock:
            return sum(b.n_rows for b in self._blocks) + len(self._tail)

    # -- writes ---------------------------------------------------------

    def append(self, patch_id: int, ref_value: tuple, metadata: dict) -> None:
        """Add one row (metadata already normalized by the caller)."""
        payload = serialization.dumps(metadata, compress_arrays=False)
        with self._lock:
            self._tail.append((patch_id, tuple(ref_value), payload))
            if len(self._tail) >= self.block_rows:
                self._seal_tail()
            self.dirty = True

    def rebuild(self, rows: Iterable[tuple[int, tuple, dict]]) -> None:
        """Replace all contents (backfill of a pre-segment catalog, or a
        collection re-materialization)."""
        with self._lock:
            self._blocks = []
            self._tail = []
            self.dirty = True
            for patch_id, ref_value, metadata in rows:
                self.append(patch_id, ref_value, metadata)

    def _seal_tail(self) -> None:
        # caller holds the lock
        rows = [
            (patch_id, ref_value, serialization.loads(payload))
            for patch_id, ref_value, payload in self._tail
        ]
        attrs: list[str] = []
        for _, _, metadata in rows:
            for attr in metadata:
                if attr not in attrs:
                    attrs.append(attr)
        columns: dict[str, bytes] = {}
        zones: dict[str, ZoneMap] = {}
        for attr in attrs:
            present = [attr in metadata for _, _, metadata in rows]
            values = [metadata.get(attr) for _, _, metadata in rows]
            columns[attr] = _pack_column(values, present)
            zones[attr] = zone_of(values, present)
        ref_values = [ref_value for _, ref_value, _ in rows]
        width = len(ref_values[0])
        if all(len(ref_value) == width for ref_value in ref_values):
            # refs columnar too: one typed run per ImgRef field
            refs = ["cols", width, [
                _pack_values([ref_value[i] for ref_value in ref_values])
                for i in range(width)
            ]]
        else:
            refs = ["rows", 0, [list(ref_value) for ref_value in ref_values]]
        payload = serialization.dumps(
            {
                "ids": np.array([patch_id for patch_id, _, _ in rows], dtype=np.int64),
                "refs": refs,
                "attrs": attrs,
                "cols": columns,
            },
            compress_arrays=False,
        )
        ref = self._heap.put(payload, compress=False)  # columns already packed
        self._blocks.append(
            _Block(ref, len(rows), rows[0][0], rows[-1][0], zones)
        )
        self._tail = []

    # -- reads ----------------------------------------------------------

    def _decode_block(self, block: _Block) -> list[Row]:
        try:
            value = serialization.loads(self._heap.get(block.ref))
            return self._rows_of(value)
        except CorruptionError:
            raise  # already positioned (heap checksum / short read)
        except (
            StorageError,
            zlib.error,
            struct.error,
            ValueError,
            KeyError,
            TypeError,
            IndexError,
        ) as exc:
            # the checksum passed but the content does not decode (e.g. a
            # pre-checksum v1 heap took a bit flip): same corruption, one
            # typed positioned error instead of a codec traceback
            raise CorruptionError(
                f"undecodable metadata block for {self.name!r}: {exc}",
                file=self._heap.path,
                offset=block.ref.offset,
            ) from exc

    def _rows_of(self, value: dict) -> list[Row]:
        ids = value["ids"].tolist()
        shape, width, packed = value["refs"]
        if shape == "cols":
            runs = [_unpack_values(run) for run in packed]
            refs = list(zip(*runs)) if width else [()] * len(ids)
        else:
            refs = [tuple(ref_value) for ref_value in packed]
        attrs = value["attrs"]
        unpacked = [(attr, _unpack_column(value["cols"][attr])) for attr in attrs]
        rows: list[Row] = []
        for i, (patch_id, ref_value) in enumerate(zip(ids, refs)):
            metadata = {}
            for attr, (mask, values) in unpacked:
                if mask is None or mask[i]:
                    metadata[attr] = values[i]
            rows.append((patch_id, ref_value, metadata))
        return rows

    def scan_rows(
        self, expr: Any = None, on_blocks=None, *, after_id: int | None = None
    ) -> Iterator[Row]:
        """All rows in id order; with ``expr``, sealed blocks whose zone
        maps prove no row can match are skipped *without being read*.
        Surviving blocks are NOT row-filtered — the caller's Select
        applies the predicate exactly.

        ``on_blocks(skipped, scanned)``, when given, receives the scan's
        zone-map actuals as the stream finishes (partial counts when an
        early-exiting consumer closes the generator) — how the executing
        operator's profile learns what pruning really did, graded against
        the planner's ``block_stats`` estimate.

        ``after_id`` resumes an interrupted scan: only rows with a patch
        id strictly greater are yielded (blocks wholly at or below it are
        never read). The catalog uses this to restart a scan after a
        corrupt block forced a segment rebuild, without re-yielding rows
        its consumer already saw.
        """
        with self._lock:
            blocks = list(self._blocks)
            tail = list(self._tail)
        skipped = scanned = 0
        try:
            for block in blocks:
                if after_id is not None and block.max_id <= after_id:
                    continue
                if expr is not None and not block_may_match(block.zones, expr):
                    skipped += 1
                    continue
                scanned += 1
                rows = self._decode_block(block)
                if after_id is not None:
                    rows = [row for row in rows if row[0] > after_id]
                yield from rows
            for patch_id, ref_value, payload in tail:
                if after_id is not None and patch_id <= after_id:
                    continue
                yield (patch_id, ref_value, serialization.loads(payload))
        finally:
            # aggregated per scan, not per block; also runs when the
            # consumer abandons the generator early
            if skipped:
                self._metric_blocks_skipped.inc(skipped)
            if scanned:
                self._metric_blocks_scanned.inc(scanned)
            if on_blocks is not None:
                on_blocks(skipped, scanned)

    def get_rows(self, patch_ids: Iterable[int]) -> list[Row]:
        """Point access; results align with ``patch_ids``. Raises
        ``KeyError(patch_id)`` for ids not in the segment."""
        ids = list(patch_ids)
        with self._lock:
            blocks = list(self._blocks)
            tail = list(self._tail)
        max_ids = [block.max_id for block in blocks]
        wanted: dict[int, set[int]] = {}  # block index -> ids wanted there
        tail_ids: set[int] = set()
        for patch_id in ids:
            position = bisect_left(max_ids, patch_id)
            if position < len(blocks) and blocks[position].min_id <= patch_id:
                wanted.setdefault(position, set()).add(patch_id)
            else:
                tail_ids.add(patch_id)
        found: dict[int, Row] = {}
        for position, targets in wanted.items():
            for row in self._decode_block(blocks[position]):
                if row[0] in targets:
                    found[row[0]] = row
        for patch_id, ref_value, payload in tail:
            if patch_id in tail_ids:
                found[patch_id] = (
                    patch_id,
                    ref_value,
                    serialization.loads(payload),
                )
        out = []
        for patch_id in ids:
            row = found.get(patch_id)
            if row is None:
                raise KeyError(patch_id)
            out.append(row)
        return out

    def attr_min_max(self, attr: str) -> tuple[Any, Any] | None:
        """(min, max) of ``attr`` across the whole segment, answered
        purely from block zone maps plus the (in-memory) open tail —
        zero sealed blocks are decoded. Returns ``None`` whenever the
        answer is not provable from summaries alone: an attribute with
        mixed/unorderable values in any block (zone group ``None`` with
        non-None rows), ordering groups that differ across blocks, or no
        non-None value anywhere. ``None`` rows are skipped, matching the
        aggregate executor's semantics."""
        with self._lock:
            blocks = list(self._blocks)
            tail = list(self._tail)
        lo = hi = None
        group: str | None = None
        for block in blocks:
            zone = block.zones.get(attr, _ABSENT)
            if zone.n_values == 0:
                continue
            if zone.group is None:
                return None  # mixed/unorderable block: not provable
            if group is None:
                group = zone.group
            elif zone.group != group:
                return None  # str vs num across blocks: incomparable
            if lo is None or zone.lo < lo:
                lo = zone.lo
            if hi is None or zone.hi > hi:
                hi = zone.hi
        for _, _, payload in tail:
            value = serialization.loads(payload).get(attr)
            if value is None:
                continue
            value_group = _value_group(value)
            if value_group is None:
                return None
            if group is None:
                group = value_group
            elif value_group != group:
                return None
            if lo is None or value < lo:
                lo = value
            if hi is None or value > hi:
                hi = value
        if lo is None:
            return None  # no non-None value anywhere: nothing to prove
        return lo, hi

    def block_stats(self, expr: Any = None) -> tuple[int, int, int]:
        """(kept blocks, total sealed blocks, surviving-row bound) for the
        planner: how much of the segment a zone-mapped scan would read.
        Tail rows always survive (they have no zone maps yet)."""
        with self._lock:
            blocks = list(self._blocks)
            tail_rows = len(self._tail)
        kept = [
            block
            for block in blocks
            if expr is None or block_may_match(block.zones, expr)
        ]
        rows = sum(block.n_rows for block in kept) + tail_rows
        return len(kept), len(blocks), rows

    def scrub(self) -> tuple[int, list[CorruptionError]]:
        """Decode every sealed block end to end — checksum *and* content
        validation — collecting failures instead of raising. Returns
        ``(blocks_checked, errors)``."""
        with self._lock:
            blocks = list(self._blocks)
        errors: list[CorruptionError] = []
        for block in blocks:
            try:
                self._decode_block(block)
            except CorruptionError as exc:
                errors.append(exc)
        return len(blocks), errors

    # -- persistence ----------------------------------------------------

    def to_value(self) -> dict:
        with self._lock:
            return {
                "block_rows": self.block_rows,
                "blocks": [block.to_value() for block in self._blocks],
                "tail": [
                    [patch_id, list(ref_value), payload]
                    for patch_id, ref_value, payload in self._tail
                ],
            }

    @classmethod
    def from_value(
        cls, heap: BlobHeap, name: str, value: dict, *, metrics=None
    ) -> "CollectionSegment":
        segment = cls(
            heap, name, block_rows=int(value["block_rows"]), metrics=metrics
        )
        segment._blocks = [_Block.from_value(entry) for entry in value["blocks"]]
        segment._tail = [
            (int(patch_id), tuple(ref_value), payload)
            for patch_id, ref_value, payload in value["tail"]
        ]
        return segment


class MetadataSegmentStore:
    """All collections' segments over one ``metadata.seg`` heap file.

    The catalog hands descriptor refs in via :meth:`attach` (from pager
    meta) and flushes dirty segments back out through :meth:`flush` —
    the same snapshot idiom statistics use. Like them, rewrites append
    (old descriptor/block blobs are never reclaimed); segments are tiny
    next to pixels, so compaction stays a non-goal for now.
    """

    def __init__(
        self,
        path: str,
        *,
        metrics=None,
        journal=None,
        fs=None,
        durability: str = "fsync",
        on_corruption=None,
    ) -> None:
        self._heap = BlobHeap(
            path,
            metrics=metrics,
            store="segment",
            journal=journal,
            fs=fs,
            durability=durability,
        )
        self._metrics = metrics
        #: ``on_corruption(name, exc)`` — the catalog's quarantine hook,
        #: called when a segment descriptor fails validation and the
        #: store falls back to a fresh empty segment (rebuilt lazily)
        self._on_corruption = on_corruption
        self._segments: dict[str, CollectionSegment] = {}
        self._refs: dict[str, list] = {}
        self._lock = threading.RLock()

    def attach(self, refs: dict[str, list]) -> None:
        with self._lock:
            self._refs = {name: list(ref) for name, ref in refs.items()}

    def segment(self, name: str) -> CollectionSegment:
        """The named collection's segment, loading the persisted
        descriptor on first use (an empty segment otherwise — the lazy
        backfill trigger for pre-segment catalogs).

        A corrupt descriptor is quarantined, not fatal: the segment is
        derived state, so the store reports the damage through
        ``on_corruption`` and starts from an empty segment the catalog
        rebuilds from the blob heap."""
        with self._lock:
            segment = self._segments.get(name)
            if segment is None:
                ref = self._refs.get(name)
                if ref is not None:
                    try:
                        segment = self._load_descriptor(name, ref)
                    except CorruptionError as exc:
                        self._refs.pop(name, None)
                        segment = None
                        if self._on_corruption is not None:
                            self._on_corruption(name, exc)
                if segment is None:
                    segment = CollectionSegment(
                        self._heap, name, metrics=self._metrics
                    )
                self._segments[name] = segment
            return segment

    def _load_descriptor(self, name: str, ref: list) -> CollectionSegment:
        blob_ref = BlobRef.from_tuple(tuple(ref))
        try:
            descriptor = serialization.loads(self._heap.get(blob_ref))
            return CollectionSegment.from_value(
                self._heap, name, descriptor, metrics=self._metrics
            )
        except CorruptionError:
            raise
        except (
            StorageError,
            zlib.error,
            struct.error,
            ValueError,
            KeyError,
            TypeError,
        ) as exc:
            raise CorruptionError(
                f"undecodable segment descriptor for {name!r}: {exc}",
                file=self._heap.path,
                offset=blob_ref.offset,
            ) from exc

    def drop(self, name: str) -> None:
        """Forget a collection's segment (re-materialization starts clean)."""
        with self._lock:
            self._segments.pop(name, None)
            self._refs.pop(name, None)

    def flush(self) -> dict[str, list]:
        """Persist dirty segments; returns the descriptor-ref mapping the
        catalog stores in pager meta."""
        with self._lock:
            for name, segment in self._segments.items():
                if not segment.dirty:
                    continue
                payload = serialization.dumps(
                    segment.to_value(), compress_arrays=False
                )
                ref = self._heap.put(payload, compress=True)
                self._refs[name] = list(ref.to_tuple())
                segment.dirty = False
            return dict(self._refs)

    def scrub(self) -> tuple[int, list]:
        """Checksum-walk the segment heap file (see
        :meth:`~repro.storage.kvstore.heap.BlobHeap.scrub`)."""
        return self._heap.scrub()

    def sync(self) -> None:
        self._heap.sync()

    def close(self) -> None:
        self._heap.close()

    @property
    def heap_path(self) -> str:
        return self._heap.path

    @property
    def heap_size_bytes(self) -> int:
        return self._heap.size_bytes
