"""Persistent hash table (static hashing with overflow chains).

DeepLens supports "hash tables ... over any key" (Section 3.2) for equality
lookups on discrete metadata — labels, OCR tokens, video ids. This is the
disk structure behind :class:`repro.indexes.hash_index.HashIndex`: a fixed
power-of-two bucket directory where each bucket is a chain of pages holding
``(key, value)`` entries. It is a multimap: one key may map to many patch
identifiers.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

from repro.errors import StorageError
from repro.storage.kvstore import serialization
from repro.storage.kvstore.pager import Pager

_NO_PAGE = 0


def _hash_key(key_bytes: bytes) -> int:
    # crc32 is stable across processes (unlike hash()) and fast enough;
    # bucket selection only needs uniformity, not cryptographic strength.
    return zlib.crc32(key_bytes)


class HashFile:
    """A named persistent hash multimap inside a :class:`Pager`.

    Each bucket page stores ``serialization.dumps([next_page, entries])``
    where ``entries`` is a list of ``(key_bytes, value_bytes)`` pairs; pages
    chain through ``next_page`` when a bucket overflows.
    """

    def __init__(self, pager: Pager, name: str = "hash", n_buckets: int = 256) -> None:
        if n_buckets < 1 or n_buckets & (n_buckets - 1):
            raise StorageError(f"n_buckets must be a power of two, got {n_buckets}")
        self.pager = pager
        self.name = name
        self._meta_key = f"hash:{name}"
        meta = pager.get_meta()
        state = meta.get(self._meta_key)
        if state is None:
            self.n_buckets = n_buckets
            self._directory = [pager.allocate() for _ in range(n_buckets)]
            for page_id in self._directory:
                self._write_bucket(page_id, _NO_PAGE, [])
            self._count = 0
            self._dir_pages = self._write_directory()
            self._save_state()
        else:
            self.n_buckets = state["n_buckets"]
            self._count = state["count"]
            self._dir_pages = list(state["dir_pages"])
            self._directory = self._read_directory()
        self._state_dirty = False
        pager.register_sync_hook(self._save_state)

    def __len__(self) -> int:
        return self._count

    def put(self, key: Any, value: bytes) -> None:
        """Insert one ``key -> value`` entry (duplicates accumulate)."""
        if not isinstance(value, (bytes, bytearray)):
            raise StorageError(
                f"hash values must be bytes, got {type(value).__name__}"
            )
        key_bytes = serialization.encode_key(key)
        entry_size = len(key_bytes) + len(value)
        if entry_size > self.pager.capacity // 2:
            raise StorageError(
                f"hash entry of {entry_size} bytes exceeds half a page; "
                f"store the payload in a BlobHeap"
            )
        page_id = self._bucket_for(key_bytes)
        # Append into the first page of the chain with room; otherwise grow
        # the chain with a fresh head so hot buckets stay one seek deep.
        next_page, entries = self._read_bucket(page_id)
        entries.append((key_bytes, bytes(value)))
        if self._bucket_fits(next_page, entries):
            self._write_bucket(page_id, next_page, entries)
        else:
            entries.pop()
            overflow = self.pager.allocate()
            self._write_bucket(overflow, next_page, entries)
            self._write_bucket(page_id, overflow, [(key_bytes, bytes(value))])
        self._count += 1
        self._state_dirty = True

    def get(self, key: Any) -> list[bytes]:
        """Return every value stored under ``key`` (empty list if none)."""
        key_bytes = serialization.encode_key(key)
        out: list[bytes] = []
        page_id = self._bucket_for(key_bytes)
        while page_id != _NO_PAGE:
            next_page, entries = self._read_bucket(page_id)
            out.extend(value for k, value in entries if k == key_bytes)
            page_id = next_page
        return out

    def contains(self, key: Any) -> bool:
        return bool(self.get(key))

    def delete(self, key: Any, value: bytes | None = None) -> int:
        """Remove entries under ``key`` (all, or only those equal to ``value``)."""
        key_bytes = serialization.encode_key(key)
        removed = 0
        page_id = self._bucket_for(key_bytes)
        while page_id != _NO_PAGE:
            next_page, entries = self._read_bucket(page_id)
            kept = [
                (k, v)
                for k, v in entries
                if not (k == key_bytes and (value is None or v == value))
            ]
            if len(kept) != len(entries):
                removed += len(entries) - len(kept)
                self._write_bucket(page_id, next_page, kept)
            page_id = next_page
        self._count -= removed
        self._state_dirty = True
        return removed

    def items(self) -> Iterator[tuple[Any, bytes]]:
        """Yield every ``(key, value)`` pair (bucket order, not key order)."""
        for head in self._directory:
            page_id = head
            while page_id != _NO_PAGE:
                next_page, entries = self._read_bucket(page_id)
                for key_bytes, value in entries:
                    yield serialization.decode_key(key_bytes), value
                page_id = next_page

    def sync(self) -> None:
        self._save_state()
        self.pager.sync()

    # -- internals ----------------------------------------------------------

    def _bucket_for(self, key_bytes: bytes) -> int:
        return self._directory[_hash_key(key_bytes) & (self.n_buckets - 1)]

    def _read_bucket(self, page_id: int) -> tuple[int, list[tuple[bytes, bytes]]]:
        image = bytes(self.pager.read(page_id))
        (length,) = struct.unpack_from(">I", image, 0)
        if length == 0:
            return _NO_PAGE, []
        payload = serialization.loads(image[4 : 4 + length])
        return payload[0], [(k, v) for k, v in payload[1]]

    def _write_bucket(
        self, page_id: int, next_page: int, entries: list[tuple[bytes, bytes]]
    ) -> None:
        payload = serialization.dumps(
            [next_page, [list(e) for e in entries]], compress_arrays=False
        )
        image = bytearray(4 + len(payload))
        struct.pack_into(">I", image, 0, len(payload))
        image[4:] = payload
        self.pager.write(page_id, bytes(image))

    def _bucket_fits(self, next_page: int, entries: list[tuple[bytes, bytes]]) -> bool:
        payload = serialization.dumps(
            [next_page, [list(e) for e in entries]], compress_arrays=False
        )
        return 4 + len(payload) <= self.pager.capacity

    def _save_state(self) -> None:
        if not getattr(self, "_state_dirty", True):
            return
        meta = self.pager.get_meta()
        meta[self._meta_key] = {
            "n_buckets": self.n_buckets,
            "count": self._count,
            "dir_pages": list(self._dir_pages),
        }
        self.pager.set_meta(meta)
        self._state_dirty = False

    # The bucket directory can be arbitrarily large, so it lives in its
    # own chain of pages rather than the (single-page) metadata dict.
    _DIR_SLOTS = 400  # 8-byte ids with serialization overhead per 4K page

    def _write_directory(self) -> list[int]:
        pages = []
        for start in range(0, len(self._directory), self._DIR_SLOTS):
            chunk = self._directory[start : start + self._DIR_SLOTS]
            page_id = self.pager.allocate()
            payload = serialization.dumps(list(chunk), compress_arrays=False)
            image = bytearray(4 + len(payload))
            struct.pack_into(">I", image, 0, len(payload))
            image[4:] = payload
            self.pager.write(page_id, bytes(image))
            pages.append(page_id)
        return pages

    def _read_directory(self) -> list[int]:
        out: list[int] = []
        for page_id in self._dir_pages:
            image = bytes(self.pager.read(page_id))
            (length,) = struct.unpack_from(">I", image, 0)
            out.extend(serialization.loads(image[4 : 4 + length]))
        return out
