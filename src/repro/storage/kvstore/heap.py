"""Append-only blob heap.

Large values — serialized video frames, encoded clips, feature matrices —
do not fit inside B+ tree pages. The Frame File and Segmented File keep the
bulky bytes in a :class:`BlobHeap` and store only a small
``(offset, length)`` pointer in the tree, the classic heap-file split used
by record-oriented storage managers.

Format v2 (``DLHP0002``) frames every record as ``(length, flags,
payload CRC32)`` + payload; the CRC is verified on every read, so torn or
bit-flipped records raise a positioned
:class:`~repro.errors.CorruptionError` instead of surfacing as downstream
``zlib``/``struct`` garbage. v1 files still open (and keep appending v1
records) with verification off.

Being append-only is what makes the heap trivially journal-friendly: the
commit journal only records the pre-transaction end offset, and rollback is
a truncate.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from dataclasses import dataclass

from repro.errors import CorruptionError, StorageError

_MAGIC = b"DLHP0002"
_MAGIC_V1 = b"DLHP0001"
_HEADER_SIZE = 16  # magic + reserved
_REC_HEADER = ">QBI"  # payload length, flags, payload crc32
_REC_HEADER_SIZE = struct.calcsize(_REC_HEADER)
_REC_HEADER_V1 = ">QB"
_REC_HEADER_V1_SIZE = struct.calcsize(_REC_HEADER_V1)
_FLAG_COMPRESSED = 0x01

#: multi_get coalescing: two sorted requests whose file gap is at most
#: this many bytes are served by one read (reading the gap is cheaper
#: than another seek + syscall round-trip)
COALESCE_GAP_BYTES = 16 << 10
#: upper bound on one coalesced read, bounding transient buffer memory
MAX_RUN_BYTES = 8 << 20


@dataclass(frozen=True)
class BlobRef:
    """Location of one blob inside a heap file."""

    offset: int
    length: int

    def to_tuple(self) -> tuple[int, int]:
        return (self.offset, self.length)

    @classmethod
    def from_tuple(cls, pair: tuple[int, int]) -> "BlobRef":
        return cls(int(pair[0]), int(pair[1]))


class BlobHeap:
    """Append-only blob store with optional per-blob zlib compression.

    Thread-safe: one lock serializes every seek/read/write on the shared
    file handle, so a prefetch thread's batched reads can interleave
    with worker threads spilling UDF results without corrupting either.

    ``journal``, ``fs``, and ``durability`` mirror the
    :class:`~repro.storage.kvstore.pager.Pager` parameters: appends open
    the catalog transaction, file ops route through the injectable
    :class:`~repro.storage.faultfs.FileOps`, and :meth:`sync` fsyncs when
    ``durability == "fsync"``.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        metrics=None,
        store: str = "blob",
        journal=None,
        fs=None,
        durability: str = "fsync",
    ) -> None:
        self.path = os.fspath(path)
        self._journal = journal
        self.durability = durability
        if fs is None:
            from repro.storage.faultfs import OS_OPS

            fs = OS_OPS
        self._fs = fs
        if metrics is None:
            # runtime import: repro.core imports this package at load
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        # ``store`` labels this heap's series (the patch heap vs the
        # metadata segment's heap share the same metric families)
        self._metric_reads = metrics.counter(
            "deeplens_heap_reads_total", "blobs read", labels=("store",)
        ).labels(store=store)
        self._metric_read_bytes = metrics.counter(
            "deeplens_heap_read_bytes_total",
            "bytes read from the heap file (coalesced gaps included)",
            labels=("store",),
        ).labels(store=store)
        self._metric_writes = metrics.counter(
            "deeplens_heap_writes_total", "blobs appended", labels=("store",)
        ).labels(store=store)
        self._metric_write_bytes = metrics.counter(
            "deeplens_heap_write_bytes_total",
            "payload bytes appended",
            labels=("store",),
        ).labels(store=store)
        self._metric_runs = metrics.counter(
            "deeplens_heap_coalesced_runs_total",
            "coalesced multi_get read runs issued",
            labels=("store",),
        ).labels(store=store)
        self._metric_run_bytes = metrics.histogram(
            "deeplens_heap_run_bytes",
            "size of coalesced multi_get read runs",
            labels=("store",),
        ).labels(store=store)
        self._metric_corruption = metrics.counter(
            "deeplens_corruption_detected_total",
            "on-disk corruption detected by checksum/structure validation",
            labels=("file",),
        ).labels(file=os.path.basename(self.path))
        self._lock = threading.RLock()
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = self._fs.open(self.path, "r+b" if exists else "w+b")
        if exists:
            self._file.seek(0)
            magic = self._file.read(8)
            if magic == _MAGIC:
                self.checksums = True
            elif magic == _MAGIC_V1:
                self.checksums = False
            else:
                raise CorruptionError(
                    f"bad heap magic {magic!r}",
                    file=self.path,
                    offset=0,
                )
            self._file.seek(0, os.SEEK_END)
            self._end = self._file.tell()
        else:
            self.checksums = True
            self._file.write(_MAGIC.ljust(_HEADER_SIZE, b"\x00"))
            self._file.flush()
            self._end = _HEADER_SIZE
        if self.checksums:
            self._rec_fmt, self._rec_size = _REC_HEADER, _REC_HEADER_SIZE
        else:
            self._rec_fmt, self._rec_size = _REC_HEADER_V1, _REC_HEADER_V1_SIZE
        self._closed = False

    def __enter__(self) -> "BlobHeap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        with self._lock:
            if not self._closed:
                self._file.flush()
                self._file.close()
                self._closed = True

    def put(self, data: bytes, *, compress: bool = False) -> BlobRef:
        """Append ``data``; returns the reference needed to read it back."""
        flags = 0
        payload = data
        if compress:
            squeezed = zlib.compress(data, 6)
            if len(squeezed) < len(data):
                payload = squeezed
                flags |= _FLAG_COMPRESSED
        if self._journal is not None:
            # opening the transaction before taking the heap lock keeps
            # the component -> journal lock order acyclic
            self._journal.ensure_active()
        if self.checksums:
            header = struct.pack(
                _REC_HEADER, len(payload), flags, zlib.crc32(payload)
            )
        else:
            header = struct.pack(_REC_HEADER_V1, len(payload), flags)
        with self._lock:
            self._check_open()
            offset = self._end
            self._file.seek(offset)
            self._file.write(header)
            self._file.write(payload)
            self._end = offset + len(header) + len(payload)
        self._metric_writes.inc()
        self._metric_write_bytes.inc(len(payload))
        return BlobRef(offset=offset, length=len(payload))

    def get(self, ref: BlobRef) -> bytes:
        """Read a blob previously stored with :meth:`put`."""
        with self._lock:
            self._check_open()
            if ref.offset < _HEADER_SIZE or ref.offset >= self._end:
                raise StorageError(f"blob offset {ref.offset} out of range")
            self._file.seek(ref.offset)
            header = self._file.read(self._rec_size)
            length, flags, crc = self._parse_header(header, ref)
            payload = self._file.read(length)
        self._metric_reads.inc()
        self._metric_read_bytes.inc(self._rec_size + length)
        if len(payload) != length:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"short read of blob ({len(payload)} of {length} bytes)",
                file=self.path,
                offset=ref.offset,
            )
        self._verify(payload, crc, ref.offset)
        return self._inflate(payload, flags, ref.offset)

    def multi_get(self, refs: list[BlobRef] | tuple[BlobRef, ...]) -> list[bytes]:
        """Read many blobs in one pass; results align with ``refs``.

        Requests are served in file-offset order, adjacent/near-adjacent
        records are coalesced into single reads (``COALESCE_GAP_BYTES``,
        capped at ``MAX_RUN_BYTES`` per read), so a batch of point reads
        costs a handful of sequential I/O requests instead of one
        seek + two reads per blob — the batched storage path cold scans
        and index access paths sit on.
        """
        if not refs:
            return []
        # only the raw file reads happen under the lock; decompression
        # runs after release so a prefetch thread decoding a large run
        # cannot stall workers fetching/spilling through the same heap
        raw: list[tuple[bytes, int, int] | None] = [None] * len(refs)
        with self._lock:
            self._check_open()
            order = sorted(range(len(refs)), key=lambda i: refs[i].offset)

            run: list[int] = []
            run_start = run_end = 0
            for position in order:
                ref = refs[position]
                if ref.offset < _HEADER_SIZE or ref.offset >= self._end:
                    raise StorageError(
                        f"blob offset {ref.offset} out of range"
                    )
                record_end = ref.offset + self._rec_size + ref.length
                if not run:
                    run, run_start, run_end = [position], ref.offset, record_end
                elif (
                    ref.offset - run_end <= COALESCE_GAP_BYTES
                    and max(run_end, record_end) - run_start <= MAX_RUN_BYTES
                ):
                    run.append(position)
                    run_end = max(run_end, record_end)
                else:
                    self._read_run(refs, run, run_start, run_end, raw)
                    run, run_start, run_end = [position], ref.offset, record_end
            self._read_run(refs, run, run_start, run_end, raw)
        out = []
        for position, slot in enumerate(raw):
            payload, flags, crc = slot  # type: ignore[misc]  # every slot filled
            offset = refs[position].offset
            self._verify(payload, crc, offset)
            out.append(self._inflate(payload, flags, offset))
        return out

    def _read_run(
        self,
        refs: list[BlobRef] | tuple[BlobRef, ...],
        run: list[int],
        run_start: int,
        run_end: int,
        raw: list[tuple[bytes, int, int] | None],
    ) -> None:
        """One coalesced read serving every request in ``run``; fills
        ``raw`` with (still-compressed payload, flags, crc) triples."""
        self._file.seek(run_start)
        buffer = self._file.read(run_end - run_start)
        if len(buffer) != run_end - run_start:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"short read of blob run ({len(buffer)} of "
                f"{run_end - run_start} bytes)",
                file=self.path,
                offset=run_start,
            )
        # one locked inc per coalesced run, not per blob — the hot
        # batched-read path pays a few instrument touches per batch
        self._metric_runs.inc()
        self._metric_run_bytes.observe(len(buffer))
        self._metric_reads.inc(len(run))
        self._metric_read_bytes.inc(len(buffer))
        for position in run:
            ref = refs[position]
            base = ref.offset - run_start
            header = buffer[base : base + self._rec_size]
            length, flags, crc = self._parse_header(header, ref)
            payload = buffer[base + self._rec_size : base + self._rec_size + length]
            if len(payload) != length:
                self._metric_corruption.inc()
                raise CorruptionError(
                    f"short read of blob ({len(payload)} of {length} bytes)",
                    file=self.path,
                    offset=ref.offset,
                )
            raw[position] = (payload, flags, crc)

    def _parse_header(self, header: bytes, ref: BlobRef):
        """Decode one record header; returns (length, flags, crc|None)."""
        if len(header) < self._rec_size:
            self._metric_corruption.inc()
            raise CorruptionError(
                "truncated blob record header",
                file=self.path,
                offset=ref.offset,
            )
        if self.checksums:
            length, flags, crc = struct.unpack(_REC_HEADER, header)
        else:
            length, flags = struct.unpack(_REC_HEADER_V1, header)
            crc = None
        if length != ref.length:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"blob length mismatch: header says {length}, ref says "
                f"{ref.length}",
                file=self.path,
                offset=ref.offset,
            )
        return length, flags, crc

    def _verify(self, payload: bytes, crc: int | None, offset: int) -> None:
        if crc is None:
            return
        computed = zlib.crc32(payload)
        if computed != crc:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"blob checksum mismatch (stored 0x{crc:08x}, computed "
                f"0x{computed:08x})",
                file=self.path,
                offset=offset,
            )

    def _inflate(self, payload: bytes, flags: int, offset: int) -> bytes:
        if not flags & _FLAG_COMPRESSED:
            return payload
        try:
            return zlib.decompress(payload)
        except zlib.error as exc:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"undecompressable blob: {exc}",
                file=self.path,
                offset=offset,
            ) from exc

    def scrub(self) -> tuple[int, list[CorruptionError]]:
        """Walk every record in the heap and re-verify its checksum.

        Collects failures instead of raising (each detection still counts
        in ``deeplens_corruption_detected_total``); a *structural* fault —
        a truncated header or a length that overruns the file — ends the
        walk, since record framing cannot be resynchronized past it.
        Returns ``(records_checked, errors)``. Pre-checksum v1 heaps
        check nothing.
        """
        errors: list[CorruptionError] = []
        checked = 0
        with self._lock:
            self._check_open()
            if not self.checksums:
                return 0, errors
            offset = _HEADER_SIZE
            while offset < self._end:
                self._file.seek(offset)
                header = self._file.read(self._rec_size)
                if len(header) < self._rec_size:
                    self._metric_corruption.inc()
                    errors.append(
                        CorruptionError(
                            "truncated blob record header",
                            file=self.path,
                            offset=offset,
                        )
                    )
                    break
                length, flags, crc = struct.unpack(_REC_HEADER, header)
                if offset + self._rec_size + length > self._end:
                    self._metric_corruption.inc()
                    errors.append(
                        CorruptionError(
                            f"blob record of {length} bytes overruns the "
                            f"heap end",
                            file=self.path,
                            offset=offset,
                        )
                    )
                    break
                payload = self._file.read(length)
                checked += 1
                try:
                    if len(payload) != length:
                        self._metric_corruption.inc()
                        raise CorruptionError(
                            f"short read of blob ({len(payload)} of "
                            f"{length} bytes)",
                            file=self.path,
                            offset=offset,
                        )
                    self._verify(payload, crc, offset)
                except CorruptionError as exc:
                    errors.append(exc)
                offset += self._rec_size + length
        return checked, errors

    def sync(self) -> None:
        with self._lock:
            self._check_open()
            self._fs.sync_file(self._file, self.durability)

    @property
    def size_bytes(self) -> int:
        """Total bytes in the heap file (the on-disk footprint)."""
        return self._end

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: heap is closed")
