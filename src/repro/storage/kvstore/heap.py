"""Append-only blob heap.

Large values — serialized video frames, encoded clips, feature matrices —
do not fit inside B+ tree pages. The Frame File and Segmented File keep the
bulky bytes in a :class:`BlobHeap` and store only a small
``(offset, length)`` pointer in the tree, the classic heap-file split used
by record-oriented storage managers.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass

from repro.errors import StorageError

_MAGIC = b"DLHP0001"
_HEADER_SIZE = 16  # magic + reserved
_REC_HEADER = ">QB"  # payload length, flags
_REC_HEADER_SIZE = struct.calcsize(_REC_HEADER)
_FLAG_COMPRESSED = 0x01


@dataclass(frozen=True)
class BlobRef:
    """Location of one blob inside a heap file."""

    offset: int
    length: int

    def to_tuple(self) -> tuple[int, int]:
        return (self.offset, self.length)

    @classmethod
    def from_tuple(cls, pair: tuple[int, int]) -> "BlobRef":
        return cls(int(pair[0]), int(pair[1]))


class BlobHeap:
    """Append-only blob store with optional per-blob zlib compression."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = os.fspath(path)
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = open(self.path, "r+b" if exists else "w+b")
        if exists:
            self._file.seek(0)
            magic = self._file.read(8)
            if magic != _MAGIC:
                raise StorageError(f"{self.path}: bad heap magic {magic!r}")
            self._file.seek(0, os.SEEK_END)
            self._end = self._file.tell()
        else:
            self._file.write(_MAGIC.ljust(_HEADER_SIZE, b"\x00"))
            self._file.flush()
            self._end = _HEADER_SIZE
        self._closed = False

    def __enter__(self) -> "BlobHeap":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def put(self, data: bytes, *, compress: bool = False) -> BlobRef:
        """Append ``data``; returns the reference needed to read it back."""
        self._check_open()
        flags = 0
        payload = data
        if compress:
            squeezed = zlib.compress(data, 6)
            if len(squeezed) < len(data):
                payload = squeezed
                flags |= _FLAG_COMPRESSED
        offset = self._end
        self._file.seek(offset)
        self._file.write(struct.pack(_REC_HEADER, len(payload), flags))
        self._file.write(payload)
        self._end = offset + _REC_HEADER_SIZE + len(payload)
        return BlobRef(offset=offset, length=len(payload))

    def get(self, ref: BlobRef) -> bytes:
        """Read a blob previously stored with :meth:`put`."""
        self._check_open()
        if ref.offset < _HEADER_SIZE or ref.offset >= self._end:
            raise StorageError(f"blob offset {ref.offset} out of range")
        self._file.seek(ref.offset)
        header = self._file.read(_REC_HEADER_SIZE)
        length, flags = struct.unpack(_REC_HEADER, header)
        if length != ref.length:
            raise StorageError(
                f"blob length mismatch at {ref.offset}: header says {length}, "
                f"ref says {ref.length}"
            )
        payload = self._file.read(length)
        if len(payload) != length:
            raise StorageError(f"short read of blob at {ref.offset}")
        if flags & _FLAG_COMPRESSED:
            return zlib.decompress(payload)
        return payload

    def sync(self) -> None:
        self._check_open()
        self._file.flush()

    @property
    def size_bytes(self) -> int:
        """Total bytes in the heap file (the on-disk footprint)."""
        return self._end

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: heap is closed")
