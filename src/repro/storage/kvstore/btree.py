"""Disk-resident B+ tree.

This is the ordered keyed store that plays BerkeleyDB's role in the paper's
prototype (Section 3.1/3.2): it backs the Frame File (sorted by frame
number), the single-attribute B+ tree indexes, and the temporal filter
push-down experiments. Keys are order-preserving byte strings produced by
:func:`repro.storage.kvstore.serialization.encode_key`; values are small
byte strings (large payloads belong in a :class:`~repro.storage.kvstore.heap.BlobHeap`
with only the pointer stored here).

Properties:

* point lookups, duplicate keys (multimap mode) or upsert (unique mode);
* range scans ``[lo, hi]`` via linked leaves — the access path behind
  temporal predicates such as ``frameno BETWEEN a AND b``;
* node size bounded by both a key-count order and the physical page size;
* lazy deletion (no rebalancing), the usual trade-off for read-mostly
  analytical stores like this one.
"""

from __future__ import annotations

import bisect
import struct
from typing import Any, Iterator

from repro.errors import DuplicateKeyError, KeyNotFoundError, StorageError
from repro.storage.kvstore import serialization
from repro.storage.kvstore.pager import Pager

_NO_PAGE = 0


class _Node:
    """In-memory image of one tree page."""

    __slots__ = ("page_id", "leaf", "keys", "values", "children", "next_leaf")

    def __init__(
        self,
        page_id: int,
        leaf: bool,
        keys: list[bytes] | None = None,
        values: list[bytes] | None = None,
        children: list[int] | None = None,
        next_leaf: int = _NO_PAGE,
    ) -> None:
        self.page_id = page_id
        self.leaf = leaf
        self.keys = keys if keys is not None else []
        self.values = values if values is not None else []
        self.children = children if children is not None else []
        self.next_leaf = next_leaf

    def to_bytes(self) -> bytes:
        if self.leaf:
            payload = [True, self.next_leaf, self.keys, self.values]
        else:
            payload = [False, self.keys, self.children]
        body = serialization.dumps(payload, compress_arrays=False)
        return struct.pack(">I", len(body)) + body

    @classmethod
    def from_bytes(cls, page_id: int, image: bytes) -> "_Node":
        (length,) = struct.unpack_from(">I", image, 0)
        payload = serialization.loads(image[4 : 4 + length])
        if payload[0]:
            return cls(
                page_id,
                leaf=True,
                next_leaf=payload[1],
                keys=list(payload[2]),
                values=list(payload[3]),
            )
        return cls(page_id, leaf=False, keys=list(payload[1]), children=list(payload[2]))


class BPlusTree:
    """A named B+ tree stored inside a :class:`Pager`.

    Several trees can share one pager; each keeps its root pointer under its
    ``name`` in the pager's metadata dictionary.

    Parameters
    ----------
    pager:
        Backing page manager.
    name:
        Tree name inside the pager file.
    order:
        Maximum keys per node (splits also trigger on physical page
        overflow, whichever comes first).
    unique:
        When true, inserting an existing key raises
        :class:`DuplicateKeyError` unless ``replace=True``; when false the
        tree is a multimap and ``get`` returns every value for the key.
    """

    def __init__(
        self, pager: Pager, name: str = "btree", order: int = 64, unique: bool = False
    ) -> None:
        if order < 4:
            raise StorageError(f"B+ tree order {order} too small (minimum 4)")
        self.pager = pager
        self.name = name
        self.order = order
        # deserialized-node cache: page id -> _Node; _write_node refreshes
        # entries, so reads skip per-page deserialization on warm paths
        self._node_cache: dict[int, _Node] = {}
        self._node_cache_limit = 4096
        self._dirty_nodes: set[int] = set()
        self._meta_key = f"btree:{name}"
        meta = pager.get_meta()
        state = meta.get(self._meta_key)
        if state is None:
            root = _Node(pager.allocate(), leaf=True)
            self._write_node(root)
            self._root_id = root.page_id
            self._count = 0
            self.unique = unique
            self._save_state()
        else:
            self._root_id = state["root"]
            self._count = state["count"]
            self.unique = state["unique"]
        self._state_dirty = False
        pager.register_sync_hook(self._flush_dirty_nodes)
        pager.register_sync_hook(self._save_state)

    # -- public API -----------------------------------------------------

    def __len__(self) -> int:
        return self._count

    def insert(self, key: Any, value: bytes, *, replace: bool = False) -> None:
        """Insert ``key -> value``.

        In unique mode an existing key raises unless ``replace`` is given;
        in multimap mode duplicates accumulate in insertion order.
        """
        if not isinstance(value, (bytes, bytearray)):
            raise StorageError(
                f"B+ tree values must be bytes, got {type(value).__name__}"
            )
        key_bytes = serialization.encode_key(key)
        self._check_entry_size(key_bytes, value)
        split = self._insert(self._root_id, key_bytes, bytes(value), replace)
        if split is not None:
            sep_key, right_id = split
            new_root = _Node(
                self.pager.allocate(),
                leaf=False,
                keys=[sep_key],
                children=[self._root_id, right_id],
            )
            self._write_node(new_root)
            self._root_id = new_root.page_id
        self._state_dirty = True

    def get(self, key: Any) -> list[bytes]:
        """Return all values stored under ``key`` (empty list if none)."""
        key_bytes = serialization.encode_key(key)
        node = self._find_leaf(key_bytes)
        out = []
        while True:
            idx = bisect.bisect_left(node.keys, key_bytes)
            while idx < len(node.keys) and node.keys[idx] == key_bytes:
                out.append(node.values[idx])
                idx += 1
            if idx < len(node.keys) or node.next_leaf == _NO_PAGE:
                break
            node = self._read_node(node.next_leaf)
            if not node.keys or node.keys[0] != key_bytes:
                break
        return out

    def get_one(self, key: Any) -> bytes:
        """Return the single value for ``key`` or raise :class:`KeyNotFoundError`."""
        values = self.get(key)
        if not values:
            raise KeyNotFoundError(f"key {key!r} not found in B+ tree {self.name!r}")
        return values[0]

    def contains(self, key: Any) -> bool:
        return bool(self.get(key))

    def delete(self, key: Any, value: bytes | None = None) -> int:
        """Remove entries for ``key`` (all of them, or only those equal to
        ``value``). Returns the number removed. Lazy: leaves may underflow.
        """
        key_bytes = serialization.encode_key(key)
        removed = 0
        node = self._find_leaf(key_bytes)
        while True:
            changed = False
            idx = bisect.bisect_left(node.keys, key_bytes)
            while idx < len(node.keys) and node.keys[idx] == key_bytes:
                if value is None or node.values[idx] == value:
                    del node.keys[idx]
                    del node.values[idx]
                    removed += 1
                    changed = True
                else:
                    idx += 1
            if changed:
                self._write_node(node)
            if node.next_leaf == _NO_PAGE:
                break
            nxt = self._read_node(node.next_leaf)
            if not nxt.keys or nxt.keys[0] > key_bytes:
                break
            node = nxt
        self._count -= removed
        self._state_dirty = True
        return removed

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, bytes]]:
        """Yield ``(key, value)`` pairs with ``lo <= key <= hi`` in key order.

        ``None`` bounds are open. This linked-leaf walk is the physical
        access path for temporal filter push-down.
        """
        lo_bytes = None if lo is None else serialization.encode_key(lo)
        hi_bytes = None if hi is None else serialization.encode_key(hi)
        node = self._leftmost_leaf() if lo_bytes is None else self._find_leaf(lo_bytes)
        while True:
            for idx, key_bytes in enumerate(node.keys):
                if lo_bytes is not None:
                    if key_bytes < lo_bytes:
                        continue
                    if key_bytes == lo_bytes and not include_lo:
                        continue
                if hi_bytes is not None:
                    if key_bytes > hi_bytes:
                        return
                    if key_bytes == hi_bytes and not include_hi:
                        return
                yield serialization.decode_key(key_bytes), node.values[idx]
            if node.next_leaf == _NO_PAGE:
                return
            node = self._read_node(node.next_leaf)

    def items(self) -> Iterator[tuple[Any, bytes]]:
        """Yield every ``(key, value)`` pair in key order."""
        return self.range()

    def first(self) -> tuple[Any, bytes]:
        for pair in self.items():
            return pair
        raise KeyNotFoundError(f"B+ tree {self.name!r} is empty")

    def bulk_load(self, sorted_items: list[tuple[Any, bytes]]) -> None:
        """Replace the tree contents from already-sorted ``(key, value)`` pairs.

        Builds leaves left-to-right then stacks internal levels — the fast
        path index builders use when the input is pre-sorted.
        """
        encoded = [(serialization.encode_key(k), bytes(v)) for k, v in sorted_items]
        for i in range(1, len(encoded)):
            if encoded[i - 1][0] > encoded[i][0]:
                raise StorageError("bulk_load input is not sorted by key")
        for key_bytes, value in encoded:
            self._check_entry_size(key_bytes, value)
        half = max(self.order // 2, 2)
        leaves: list[_Node] = []
        for start in range(0, len(encoded), half) or [0]:
            chunk = encoded[start : start + half]
            node = _Node(
                self.pager.allocate(),
                leaf=True,
                keys=[k for k, _ in chunk],
                values=[v for _, v in chunk],
            )
            leaves.append(node)
        if not leaves:
            leaves = [_Node(self.pager.allocate(), leaf=True)]
        for left, right in zip(leaves, leaves[1:]):
            left.next_leaf = right.page_id
        for node in leaves:
            self._write_node(node)
        level = leaves
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), half):
                group = level[start : start + half]
                parent = _Node(
                    self.pager.allocate(),
                    leaf=False,
                    keys=[self._min_key(child) for child in group[1:]],
                    children=[child.page_id for child in group],
                )
                self._write_node(parent)
                parents.append(parent)
            level = parents
        self._root_id = level[0].page_id
        self._count = len(encoded)
        self._state_dirty = True

    def clear(self) -> None:
        """Drop every entry (old pages are leaked until compaction)."""
        root = _Node(self.pager.allocate(), leaf=True)
        self._write_node(root)
        self._root_id = root.page_id
        self._count = 0
        self._state_dirty = True

    def sync(self) -> None:
        self._flush_dirty_nodes()
        self._save_state()
        self.pager.sync()

    # -- internals ----------------------------------------------------------

    def _insert(
        self, page_id: int, key_bytes: bytes, value: bytes, replace: bool
    ) -> tuple[bytes, int] | None:
        node = self._read_node(page_id)
        if node.leaf:
            idx = bisect.bisect_left(node.keys, key_bytes)
            if self.unique and idx < len(node.keys) and node.keys[idx] == key_bytes:
                if not replace:
                    raise DuplicateKeyError(
                        f"duplicate key {serialization.decode_key(key_bytes)!r} "
                        f"in unique B+ tree {self.name!r}"
                    )
                node.values[idx] = value
                self._write_node(node)
                return None
            insert_at = bisect.bisect_right(node.keys, key_bytes)
            node.keys.insert(insert_at, key_bytes)
            node.values.insert(insert_at, value)
            self._count += 1
        else:
            child_idx = bisect.bisect_right(node.keys, key_bytes)
            split = self._insert(node.children[child_idx], key_bytes, value, replace)
            if split is None:
                return None
            sep_key, right_id = split
            node.keys.insert(child_idx, sep_key)
            node.children.insert(child_idx + 1, right_id)
        if self._overflows(node):
            return self._split(node)
        self._write_node(node)
        return None

    def _split(self, node: _Node) -> tuple[bytes, int]:
        mid = len(node.keys) // 2
        if node.leaf:
            right = _Node(
                self.pager.allocate(),
                leaf=True,
                keys=node.keys[mid:],
                values=node.values[mid:],
                next_leaf=node.next_leaf,
            )
            node.keys = node.keys[:mid]
            node.values = node.values[:mid]
            node.next_leaf = right.page_id
            sep = right.keys[0]
        else:
            sep = node.keys[mid]
            right = _Node(
                self.pager.allocate(),
                leaf=False,
                keys=node.keys[mid + 1 :],
                children=node.children[mid + 1 :],
            )
            node.keys = node.keys[:mid]
            node.children = node.children[: mid + 1]
        self._write_node(node)
        self._write_node(right)
        return sep, right.page_id

    def _overflows(self, node: _Node) -> bool:
        if len(node.keys) > self.order:
            return True
        # cheap upper-bound estimate first; exact serialization only when
        # the node is plausibly near the page boundary
        approx = 64 + 10 * len(node.keys) + sum(len(key) for key in node.keys)
        if node.leaf:
            approx += sum(len(value) for value in node.values) + 5 * len(node.values)
        else:
            approx += 13 * len(node.children)
        if approx <= int(self.pager.capacity * 0.7):
            return False
        return len(node.to_bytes()) > self.pager.capacity

    def _find_leaf(self, key_bytes: bytes) -> _Node:
        node = self._read_node(self._root_id)
        while not node.leaf:
            idx = bisect.bisect_left(node.keys, key_bytes)
            node = self._read_node(node.children[idx])
        return node

    def _leftmost_leaf(self) -> _Node:
        node = self._read_node(self._root_id)
        while not node.leaf:
            node = self._read_node(node.children[0])
        return node

    def _min_key(self, node: _Node) -> bytes:
        while not node.leaf:
            node = self._read_node(node.children[0])
        return node.keys[0]

    def _read_node(self, page_id: int) -> _Node:
        node = self._node_cache.get(page_id)
        if node is None:
            node = _Node.from_bytes(page_id, bytes(self.pager.read(page_id)))
            self._cache_node(node)
        return node

    def _write_node(self, node: _Node) -> None:
        # Lazy write-back: the mutation lives in the node cache and is
        # serialized to its page at sync time (or cache eviction). This is
        # what keeps inserts O(entries-moved) instead of O(node-serialize).
        self._cache_node(node)
        self._dirty_nodes.add(node.page_id)

    def _flush_dirty_nodes(self) -> None:
        for page_id in sorted(self._dirty_nodes):
            node = self._node_cache.get(page_id)
            if node is None:
                continue  # already flushed at eviction
            self._flush_one(node)
        self._dirty_nodes.clear()

    def _flush_one(self, node: _Node) -> None:
        image = node.to_bytes()
        if len(image) > self.pager.capacity:
            raise StorageError(
                f"B+ tree node of {len(image)} bytes exceeds the "
                f"{self.pager.capacity}-byte page capacity; store large "
                f"values in a BlobHeap and index the BlobRef instead"
            )
        self.pager.write(node.page_id, image)

    def _cache_node(self, node: _Node) -> None:
        if len(self._node_cache) >= self._node_cache_limit:
            self._flush_dirty_nodes()
            self._node_cache.clear()  # simple epoch eviction
        self._node_cache[node.page_id] = node

    def _check_entry_size(self, key_bytes: bytes, value: bytes) -> None:
        budget = self.pager.capacity // 4
        if len(key_bytes) + len(value) > budget:
            raise StorageError(
                f"entry of {len(key_bytes) + len(value)} bytes exceeds the "
                f"per-entry budget of {budget} bytes; store the payload in a "
                f"BlobHeap and index the BlobRef instead"
            )

    def _save_state(self) -> None:
        if not getattr(self, "_state_dirty", True):
            return
        meta = self.pager.get_meta()
        meta[self._meta_key] = {
            "root": self._root_id,
            "count": self._count,
            "unique": self.unique,
        }
        self.pager.set_meta(meta)
        self._state_dirty = False
