"""Sorted record file.

The paper's Frame File keeps records "in a sorted file by frame number ...
The sorted file allows for quick retrieval of temporal predicates"
(Section 3.1), and Section 3.2 lists Sorted Files among DeepLens's
single-dimensional index options. This module implements that structure: an
append-ordered file of ``(key, value)`` records with an in-memory offset
index rebuilt on open, binary-search point lookups, and sequential range
scans.

Appends must arrive in non-decreasing key order — exactly the pattern of a
video loader emitting frames — and :meth:`SortedRecordFile.bulk_build`
handles the arbitrary-order case by sorting once up front.
"""

from __future__ import annotations

import bisect
import os
import struct
from typing import Any, Iterator

from repro.errors import CorruptionError, StorageError
from repro.storage.faultfs import OS_OPS
from repro.storage.kvstore import serialization

_MAGIC = b"DLSF0001"
_HEADER_SIZE = 16
_REC_FMT = ">II"  # key length, value length
_REC_SIZE = struct.calcsize(_REC_FMT)


class SortedRecordFile:
    """On-disk sequence of records sorted by key."""

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        fs=None,
        durability: str = "fsync",
    ) -> None:
        self.path = os.fspath(path)
        self._fs = fs if fs is not None else OS_OPS
        self.durability = durability
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = self._fs.open(self.path, "r+b" if exists else "w+b")
        self._keys: list[bytes] = []
        self._offsets: list[int] = []
        self._closed = False
        if exists:
            self._file.seek(0)
            magic = self._file.read(8)
            if magic != _MAGIC:
                raise CorruptionError(
                    f"bad sorted-file magic {magic!r}",
                    file=self.path,
                    offset=0,
                )
            self._rebuild_index()
        else:
            self._file.write(_MAGIC.ljust(_HEADER_SIZE, b"\x00"))
            self._file.flush()
            self._end = _HEADER_SIZE

    def __enter__(self) -> "SortedRecordFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        if not self._closed:
            self._file.flush()
            self._file.close()
            self._closed = True

    def __len__(self) -> int:
        return len(self._keys)

    # -- writes ---------------------------------------------------------

    def append(self, key: Any, value: bytes) -> None:
        """Append a record; ``key`` must be >= the last appended key."""
        self._check_open()
        key_bytes = serialization.encode_key(key)
        if self._keys and key_bytes < self._keys[-1]:
            raise StorageError(
                f"append out of order: key {key!r} sorts before the current tail; "
                f"use bulk_build for unsorted input"
            )
        self._file.seek(self._end)
        self._file.write(struct.pack(_REC_FMT, len(key_bytes), len(value)))
        self._file.write(key_bytes)
        self._file.write(value)
        self._keys.append(key_bytes)
        self._offsets.append(self._end)
        self._end += _REC_SIZE + len(key_bytes) + len(value)

    def bulk_build(self, items: list[tuple[Any, bytes]]) -> None:
        """Replace the file contents with ``items`` sorted by key."""
        self._check_open()
        encoded = sorted(
            ((serialization.encode_key(k), bytes(v)) for k, v in items),
            key=lambda pair: pair[0],
        )
        self._file.seek(0)
        self._file.truncate()
        self._file.write(_MAGIC.ljust(_HEADER_SIZE, b"\x00"))
        self._keys = []
        self._offsets = []
        self._end = _HEADER_SIZE
        for key_bytes, value in encoded:
            self._file.write(struct.pack(_REC_FMT, len(key_bytes), len(value)))
            self._file.write(key_bytes)
            self._file.write(value)
            self._keys.append(key_bytes)
            self._offsets.append(self._end)
            self._end += _REC_SIZE + len(key_bytes) + len(value)
        self._file.flush()

    def sync(self) -> None:
        self._check_open()
        self._fs.sync_file(self._file, self.durability)

    # -- reads ----------------------------------------------------------

    def get(self, key: Any) -> list[bytes]:
        """Return all values stored under ``key`` via binary search."""
        self._check_open()
        key_bytes = serialization.encode_key(key)
        idx = bisect.bisect_left(self._keys, key_bytes)
        out = []
        while idx < len(self._keys) and self._keys[idx] == key_bytes:
            out.append(self._read_value(idx))
            idx += 1
        return out

    def range(
        self,
        lo: Any = None,
        hi: Any = None,
        *,
        include_lo: bool = True,
        include_hi: bool = True,
    ) -> Iterator[tuple[Any, bytes]]:
        """Yield ``(key, value)`` with ``lo <= key <= hi`` in key order."""
        self._check_open()
        if lo is None:
            start = 0
        else:
            lo_bytes = serialization.encode_key(lo)
            start = (
                bisect.bisect_left(self._keys, lo_bytes)
                if include_lo
                else bisect.bisect_right(self._keys, lo_bytes)
            )
        hi_bytes = None if hi is None else serialization.encode_key(hi)
        for idx in range(start, len(self._keys)):
            key_bytes = self._keys[idx]
            if hi_bytes is not None:
                if key_bytes > hi_bytes:
                    return
                if key_bytes == hi_bytes and not include_hi:
                    return
            yield serialization.decode_key(key_bytes), self._read_value(idx)

    def items(self) -> Iterator[tuple[Any, bytes]]:
        return self.range()

    @property
    def size_bytes(self) -> int:
        return self._end

    # -- internals ----------------------------------------------------------

    def _read_value(self, idx: int) -> bytes:
        offset = self._offsets[idx]
        self._file.seek(offset)
        key_len, value_len = struct.unpack(_REC_FMT, self._file.read(_REC_SIZE))
        self._file.seek(offset + _REC_SIZE + key_len)
        value = self._file.read(value_len)
        if len(value) != value_len:
            raise CorruptionError(
                f"short read of record ({len(value)} of {value_len} bytes)",
                file=self.path,
                offset=offset,
            )
        return value

    def _rebuild_index(self) -> None:
        self._file.seek(0, os.SEEK_END)
        file_end = self._file.tell()
        self._keys = []
        self._offsets = []
        pos = _HEADER_SIZE
        self._file.seek(pos)
        while pos + _REC_SIZE <= file_end:
            header = self._file.read(_REC_SIZE)
            if len(header) < _REC_SIZE:
                break
            key_len, value_len = struct.unpack(_REC_FMT, header)
            key_bytes = self._file.read(key_len)
            self._file.seek(value_len, os.SEEK_CUR)
            self._keys.append(key_bytes)
            self._offsets.append(pos)
            pos += _REC_SIZE + key_len + value_len
        self._end = pos

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: sorted record file is closed")
