"""Page-based storage manager.

A :class:`Pager` exposes a single file as an array of fixed-size pages with
allocation, a free list, a write-back LRU cache, and a small metadata
dictionary for clients (the B+ tree stores its root page id there, the hash
file its bucket directory page, and so on). It is the substrate that stands
in for BerkeleyDB's underlying mpool/file layer in the paper's prototype.

Layout (format v2, ``DLPG0002``)::

    page 0        header: magic, page_size, page_count, freelist head,
                  meta page id, header CRC32
    page meta     serialized dict of client metadata (single page)
    page 2..n     client pages / free pages (free pages chain through their
                  first 8 bytes)

Every page reserves its last 4 bytes for a CRC32 of the payload, stamped on
write-through and verified on every disk read — a torn or bit-flipped page
surfaces as a positioned :class:`~repro.errors.CorruptionError` instead of
garbage decoding downstream. Clients therefore size their structures
against :attr:`Pager.capacity` (``page_size - 4``), not ``page_size``.
Files written by the pre-checksum v1 format still open (checksums off).

Durability: writes participate in the catalog's
:class:`~repro.storage.journal.CommitJournal` when one is attached — the
first mutation of a transaction opens it, and any on-disk page about to be
overwritten mid-transaction (LRU write-back or :meth:`sync`) journals its
before-image first, the write-ahead rule that makes rollback possible.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib
from collections import OrderedDict

from repro.errors import CorruptionError, PageError, StorageError
from repro.storage.faultfs import OS_OPS
from repro.storage.kvstore import serialization

MAGIC = b"DLPG0002"
_MAGIC_V1 = b"DLPG0001"
DEFAULT_PAGE_SIZE = 4096
# magic, page_size, page_count, freelist_head, meta_page (+ CRC32 in v2)
_HEADER_BODY_FMT = ">8sIQQQ"
_HEADER_BODY_SIZE = struct.calcsize(_HEADER_BODY_FMT)
_HEADER_SIZE = _HEADER_BODY_SIZE + 4
_TRAILER_SIZE = 4  # per-page payload CRC32
_NO_PAGE = 0  # page 0 is the header, so 0 doubles as the null page id


class Pager:
    """Fixed-size page manager over one file.

    Parameters
    ----------
    path:
        File to open or create.
    page_size:
        Page size in bytes for a *new* file; an existing file's recorded
        page size always wins.
    cache_pages:
        Number of pages held in the write-back LRU cache.
    metrics:
        Optional :class:`~repro.core.metrics.MetricsRegistry`; page
        reads (hit/miss), writes, and LRU evictions report into it.
    journal:
        Optional :class:`~repro.storage.journal.CommitJournal`; when set,
        mutations open a transaction and on-disk overwrites journal their
        before-images first.
    fs:
        A :class:`~repro.storage.faultfs.FileOps` (defaults to the real
        filesystem); tests substitute a fault injector.
    durability:
        ``"fsync"`` makes :meth:`sync` fsync the file; ``"flush"`` (or
        ``"none"``) only flushes.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        page_size: int = DEFAULT_PAGE_SIZE,
        cache_pages: int = 256,
        *,
        metrics=None,
        journal=None,
        fs=None,
        durability: str = "fsync",
    ) -> None:
        self.path = os.fspath(path)
        self._journal = journal
        self._fs = fs if fs is not None else OS_OPS
        self.durability = durability
        if metrics is None:
            # runtime import: the metrics module lives in repro.core,
            # which imports this package at module load
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        page_reads = metrics.counter(
            "deeplens_pager_page_reads_total",
            "page reads by LRU outcome",
            labels=("result",),
        )
        self._metric_read_hits = page_reads.labels(result="hit")
        self._metric_read_misses = page_reads.labels(result="miss")
        self._metric_writes = metrics.counter(
            "deeplens_pager_page_writes_total", "page images written"
        )
        self._metric_evictions = metrics.counter(
            "deeplens_pager_page_evictions_total",
            "pages evicted from the LRU cache",
        )
        self._metric_corruption = metrics.counter(
            "deeplens_corruption_detected_total",
            "on-disk corruption detected by checksum/structure validation",
            labels=("file",),
        ).labels(file=os.path.basename(self.path))
        # serializes every page/file/cache operation: page-granularity
        # atomicity is what concurrent clients get (a prefetch thread
        # scanning one B+ tree while workers insert into another), and
        # the LRU OrderedDict must never be mutated from two threads
        self._lock = threading.RLock()
        self._cache: OrderedDict[int, bytearray] = OrderedDict()
        self._dirty: set[int] = set()
        self._cache_pages = max(cache_pages, 8)
        self._closed = False
        self._sync_hooks: list = []
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = self._fs.open(self.path, "r+b" if exists else "w+b")
        if exists:
            self._load_header()
        else:
            if page_size < 512:
                raise PageError(f"page size {page_size} too small (minimum 512)")
            self.page_size = page_size
            self.checksums = True
            self.page_count = 1
            self._freelist_head = _NO_PAGE
            self._meta_page = _NO_PAGE
            self._write_header()
            self._meta_page = self.allocate()
            self.set_meta({})
            self._write_header()

    # -- lifecycle ------------------------------------------------------

    def __enter__(self) -> "Pager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def close(self) -> None:
        """Flush all dirty pages and close the backing file."""
        with self._lock:
            if self._closed:
                return
            self.sync()
            self._file.close()
            self._closed = True

    def register_sync_hook(self, hook) -> None:
        """Register a callable run at the start of every :meth:`sync`.

        Clients (B+ trees, hash files) use this to persist their root
        pointers lazily instead of rewriting the metadata page per insert.
        """
        self._sync_hooks.append(hook)

    def sync(self) -> None:
        """Write every dirty cached page and the header durably to disk."""
        with self._lock:
            self._check_open()
            for hook in self._sync_hooks:
                hook()
            dirty = sorted(self._dirty)
            if self._journal is not None and dirty:
                # batch the before-images with one journal sync barrier
                # instead of one fsync per page at write-through time
                self._journal.record_pages(
                    (page_id, self._on_disk_image(page_id))
                    for page_id in dirty
                    if self._journal.needs_page(page_id)
                )
            for page_id in dirty:
                self._write_through(page_id, self._cache[page_id])
            self._dirty.clear()
            self._write_header()
            self._fs.sync_file(self._file, self.durability)

    # -- page operations --------------------------------------------------

    def allocate(self) -> int:
        """Return the id of a fresh zeroed page, reusing freed pages first."""
        with self._lock:
            self._check_open()
            # the transaction must open *before* page_count/freelist
            # mutate, so the BEGIN snapshot captures the committed state
            self._ensure_journaled()
            if self._freelist_head != _NO_PAGE:
                page_id = self._freelist_head
                page = self.read(page_id)
                (self._freelist_head,) = struct.unpack_from(">Q", page, 0)
                self.write(page_id, bytes(self.page_size))
                return page_id
            page_id = self.page_count
            self.page_count += 1
            self.write(page_id, bytes(self.page_size))
            return page_id

    def free(self, page_id: int) -> None:
        """Return ``page_id`` to the free list."""
        with self._lock:
            self._check_open()
            self._validate_id(page_id)
            self._ensure_journaled()
            page = bytearray(self.page_size)
            struct.pack_into(">Q", page, 0, self._freelist_head)
            self.write(page_id, bytes(page))
            self._freelist_head = page_id

    def read(self, page_id: int) -> bytearray:
        """Return a mutable copy of the page image (callers own the copy).

        Disk reads verify the page checksum; the CRC trailer is zeroed in
        the returned image so clients always see pure payload bytes.
        """
        with self._lock:
            self._check_open()
            self._validate_id(page_id)
            if page_id in self._cache:
                self._cache.move_to_end(page_id)
                self._metric_read_hits.inc()
                return bytearray(self._cache[page_id])
            self._metric_read_misses.inc()
            self._file.seek(page_id * self.page_size)
            data = self._file.read(self.page_size)
            if len(data) < self.page_size:
                data = data.ljust(self.page_size, b"\x00")
            image = bytearray(data)
            if self.checksums:
                self._verify_page(page_id, image)
                image[self.capacity :] = bytes(_TRAILER_SIZE)
            self._cache_put(page_id, image, dirty=False)
            return bytearray(image)

    def write(self, page_id: int, data: bytes) -> None:
        """Replace the page image; buffered until eviction or :meth:`sync`."""
        with self._lock:
            self._check_open()
            self._validate_id(page_id)
            self._ensure_journaled()
            if len(data) > self.page_size:
                raise PageError(
                    f"page image of {len(data)} bytes exceeds page size "
                    f"{self.page_size}"
                )
            image = bytearray(data.ljust(self.page_size, b"\x00"))
            if self.checksums and any(image[self.capacity :]):
                raise PageError(
                    f"page image of {len(data)} bytes overruns the "
                    f"{_TRAILER_SIZE}-byte checksum trailer; usable "
                    f"capacity is {self.capacity}"
                )
            self._metric_writes.inc()
            self._cache_put(page_id, image, dirty=True)

    # -- client metadata ----------------------------------------------------

    def get_meta(self) -> dict:
        """Return the client metadata dictionary (e.g. index root pointers)."""
        with self._lock:
            page = self.read(self._meta_page)
        (length,) = struct.unpack_from(">I", page, 0)
        if length == 0:
            return {}
        if length > self.capacity - 4:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"meta dict length {length} exceeds page capacity",
                file=self.path,
                offset=self._meta_page * self.page_size,
            )
        try:
            return serialization.loads(bytes(page[4 : 4 + length]))
        except (StorageError, ValueError, KeyError, struct.error) as exc:
            self._metric_corruption.inc()
            raise CorruptionError(
                f"undecodable meta dict: {exc}",
                file=self.path,
                offset=self._meta_page * self.page_size,
            ) from exc

    def set_meta(self, meta: dict) -> None:
        """Persist the client metadata dictionary (must fit in one page)."""
        payload = serialization.dumps(meta)
        if len(payload) + 4 > self.capacity:
            raise PageError(
                f"meta dict of {len(payload)} bytes does not fit in one "
                f"{self.page_size}-byte page"
            )
        image = bytearray(self.page_size)
        struct.pack_into(">I", image, 0, len(payload))
        image[4 : 4 + len(payload)] = payload
        with self._lock:
            self.write(self._meta_page, bytes(image))

    # -- internals ----------------------------------------------------------

    def _ensure_journaled(self) -> None:
        if self._journal is not None:
            self._journal.ensure_active()

    def _cache_put(self, page_id: int, image: bytearray, *, dirty: bool) -> None:
        self._cache[page_id] = image
        self._cache.move_to_end(page_id)
        if dirty:
            self._dirty.add(page_id)
        while len(self._cache) > self._cache_pages:
            victim, victim_image = self._cache.popitem(last=False)
            self._metric_evictions.inc()
            if victim in self._dirty:
                self._write_through(victim, victim_image)
                self._dirty.discard(victim)

    def _write_through(self, page_id: int, image: bytearray) -> None:
        if self._journal is not None and self._journal.needs_page(page_id):
            # write-ahead rule: the on-disk image must be safely in the
            # journal before this overwrite can clobber it
            self._journal.record_page(page_id, self._on_disk_image(page_id))
        out = bytes(image)
        if self.checksums:
            # stamp the CRC into a copy, never the cached image: cache
            # hits must keep returning pure payload bytes
            stamped = bytearray(out)
            struct.pack_into(
                ">I", stamped, self.capacity, zlib.crc32(out[: self.capacity])
            )
            out = bytes(stamped)
        self._file.seek(page_id * self.page_size)
        self._file.write(out)

    def _on_disk_image(self, page_id: int) -> bytes:
        """The raw on-disk bytes of a page (CRC trailer included)."""
        self._file.seek(page_id * self.page_size)
        data = self._file.read(self.page_size)
        return data.ljust(self.page_size, b"\x00")

    def _verify_page(self, page_id: int, image: bytearray) -> None:
        payload = bytes(image[: self.capacity])
        (stored,) = struct.unpack_from(">I", image, self.capacity)
        computed = zlib.crc32(payload)
        if stored == computed:
            return
        if stored == 0 and not any(payload):
            return  # never-written page (file hole / short tail)
        self._metric_corruption.inc()
        raise CorruptionError(
            f"page {page_id} checksum mismatch (stored 0x{stored:08x}, "
            f"computed 0x{computed:08x})",
            file=self.path,
            offset=page_id * self.page_size,
        )

    def scrub(self) -> tuple[int, list[CorruptionError]]:
        """Verify every allocated page's *on-disk* checksum, bypassing the
        LRU cache (a dirty cached page is checked against its last
        committed image — the bytes recovery would restore). Collects
        failures instead of raising; each detection still counts in
        ``deeplens_corruption_detected_total``. Returns
        ``(pages_checked, errors)``. Pre-checksum v1 files check nothing.
        """
        errors: list[CorruptionError] = []
        with self._lock:
            self._check_open()
            if not self.checksums:
                return 0, errors
            checked = 0
            for page_id in range(1, self.page_count):
                image = bytearray(self._on_disk_image(page_id))
                checked += 1
                try:
                    self._verify_page(page_id, image)
                except CorruptionError as exc:
                    errors.append(exc)
        return checked, errors

    def packed_header(self) -> bytes:
        """The exact header bytes :meth:`sync` would write right now —
        the before-image the commit journal snapshots at BEGIN."""
        body = struct.pack(
            _HEADER_BODY_FMT,
            MAGIC if self.checksums else _MAGIC_V1,
            self.page_size,
            self.page_count,
            self._freelist_head,
            self._meta_page,
        )
        if self.checksums:
            body += struct.pack(">I", zlib.crc32(body))
        return body.ljust(min(self.page_size, 512), b"\x00")

    def _write_header(self) -> None:
        self._file.seek(0)
        self._file.write(self.packed_header())
        self._file.flush()

    def _load_header(self) -> None:
        self._file.seek(0)
        raw = self._file.read(_HEADER_SIZE)
        if len(raw) < _HEADER_BODY_SIZE:
            raise CorruptionError(
                f"truncated pager header ({len(raw)} of "
                f"{_HEADER_BODY_SIZE} bytes)",
                file=self.path,
                offset=0,
            )
        magic = raw[:8]
        if magic == MAGIC:
            if len(raw) < _HEADER_SIZE:
                raise CorruptionError(
                    "truncated pager header (checksum missing)",
                    file=self.path,
                    offset=0,
                )
            (crc,) = struct.unpack_from(">I", raw, _HEADER_BODY_SIZE)
            if zlib.crc32(raw[:_HEADER_BODY_SIZE]) != crc:
                self._metric_corruption.inc()
                raise CorruptionError(
                    "pager header checksum mismatch",
                    file=self.path,
                    offset=0,
                )
            self.checksums = True
        elif magic == _MAGIC_V1:
            self.checksums = False
        else:
            raise CorruptionError(
                f"bad magic {magic!r}; not a pager file",
                file=self.path,
                offset=0,
            )
        _, page_size, page_count, freelist_head, meta_page = struct.unpack_from(
            _HEADER_BODY_FMT, raw, 0
        )
        self.page_size = page_size
        self.page_count = page_count
        self._freelist_head = freelist_head
        self._meta_page = meta_page

    def _validate_id(self, page_id: int) -> None:
        if page_id <= 0 or page_id >= max(self.page_count, 1):
            raise PageError(f"page id {page_id} out of range (1..{self.page_count - 1})")

    def _check_open(self) -> None:
        if self._closed:
            raise StorageError(f"{self.path}: pager is closed")

    @property
    def capacity(self) -> int:
        """Usable bytes per page for client payloads (the CRC trailer is
        the pager's own)."""
        if self.checksums:
            return self.page_size - _TRAILER_SIZE
        return self.page_size
