"""Binary serialization for on-disk records and order-preserving keys.

Two encodings live here:

``dumps`` / ``loads``
    A compact, self-describing binary format for record *values* — metadata
    dictionaries, numpy arrays (frames, features), and the usual Python
    scalars. It plays the role BerkeleyDB's application-side serializer
    played in the paper's prototype ("serialized in a binary format before
    insertion", Section 3.1). It is not pickle: the format is stable,
    versioned, and refuses unknown types instead of silently executing code.

``encode_key`` / ``decode_key``
    An *order-preserving* encoding for index keys: for any two supported
    values ``a < b  iff  encode_key(a) < encode_key(b)`` bytewise. The B+
    tree and sorted file compare raw bytes, so temporal range scans (frame
    numbers, timestamps) and string ranges work without deserializing keys.
"""

from __future__ import annotations

import struct
import zlib
from typing import Any, Iterator

import numpy as np

from repro.errors import StorageError

# -- value serialization -----------------------------------------------------

_MAGIC = b"DLv1"

_T_NONE = 0x01
_T_FALSE = 0x02
_T_TRUE = 0x03
_T_INT = 0x04
_T_FLOAT = 0x05
_T_STR = 0x06
_T_BYTES = 0x07
_T_LIST = 0x08
_T_TUPLE = 0x09
_T_DICT = 0x0A
_T_NDARRAY = 0x0B
_T_NDARRAY_Z = 0x0C  # zlib-compressed ndarray payload

# Arrays at least this large are zlib-compressed inside ``dumps``. Frames of
# synthetic video are highly compressible, and this mirrors the paper's
# observation that raw frame storage is wasteful.
_COMPRESS_THRESHOLD = 1 << 14


def dumps(obj: Any, *, compress_arrays: bool = True) -> bytes:
    """Serialize ``obj`` to bytes.

    Supported types: ``None``, ``bool``, ``int``, ``float``, ``str``,
    ``bytes``, ``list``, ``tuple``, ``dict`` (string keys not required), and
    ``numpy.ndarray``. Raises :class:`StorageError` on anything else.
    """
    out = bytearray(_MAGIC)
    _write_value(out, obj, compress_arrays)
    return bytes(out)


def loads(buf: bytes) -> Any:
    """Inverse of :func:`dumps`."""
    if buf[:4] != _MAGIC:
        raise StorageError(
            f"bad record magic {buf[:4]!r}; not a DeepLens serialized value"
        )
    value, pos = _read_value(buf, 4)
    if pos != len(buf):
        raise StorageError(f"trailing garbage after record ({len(buf) - pos} bytes)")
    return value


def _write_value(out: bytearray, obj: Any, compress: bool) -> None:
    if obj is None:
        out.append(_T_NONE)
    elif obj is True:
        out.append(_T_TRUE)
    elif obj is False:
        out.append(_T_FALSE)
    elif isinstance(obj, (int, np.integer)) and not isinstance(obj, bool):
        out.append(_T_INT)
        payload = int(obj).to_bytes(
            (int(obj).bit_length() + 8) // 8 or 1, "big", signed=True
        )
        out += struct.pack(">I", len(payload))
        out += payload
    elif isinstance(obj, (float, np.floating)):
        out.append(_T_FLOAT)
        out += struct.pack(">d", float(obj))
    elif isinstance(obj, str):
        payload = obj.encode("utf-8")
        out.append(_T_STR)
        out += struct.pack(">I", len(payload))
        out += payload
    elif isinstance(obj, (bytes, bytearray, memoryview)):
        payload = bytes(obj)
        out.append(_T_BYTES)
        out += struct.pack(">I", len(payload))
        out += payload
    elif isinstance(obj, list):
        out.append(_T_LIST)
        out += struct.pack(">I", len(obj))
        for item in obj:
            _write_value(out, item, compress)
    elif isinstance(obj, tuple):
        out.append(_T_TUPLE)
        out += struct.pack(">I", len(obj))
        for item in obj:
            _write_value(out, item, compress)
    elif isinstance(obj, dict):
        out.append(_T_DICT)
        out += struct.pack(">I", len(obj))
        for key, value in obj.items():
            _write_value(out, key, compress)
            _write_value(out, value, compress)
    elif isinstance(obj, np.ndarray):
        _write_ndarray(out, obj, compress)
    else:
        raise StorageError(f"cannot serialize value of type {type(obj).__name__}")


def _write_ndarray(out: bytearray, arr: np.ndarray, compress: bool) -> None:
    arr = np.ascontiguousarray(arr)
    raw = arr.tobytes()
    dtype = arr.dtype.str.encode("ascii")
    use_z = compress and len(raw) >= _COMPRESS_THRESHOLD
    out.append(_T_NDARRAY_Z if use_z else _T_NDARRAY)
    out += struct.pack(">B", len(dtype))
    out += dtype
    out += struct.pack(">B", arr.ndim)
    for dim in arr.shape:
        out += struct.pack(">q", dim)
    payload = zlib.compress(raw, 6) if use_z else raw
    out += struct.pack(">Q", len(payload))
    out += payload


def _read_value(buf: bytes, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _T_NONE:
        return None, pos
    if tag == _T_TRUE:
        return True, pos
    if tag == _T_FALSE:
        return False, pos
    if tag == _T_INT:
        (length,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        value = int.from_bytes(buf[pos : pos + length], "big", signed=True)
        return value, pos + length
    if tag == _T_FLOAT:
        (value,) = struct.unpack_from(">d", buf, pos)
        return value, pos + 8
    if tag == _T_STR:
        (length,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        return buf[pos : pos + length].decode("utf-8"), pos + length
    if tag == _T_BYTES:
        (length,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        return bytes(buf[pos : pos + length]), pos + length
    if tag in (_T_LIST, _T_TUPLE):
        (count,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        items = []
        for _ in range(count):
            item, pos = _read_value(buf, pos)
            items.append(item)
        return (items if tag == _T_LIST else tuple(items)), pos
    if tag == _T_DICT:
        (count,) = struct.unpack_from(">I", buf, pos)
        pos += 4
        result: dict[Any, Any] = {}
        for _ in range(count):
            key, pos = _read_value(buf, pos)
            value, pos = _read_value(buf, pos)
            result[key] = value
        return result, pos
    if tag in (_T_NDARRAY, _T_NDARRAY_Z):
        return _read_ndarray(buf, pos, compressed=(tag == _T_NDARRAY_Z))
    raise StorageError(f"unknown type tag 0x{tag:02x} at offset {pos - 1}")


def _read_ndarray(buf: bytes, pos: int, *, compressed: bool) -> tuple[np.ndarray, int]:
    (dtype_len,) = struct.unpack_from(">B", buf, pos)
    pos += 1
    dtype = np.dtype(buf[pos : pos + dtype_len].decode("ascii"))
    pos += dtype_len
    (ndim,) = struct.unpack_from(">B", buf, pos)
    pos += 1
    shape = []
    for _ in range(ndim):
        (dim,) = struct.unpack_from(">q", buf, pos)
        shape.append(dim)
        pos += 8
    (length,) = struct.unpack_from(">Q", buf, pos)
    pos += 8
    payload = bytes(buf[pos : pos + length])
    pos += length
    raw = zlib.decompress(payload) if compressed else payload
    arr = np.frombuffer(raw, dtype=dtype).reshape(shape).copy()
    return arr, pos


# -- order-preserving key encoding -------------------------------------------
#
# One tag byte per value establishes a total order *across* types
# (None < bool < numeric < str < bytes < tuple); within a type the payload
# encoding is order-preserving. Strings/bytes use NUL-escaping so that no
# encoded component is a prefix of another, which keeps tuple keys ordered
# componentwise — the property compound indexes (e.g. (video, frameno))
# rely on.

_K_NONE = 0x05
_K_FALSE = 0x08
_K_TRUE = 0x09
_K_NUM = 0x10
_K_STR = 0x20
_K_BYTES = 0x30
_K_TUPLE = 0x40
_K_END = 0x00

_MAX_EXACT_INT = 1 << 53


def encode_key(value: Any) -> bytes:
    """Encode ``value`` into bytes whose lexicographic order matches the
    natural order of the values.

    Ints and floats share one numeric encoding (an order-flipped IEEE-754
    image), so ``2 < 2.5 < 3`` holds across types. Integers with magnitude
    above 2**53 are rejected because the double image would collide.
    """
    out = bytearray()
    _encode_key_into(out, value)
    return bytes(out)


def _encode_key_into(out: bytearray, value: Any) -> None:
    if value is None:
        out.append(_K_NONE)
    elif value is True:
        out.append(_K_TRUE)
    elif value is False:
        out.append(_K_FALSE)
    elif isinstance(value, (int, float, np.integer, np.floating)) and not isinstance(
        value, bool
    ):
        if isinstance(value, (int, np.integer)) and abs(int(value)) > _MAX_EXACT_INT:
            raise StorageError(
                f"integer key {value} exceeds 2**53; order encoding would be lossy"
            )
        out.append(_K_NUM)
        out += _orderable_double(float(value))
        # A trailing discriminator restores the exact Python type on decode
        # (1 vs 1.0 encode to the same double image). It participates in
        # the byte order, so numerically equal keys of different types
        # sort int-before-float — deliberately: a total order per
        # component is what keeps *tuple* keys ordered componentwise.
        out.append(1 if isinstance(value, (int, np.integer)) else 2)
    elif isinstance(value, str):
        out.append(_K_STR)
        out += _escape_nul(value.encode("utf-8"))
        out += b"\x00\x00"
    elif isinstance(value, (bytes, bytearray)):
        out.append(_K_BYTES)
        out += _escape_nul(bytes(value))
        out += b"\x00\x00"
    elif isinstance(value, tuple):
        out.append(_K_TUPLE)
        for item in value:
            _encode_key_into(out, item)
        out.append(_K_END)
    else:
        raise StorageError(f"cannot use value of type {type(value).__name__} as a key")


def decode_key(buf: bytes) -> Any:
    """Inverse of :func:`encode_key`."""
    value, pos = _decode_key_from(buf, 0)
    if pos != len(buf):
        raise StorageError("trailing bytes after encoded key")
    return value


def _decode_key_from(buf: bytes, pos: int) -> tuple[Any, int]:
    tag = buf[pos]
    pos += 1
    if tag == _K_NONE:
        return None, pos
    if tag == _K_TRUE:
        return True, pos
    if tag == _K_FALSE:
        return False, pos
    if tag == _K_NUM:
        image = buf[pos : pos + 8]
        pos += 8
        kind = buf[pos]
        pos += 1
        number = _unorderable_double(image)
        return (int(number) if kind == 1 else number), pos
    if tag == _K_STR:
        payload, pos = _unescape_nul(buf, pos)
        return payload.decode("utf-8"), pos
    if tag == _K_BYTES:
        payload, pos = _unescape_nul(buf, pos)
        return payload, pos
    if tag == _K_TUPLE:
        items = []
        while buf[pos] != _K_END:
            item, pos = _decode_key_from(buf, pos)
            items.append(item)
        return tuple(items), pos + 1
    raise StorageError(f"unknown key tag 0x{tag:02x}")


def _orderable_double(value: float) -> bytes:
    (bits,) = struct.unpack(">Q", struct.pack(">d", value))
    if bits & (1 << 63):
        bits = ~bits & ((1 << 64) - 1)  # negative: flip everything
    else:
        bits |= 1 << 63  # non-negative: set the sign bit
    return struct.pack(">Q", bits)


def _unorderable_double(image: bytes) -> float:
    (bits,) = struct.unpack(">Q", image)
    if bits & (1 << 63):
        bits &= ~(1 << 63) & ((1 << 64) - 1)
    else:
        bits = ~bits & ((1 << 64) - 1)
    (value,) = struct.unpack(">d", struct.pack(">Q", bits))
    return value


def _escape_nul(payload: bytes) -> bytes:
    # 0x00 -> 0x00 0x01 keeps ordering: any real byte b > 0x00 still compares
    # above the escape pair, and the 0x00 0x00 terminator compares below any
    # continuation, making shorter strings sort first (prefix order).
    return payload.replace(b"\x00", b"\x00\x01")


def _unescape_nul(buf: bytes, pos: int) -> tuple[bytes, int]:
    out = bytearray()
    while True:
        byte = buf[pos]
        if byte == 0x00:
            nxt = buf[pos + 1]
            if nxt == 0x00:
                return bytes(out), pos + 2
            if nxt == 0x01:
                out.append(0x00)
                pos += 2
                continue
            raise StorageError("corrupt NUL escape in encoded key")
        out.append(byte)
        pos += 1


def key_range_prefix(prefix: tuple) -> tuple[bytes, bytes]:
    """Byte range ``[lo, hi)`` covering all tuple keys starting with ``prefix``.

    Useful for compound-key scans, e.g. all frames of one video:
    ``lo, hi = key_range_prefix(("cam1",))``.
    """
    body = bytearray()
    for item in prefix:
        _encode_key_into(body, item)
    lo = bytes([_K_TUPLE]) + bytes(body)
    hi = lo + b"\xff"
    return lo, hi


def iter_key_values(pairs: Iterator[tuple[bytes, bytes]]) -> Iterator[tuple[Any, Any]]:
    """Decode an iterator of raw ``(key_bytes, value_bytes)`` pairs."""
    for key_bytes, value_bytes in pairs:
        yield decode_key(key_bytes), loads(value_bytes)
