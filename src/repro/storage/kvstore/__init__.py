"""Embedded key-value storage substrate (the BerkeleyDB stand-in).

Public surface:

* :class:`~repro.storage.kvstore.pager.Pager` — fixed-size page manager.
* :class:`~repro.storage.kvstore.btree.BPlusTree` — ordered keyed store.
* :class:`~repro.storage.kvstore.hashfile.HashFile` — persistent hash multimap.
* :class:`~repro.storage.kvstore.recordfile.SortedRecordFile` — sorted file.
* :class:`~repro.storage.kvstore.heap.BlobHeap` — append-only large-value heap.
* ``dumps`` / ``loads`` / ``encode_key`` / ``decode_key`` — record and key codecs.
"""

from repro.storage.kvstore.btree import BPlusTree
from repro.storage.kvstore.hashfile import HashFile
from repro.storage.kvstore.heap import BlobHeap, BlobRef
from repro.storage.kvstore.pager import Pager
from repro.storage.kvstore.recordfile import SortedRecordFile
from repro.storage.kvstore.serialization import (
    decode_key,
    dumps,
    encode_key,
    loads,
)

__all__ = [
    "BPlusTree",
    "BlobHeap",
    "BlobRef",
    "HashFile",
    "Pager",
    "SortedRecordFile",
    "decode_key",
    "dumps",
    "encode_key",
    "loads",
]
