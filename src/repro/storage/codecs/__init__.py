"""Video codecs: RAW, JPEG-like (intra-only), H.264-like (sequential).

Use :func:`get_codec` to construct one by name::

    codec = get_codec("h264", quality="high", gop=30)
    stream = codec.encode_stream(frames)
"""

from repro.errors import CodecError
from repro.storage.codecs.base import VideoCodec
from repro.storage.codecs.blocks import psnr
from repro.storage.codecs.h264_like import H264LikeCodec
from repro.storage.codecs.jpeg_like import JpegLikeCodec, decode_image, encode_image
from repro.storage.codecs.quality import HIGH, LOW, MEDIUM, PRESETS, QualityPreset
from repro.storage.codecs.raw import RawCodec

_CODECS = {
    "raw": RawCodec,
    "jpeg": JpegLikeCodec,
    "h264": H264LikeCodec,
}


def get_codec(name: str, **kwargs) -> VideoCodec:
    """Construct a codec by name: ``raw``, ``jpeg``, or ``h264``."""
    try:
        cls = _CODECS[name.lower()]
    except KeyError:
        raise CodecError(
            f"unknown codec {name!r}; expected one of {sorted(_CODECS)}"
        ) from None
    return cls(**kwargs)


__all__ = [
    "HIGH",
    "LOW",
    "MEDIUM",
    "PRESETS",
    "H264LikeCodec",
    "JpegLikeCodec",
    "QualityPreset",
    "RawCodec",
    "VideoCodec",
    "decode_image",
    "encode_image",
    "get_codec",
    "psnr",
]
