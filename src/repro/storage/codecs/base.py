"""Codec interface.

A codec turns an iterable of frames (uint8 arrays of shape ``(H, W, 3)``)
into one self-contained byte stream and back. The property that matters to
the storage layer is :attr:`VideoCodec.supports_random_access`: the paper's
central encoding observation (Section 7.1) is that sequential codecs cannot
serve temporal filter push-down, while frame-independent formats can.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

from repro.errors import CodecError


class VideoCodec(ABC):
    """Abstract video codec over uint8 RGB frames."""

    #: short identifier used by the storage formats and the factory
    name: str = "abstract"
    #: whether decoding loses information
    lossy: bool = False
    #: whether ``decode_frame(data, i)`` is O(frame) rather than O(stream)
    supports_random_access: bool = False

    @abstractmethod
    def encode_stream(self, frames: Iterable[np.ndarray]) -> bytes:
        """Encode ``frames`` into one self-contained byte stream."""

    @abstractmethod
    def decode_stream(self, data: bytes) -> Iterator[np.ndarray]:
        """Yield every frame of the stream in order."""

    @abstractmethod
    def frame_count(self, data: bytes) -> int:
        """Number of frames in the stream without decoding them."""

    def decode_frame(self, data: bytes, index: int) -> np.ndarray:
        """Decode a single frame by position.

        Sequential codecs override this to raise
        :class:`~repro.errors.RandomAccessUnsupportedError`.
        """
        raise NotImplementedError

    @staticmethod
    def _validate_frame(frame: np.ndarray, expected_shape=None) -> np.ndarray:
        frame = np.asarray(frame)
        if frame.ndim != 3 or frame.shape[2] != 3:
            raise CodecError(
                f"frames must have shape (H, W, 3), got {frame.shape}"
            )
        if frame.dtype != np.uint8:
            raise CodecError(f"frames must be uint8, got {frame.dtype}")
        if expected_shape is not None and frame.shape != expected_shape:
            raise CodecError(
                f"frame shape {frame.shape} differs from stream shape "
                f"{expected_shape}; all frames in a stream must match"
            )
        return frame
