"""RAW codec: frames stored as uncompressed pixel arrays.

This is the paper's "RAW encoding (where every frame is an image)" baseline
that "rests at about 107 GB on disk" for the TrafficCam video. Lossless,
random access in O(1) by offset arithmetic, and enormous.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.errors import CodecError
from repro.storage.codecs.base import VideoCodec

_MAGIC = b"DLRAWV01"
_HEADER_FMT = ">8sIIII"  # magic, n_frames, height, width, channels
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


class RawCodec(VideoCodec):
    """Uncompressed frame-sequence codec."""

    name = "raw"
    lossy = False
    supports_random_access = True

    def encode_stream(self, frames: Iterable[np.ndarray]) -> bytes:
        chunks: list[bytes] = []
        shape = None
        count = 0
        for frame in frames:
            frame = self._validate_frame(frame, shape)
            shape = frame.shape
            chunks.append(np.ascontiguousarray(frame).tobytes())
            count += 1
        if shape is None:
            raise CodecError("cannot encode an empty frame stream")
        header = struct.pack(_HEADER_FMT, _MAGIC, count, *shape)
        return header + b"".join(chunks)

    def decode_stream(self, data: bytes) -> Iterator[np.ndarray]:
        count, shape, frame_size = self._parse_header(data)
        for index in range(count):
            yield self._frame_at(data, index, shape, frame_size)

    def decode_frame(self, data: bytes, index: int) -> np.ndarray:
        count, shape, frame_size = self._parse_header(data)
        if not 0 <= index < count:
            raise CodecError(f"frame index {index} out of range (0..{count - 1})")
        return self._frame_at(data, index, shape, frame_size)

    def frame_count(self, data: bytes) -> int:
        count, _, _ = self._parse_header(data)
        return count

    @staticmethod
    def _parse_header(data: bytes) -> tuple[int, tuple[int, int, int], int]:
        if len(data) < _HEADER_SIZE:
            raise CodecError("truncated RAW stream header")
        magic, count, height, width, channels = struct.unpack_from(_HEADER_FMT, data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad RAW stream magic {magic!r}")
        return count, (height, width, channels), height * width * channels

    @staticmethod
    def _frame_at(
        data: bytes, index: int, shape: tuple[int, int, int], frame_size: int
    ) -> np.ndarray:
        start = _HEADER_SIZE + index * frame_size
        payload = data[start : start + frame_size]
        if len(payload) != frame_size:
            raise CodecError(f"truncated RAW frame {index}")
        return np.frombuffer(payload, dtype=np.uint8).reshape(shape).copy()
