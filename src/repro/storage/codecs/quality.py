"""Quality presets for the lossy codecs.

The paper's Figure 2 compares "three levels of lossy encoding: High,
Medium, Low" against RAW. These presets pin the JPEG-style quality factors
used everywhere in this reproduction so benchmarks and tests agree on what
"High" means.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CodecError


@dataclass(frozen=True)
class QualityPreset:
    """A named lossy-encoding operating point."""

    name: str
    quality: int  # JPEG-style 1..100
    description: str


HIGH = QualityPreset(
    "high", 90, "visually lossless; negligible downstream accuracy impact"
)
MEDIUM = QualityPreset("medium", 50, "visible softening; mild accuracy impact")
LOW = QualityPreset("low", 10, "heavy quantization; measurable accuracy loss")

PRESETS = {preset.name: preset for preset in (HIGH, MEDIUM, LOW)}


def get_preset(name: str | QualityPreset) -> QualityPreset:
    """Resolve a preset by name (or pass one through)."""
    if isinstance(name, QualityPreset):
        return name
    try:
        return PRESETS[name.lower()]
    except KeyError:
        raise CodecError(
            f"unknown quality preset {name!r}; expected one of {sorted(PRESETS)}"
        ) from None
