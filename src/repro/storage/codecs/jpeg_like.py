"""JPEG-like intra-only codec.

Every frame is transform-coded independently (block DCT + quantization +
entropy coding), so the stream keeps per-frame random access — the property
that lets the Frame File push temporal predicates down (paper Figure 3:
"the JPEG and RAW formats can trivially support the push down
optimization"). The price is that inter-frame redundancy is never
exploited, so compression trails the sequential codec by a wide margin on
video.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.errors import CodecError
from repro.storage.codecs import blocks
from repro.storage.codecs.base import VideoCodec
from repro.storage.codecs.quality import QualityPreset, get_preset

_MAGIC = b"DLJPGV01"
_HEADER_FMT = ">8sIB"  # magic, n_frames, quality
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)


def encode_image(image: np.ndarray, quality: int) -> bytes:
    """Encode one uint8 RGB image (used directly by the PC image dataset)."""
    quant = blocks.quant_matrix(quality)
    parts = [struct.pack(">B", image.shape[2])]
    for channel in range(image.shape[2]):
        plane = image[:, :, channel].astype(np.float64) - 128.0
        parts.append(blocks.encode_plane(plane, quant))
    return b"".join(parts)


def decode_image(buf: bytes, quality: int) -> np.ndarray:
    """Inverse of :func:`encode_image`."""
    quant = blocks.quant_matrix(quality)
    (n_channels,) = struct.unpack_from(">B", buf, 0)
    pos = 1
    planes = []
    for _ in range(n_channels):
        plane, used = blocks.decode_plane(buf[pos:], quant)
        planes.append(np.clip(plane + 128.0, 0, 255).astype(np.uint8))
        pos += used
    return np.stack(planes, axis=2)


class JpegLikeCodec(VideoCodec):
    """Intra-only lossy codec with a frame offset table for random access."""

    name = "jpeg"
    lossy = True
    supports_random_access = True

    def __init__(self, quality: int | str | QualityPreset = "high") -> None:
        if isinstance(quality, int):
            self.quality = quality
        else:
            self.quality = get_preset(quality).quality

    def encode_stream(self, frames: Iterable[np.ndarray]) -> bytes:
        payloads: list[bytes] = []
        shape = None
        for frame in frames:
            frame = self._validate_frame(frame, shape)
            shape = frame.shape
            payloads.append(encode_image(frame, self.quality))
        if shape is None:
            raise CodecError("cannot encode an empty frame stream")
        header = struct.pack(_HEADER_FMT, _MAGIC, len(payloads), self.quality)
        offsets = []
        position = _HEADER_SIZE + 8 * len(payloads)
        for payload in payloads:
            offsets.append(position)
            position += len(payload)
        table = b"".join(struct.pack(">Q", offset) for offset in offsets)
        return header + table + b"".join(payloads)

    def decode_stream(self, data: bytes) -> Iterator[np.ndarray]:
        count, quality, offsets = self._parse_header(data)
        for index in range(count):
            end = offsets[index + 1] if index + 1 < count else len(data)
            yield decode_image(data[offsets[index] : end], quality)

    def decode_frame(self, data: bytes, index: int) -> np.ndarray:
        count, quality, offsets = self._parse_header(data)
        if not 0 <= index < count:
            raise CodecError(f"frame index {index} out of range (0..{count - 1})")
        end = offsets[index + 1] if index + 1 < count else len(data)
        return decode_image(data[offsets[index] : end], quality)

    def frame_count(self, data: bytes) -> int:
        count, _, _ = self._parse_header(data)
        return count

    @staticmethod
    def _parse_header(data: bytes) -> tuple[int, int, list[int]]:
        if len(data) < _HEADER_SIZE:
            raise CodecError("truncated JPEG-like stream header")
        magic, count, quality = struct.unpack_from(_HEADER_FMT, data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad JPEG-like stream magic {magic!r}")
        offsets = [
            struct.unpack_from(">Q", data, _HEADER_SIZE + 8 * i)[0]
            for i in range(count)
        ]
        return count, quality, offsets
