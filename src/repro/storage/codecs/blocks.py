"""Block-transform machinery shared by the lossy codecs.

The JPEG-like intra codec and the H.264-like inter codec both code 8x8
pixel blocks through the classic transform pipeline:

    blockify -> 2-D DCT -> quantize -> coefficient-major reorder -> zlib

Quantization is where the loss happens (and where the quality presets act);
the coefficient-major reorder groups the same frequency position across all
blocks so the long zero runs of high frequencies compress well — the same
role zig-zag + run-length coding plays in real JPEG/H.264 entropy coders.
"""

from __future__ import annotations

import struct
import zlib

import numpy as np
from scipy.fft import dctn, idctn

from repro.errors import CodecError

BLOCK = 8

# The ISO/IEC 10918-1 (JPEG) luminance quantization table; the de-facto
# reference for perceptually-weighted coefficient precision.
BASE_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quant_matrix(quality: int) -> np.ndarray:
    """JPEG-style quality (1..100) to quantization matrix scaling.

    Quality 50 is the base table; higher quality shrinks the steps
    (less loss), lower quality grows them (more loss, more compression).
    """
    if not 1 <= quality <= 100:
        raise CodecError(f"quality must be in 1..100, got {quality}")
    if quality < 50:
        scale = 5000.0 / quality
    else:
        scale = 200.0 - 2.0 * quality
    table = np.floor((BASE_QUANT * scale + 50.0) / 100.0)
    return np.clip(table, 1, 255)


def pad_to_blocks(channel: np.ndarray) -> np.ndarray:
    """Edge-pad a 2-D array so both dimensions are multiples of BLOCK."""
    height, width = channel.shape
    pad_h = (-height) % BLOCK
    pad_w = (-width) % BLOCK
    if pad_h == 0 and pad_w == 0:
        return channel
    return np.pad(channel, ((0, pad_h), (0, pad_w)), mode="edge")


def blockify(channel: np.ndarray) -> np.ndarray:
    """(H, W) -> (H//8 * W//8, 8, 8) without copying rows twice."""
    height, width = channel.shape
    if height % BLOCK or width % BLOCK:
        raise CodecError(f"blockify needs multiples of {BLOCK}, got {channel.shape}")
    tiles = channel.reshape(height // BLOCK, BLOCK, width // BLOCK, BLOCK)
    return tiles.transpose(0, 2, 1, 3).reshape(-1, BLOCK, BLOCK)


def unblockify(blocks: np.ndarray, height: int, width: int) -> np.ndarray:
    """Inverse of :func:`blockify` for a padded (height, width) canvas."""
    n_by, n_bx = height // BLOCK, width // BLOCK
    tiles = blocks.reshape(n_by, n_bx, BLOCK, BLOCK)
    return tiles.transpose(0, 2, 1, 3).reshape(height, width)


def encode_plane(plane: np.ndarray, quant: np.ndarray) -> bytes:
    """Transform-code one 2-D plane (pixel channel or residual).

    ``plane`` may be any integer-valued array (intra channels are shifted
    to be zero-centred by the caller; inter residuals already are).
    Returns a self-contained payload: original dims + zlib'd coefficients.
    """
    height, width = plane.shape
    padded = pad_to_blocks(np.asarray(plane, dtype=np.float64))
    blocks = blockify(padded)
    coeffs = dctn(blocks, axes=(1, 2), norm="ortho")
    quantized = np.round(coeffs / quant).astype(np.int16)
    # Coefficient-major layout: all blocks' (0,0), then all (0,1), ... so
    # the almost-always-zero high frequencies form megabyte-long zero runs.
    stream = np.ascontiguousarray(quantized.transpose(1, 2, 0)).tobytes()
    payload = zlib.compress(stream, 6)
    header = struct.pack(">III", height, width, len(payload))
    return header + payload


def decode_plane(buf: bytes, quant: np.ndarray) -> tuple[np.ndarray, int]:
    """Inverse of :func:`encode_plane`.

    Returns ``(plane, bytes_consumed)`` so callers can concatenate payloads.
    The plane comes back as float64 (still zero-centred for intra data).
    """
    if len(buf) < 12:
        raise CodecError("truncated plane payload")
    height, width, length = struct.unpack_from(">III", buf, 0)
    payload = buf[12 : 12 + length]
    if len(payload) != length:
        raise CodecError("short plane payload")
    stream = zlib.decompress(payload)
    padded_h = height + ((-height) % BLOCK)
    padded_w = width + ((-width) % BLOCK)
    n_blocks = (padded_h // BLOCK) * (padded_w // BLOCK)
    quantized = (
        np.frombuffer(stream, dtype=np.int16)
        .reshape(BLOCK, BLOCK, n_blocks)
        .transpose(2, 0, 1)
        .astype(np.float64)
    )
    coeffs = quantized * quant
    blocks = idctn(coeffs, axes=(1, 2), norm="ortho")
    plane = unblockify(blocks, padded_h, padded_w)[:height, :width]
    return plane, 12 + length


def psnr(reference: np.ndarray, reconstructed: np.ndarray) -> float:
    """Peak signal-to-noise ratio in dB between two uint8 images."""
    reference = np.asarray(reference, dtype=np.float64)
    reconstructed = np.asarray(reconstructed, dtype=np.float64)
    mse = float(np.mean((reference - reconstructed) ** 2))
    if mse == 0:
        return float("inf")
    return 10.0 * np.log10(255.0**2 / mse)
