"""H.264-like sequential inter-frame codec.

The stand-in for the paper's openh264 encoding. Structure:

* **YCbCr 4:2:0** — frames are transform-coded in luma/chroma space
  with chroma planes subsampled 2x in both axes, the same colour layout
  every production codec uses (half the coded samples, negligible
  perceptual and detection impact).
* **GOP layout** — every ``gop``-th frame is an I-frame (intra-coded like a
  JPEG); frames between are P-frames.
* **P-frames** code the *residual* against the decoder's reconstruction of
  the previous frame (the encoder runs its own decode loop so the two never
  drift). On CCTV-style video where the background barely changes, the
  residual is near-zero and compresses by orders of magnitude — this is
  where the paper's ~43x storage saving comes from.
* **Sequential decode** — a P-frame is meaningless without its
  predecessor, so decoding frame *k* requires decoding every frame from
  the preceding I-frame; this codec exposes no random access at all,
  matching the paper's observation that "the H.264 encoding cannot support
  a true filter push down as the codec algorithm is sequential".

The Segmented File regains coarse random access by cutting the video into
short clips and encoding each clip as its own stream.
"""

from __future__ import annotations

import struct
from typing import Iterable, Iterator

import numpy as np

from repro.errors import CodecError, RandomAccessUnsupportedError
from repro.storage.codecs import blocks
from repro.storage.codecs.base import VideoCodec
from repro.storage.codecs.quality import QualityPreset, get_preset

_MAGIC = b"DL264V01"
_HEADER_FMT = ">8sIBH"  # magic, n_frames, quality, gop
_HEADER_SIZE = struct.calcsize(_HEADER_FMT)
_FT_INTRA = 0x49  # 'I'
_FT_PREDICTED = 0x50  # 'P'


class H264LikeCodec(VideoCodec):
    """GOP-structured lossy codec with frame-differenced P-frames."""

    name = "h264"
    lossy = True
    supports_random_access = False

    def __init__(
        self, quality: int | str | QualityPreset = "high", gop: int = 30
    ) -> None:
        if isinstance(quality, int):
            self.quality = quality
        else:
            self.quality = get_preset(quality).quality
        if gop < 1:
            raise CodecError(f"GOP length must be >= 1, got {gop}")
        self.gop = gop

    # -- encoding ---------------------------------------------------------

    def encode_stream(self, frames: Iterable[np.ndarray]) -> bytes:
        quant = blocks.quant_matrix(self.quality)
        payloads: list[bytes] = []
        reconstruction: np.ndarray | None = None
        shape = None
        for index, frame in enumerate(frames):
            frame = self._validate_frame(frame, shape)
            shape = frame.shape
            if index % self.gop == 0 or reconstruction is None:
                payload, reconstruction = self._encode_intra(frame, quant)
                payloads.append(struct.pack(">BI", _FT_INTRA, len(payload)) + payload)
            else:
                payload, reconstruction = self._encode_predicted(
                    frame, reconstruction, quant
                )
                payloads.append(
                    struct.pack(">BI", _FT_PREDICTED, len(payload)) + payload
                )
        if shape is None:
            raise CodecError("cannot encode an empty frame stream")
        header = struct.pack(_HEADER_FMT, _MAGIC, len(payloads), self.quality, self.gop)
        return header + b"".join(payloads)

    def _encode_intra(
        self, frame: np.ndarray, quant: np.ndarray
    ) -> tuple[bytes, np.ndarray]:
        parts = []
        recon_planes = []
        for plane, subsampled in _to_planes(frame):
            payload = blocks.encode_plane(plane - 128.0, quant)
            parts.append(payload)
            decoded, _ = blocks.decode_plane(payload, quant)
            recon_planes.append((decoded + 128.0, subsampled))
        reconstruction = _from_planes(recon_planes, frame.shape)
        return b"".join(parts), reconstruction

    def _encode_predicted(
        self, frame: np.ndarray, previous: np.ndarray, quant: np.ndarray
    ) -> tuple[bytes, np.ndarray]:
        # SKIP blocks: an 8x8 block whose residual stays inside the
        # reference frame's reconstruction-noise band carries no signal —
        # zero it wholesale (whole blocks, unlike per-pixel clipping, add
        # no artificial edges for the DCT to encode). This is what keeps
        # static CCTV backgrounds nearly free in real codecs.
        deadzone = min(max(float(quant[0, 0]), 3.0), 8.0)
        parts = []
        recon_planes = []
        current = _to_planes(frame)
        reference = _to_planes(previous)
        for (plane, subsampled), (ref_plane, _) in zip(current, reference):
            residual = plane - ref_plane
            _skip_static_blocks(residual, deadzone)
            payload = blocks.encode_plane(residual, quant)
            parts.append(payload)
            decoded, _ = blocks.decode_plane(payload, quant)
            recon_planes.append((ref_plane + decoded, subsampled))
        reconstruction = _from_planes(recon_planes, frame.shape)
        return b"".join(parts), reconstruction

    # -- decoding ---------------------------------------------------------

    def decode_stream(self, data: bytes) -> Iterator[np.ndarray]:
        count, quality, _ = self._parse_header(data)
        quant = blocks.quant_matrix(quality)
        pos = _HEADER_SIZE
        previous: np.ndarray | None = None
        for index in range(count):
            if pos + 5 > len(data):
                raise CodecError(f"truncated stream at frame {index}")
            frame_type, length = struct.unpack_from(">BI", data, pos)
            pos += 5
            payload = data[pos : pos + length]
            pos += length
            if frame_type == _FT_INTRA:
                previous = self._decode_intra(payload, quant)
            elif frame_type == _FT_PREDICTED:
                if previous is None:
                    raise CodecError(f"P-frame {index} has no reference frame")
                previous = self._decode_predicted(payload, previous, quant)
            else:
                raise CodecError(f"unknown frame type 0x{frame_type:02x}")
            yield previous

    def decode_frame(self, data: bytes, index: int) -> np.ndarray:
        raise RandomAccessUnsupportedError(
            "the H.264-like codec is sequential: decoding frame "
            f"{index} requires scanning from the stream start; iterate "
            "decode_stream() or use the Segmented File layout instead"
        )

    def decode_prefix(self, data: bytes, upto: int) -> np.ndarray:
        """Decode frames 0..upto sequentially and return frame ``upto``.

        This is the honest cost of "random" access on a sequential codec;
        the push-down benchmark (Figure 3) calls it to show the scan price.
        """
        last = None
        for index, frame in enumerate(self.decode_stream(data)):
            last = frame
            if index == upto:
                return frame
        if last is None:
            raise CodecError("empty stream")
        raise CodecError(f"frame index {upto} beyond stream end")

    def frame_count(self, data: bytes) -> int:
        count, _, _ = self._parse_header(data)
        return count

    @staticmethod
    def _decode_intra(payload: bytes, quant: np.ndarray) -> np.ndarray:
        planes = []
        pos = 0
        for index in range(3):
            plane, used = blocks.decode_plane(payload[pos:], quant)
            planes.append((plane + 128.0, index > 0))
            pos += used
        height, width = planes[0][0].shape
        return _from_planes(planes, (height, width, 3))

    @staticmethod
    def _decode_predicted(
        payload: bytes, previous: np.ndarray, quant: np.ndarray
    ) -> np.ndarray:
        reference = _to_planes(previous)
        planes = []
        pos = 0
        for (ref_plane, subsampled) in reference:
            residual, used = blocks.decode_plane(payload[pos:], quant)
            planes.append((ref_plane + residual, subsampled))
            pos += used
        return _from_planes(planes, previous.shape)

    @staticmethod
    def _parse_header(data: bytes) -> tuple[int, int, int]:
        if len(data) < _HEADER_SIZE:
            raise CodecError("truncated H.264-like stream header")
        magic, count, quality, gop = struct.unpack_from(_HEADER_FMT, data, 0)
        if magic != _MAGIC:
            raise CodecError(f"bad H.264-like stream magic {magic!r}")
        return count, quality, gop


def _rgb_to_ycbcr(frame: np.ndarray) -> np.ndarray:
    pixels = frame.astype(np.float64)
    red, green, blue = pixels[:, :, 0], pixels[:, :, 1], pixels[:, :, 2]
    luma = 0.299 * red + 0.587 * green + 0.114 * blue
    cb = 128.0 + 0.564 * (blue - luma)
    cr = 128.0 + 0.713 * (red - luma)
    return np.stack([luma, cb, cr], axis=2)


def _ycbcr_to_rgb(ycbcr: np.ndarray) -> np.ndarray:
    luma, cb, cr = ycbcr[:, :, 0], ycbcr[:, :, 1] - 128.0, ycbcr[:, :, 2] - 128.0
    red = luma + 1.403 * cr
    green = luma - 0.344 * cb - 0.714 * cr
    blue = luma + 1.773 * cb
    return np.clip(np.stack([red, green, blue], axis=2), 0, 255).astype(np.uint8)


def _downsample2(plane: np.ndarray) -> np.ndarray:
    height, width = plane.shape
    padded = plane
    if height % 2 or width % 2:
        padded = np.pad(plane, ((0, height % 2), (0, width % 2)), mode="edge")
    tiles = padded.reshape(padded.shape[0] // 2, 2, padded.shape[1] // 2, 2)
    return tiles.mean(axis=(1, 3))


def _upsample2(plane: np.ndarray, height: int, width: int) -> np.ndarray:
    return np.repeat(np.repeat(plane, 2, axis=0), 2, axis=1)[:height, :width]


def _to_planes(frame: np.ndarray) -> list[tuple[np.ndarray, bool]]:
    """RGB frame -> [(Y, False), (Cb half-res, True), (Cr half-res, True)]."""
    ycbcr = _rgb_to_ycbcr(frame)
    return [
        (ycbcr[:, :, 0], False),
        (_downsample2(ycbcr[:, :, 1]), True),
        (_downsample2(ycbcr[:, :, 2]), True),
    ]


def _from_planes(
    planes: list[tuple[np.ndarray, bool]], shape: tuple[int, ...]
) -> np.ndarray:
    height, width = shape[0], shape[1]
    full = [
        _upsample2(plane, height, width) if subsampled else plane[:height, :width]
        for plane, subsampled in planes
    ]
    return _ycbcr_to_rgb(np.stack(full, axis=2))


def _skip_static_blocks(residual: np.ndarray, deadzone: float) -> None:
    """Zero whole 8x8 blocks whose residual stays inside the noise band."""
    height8 = residual.shape[0] // blocks.BLOCK * blocks.BLOCK
    width8 = residual.shape[1] // blocks.BLOCK * blocks.BLOCK
    if height8 == 0 or width8 == 0:
        return
    core = residual[:height8, :width8]
    tiles = core.reshape(
        height8 // blocks.BLOCK, blocks.BLOCK, width8 // blocks.BLOCK, blocks.BLOCK
    )
    # RMS (not max) so an isolated reference-noise spike cannot force a
    # whole block to be re-coded; coherent motion lifts RMS far above the
    # noise band, so moving content always codes through
    energy = np.sqrt((tiles**2).mean(axis=(1, 3)))  # (n_by, n_bx)
    static = energy <= deadzone
    pixel_mask = np.kron(static, np.ones((blocks.BLOCK, blocks.BLOCK), dtype=bool))
    residual[:height8, :width8] = np.where(pixel_mask, 0.0, core)
