"""Rollback commit journal: atomic multi-file catalog mutations.

The catalog mutates four files together — the pager (``catalog.db``), the
patch blob heap (``patches.heap``), the metadata segment heap
(``metadata.seg``), and through the pager every B+-tree — and a crash
between any two of those writes used to leave them mutually inconsistent.
The :class:`CommitJournal` makes the group atomic with the classic
rollback-journal protocol (the SQLite design, fitted to our mix of
update-in-place and append-only files):

1. **Begin** — lazily, at the first mutating write of a transaction, a
   BEGIN record snapshots the pre-state that cannot be reconstructed
   afterwards: the pager's raw header bytes and page count, and each
   append-only heap's end offset. The record is CRC-framed and fsynced
   before any data file is touched.
2. **Journal before-images** — before an existing pager page is
   overwritten *on disk* (write-through or sync), its current on-disk
   image is appended to the journal and the journal is synced: the
   write-ahead rule. Pages allocated after BEGIN need no image — rollback
   truncates them away. Append-only heaps need no images at all — their
   pre-state is just the recorded end offset.
3. **Commit** — after every data file is flushed/fsynced, the journal is
   truncated back to its header and synced. The truncation is the commit
   point: an empty journal means "everything on disk is committed".
4. **Recover** — on open, a non-empty journal means a crash mid-commit.
   Every CRC-valid before-image is written back, the pager header is
   restored, the pager file and each heap are truncated to their recorded
   pre-sizes, data files are fsynced, and the journal is truncated. The
   procedure is idempotent: a crash during recovery just recovers again.

A torn tail record is safe by construction: records are CRC-framed, and the
write-ahead rule means a before-image that never fully reached the journal
belongs to an overwrite that never happened.

Thread-safety: ``ensure_active``/``record_page`` are called from worker
threads (UDF cache spills append blobs and insert tree keys mid-query), so
all journal state lives behind one re-entrant lock, with a lock-free fast
path for the common "transaction already active" case.
"""

from __future__ import annotations

import os
import struct
import threading
import zlib

from repro.errors import StorageError
from repro.storage.faultfs import OS_OPS
from repro.storage.kvstore import serialization

MAGIC = b"DLJN0001"
_HEADER_SIZE = 16
_REC_FRAME = ">BI"  # record type, payload length
_REC_FRAME_SIZE = struct.calcsize(_REC_FRAME)
_CRC_SIZE = 4
_TYPE_BEGIN = 0x42  # 'B'
_TYPE_PAGE = 0x50  # 'P'


class CommitJournal:
    """Write-ahead rollback journal for one catalog directory.

    Parameters
    ----------
    path:
        The ``journal.log`` file.
    durability:
        ``"fsync"`` fsyncs the journal at every barrier; ``"flush"``
        only flushes (fast, survives process death but not power loss).
    fs:
        A :class:`~repro.storage.faultfs.FileOps`; tests inject faults here.
    metrics:
        Optional :class:`~repro.core.metrics.MetricsRegistry`.
    """

    def __init__(
        self,
        path: str | os.PathLike,
        *,
        durability: str = "fsync",
        fs=None,
        metrics=None,
    ) -> None:
        self.path = os.fspath(path)
        self.durability = durability
        self._fs = fs if fs is not None else OS_OPS
        if metrics is None:
            # runtime import: repro.core imports the storage package at load
            from repro.core.metrics import NULL_REGISTRY

            metrics = NULL_REGISTRY
        self._metric_commits = metrics.counter(
            "deeplens_journal_commits_total", "journaled commits completed"
        )
        self._metric_pages = metrics.counter(
            "deeplens_journal_page_images_total",
            "page before-images written to the journal",
        )
        self._lock = threading.RLock()
        self._provider = None
        self._active = False
        self._pre_page_count = 0
        self._pages: set[int] = set()
        self._closed = False
        exists = os.path.exists(self.path) and os.path.getsize(self.path) > 0
        self._file = self._fs.open(self.path, "r+b" if exists else "w+b")
        if not exists:
            self._file.write(MAGIC.ljust(_HEADER_SIZE, b"\x00"))
            self._fs.sync_file(self._file, self.durability)

    # -- wiring ---------------------------------------------------------

    def register_begin_provider(self, provider) -> None:
        """``provider()`` must return the BEGIN snapshot dict: ``op``,
        ``pager`` (basename), ``page_size``, ``pre_page_count``,
        ``header`` (raw bytes), and ``heap_ends`` ({basename: offset}).

        It is called with no journal/pager/heap locks held beyond the
        journal's own, so it must read component state lock-free.
        """
        self._provider = provider

    @property
    def active(self) -> bool:
        return self._active

    # -- transaction protocol -------------------------------------------

    def ensure_active(self) -> None:
        """Open a transaction (write + sync the BEGIN record) if none is.

        Called by ``Pager.write`` and ``BlobHeap.put`` before their first
        mutation; a plain-attribute fast path keeps the per-write cost of
        an already-open transaction to one attribute read.
        """
        if self._active or self._provider is None:
            return
        with self._lock:
            if self._active or self._closed:
                return
            state = self._provider()
            payload = serialization.dumps(state, compress_arrays=False)
            self._append_record(_TYPE_BEGIN, payload)
            self._fs.sync_file(self._file, self.durability)
            self._pre_page_count = int(state["pre_page_count"])
            self._pages = set()
            self._active = True

    def needs_page(self, page_id: int) -> bool:
        """True if ``page_id``'s on-disk image must be journaled before an
        overwrite: a page that existed at BEGIN and has no image yet."""
        return (
            self._active
            and page_id < self._pre_page_count
            and page_id not in self._pages
        )

    def record_page(self, page_id: int, image: bytes, *, sync: bool = True) -> None:
        """Append one before-image; syncs by default (write-ahead rule)."""
        with self._lock:
            if not self.needs_page(page_id):
                return
            self._append_record(
                _TYPE_PAGE, struct.pack(">Q", page_id) + bytes(image)
            )
            self._pages.add(page_id)
            self._metric_pages.inc()
            if sync:
                self._fs.sync_file(self._file, self.durability)

    def record_pages(self, pages) -> None:
        """Append many before-images with a single sync barrier at the end
        (the batched path ``Pager.sync`` uses before its write-back)."""
        with self._lock:
            wrote = False
            for page_id, image in pages:
                if not self.needs_page(page_id):
                    continue
                self._append_record(
                    _TYPE_PAGE, struct.pack(">Q", page_id) + bytes(image)
                )
                self._pages.add(page_id)
                self._metric_pages.inc()
                wrote = True
            if wrote:
                self._fs.sync_file(self._file, self.durability)

    def commit(self) -> None:
        """Mark the transaction committed by truncating the journal.

        Callers must have already synced every data file: the truncation
        is the commit point, so nothing it 'commits' may still be sitting
        in a volatile buffer.
        """
        with self._lock:
            if self._closed:
                return
            if self._active or self._file_size() > _HEADER_SIZE:
                self._file.truncate(_HEADER_SIZE)
                self._fs.sync_file(self._file, self.durability)
                self._metric_commits.inc()
            self._active = False
            self._pages = set()

    def close(self) -> None:
        with self._lock:
            if self._closed:
                return
            self._file.close()
            self._closed = True

    # -- recovery -------------------------------------------------------

    def recover(self) -> dict | None:
        """Roll back a half-applied transaction left by a crash.

        Returns a report dict when a rollback happened (``op``,
        ``pages_restored``, ``heaps_truncated``, ``pager_truncated``) or
        ``None`` when the journal was already empty. Must run before the
        pager/heaps are opened — it rewrites their files directly.
        """
        with self._lock:
            begin, images = self._scan()
            if begin is None:
                # nothing journaled (or garbage with no valid BEGIN —
                # nothing actionable either way): just clear the file
                if self._file_size() > _HEADER_SIZE:
                    self._file.truncate(_HEADER_SIZE)
                    self._fs.sync_file(self._file, self.durability)
                return None
            directory = os.path.dirname(self.path)
            report = {
                "op": begin.get("op", "unknown"),
                "pages_restored": 0,
                "heaps_truncated": {},
                "pager_truncated": False,
            }
            pager_path = os.path.join(directory, begin["pager"])
            page_size = int(begin["page_size"])
            pre_pages = int(begin["pre_page_count"])
            if os.path.exists(pager_path):
                with self._fs.open(pager_path, "r+b") as file:
                    for page_id, image in images.items():
                        file.seek(page_id * page_size)
                        file.write(bytes(image).ljust(page_size, b"\x00"))
                        report["pages_restored"] += 1
                    file.seek(0)
                    file.write(bytes(begin["header"]))
                    file.flush()
                    target = pre_pages * page_size
                    file.seek(0, os.SEEK_END)
                    if file.tell() > target:
                        file.truncate(target)
                        report["pager_truncated"] = True
                    self._fs.sync_file(file, self.durability)
            for name, end in dict(begin.get("heap_ends", {})).items():
                heap_path = os.path.join(directory, name)
                end = int(end)
                if (
                    os.path.exists(heap_path)
                    and os.path.getsize(heap_path) > end
                ):
                    with self._fs.open(heap_path, "r+b") as file:
                        file.truncate(end)
                        self._fs.sync_file(file, self.durability)
                    report["heaps_truncated"][name] = end
            # data files restored and durable -> retire the journal; a
            # crash anywhere above simply reruns this (idempotent)
            self._file.truncate(_HEADER_SIZE)
            self._fs.sync_file(self._file, self.durability)
            self._active = False
            self._pages = set()
            return report

    # -- internals ------------------------------------------------------

    def _append_record(self, rec_type: int, payload: bytes) -> None:
        frame = struct.pack(_REC_FRAME, rec_type, len(payload)) + payload
        self._file.seek(0, os.SEEK_END)
        self._file.write(frame + struct.pack(">I", zlib.crc32(frame)))

    def _file_size(self) -> int:
        self._file.seek(0, os.SEEK_END)
        return self._file.tell()

    def _scan(self):
        """Parse the journal: the first valid BEGIN plus the first valid
        before-image per page. Stops at the first invalid/torn record."""
        self._file.seek(0)
        data = self._file.read()
        begin = None
        images: dict[int, bytes] = {}
        pos = _HEADER_SIZE
        # a torn *header* still gets a scan: record CRCs, not the magic,
        # decide what is trustworthy
        while pos + _REC_FRAME_SIZE + _CRC_SIZE <= len(data):
            rec_type, length = struct.unpack_from(_REC_FRAME, data, pos)
            end = pos + _REC_FRAME_SIZE + length
            if end + _CRC_SIZE > len(data):
                break  # torn tail
            (crc,) = struct.unpack_from(">I", data, end)
            if zlib.crc32(data[pos:end]) != crc:
                break  # torn or bit-flipped record: stop trusting the tail
            payload = data[pos + _REC_FRAME_SIZE : end]
            if rec_type == _TYPE_BEGIN and begin is None:
                try:
                    begin = serialization.loads(payload)
                except (StorageError, ValueError, KeyError):
                    break
            elif rec_type == _TYPE_PAGE and begin is not None:
                (page_id,) = struct.unpack_from(">Q", payload, 0)
                images.setdefault(page_id, payload[8:])
            pos = end + _CRC_SIZE
        return begin, images
