"""The loading API (Section 3.1).

    Load(filename, filter=True)

"Videos are loaded into the system returning an iterator that returns a
patch collection where each patch is a full video frame ... The loader can
take a filter as an optional argument and it only returns those frames
that satisfy the filter condition. The loader abstracts the encoding
scheme of the underlying video from the user."

:func:`load_patches` analyzes the filter: conjuncts on ``frameno`` become
scan bounds — *pushed down* into the store when its layout supports it,
otherwise the store's scan pays its sequential price — and every other
conjunct is applied as a residual filter on the decoded frames.
"""

from __future__ import annotations

import os
from typing import Iterator

from repro.core.expressions import Expr, extract_bounds
from repro.core.patch import Patch
from repro.errors import StorageError
from repro.storage.formats.base import VideoStore
from repro.storage.formats.encoded_file import EncodedFile
from repro.storage.formats.frame_file import FrameFile
from repro.storage.formats.segmented_file import SegmentedFile

#: layout name -> constructor; the session's ``ingest_video`` menu
LAYOUTS = {
    "frame-raw": lambda directory, name, **kw: FrameFile(
        directory, name, codec="raw", **kw
    ),
    "frame-jpeg": lambda directory, name, **kw: FrameFile(
        directory, name, codec="jpeg", **kw
    ),
    "encoded": EncodedFile,
    "segmented": SegmentedFile,
}


def open_store(
    layout: str, directory: str | os.PathLike, name: str, **kwargs
) -> VideoStore:
    """Construct a video store by layout name."""
    try:
        factory = LAYOUTS[layout]
    except KeyError:
        raise StorageError(
            f"unknown layout {layout!r}; expected one of {sorted(LAYOUTS)}"
        ) from None
    return factory(directory, name, **kwargs)


def load_patches(
    store: VideoStore,
    source: str | None = None,
    filter: Expr | None = None,
) -> Iterator[Patch]:
    """Iterate whole-frame patches, pushing temporal bounds into the store.

    The returned patches carry ``source`` and ``frameno`` metadata and a
    one-step lineage chain, ready for the ETL layer.
    """
    source = source or store.name
    lo, hi, residual = extract_bounds(filter, "frameno")
    for frameno, pixels in store.scan(lo, hi):
        patch = Patch.from_frame(source, frameno, pixels)
        if residual is None or residual.evaluate(patch):
            yield patch
