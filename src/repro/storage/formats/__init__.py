"""Physical video layouts (Section 3.1) and the loading API."""

from repro.storage.formats.base import VideoStore
from repro.storage.formats.encoded_file import EncodedFile
from repro.storage.formats.frame_file import FrameFile
from repro.storage.formats.loader import LAYOUTS, load_patches, open_store
from repro.storage.formats.segmented_file import SegmentedFile

__all__ = [
    "LAYOUTS",
    "EncodedFile",
    "FrameFile",
    "SegmentedFile",
    "VideoStore",
    "load_patches",
    "open_store",
]
