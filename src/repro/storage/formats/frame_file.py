"""Frame File layout (Section 3.1).

"In the most basic format, we treat each frame of a video as a single
record ... stored in a sorted file by frame number ... The sorted file
allows for quick retrieval of temporal predicates. The advantage of the
Frame File is a temporal filter push down; the disadvantage is that it can
require significantly more storage."

Frames live as independent records — raw pixels or JPEG-like intra-coded —
in a blob heap, indexed by a B+ tree on frame number (the BerkeleyDB role).
Every frame decodes independently, so ``scan(lo, hi)`` touches exactly the
requested range.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.codecs import decode_image, encode_image
from repro.storage.codecs.quality import QualityPreset, get_preset
from repro.storage.formats.base import VideoStore
from repro.storage.kvstore import BlobHeap, BlobRef, BPlusTree, Pager
from repro.storage.kvstore import serialization


class FrameFile(VideoStore):
    """Per-frame records with a frame-number B+ tree."""

    layout = "frame"
    supports_pushdown = True

    def __init__(
        self,
        directory: str | os.PathLike,
        name: str,
        *,
        codec: str = "raw",
        quality: int | str | QualityPreset = "high",
    ) -> None:
        super().__init__(name)
        if codec not in ("raw", "jpeg"):
            raise StorageError(
                f"FrameFile codec must be 'raw' or 'jpeg' (frame-independent), "
                f"got {codec!r}"
            )
        self.codec = codec
        self.quality = quality if isinstance(quality, int) else get_preset(quality).quality
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        self._pager = Pager(os.path.join(directory, f"{name}.frames.idx"))
        self._heap = BlobHeap(os.path.join(directory, f"{name}.frames.heap"))
        self._tree = BPlusTree(self._pager, "frames", unique=True)
        meta = self._pager.get_meta()
        stored = meta.get("framefile")
        if stored is not None:
            if stored["codec"] != self.codec:
                raise StorageError(
                    f"FrameFile {name!r} was created with codec "
                    f"{stored['codec']!r}, not {self.codec!r}"
                )
            self.quality = stored["quality"]
        else:
            meta["framefile"] = {"codec": self.codec, "quality": self.quality}
            self._pager.set_meta(meta)

    # -- writes ---------------------------------------------------------

    def append(self, frame: np.ndarray) -> int:
        frameno = self.n_frames
        if self.codec == "raw":
            payload = serialization.dumps(
                np.ascontiguousarray(frame), compress_arrays=False
            )
            ref = self._heap.put(payload, compress=False)
        else:
            payload = encode_image(frame, self.quality)
            ref = self._heap.put(payload, compress=False)
        self._tree.insert(
            frameno, serialization.dumps(list(ref.to_tuple()), compress_arrays=False)
        )
        return frameno

    # -- reads ----------------------------------------------------------

    def scan(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        lo, hi = self._check_range(lo, hi)
        for frameno, payload in self._tree.range(lo, hi):
            yield frameno, self._decode(payload)

    def get_frame(self, frameno: int) -> np.ndarray:
        values = self._tree.get(frameno)
        if not values:
            raise StorageError(f"frame {frameno} not in FrameFile {self.name!r}")
        return self._decode(values[0])

    def _decode(self, payload: bytes) -> np.ndarray:
        ref = BlobRef.from_tuple(tuple(serialization.loads(payload)))
        blob = self._heap.get(ref)
        if self.codec == "raw":
            return serialization.loads(blob)
        return decode_image(blob, self.quality)

    @property
    def n_frames(self) -> int:
        return len(self._tree)

    @property
    def size_bytes(self) -> int:
        return self._heap.size_bytes + os.path.getsize(self._pager.path)

    def close(self) -> None:
        self._pager.close()
        self._heap.close()
