"""Segmented File layout (Section 3.1).

"As a hybrid between the Frame File and the Encoded File, we have the
Segmented File. This storage format segments the video into short clips
and stores the encoded clips in BerkeleyDB. We can benefit from
coarse-grained temporal filter push down, while having some benefits of
encoding."

Each ``clip_len``-frame run is encoded as its own H.264-like stream and
stored in a blob heap keyed by clip number. ``scan(lo, hi)`` decodes only
the clips that overlap the range — coarse-grained push-down whose
granularity/storage trade-off Figure 3 sweeps.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import StorageError
from repro.storage.codecs import H264LikeCodec
from repro.storage.codecs.quality import QualityPreset
from repro.storage.formats.base import VideoStore
from repro.storage.kvstore import BlobHeap, BlobRef, BPlusTree, Pager
from repro.storage.kvstore import serialization


class SegmentedFile(VideoStore):
    """Short encoded clips bucketed by time."""

    layout = "segmented"
    supports_pushdown = True  # coarse-grained: clip resolution

    def __init__(
        self,
        directory: str | os.PathLike,
        name: str,
        *,
        clip_len: int = 32,
        quality: int | str | QualityPreset = "high",
        gop: int | None = None,
    ) -> None:
        super().__init__(name)
        if clip_len < 1:
            raise StorageError(f"clip_len must be >= 1, got {clip_len}")
        self.clip_len = clip_len
        # within a clip every frame but the first is predicted, so the GOP
        # is the clip unless the caller wants intra refreshes
        self.codec = H264LikeCodec(quality=quality, gop=gop or clip_len)
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        self._pager = Pager(os.path.join(directory, f"{name}.clips.idx"))
        self._heap = BlobHeap(os.path.join(directory, f"{name}.clips.heap"))
        self._tree = BPlusTree(self._pager, "clips", unique=True)
        meta = self._pager.get_meta()
        stored = meta.get("segmented")
        if stored is not None:
            self.clip_len = stored["clip_len"]
            self._count = stored["n_frames"]
        else:
            self._count = 0
            self._save_meta()
        self._pending: list[np.ndarray] = []

    def _save_meta(self) -> None:
        meta = self._pager.get_meta()
        meta["segmented"] = {"clip_len": self.clip_len, "n_frames": self._count}
        self._pager.set_meta(meta)

    # -- writes ---------------------------------------------------------

    def append(self, frame: np.ndarray) -> int:
        frameno = self._count + len(self._pending)
        self._pending.append(np.asarray(frame))
        if len(self._pending) == self.clip_len:
            self._flush_clip()
        return frameno

    def finalize(self) -> None:
        if self._pending:
            self._flush_clip()
        self._pager.sync()

    def _flush_clip(self) -> None:
        clip_id = self._count // self.clip_len
        stream = self.codec.encode_stream(self._pending)
        ref = self._heap.put(stream, compress=False)
        self._tree.insert(
            clip_id,
            serialization.dumps(
                [list(ref.to_tuple()), len(self._pending)], compress_arrays=False
            ),
        )
        self._count += len(self._pending)
        self._pending = []
        self._save_meta()

    # -- reads ----------------------------------------------------------

    def scan(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        lo, hi = self._check_range(lo, hi)
        first_clip = lo // self.clip_len
        last_clip = hi // self.clip_len
        for clip_id, payload in self._tree.range(first_clip, last_clip):
            ref_value, clip_frames = serialization.loads(payload)
            stream = self._heap.get(BlobRef.from_tuple(tuple(ref_value)))
            base = clip_id * self.clip_len
            for offset, frame in enumerate(self.codec.decode_stream(stream)):
                frameno = base + offset
                if frameno > hi:
                    break
                if frameno >= lo:
                    yield frameno, frame

    def get_frame(self, frameno: int) -> np.ndarray:
        """Coarse random access: decode the containing clip up to the frame."""
        if not 0 <= frameno < self.n_frames:
            raise StorageError(
                f"frame {frameno} not in SegmentedFile {self.name!r} "
                f"(0..{self.n_frames - 1})"
            )
        for _, frame in self.scan(frameno, frameno):
            return frame
        raise StorageError(f"frame {frameno} missing from clip index")

    @property
    def n_frames(self) -> int:
        return self._count + len(self._pending)

    @property
    def size_bytes(self) -> int:
        return self._heap.size_bytes + os.path.getsize(self._pager.path)

    def close(self) -> None:
        if self._pending:
            self._flush_clip()
        self._pager.close()
        self._heap.close()
