"""Encoded File layout (Section 3.1).

"We also support storing video in common encoded formats ... The tradeoff
is that encoding precludes pushing down temporal predicates since many
encoding formats require a sequential decoding procedure."

The whole video is one H.264-like stream on disk. ``scan(lo, hi)`` still
accepts bounds, but it must decode every frame from the stream start up to
``hi`` — the honest cost Figure 3 measures. ``get_frame`` refuses random
access outright, mirroring the codec.
"""

from __future__ import annotations

import os
from typing import Iterator

import numpy as np

from repro.errors import RandomAccessUnsupportedError, StorageError
from repro.storage.codecs import H264LikeCodec
from repro.storage.codecs.quality import QualityPreset
from repro.storage.formats.base import VideoStore


class EncodedFile(VideoStore):
    """One sequential encoded stream per video."""

    layout = "encoded"
    supports_pushdown = False

    def __init__(
        self,
        directory: str | os.PathLike,
        name: str,
        *,
        quality: int | str | QualityPreset = "high",
        gop: int = 30,
    ) -> None:
        super().__init__(name)
        directory = os.fspath(directory)
        os.makedirs(directory, exist_ok=True)
        self.path = os.path.join(directory, f"{name}.h264sim")
        self.codec = H264LikeCodec(quality=quality, gop=gop)
        self._pending: list[np.ndarray] = []
        self._stream: bytes | None = None
        if os.path.exists(self.path) and os.path.getsize(self.path) > 0:
            with open(self.path, "rb") as handle:
                self._stream = handle.read()

    # -- writes ---------------------------------------------------------

    def append(self, frame: np.ndarray) -> int:
        if self._stream is not None:
            raise StorageError(
                f"EncodedFile {self.name!r} is already finalized; sequential "
                f"streams cannot be appended to"
            )
        self._pending.append(np.asarray(frame))
        return len(self._pending) - 1

    def finalize(self) -> None:
        if self._stream is not None:
            return
        if not self._pending:
            raise StorageError(f"EncodedFile {self.name!r} has no frames to encode")
        self._stream = self.codec.encode_stream(self._pending)
        with open(self.path, "wb") as handle:
            handle.write(self._stream)
        self._pending = []

    # -- reads ----------------------------------------------------------

    def scan(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        lo, hi = self._check_range(lo, hi)
        # Sequential decode from frame 0 regardless of lo: the stream offers
        # no entry point, so the scan price includes the whole prefix.
        for frameno, frame in enumerate(self.codec.decode_stream(self._require())):
            if frameno > hi:
                return
            if frameno >= lo:
                yield frameno, frame

    def get_frame(self, frameno: int) -> np.ndarray:
        raise RandomAccessUnsupportedError(
            f"EncodedFile {self.name!r} is a sequential stream; frame "
            f"{frameno} is only reachable by scanning — use scan() or a "
            f"Segmented File layout"
        )

    @property
    def n_frames(self) -> int:
        if self._stream is not None:
            return self.codec.frame_count(self._stream)
        return len(self._pending)

    @property
    def size_bytes(self) -> int:
        return len(self._require())

    def _require(self) -> bytes:
        if self._stream is None:
            raise StorageError(
                f"EncodedFile {self.name!r} not finalized; call ingest() or "
                f"finalize() first"
            )
        return self._stream
