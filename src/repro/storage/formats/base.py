"""Video-store interface shared by the three physical layouts (Section 3.1).

A store holds one ingested video and exposes:

* ``append`` / ``ingest`` — write frames in order;
* ``scan(lo, hi)`` — iterate ``(frameno, pixels)``; whether the range
  bounds actually *prune work* is the layout's defining property
  (``supports_pushdown``);
* ``get_frame`` — random access where the layout allows it;
* ``size_bytes`` — the on-disk footprint Figure 2 compares.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

import numpy as np

from repro.errors import StorageError


class VideoStore(ABC):
    """One video under one physical layout."""

    layout: str = "abstract"
    #: True when scan(lo, hi) prunes decoding work to the requested range
    supports_pushdown: bool = False

    def __init__(self, name: str) -> None:
        self.name = name

    @abstractmethod
    def append(self, frame: np.ndarray) -> int:
        """Store the next frame; returns its frame number."""

    def ingest(self, frames: Iterable[np.ndarray]) -> int:
        """Append every frame; returns the number ingested."""
        count = 0
        for frame in frames:
            self.append(frame)
            count += 1
        self.finalize()
        return count

    def finalize(self) -> None:
        """Hook for layouts that buffer until ingestion completes."""

    @abstractmethod
    def scan(
        self, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, np.ndarray]]:
        """Yield ``(frameno, pixels)`` for frames in ``[lo, hi]``."""

    @abstractmethod
    def get_frame(self, frameno: int) -> np.ndarray:
        """Random access to one frame (layout permitting)."""

    @property
    @abstractmethod
    def n_frames(self) -> int:
        """Frames stored so far."""

    @property
    @abstractmethod
    def size_bytes(self) -> int:
        """On-disk footprint."""

    def close(self) -> None:
        """Release file handles."""

    def __enter__(self) -> "VideoStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _check_range(self, lo: int | None, hi: int | None) -> tuple[int, int]:
        count = self.n_frames
        if count == 0:
            raise StorageError(f"video store {self.name!r} is empty")
        lo = 0 if lo is None else max(int(lo), 0)
        hi = count - 1 if hi is None else min(int(hi), count - 1)
        return lo, hi
