"""Tuple-level lineage (Section 5.1).

"DeepLens natively tracks tuple-level lineage. Every Patch object
maintains a descriptor how it was generated from either a raw image or
another patch ... This information is stored as attributes in the metadata
key-value dictionary so indexes and queries can be natively supported on
them."

The :class:`LineageStore` adds the *indexes* over that information:

* a **base index**: ``(source, frame) -> patch ids`` — the backtracing
  query "select all raw images that contributed to a patch", inverted, so
  two derived collections can be related through their shared base frames
  without rescanning base data (q3's 41x win in Figure 4);
* a **parent index**: ``parent patch id -> child patch ids`` — forward
  traversal of derivations.
"""

from __future__ import annotations

import struct
from typing import Iterator

from repro.core.patch import Patch
from repro.errors import LineageError
from repro.storage.kvstore import BPlusTree, Pager


def _pack_id(patch_id: int) -> bytes:
    return struct.pack(">q", patch_id)


def _unpack_id(payload: bytes) -> int:
    return struct.unpack(">q", payload)[0]


class LineageStore:
    """Persistent lineage indexes over materialized patches."""

    def __init__(self, pager: Pager) -> None:
        self._base = BPlusTree(pager, "lineage:base", unique=False)
        self._parent = BPlusTree(pager, "lineage:parent", unique=False)

    def record(self, patch: Patch) -> None:
        """Register one materialized patch (must have a patch_id)."""
        if patch.patch_id is None:
            raise LineageError("cannot record lineage for an unmaterialized patch")
        source, frame = patch.base_ref()
        self._base.insert((source, -1 if frame is None else frame), _pack_id(patch.patch_id))
        if patch.img_ref.parent_id is not None:
            self._parent.insert(patch.img_ref.parent_id, _pack_id(patch.patch_id))

    # -- queries ------------------------------------------------------------

    def patches_from_base(self, source: str, frame: int | None) -> list[int]:
        """Every materialized patch derived from one base image/frame."""
        key = (source, -1 if frame is None else frame)
        return [_unpack_id(v) for v in self._base.get(key)]

    def patches_from_source(
        self, source: str, lo: int | None = None, hi: int | None = None
    ) -> Iterator[tuple[int, int]]:
        """(frame, patch_id) for a source, optionally bounded by frame range."""
        lo_key = (source, -1 if lo is None else lo)
        hi_key = (source, 2**52 if hi is None else hi)
        for (_, frame), payload in self._base.range(lo_key, hi_key):
            yield frame, _unpack_id(payload)

    def children(self, patch_id: int) -> list[int]:
        """Patches directly derived from ``patch_id``."""
        return [_unpack_id(v) for v in self._parent.get(patch_id)]

    def descendants(self, patch_id: int) -> list[int]:
        """Transitive closure of :meth:`children`."""
        out: list[int] = []
        frontier = [patch_id]
        seen = {patch_id}
        while frontier:
            current = frontier.pop()
            for child in self.children(current):
                if child not in seen:
                    seen.add(child)
                    out.append(child)
                    frontier.append(child)
        return out

    @staticmethod
    def backtrace(patch: Patch) -> tuple[str, int | None]:
        """The base image a patch descends from — O(1), no scan needed.

        This is the per-tuple backtracing query; the cross-collection
        variant goes through :meth:`patches_from_base`.
        """
        return patch.base_ref()
