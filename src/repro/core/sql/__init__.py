"""LensQL: the declarative SQL frontend over the logical plan IR.

The dialect compiles onto the *same* logical plans the fluent
:class:`~repro.core.session.QueryBuilder` builds — equivalent queries
are fingerprint-identical and flow through the same rewriter,
statistics, view matcher, and executor. Entry points:

* :func:`repro.core.sql.parser.parse` — text -> typed AST
  (:mod:`repro.core.sql.ast`), every node round-tripping through
  ``to_sql()``;
* :class:`repro.core.sql.binder.Binder` — AST -> bound statement over a
  session (name resolution against the catalog and UDF registry);
* :meth:`repro.core.session.DeepLens.sql` — the one-call surface.
"""

from repro.core.sql import ast
from repro.core.sql.binder import (
    Binder,
    BoundCreateIndex,
    BoundCreateView,
    BoundDropView,
    BoundExplain,
    BoundRefreshView,
    BoundSelect,
    BoundShow,
    BoundStatement,
)
from repro.core.sql.lexer import Token, tokenize
from repro.core.sql.parser import parse

__all__ = [
    "Binder",
    "BoundCreateIndex",
    "BoundCreateView",
    "BoundDropView",
    "BoundExplain",
    "BoundRefreshView",
    "BoundSelect",
    "BoundShow",
    "BoundStatement",
    "Token",
    "ast",
    "parse",
    "tokenize",
]
