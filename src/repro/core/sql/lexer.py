"""The LensQL lexer: hand-written, position-tracking.

Tokens carry their 1-based line/column plus the matched source length so
every downstream failure — parser or binder — can render a caret-annotated
excerpt (:class:`~repro.errors.ParseError`). Keywords are case-insensitive
and reserved; identifiers may be double-quoted to escape them.
"""

from __future__ import annotations

import math

from dataclasses import dataclass, field

from repro.errors import ParseError

# token types
KEYWORD = "keyword"
IDENT = "ident"
NUMBER = "number"
STRING = "string"
OP = "op"
PUNCT = "punct"
EOF = "eof"

#: every reserved word of the dialect (case-insensitive)
KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "BETWEEN", "IN",
        "CONTAINS", "ORDER", "BY", "ASC", "DESC", "LIMIT", "AS",
        "EXPLAIN", "ANALYZE", "CREATE", "MATERIALIZED", "VIEW", "REFRESH", "DROP",
        "INDEX", "INDEXES", "ON", "USING", "REPLACE", "SHOW", "COLLECTIONS",
        "VIEWS", "STATS", "FOR", "SIMILARITY", "JOIN", "WITHIN", "TOP",
        "DIM", "EXCLUDE", "SELF", "COUNT", "AVG", "MIN", "MAX", "DISTINCT",
        "TRUE",
        "FALSE", "NULL", "METADATA", "ONLY", "METRICS", "SLOW", "QUERIES",
    }
)

#: multi-character operators first so "<=" never lexes as "<", "="
OPERATORS = ("<=", ">=", "!=", "<>", "==", "=", "<", ">")
PUNCTUATION = "(),.*;-"


@dataclass(frozen=True)
class Token:
    """One lexed token with its source position (1-based line/column)."""

    type: str
    value: str
    line: int
    column: int
    length: int = 1
    #: numeric tokens carry their parsed value (int or float)
    number: float | int | None = field(default=None, compare=False)

    def matches(self, type_: str, value: str | None = None) -> bool:
        if self.type != type_:
            return False
        return value is None or self.value == value

    def __repr__(self) -> str:
        return f"Token({self.type}, {self.value!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Lex LensQL text into tokens (always ending with an EOF token)."""
    tokens: list[Token] = []
    line, column = 1, 1
    i, n = 0, len(source)

    def error(message: str, length: int = 1) -> ParseError:
        return ParseError(
            message, source=source, line=line, column=column, length=length
        )

    while i < n:
        ch = source[i]
        if ch == "\n":
            i += 1
            line += 1
            column = 1
            continue
        if ch in " \t\r":
            i += 1
            column += 1
            continue
        if source.startswith("--", i):  # line comment
            while i < n and source[i] != "\n":
                i += 1
            continue
        if ch == "'":  # string literal, '' escapes a quote, may span lines
            j = i + 1
            parts: list[str] = []
            while True:
                if j >= n:
                    raise error("unterminated string literal", max(n - i, 1))
                if source[j] == "'":
                    if j + 1 < n and source[j + 1] == "'":
                        parts.append("'")
                        j += 2
                        continue
                    break
                parts.append(source[j])
                j += 1
            text = "".join(parts)
            length = j + 1 - i
            tokens.append(Token(STRING, text, line, column, length))
            line += text.count("\n")
            last_newline = source.rfind("\n", i, j + 1)
            if last_newline >= 0:
                column = j + 1 - last_newline
            else:
                column += length
            i = j + 1
            continue
        if ch == '"':  # quoted identifier, "" escapes a quote
            j = i + 1
            name_parts: list[str] = []
            while True:
                if j >= n or source[j] == "\n":
                    raise error("unterminated quoted identifier", 1)
                if source[j] == '"':
                    if j + 1 < n and source[j + 1] == '"':
                        name_parts.append('"')
                        j += 2
                        continue
                    break
                name_parts.append(source[j])
                j += 1
            name = "".join(name_parts)
            if not name:
                raise error("empty quoted identifier", j + 1 - i)
            length = j + 1 - i
            tokens.append(Token(IDENT, name, line, column, length))
            i = j + 1
            column += length
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and source[i + 1].isdigit()
        ):
            j = i
            seen_dot = seen_exp = False
            while j < n:
                c = source[j]
                if c.isdigit():
                    j += 1
                elif c == "." and not seen_dot and not seen_exp:
                    seen_dot = True
                    j += 1
                elif c in "eE" and not seen_exp and j > i:
                    seen_exp = True
                    j += 1
                    if j < n and source[j] in "+-":
                        j += 1
                else:
                    break
            text = source[i:j]
            try:
                value: float | int = (
                    float(text) if seen_dot or seen_exp else int(text)
                )
            except ValueError:
                raise error(f"malformed number {text!r}", j - i) from None
            if isinstance(value, float) and not math.isfinite(value):
                # e.g. 1e999 overflows to inf, whose repr would not
                # re-lex as a number — reject with a position instead
                raise error(f"number {text!r} is out of range", j - i)
            tokens.append(Token(NUMBER, text, line, column, j - i, number=value))
            column += j - i
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token(KEYWORD, upper, line, column, j - i))
            else:
                tokens.append(Token(IDENT, word, line, column, j - i))
            column += j - i
            i = j
            continue
        matched = False
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token(OP, op, line, column, len(op)))
                i += len(op)
                column += len(op)
                matched = True
                break
        if matched:
            continue
        if ch in PUNCTUATION:
            tokens.append(Token(PUNCT, ch, line, column, 1))
            i += 1
            column += 1
            continue
        raise error(f"unexpected character {ch!r}")
    tokens.append(Token(EOF, "", line, column, 1))
    return tokens
