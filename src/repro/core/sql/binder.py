"""The LensQL binder: resolve names, lower the AST onto the logical IR.

The binder is deliberately thin: it resolves collection/view/UDF names
against the session's catalog and UDF registry, then builds the plan
through the *fluent* :class:`~repro.core.session.QueryBuilder` — the
same calls a Python caller would make, in the same canonical order
(scan -> UDF maps -> one filter per WHERE conjunct -> order -> limit ->
projection). Equivalent SQL and fluent queries therefore produce
structurally identical logical plans — same ``plan_fingerprint``, same
rewrites, same cost decisions, same view matches — because they *are*
the same plans, not merely equivalent ones.

Name-resolution failures raise :class:`~repro.errors.BindError` carrying
the offending AST node's source position and a caret-annotated excerpt.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Union

from repro.core import logical
from repro.core.expressions import (
    And,
    Between,
    Comparison,
    Expr,
    Not,
    Or,
)
from repro.core.sql import ast
from repro.core.udf import UDFDefinition, attribute_key
from repro.errors import BindError, QueryError

if TYPE_CHECKING:  # circular at runtime: session imports this module
    from repro.core.optimizer import Explanation
    from repro.core.session import DeepLens, QueryBuilder

#: WHERE sides above a similarity join -> Filter.on positions
_SIDES = {"left": 0, "right": 1}


# -- bound statements ---------------------------------------------------------


@dataclass
class BoundSelect:
    """A bound SELECT: the pipeline builder plus any terminal aggregate."""

    session: "DeepLens"
    builder: "QueryBuilder"
    statement: ast.Select
    #: (logical aggregate kind, key callable) for aggregate selects
    aggregate: tuple[str, Callable | None] | None = None
    #: row arity the pipeline yields (2 after a similarity join)
    arity: int = 1

    def logical_plan(self) -> logical.LogicalPlan:
        plan = self.builder.logical_plan()
        if self.aggregate is not None:
            kind, key = self.aggregate
            plan = logical.Aggregate(plan, kind, key=key)
        return plan

    def plan_fingerprint(self) -> str:
        return logical.plan_fingerprint(self.logical_plan())

    def explain(self, *, analyze: bool = False) -> "Explanation":
        if self.aggregate is not None:
            kind, key = self.aggregate
            return self.builder.aggregate_explain(kind, key=key, analyze=analyze)
        return self.builder.explain(analyze=analyze)

    def execute(self) -> Any:
        if self.aggregate is not None:
            kind, key = self.aggregate
            return self.builder.aggregate(kind, key=key)
        if self.arity == 1:
            return self.builder.patches()
        return self.builder.rows()


@dataclass
class BoundExplain:
    select: BoundSelect
    analyze: bool = False

    def execute(self) -> "Explanation":
        return self.select.explain(analyze=self.analyze)


@dataclass
class BoundCreateView:
    session: "DeepLens"
    name: str
    select: BoundSelect
    replace: bool = False

    def execute(self):
        return self.session.materialize_view(
            self.name, self.select.builder, replace=self.replace
        )


@dataclass
class BoundRefreshView:
    session: "DeepLens"
    name: str
    select: BoundSelect | None = None

    def execute(self):
        query = self.select.builder if self.select is not None else None
        return self.session.refresh_view(self.name, query)


@dataclass
class BoundDropView:
    session: "DeepLens"
    name: str

    def execute(self) -> None:
        self.session.drop_view(self.name)


@dataclass
class BoundCreateIndex:
    session: "DeepLens"
    collection: str
    attr: str
    kind: str
    params: dict | None = None

    def execute(self):
        return self.session.create_index(
            self.collection, self.attr, self.kind, params=self.params
        )


@dataclass
class BoundShow:
    session: "DeepLens"
    what: str
    target: str | None = None

    def execute(self) -> list[dict]:
        if self.what == "collections":
            catalog = self.session.catalog
            return [
                {
                    "name": name,
                    "rows": len(catalog.collection(name)),
                    "version": catalog.collection_version(name),
                }
                for name in catalog.collections()
            ]
        if self.what == "views":
            manager = self.session.materialization
            out = []
            for name in manager.views():
                definition = manager.view(name)
                out.append(
                    {
                        "name": name,
                        "rows": definition.row_count,
                        "stale": manager.is_stale(name),
                        "portable": definition.portable,
                        "fingerprint": definition.fingerprint,
                    }
                )
            return out
        if self.what == "indexes":
            catalog = self.session.catalog
            return [
                {
                    "collection": collection,
                    "attr": attr,
                    "kind": kind,
                    "params": catalog.index_params(collection, attr, kind),
                    "rows": len(catalog.collection(collection)),
                }
                for collection, attr, kind in sorted(catalog.indexes())
            ]
        if self.what == "metrics":
            snapshot = self.session.metrics_registry.snapshot()
            out = []
            for series, value in sorted(snapshot["counters"].items()):
                out.append({"metric": series, "type": "counter", "value": value})
            for series, value in sorted(snapshot["gauges"].items()):
                out.append({"metric": series, "type": "gauge", "value": value})
            for series, summary in sorted(snapshot["histograms"].items()):
                for suffix in ("count", "sum", "p50", "p95", "p99"):
                    out.append(
                        {
                            "metric": f"{series}_{suffix}",
                            "type": "histogram",
                            "value": summary[suffix],
                        }
                    )
            return out
        if self.what == "slow_queries":
            return [dict(entry) for entry in self.session.slow_query_log().entries()]
        stats = self.session.catalog.statistics_for(self.target)
        if stats is None:
            return []
        out = [
            {
                "attr": name,
                "count": attr_stats.count,
                "nulls": attr_stats.null_count,
                "distinct": round(attr_stats.distinct_estimate(), 1),
                "min": attr_stats.min_value,
                "max": attr_stats.max_value,
                "dim": attr_stats.dim,
            }
            for name, attr_stats in sorted(stats.attrs.items())
        ]
        return out


BoundStatement = Union[
    BoundSelect,
    BoundExplain,
    BoundCreateView,
    BoundRefreshView,
    BoundDropView,
    BoundCreateIndex,
    BoundShow,
]


# -- the binder ---------------------------------------------------------------


class Binder:
    """Bind parsed LensQL statements against one session.

    ``query_vector``/``vector_attr`` carry the probe vector an ``ORDER
    BY SIMILARITY`` clause binds against — vectors have no literal
    syntax, so the caller passes them beside the statement text
    (:meth:`DeepLens.sql` forwards its keyword arguments here).
    """

    def __init__(
        self,
        session: "DeepLens",
        source: str = "",
        *,
        query_vector: Any = None,
        vector_attr: str | None = None,
    ) -> None:
        self.session = session
        self.source = source
        self.query_vector = query_vector
        self.vector_attr = vector_attr

    # -- plumbing --------------------------------------------------------

    def _error(self, message: str, node: ast.Node) -> BindError:
        line, column = node.pos
        return BindError(
            message, source=self.source, line=line, column=column
        )

    def _collection(self, name: str, node: ast.Node) -> str:
        known = self.session.catalog.collections()
        if name not in known:
            raise self._error(
                f"unknown collection or view {name!r}; have {known}", node
            )
        return name

    def _udf(self, name: str, node: ast.Node) -> UDFDefinition:
        try:
            return self.session.udfs.get(name)
        except QueryError as exc:
            raise self._error(str(exc), node) from None

    def _view(self, name: str, node: ast.Node) -> str:
        views = self.session.views()
        if name not in views:
            raise self._error(
                f"no materialized view {name!r}; have {views}", node
            )
        return name

    # -- statements ------------------------------------------------------

    def bind(self, statement: ast.Statement) -> BoundStatement:
        if isinstance(statement, ast.Select):
            return self.bind_select(statement)
        if isinstance(statement, ast.Explain):
            return BoundExplain(
                self.bind_select(statement.select), analyze=statement.analyze
            )
        if isinstance(statement, ast.CreateView):
            select = self._bind_view_select(statement.select)
            return BoundCreateView(
                self.session, statement.name, select, statement.replace
            )
        if isinstance(statement, ast.RefreshView):
            self._view(statement.name, statement)
            select = (
                self._bind_view_select(statement.select)
                if statement.select is not None
                else None
            )
            return BoundRefreshView(self.session, statement.name, select)
        if isinstance(statement, ast.DropView):
            self._view(statement.name, statement)
            return BoundDropView(self.session, statement.name)
        if isinstance(statement, ast.CreateIndex):
            self._collection(statement.collection, statement)
            params: dict[str, int | float] = {}
            for name, value in statement.params:
                if name in params:
                    raise self._error(
                        f"duplicate index parameter {name!r}", statement
                    )
                params[name] = value
            return BoundCreateIndex(
                self.session,
                statement.collection,
                statement.attr,
                statement.kind,
                params or None,
            )
        if isinstance(statement, ast.Show):
            target = None
            if statement.what == "stats":
                target = self._collection(statement.target or "", statement)
            return BoundShow(self.session, statement.what, target)
        raise QueryError(
            f"cannot bind statement {type(statement).__name__}"
        )  # pragma: no cover - the parser only produces the types above

    def _bind_view_select(self, select: ast.Select) -> BoundSelect:
        """Bind a view's defining select (CREATE/REFRESH ... AS): only
        arity-1, non-aggregate pipelines define patch collections."""
        bound = self.bind_select(select)
        if bound.aggregate is not None:
            raise self._error(
                "aggregates produce scalars, not patch collections; "
                "materialize the pipeline below the aggregate instead",
                select,
            )
        if bound.arity != 1:
            raise self._error(
                "only arity-1 pipelines can be materialized as views; "
                "materialize a join's sides separately",
                select,
            )
        return bound

    # -- SELECT ----------------------------------------------------------

    def bind_select(self, select: ast.Select) -> BoundSelect:
        aggregate = self._aggregate_of(select)
        joined = select.join is not None
        if joined and aggregate is not None and aggregate[0] != "count":
            # attribute aggregates read the row's first patch, which is
            # only the pair's left side here — a plausible-looking but
            # side-truncated number; COUNT(*) (pair count) stays valid
            raise self._error(
                "only COUNT(*) can aggregate similarity-join pairs; "
                "AVG/COUNT(DISTINCT) over pair rows is not supported yet",
                select.items[0],
            )
        if select.metadata_only and joined:
            # join features default to patch.data, and a feature UDF gets
            # data-less patches — either way the pairing would be garbage
            raise self._error(
                "METADATA ONLY scans carry no pixel data to join on; "
                "drop METADATA ONLY or join over full scans",
                select.join,
            )
        builder = self.session.scan(
            self._collection(select.source.name, select.source),
            load_data=not select.metadata_only,
        )

        # UDF maps, in select-list order, below everything else
        for item in select.items:
            if isinstance(item, ast.UdfCall):
                if joined:
                    raise self._error(
                        "UDF calls are not supported in similarity-join "
                        "selects (rows are pairs); join over a subquery "
                        "that applies the UDF instead",
                        item,
                    )
                if select.metadata_only:
                    raise self._error(
                        f"UDF {item.name!r} would run over data-less "
                        f"patches under METADATA ONLY; drop one of the two",
                        item,
                    )
                self._udf(item.name, item)
                builder = builder.map(item.name)

        if select.join is not None:
            builder = self._bind_join(builder, select.join)

        for conjunct in self._conjuncts(select.where):
            side = self._side_of(conjunct, joined)
            builder = builder.filter(self._lower(conjunct), on=side)

        if aggregate is not None and (
            select.order_by is not None or select.limit is not None
        ):
            # SQL applies ORDER BY/LIMIT to the *result* rows, where they
            # are no-ops over one scalar; lowering them into the pipeline
            # would silently truncate the aggregate's input instead
            raise self._error(
                "ORDER BY/LIMIT have no effect on an aggregate's single "
                "result row and are not lowered into its input; drop them",
                select.order_by if select.order_by is not None else select,
            )
        if select.order_by is not None:
            if joined:
                # same ambiguity as unqualified WHERE attributes: the
                # OrderBy operator would silently sort by the left patch
                raise self._error(
                    "ORDER BY above a similarity join would sort pair "
                    "rows by the left side only; order the results in "
                    "the caller instead",
                    select.order_by,
                )
            if select.order_by.similarity:
                # ORDER BY SIMILARITY LIMIT k is one unit: the builder's
                # similarity_search appends both nodes, which the
                # rewriter collapses into an ANN top-k
                builder = self._similarity_order(builder, select)
            else:
                builder = builder.order_by(
                    select.order_by.attr, reverse=select.order_by.desc
                )
        if select.limit is not None and not (
            select.order_by is not None and select.order_by.similarity
        ):
            builder = builder.limit(select.limit)

        attrs = self._projection(select, joined, aggregate is not None)
        if attrs:
            builder = builder.select(*attrs)

        return BoundSelect(
            self.session,
            builder,
            select,
            aggregate=aggregate,
            arity=2 if joined else 1,
        )

    def _similarity_order(
        self, builder: "QueryBuilder", select: ast.Select
    ) -> "QueryBuilder":
        """Lower ``ORDER BY SIMILARITY LIMIT k`` onto the builder's
        :meth:`~repro.core.session.QueryBuilder.similarity_search` — the
        same two logical nodes the fluent call appends, so both
        frontends produce fingerprint-identical ANN top-k plans."""
        spec = select.order_by
        assert spec is not None
        if spec.desc:
            raise self._error(
                "ORDER BY SIMILARITY is nearest-first; DESC (farthest-"
                "first) is not supported",
                spec,
            )
        if select.limit is None:
            raise self._error(
                "ORDER BY SIMILARITY needs a LIMIT (the top-k bound the "
                "ANN access path answers)",
                spec,
            )
        if self.query_vector is None:
            raise self._error(
                "ORDER BY SIMILARITY needs a probe vector; pass "
                "query_vector= (and optionally vector_attr=) to sql()",
                spec,
            )
        return builder.similarity_search(
            self.query_vector, select.limit, attr=self.vector_attr
        )

    def _aggregate_of(
        self, select: ast.Select
    ) -> tuple[str, Callable | None] | None:
        calls = [
            item for item in select.items if isinstance(item, ast.AggregateCall)
        ]
        if not calls:
            return None
        if len(select.items) > 1:
            raise self._error(
                "an aggregate must be the only select item", calls[0]
            )
        call = calls[0]
        if call.kind == "count":
            return ("count", None)
        # validate the aggregate's attribute when the catalog profiled
        # the collection (statistics observe every metadata key), so a
        # typo fails here with a position instead of as a KeyError
        # mid-execution; unprofiled collections stay permissive
        stats = self.session.catalog.statistics_for(select.source.name)
        if stats is not None and stats.attrs:
            attr_stats = stats.attrs.get(call.attr)
            if attr_stats is None:
                raise self._error(
                    f"unknown attribute {call.attr!r} on "
                    f"{select.source.name!r}; have {sorted(stats.attrs)}",
                    call,
                )
            if (
                call.kind == "avg"
                and attr_stats.count > 0
                and attr_stats.numeric_count == 0
            ):
                raise self._error(
                    f"AVG needs a numeric attribute, but no observed "
                    f"value of {call.attr!r} on {select.source.name!r} "
                    f"is numeric",
                    call,
                )
        return (call.kind, attribute_key(call.attr or ""))

    def _bind_join(
        self, builder: "QueryBuilder", join: ast.SimilarityJoinClause
    ) -> "QueryBuilder":
        if isinstance(join.right, ast.TableRef):
            right: "QueryBuilder | str" = self.session.scan(
                self._collection(join.right.name, join.right)
            )
        else:
            bound = self.bind_select(join.right)
            if bound.aggregate is not None or bound.arity != 1:
                raise self._error(
                    "a similarity join's right side must be an arity-1 "
                    "pipeline (no aggregates or nested joins)",
                    join.right,
                )
            right = bound.builder
        features = None
        if join.on is not None:
            features = self._udf(join.on, join).fn
        builder = builder.similarity_join(
            right,
            threshold=join.threshold,
            features=features,
            dim=join.dim,
            exclude_self=join.exclude_self,
        )
        if join.top is not None:
            builder = builder.limit(join.top)
        return builder

    def _projection(
        self, select: ast.Select, joined: bool, aggregated: bool
    ) -> tuple[str, ...]:
        stars = [item for item in select.items if isinstance(item, ast.Star)]
        if stars:
            # `SELECT *, udf()` applies the map but projects nothing —
            # the fluent `scan(...).map(...)` shape; mixing * with named
            # attributes is ambiguous and rejected
            others = [
                item
                for item in select.items
                if not isinstance(item, (ast.Star, ast.UdfCall))
            ]
            if others or len(stars) > 1:
                raise self._error(
                    "SELECT * can only be combined with UDF calls",
                    stars[0],
                )
            return ()
        if aggregated:
            return ()
        if joined:
            raise self._error(
                "similarity-join selects must use SELECT * (rows are "
                "(left, right) pairs; projection of pair rows is not "
                "supported yet)",
                select.items[0],
            )
        attrs: list[str] = []
        for item in select.items:
            if isinstance(item, ast.ColumnRef):
                if item.side is not None:
                    raise self._error(
                        f"side-qualified attribute "
                        f"{item.side}.{item.name} outside a similarity join",
                        item,
                    )
                attrs.append(item.name)
            elif isinstance(item, ast.UdfCall):
                provides = self._udf(item.name, item).provides
                if provides is None:
                    raise self._error(
                        f"UDF {item.name!r} declares no provides; its "
                        f"outputs cannot be projected — use SELECT * or "
                        f"register it with provides={{...}}",
                        item,
                    )
                attrs.extend(sorted(provides))
        return tuple(attrs)

    # -- WHERE -----------------------------------------------------------

    def _conjuncts(self, where: ast.SqlExpr | None) -> list[ast.SqlExpr]:
        """Flatten top-level ANDs: one Filter node per conjunct, the
        rewriter's normal form and the chained-``filter`` fluent idiom."""
        if where is None:
            return []
        if isinstance(where, ast.And):
            out: list[ast.SqlExpr] = []
            for child in where.children:
                out.extend(self._conjuncts(child))
            return out
        return [where]

    def _side_of(self, conjunct: ast.SqlExpr, joined: bool) -> int:
        sides: set[str] = set()
        first_ref: list[ast.ColumnRef] = []

        def visit(node: ast.SqlExpr) -> None:
            if isinstance(node, (ast.And, ast.Or)):
                for child in node.children:
                    visit(child)
            elif isinstance(node, ast.Not):
                visit(node.child)
            else:
                column = node.column  # type: ignore[union-attr]
                if not first_ref:
                    first_ref.append(column)
                if column.side is not None:
                    if column.side not in _SIDES:
                        raise self._error(
                            f"unknown join side {column.side!r}; "
                            f"use left.attr or right.attr",
                            column,
                        )
                    if not joined:
                        raise self._error(
                            f"side-qualified attribute {column.side}."
                            f"{column.name} outside a similarity join",
                            column,
                        )
                    sides.add(column.side)

        visit(conjunct)
        if len(sides) > 1:
            raise self._error(
                "a WHERE conjunct above a similarity join must reference "
                "one side only; split it into separate conjuncts",
                first_ref[0] if first_ref else conjunct,
            )
        if joined and not sides:
            # rows are (left, right) pairs here: silently picking a side
            # would filter half the pair and look like wrong results
            raise self._error(
                "WHERE attributes above a similarity join are ambiguous; "
                "qualify them as left.attr or right.attr",
                first_ref[0] if first_ref else conjunct,
            )
        return _SIDES[sides.pop()] if sides else 0

    def _lower(self, expr: ast.SqlExpr) -> Expr:
        if isinstance(expr, ast.Comparison):
            return Comparison(expr.column.name, expr.op, expr.value.value)
        if isinstance(expr, ast.Between):
            try:
                return Between(
                    expr.column.name, expr.lo.value, expr.hi.value
                )
            except QueryError as exc:
                raise self._error(str(exc), expr) from None
        if isinstance(expr, ast.InList):
            return Comparison(
                expr.column.name,
                "in",
                tuple(item.value for item in expr.items),
            )
        if isinstance(expr, ast.Contains):
            return Comparison(expr.column.name, "contains", expr.needle.value)
        if isinstance(expr, ast.Not):
            return Not(self._lower(expr.child))
        if isinstance(expr, ast.And):
            return And(*[self._lower(child) for child in expr.children])
        if isinstance(expr, ast.Or):
            return Or(*[self._lower(child) for child in expr.children])
        raise QueryError(
            f"cannot lower expression {type(expr).__name__}"
        )  # pragma: no cover - the parser only produces the types above
