"""Typed AST for LensQL statements.

Every node is a frozen dataclass that compares *structurally* — source
positions ride along in a ``pos`` field excluded from equality, so
``parse(node.to_sql()) == node`` is the round-trip law the property
tests pin down. ``to_sql()`` renders the canonical form of the dialect
(uppercase keywords, ``''``-escaped strings, parenthesized connectives).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Union

from repro.core.sql.lexer import KEYWORDS

#: aggregate kinds the dialect surfaces -> logical Aggregate kinds
AGGREGATE_SQL_KINDS = ("count", "distinct_count", "avg", "min", "max")

#: valid comparison operators after normalization ("=" -> "==", "<>" -> "!=")
COMPARISON_OPS = ("==", "!=", "<", "<=", ">", ">=")

Pos = tuple[int, int]


def _ident(name: str) -> str:
    """Render an identifier, double-quoting (with ``\"\"`` escapes) when
    it collides with the lexer's rules (reserved word, or not a bare
    identifier shape)."""
    bare = (
        name != ""
        and (name[0].isalpha() or name[0] == "_")
        and all(c.isalnum() or c == "_" for c in name)
        and name.upper() not in KEYWORDS
    )
    return name if bare else '"' + name.replace('"', '""') + '"'


def _literal(value: object) -> str:
    if value is None:
        return "NULL"
    if value is True:
        return "TRUE"
    if value is False:
        return "FALSE"
    if isinstance(value, str):
        return "'" + value.replace("'", "''") + "'"
    return repr(value)


@dataclass(frozen=True)
class Node:
    """Base AST node; ``pos`` is the (line, column) of the leading token."""

    pos: Pos = field(default=(1, 1), compare=False, kw_only=True)

    def to_sql(self) -> str:
        raise NotImplementedError


# -- expressions --------------------------------------------------------------


@dataclass(frozen=True)
class ColumnRef(Node):
    """A metadata attribute reference, optionally side-qualified
    (``left.label`` / ``right.label`` above a similarity join)."""

    name: str
    side: str | None = None

    def to_sql(self) -> str:
        if self.side is not None:
            return f"{self.side}.{_ident(self.name)}"
        return _ident(self.name)


@dataclass(frozen=True)
class Literal(Node):
    """A constant: string, int, float, bool, or NULL."""

    value: Union[str, int, float, bool, None]

    def to_sql(self) -> str:
        return _literal(self.value)


@dataclass(frozen=True)
class Comparison(Node):
    """``column <op> literal`` with a normalized operator."""

    column: ColumnRef
    op: str  # one of COMPARISON_OPS
    value: Literal

    def to_sql(self) -> str:
        rendered = {"==": "=", "!=": "!="}.get(self.op, self.op)
        return f"{self.column.to_sql()} {rendered} {self.value.to_sql()}"


@dataclass(frozen=True)
class Between(Node):
    column: ColumnRef
    lo: Literal
    hi: Literal

    def to_sql(self) -> str:
        return (
            f"{self.column.to_sql()} BETWEEN {self.lo.to_sql()} "
            f"AND {self.hi.to_sql()}"
        )


@dataclass(frozen=True)
class InList(Node):
    column: ColumnRef
    items: tuple[Literal, ...]

    def to_sql(self) -> str:
        rendered = ", ".join(item.to_sql() for item in self.items)
        return f"{self.column.to_sql()} IN ({rendered})"


@dataclass(frozen=True)
class Contains(Node):
    column: ColumnRef
    needle: Literal

    def to_sql(self) -> str:
        return f"{self.column.to_sql()} CONTAINS {self.needle.to_sql()}"


@dataclass(frozen=True)
class Not(Node):
    child: "SqlExpr"

    def to_sql(self) -> str:
        return f"NOT {_wrap(self.child)}"


@dataclass(frozen=True)
class And(Node):
    children: tuple["SqlExpr", ...]

    def to_sql(self) -> str:
        return " AND ".join(_wrap(child) for child in self.children)


@dataclass(frozen=True)
class Or(Node):
    children: tuple["SqlExpr", ...]

    def to_sql(self) -> str:
        return " OR ".join(_wrap(child) for child in self.children)


SqlExpr = Union[Comparison, Between, InList, Contains, Not, And, Or]


def _wrap(expr: SqlExpr) -> str:
    """Parenthesize connective children so precedence survives re-parsing
    (the parser flattens only *unparenthesized* same-operator chains)."""
    if isinstance(expr, (And, Or)):
        return f"({expr.to_sql()})"
    return expr.to_sql()


# -- select list --------------------------------------------------------------


@dataclass(frozen=True)
class Star(Node):
    """``SELECT *`` — keep every attribute (no projection node)."""

    def to_sql(self) -> str:
        return "*"


@dataclass(frozen=True)
class UdfCall(Node):
    """``name()`` in the select list: apply the registered UDF as a map;
    its declared ``provides`` attributes join the projection."""

    name: str

    def to_sql(self) -> str:
        return f"{_ident(self.name)}()"


@dataclass(frozen=True)
class AggregateCall(Node):
    """``COUNT(*)``, ``COUNT(DISTINCT attr)``, ``AVG(attr)``,
    ``MIN(attr)``, or ``MAX(attr)``."""

    kind: str  # one of AGGREGATE_SQL_KINDS
    attr: str | None = None

    def to_sql(self) -> str:
        if self.kind == "count":
            return "COUNT(*)"
        if self.kind == "distinct_count":
            return f"COUNT(DISTINCT {_ident(self.attr or '')})"
        return f"{self.kind.upper()}({_ident(self.attr or '')})"


SelectItem = Union[Star, ColumnRef, UdfCall, AggregateCall]


# -- statements ---------------------------------------------------------------


@dataclass(frozen=True)
class TableRef(Node):
    name: str

    def to_sql(self) -> str:
        return _ident(self.name)


@dataclass(frozen=True)
class OrderSpec(Node):
    attr: str
    desc: bool = False
    #: ``ORDER BY SIMILARITY``: order by distance to the query vector the
    #: caller passes to ``sql(..., query_vector=...)`` (vectors have no
    #: literal syntax). Distinct from ordering by a metadata attribute
    #: *named* "similarity", which stays a quoted identifier.
    similarity: bool = False

    def to_sql(self) -> str:
        target = "SIMILARITY" if self.similarity else _ident(self.attr)
        return f"ORDER BY {target}{' DESC' if self.desc else ''}"


@dataclass(frozen=True)
class SimilarityJoinClause(Node):
    """``SIMILARITY JOIN right [ON feature_udf] WITHIN t [DIM d] [TOP k]
    [EXCLUDE SELF]`` — lowers to :class:`repro.core.logical.SimilarityJoin`
    (``TOP k`` becomes a limit directly above the join)."""

    right: Union[TableRef, "Select"]
    threshold: float
    on: str | None = None
    dim: int | None = None
    top: int | None = None
    exclude_self: bool = False

    def to_sql(self) -> str:
        right = (
            self.right.to_sql()
            if isinstance(self.right, TableRef)
            else f"({self.right.to_sql()})"
        )
        parts = [f"SIMILARITY JOIN {right}"]
        if self.on is not None:
            parts.append(f"ON {_ident(self.on)}")
        parts.append(f"WITHIN {self.threshold!r}")
        if self.dim is not None:
            parts.append(f"DIM {self.dim}")
        if self.top is not None:
            parts.append(f"TOP {self.top}")
        if self.exclude_self:
            parts.append("EXCLUDE SELF")
        return " ".join(parts)


@dataclass(frozen=True)
class Select(Node):
    items: tuple[SelectItem, ...]
    source: TableRef
    join: SimilarityJoinClause | None = None
    where: SqlExpr | None = None
    order_by: OrderSpec | None = None
    limit: int | None = None
    #: scan the columnar metadata segment, never the pixel blob heap
    metadata_only: bool = False

    def to_sql(self) -> str:
        parts = [
            "SELECT " + ", ".join(item.to_sql() for item in self.items),
            f"FROM {self.source.to_sql()}",
        ]
        if self.metadata_only:
            parts.append("METADATA ONLY")
        if self.join is not None:
            parts.append(self.join.to_sql())
        if self.where is not None:
            parts.append(f"WHERE {self.where.to_sql()}")
        if self.order_by is not None:
            parts.append(self.order_by.to_sql())
        if self.limit is not None:
            parts.append(f"LIMIT {self.limit}")
        return " ".join(parts)


@dataclass(frozen=True)
class Explain(Node):
    select: Select
    analyze: bool = False

    def to_sql(self) -> str:
        analyze = " ANALYZE" if self.analyze else ""
        return f"EXPLAIN{analyze} {self.select.to_sql()}"


@dataclass(frozen=True)
class CreateView(Node):
    name: str
    select: Select
    replace: bool = False

    def to_sql(self) -> str:
        replace = " OR REPLACE" if self.replace else ""
        return (
            f"CREATE{replace} MATERIALIZED VIEW {_ident(self.name)} "
            f"AS {self.select.to_sql()}"
        )


@dataclass(frozen=True)
class RefreshView(Node):
    name: str
    select: Select | None = None

    def to_sql(self) -> str:
        suffix = f" AS {self.select.to_sql()}" if self.select else ""
        return f"REFRESH VIEW {_ident(self.name)}{suffix}"


@dataclass(frozen=True)
class DropView(Node):
    name: str

    def to_sql(self) -> str:
        return f"DROP VIEW {_ident(self.name)}"


@dataclass(frozen=True)
class CreateIndex(Node):
    collection: str
    attr: str
    kind: str = "btree"
    #: build knobs after the kind — ``USING hnsw (m = 8, ef = 64)`` —
    #: name/number pairs in source order
    params: tuple[tuple[str, Union[int, float]], ...] = ()

    def to_sql(self) -> str:
        rendered = (
            " ("
            + ", ".join(f"{_ident(k)} = {v!r}" for k, v in self.params)
            + ")"
            if self.params
            else ""
        )
        return (
            f"CREATE INDEX ON {_ident(self.collection)} "
            f"({_ident(self.attr)}) USING {_ident(self.kind)}{rendered}"
        )


@dataclass(frozen=True)
class Show(Node):
    what: str  # "collections" | "views" | "indexes" | "stats" | "metrics" | "slow_queries"
    target: str | None = None

    def to_sql(self) -> str:
        suffix = f" FOR {_ident(self.target)}" if self.target else ""
        return f"SHOW {self.what.upper().replace('_', ' ')}{suffix}"


Statement = Union[
    Select, Explain, CreateView, RefreshView, DropView, CreateIndex, Show
]
