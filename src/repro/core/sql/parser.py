"""Recursive-descent parser for LensQL.

One statement per call. The grammar (also documented on
:class:`~repro.core.session.DeepLens`):

.. code-block:: text

    statement   := select | EXPLAIN [ANALYZE] select
                 | CREATE [OR REPLACE] MATERIALIZED VIEW name AS select
                 | REFRESH VIEW name [AS select]
                 | DROP VIEW name
                 | CREATE INDEX ON name '(' name ')'
                   [USING name ['(' name '=' number (',' name '=' number)* ')']]
                 | SHOW COLLECTIONS | SHOW VIEWS | SHOW INDEXES
                 | SHOW STATS FOR name
    select      := SELECT items FROM name [METADATA ONLY] [simjoin]
                   [WHERE expr]
                   [ORDER BY (name [ASC|DESC] | SIMILARITY)] [LIMIT int]
    items       := '*' | item (',' item)*
    item        := column | name '(' ')'
                 | COUNT '(' '*' ')' | COUNT '(' DISTINCT name ')'
                 | AVG '(' name ')' | MIN '(' name ')' | MAX '(' name ')'
    simjoin     := SIMILARITY JOIN (name | '(' select ')') [ON name]
                   WITHIN number [DIM int] [TOP int] [EXCLUDE SELF]
    expr        := or ; or := and (OR and)* ; and := not (AND not)*
    not         := NOT not | primary
    primary     := '(' expr ')'
                 | column ( op literal
                          | [NOT] BETWEEN literal AND literal
                          | [NOT] IN '(' literal (',' literal)* ')'
                          | [NOT] CONTAINS literal )
    column      := name | (left|right) '.' name
    op          := '=' | '==' | '!=' | '<>' | '<' | '<=' | '>' | '>='
    literal     := string | number | '-' number | TRUE | FALSE | NULL

Every failure raises :class:`~repro.errors.ParseError` with the
offending token's line/column and a caret-annotated excerpt.
"""

from __future__ import annotations

from repro.core.sql import ast
from repro.core.sql.lexer import (
    EOF,
    IDENT,
    KEYWORD,
    NUMBER,
    OP,
    PUNCT,
    STRING,
    Token,
    tokenize,
)
from repro.errors import ParseError

#: "=" and "==" normalize to "=="; "<>" and "!=" to "!="
_OP_NORMALIZE = {
    "=": "==",
    "==": "==",
    "!=": "!=",
    "<>": "!=",
    "<": "<",
    "<=": "<=",
    ">": ">",
    ">=": ">=",
}


def parse(source: str) -> ast.Statement:
    """Parse one LensQL statement (an optional trailing ``;`` is fine)."""
    return _Parser(source).parse_statement()


class _Parser:
    def __init__(self, source: str) -> None:
        self.source = source
        self.tokens = tokenize(source)
        self.index = 0

    # -- token plumbing --------------------------------------------------

    @property
    def current(self) -> Token:
        return self.tokens[self.index]

    def _advance(self) -> Token:
        token = self.current
        if token.type != EOF:
            self.index += 1
        return token

    def _error(self, message: str, token: Token | None = None) -> ParseError:
        token = token if token is not None else self.current
        return ParseError(
            message,
            source=self.source,
            line=token.line,
            column=token.column,
            length=token.length,
        )

    def _describe(self, token: Token) -> str:
        if token.type == EOF:
            return "end of input"
        return f"{token.value!r}"

    def _expect(self, type_: str, value: str | None = None) -> Token:
        token = self.current
        if not token.matches(type_, value):
            wanted = value if value is not None else type_
            raise self._error(
                f"expected {wanted}, got {self._describe(token)}"
            )
        return self._advance()

    def _accept(self, type_: str, value: str | None = None) -> Token | None:
        if self.current.matches(type_, value):
            return self._advance()
        return None

    def _pos(self, token: Token) -> ast.Pos:
        return (token.line, token.column)

    # -- statements ------------------------------------------------------

    def parse_statement(self) -> ast.Statement:
        token = self.current
        if token.matches(KEYWORD, "SELECT"):
            statement: ast.Statement = self._select()
        elif token.matches(KEYWORD, "EXPLAIN"):
            start = self._advance()
            analyze = self._accept(KEYWORD, "ANALYZE") is not None
            statement = ast.Explain(
                self._select(), analyze=analyze, pos=self._pos(start)
            )
        elif token.matches(KEYWORD, "CREATE"):
            statement = self._create()
        elif token.matches(KEYWORD, "REFRESH"):
            start = self._advance()
            self._expect(KEYWORD, "VIEW")
            name = self._name("view name")
            select = None
            if self._accept(KEYWORD, "AS"):
                select = self._select()
            statement = ast.RefreshView(name, select, pos=self._pos(start))
        elif token.matches(KEYWORD, "DROP"):
            start = self._advance()
            self._expect(KEYWORD, "VIEW")
            statement = ast.DropView(
                self._name("view name"), pos=self._pos(start)
            )
        elif token.matches(KEYWORD, "SHOW"):
            statement = self._show()
        else:
            raise self._error(
                f"expected a statement (SELECT / EXPLAIN / CREATE / "
                f"REFRESH / DROP / SHOW), got {self._describe(token)}"
            )
        self._accept(PUNCT, ";")
        if self.current.type != EOF:
            raise self._error(
                f"unexpected trailing input {self._describe(self.current)}"
            )
        return statement

    def _create(self) -> ast.Statement:
        start = self._expect(KEYWORD, "CREATE")
        replace = False
        if self._accept(KEYWORD, "OR"):
            self._expect(KEYWORD, "REPLACE")
            replace = True
        if self._accept(KEYWORD, "INDEX"):
            if replace:
                raise self._error("CREATE OR REPLACE applies to views only")
            self._expect(KEYWORD, "ON")
            collection = self._name("collection name")
            self._expect(PUNCT, "(")
            attr = self._name("attribute name")
            self._expect(PUNCT, ")")
            kind = "btree"
            params: list[tuple[str, int | float]] = []
            if self._accept(KEYWORD, "USING"):
                kind = self._name("index kind")
                if self._accept(PUNCT, "("):
                    while True:
                        param = self._name("parameter name")
                        self._expect(OP, "=")
                        value = self.current
                        if value.type != NUMBER:
                            raise self._error(
                                f"index parameter {param!r} needs a number, "
                                f"got {self._describe(value)}"
                            )
                        self._advance()
                        assert value.number is not None
                        params.append((param, value.number))
                        if not self._accept(PUNCT, ","):
                            break
                    self._expect(PUNCT, ")")
            return ast.CreateIndex(
                collection, attr, kind, tuple(params), pos=self._pos(start)
            )
        self._expect(KEYWORD, "MATERIALIZED")
        self._expect(KEYWORD, "VIEW")
        name = self._name("view name")
        self._expect(KEYWORD, "AS")
        return ast.CreateView(
            name, self._select(), replace, pos=self._pos(start)
        )

    def _show(self) -> ast.Show:
        start = self._expect(KEYWORD, "SHOW")
        if self._accept(KEYWORD, "COLLECTIONS"):
            return ast.Show("collections", pos=self._pos(start))
        if self._accept(KEYWORD, "VIEWS"):
            return ast.Show("views", pos=self._pos(start))
        if self._accept(KEYWORD, "INDEXES"):
            return ast.Show("indexes", pos=self._pos(start))
        if self._accept(KEYWORD, "METRICS"):
            return ast.Show("metrics", pos=self._pos(start))
        if self._accept(KEYWORD, "SLOW"):
            self._expect(KEYWORD, "QUERIES")
            return ast.Show("slow_queries", pos=self._pos(start))
        if self._accept(KEYWORD, "STATS"):
            self._expect(KEYWORD, "FOR")
            return ast.Show(
                "stats", self._name("collection name"), pos=self._pos(start)
            )
        raise self._error(
            f"expected COLLECTIONS, VIEWS, INDEXES, METRICS, SLOW QUERIES, "
            f"or STATS after SHOW, got {self._describe(self.current)}"
        )

    # -- select ----------------------------------------------------------

    def _select(self) -> ast.Select:
        start = self._expect(KEYWORD, "SELECT")
        items = self._select_items()
        self._expect(KEYWORD, "FROM")
        source_token = self.current
        source = ast.TableRef(
            self._name("collection name"), pos=self._pos(source_token)
        )
        metadata_only = False
        if self._accept(KEYWORD, "METADATA"):
            self._expect(KEYWORD, "ONLY")
            metadata_only = True
        join = None
        if self.current.matches(KEYWORD, "SIMILARITY"):
            join = self._similarity_join()
        where = None
        if self._accept(KEYWORD, "WHERE"):
            where = self._expr()
        order_by = None
        if self.current.matches(KEYWORD, "ORDER"):
            order_token = self._advance()
            self._expect(KEYWORD, "BY")
            similarity = self._accept(KEYWORD, "SIMILARITY") is not None
            attr = "similarity" if similarity else self._name("attribute name")
            desc = False
            if self._accept(KEYWORD, "DESC"):
                desc = True
            else:
                self._accept(KEYWORD, "ASC")
            order_by = ast.OrderSpec(
                attr, desc, similarity, pos=self._pos(order_token)
            )
        limit = None
        if self._accept(KEYWORD, "LIMIT"):
            limit = self._int("LIMIT")
        return ast.Select(
            items,
            source,
            join,
            where,
            order_by,
            limit,
            metadata_only,
            pos=self._pos(start),
        )

    def _select_items(self) -> tuple[ast.SelectItem, ...]:
        items: list[ast.SelectItem] = [self._select_item()]
        while self._accept(PUNCT, ","):
            items.append(self._select_item())
        return tuple(items)

    def _select_item(self) -> ast.SelectItem:
        token = self.current
        if token.matches(PUNCT, "*"):
            self._advance()
            return ast.Star(pos=self._pos(token))
        if token.matches(KEYWORD, "COUNT"):
            self._advance()
            self._expect(PUNCT, "(")
            if self._accept(PUNCT, "*"):
                self._expect(PUNCT, ")")
                return ast.AggregateCall("count", pos=self._pos(token))
            self._expect(KEYWORD, "DISTINCT")
            attr = self._name("attribute name")
            self._expect(PUNCT, ")")
            return ast.AggregateCall(
                "distinct_count", attr, pos=self._pos(token)
            )
        for keyword, kind in (("AVG", "avg"), ("MIN", "min"), ("MAX", "max")):
            if token.matches(KEYWORD, keyword):
                self._advance()
                self._expect(PUNCT, "(")
                attr = self._name("attribute name")
                self._expect(PUNCT, ")")
                return ast.AggregateCall(kind, attr, pos=self._pos(token))
        if token.type == IDENT:
            name = self._advance().value
            if self._accept(PUNCT, "("):
                self._expect(PUNCT, ")")
                return ast.UdfCall(name, pos=self._pos(token))
            if self._accept(PUNCT, "."):
                attr = self._name("attribute name")
                return ast.ColumnRef(attr, name, pos=self._pos(token))
            return ast.ColumnRef(name, pos=self._pos(token))
        raise self._error(
            f"expected a select item (attribute, UDF call, COUNT, AVG, "
            f"MIN, or MAX), got {self._describe(token)}"
        )

    def _similarity_join(self) -> ast.SimilarityJoinClause:
        start = self._expect(KEYWORD, "SIMILARITY")
        self._expect(KEYWORD, "JOIN")
        right: ast.TableRef | ast.Select
        if self._accept(PUNCT, "("):
            right = self._select()
            self._expect(PUNCT, ")")
        else:
            right_token = self.current
            right = ast.TableRef(
                self._name("collection name"), pos=self._pos(right_token)
            )
        on = None
        if self._accept(KEYWORD, "ON"):
            on = self._name("feature UDF name")
        self._expect(KEYWORD, "WITHIN")
        threshold = float(self._number("WITHIN"))
        # the options compose in any order, each at most once
        dim: int | None = None
        top: int | None = None
        exclude_self = False
        while True:
            if dim is None and self._accept(KEYWORD, "DIM"):
                dim = self._int("DIM")
            elif top is None and self._accept(KEYWORD, "TOP"):
                top = self._int("TOP")
            elif not exclude_self and self._accept(KEYWORD, "EXCLUDE"):
                self._expect(KEYWORD, "SELF")
                exclude_self = True
            else:
                break
        return ast.SimilarityJoinClause(
            right, threshold, on, dim, top, exclude_self, pos=self._pos(start)
        )

    # -- expressions -----------------------------------------------------

    def _expr(self) -> ast.SqlExpr:
        return self._or()

    def _or(self) -> ast.SqlExpr:
        first = self._and()
        children = [first]
        while self._accept(KEYWORD, "OR"):
            children.append(self._and())
        if len(children) == 1:
            return first
        return ast.Or(tuple(children), pos=first.pos)

    def _and(self) -> ast.SqlExpr:
        first = self._not()
        children = [first]
        while self._accept(KEYWORD, "AND"):
            children.append(self._not())
        if len(children) == 1:
            return first
        return ast.And(tuple(children), pos=first.pos)

    def _not(self) -> ast.SqlExpr:
        token = self._accept(KEYWORD, "NOT")
        if token is not None:
            return ast.Not(self._not(), pos=self._pos(token))
        return self._primary()

    def _primary(self) -> ast.SqlExpr:
        if self._accept(PUNCT, "("):
            inner = self._expr()
            self._expect(PUNCT, ")")
            return inner
        column = self._column()
        negated = self._accept(KEYWORD, "NOT") is not None
        token = self.current
        if not negated and token.type == OP:
            op = _OP_NORMALIZE[self._advance().value]
            value = self._literal()
            return ast.Comparison(column, op, value, pos=column.pos)
        if self._accept(KEYWORD, "BETWEEN"):
            lo = self._literal()
            self._expect(KEYWORD, "AND")
            hi = self._literal()
            expr: ast.SqlExpr = ast.Between(column, lo, hi, pos=column.pos)
        elif self._accept(KEYWORD, "IN"):
            self._expect(PUNCT, "(")
            items = [self._literal()]
            while self._accept(PUNCT, ","):
                items.append(self._literal())
            self._expect(PUNCT, ")")
            expr = ast.InList(column, tuple(items), pos=column.pos)
        elif self._accept(KEYWORD, "CONTAINS"):
            expr = ast.Contains(column, self._literal(), pos=column.pos)
        else:
            raise self._error(
                f"expected a comparison operator, BETWEEN, IN, or CONTAINS, "
                f"got {self._describe(token)}"
            )
        if negated:
            return ast.Not(expr, pos=column.pos)
        return expr

    def _column(self) -> ast.ColumnRef:
        token = self.current
        if token.type != IDENT:
            raise self._error(
                f"expected an attribute name, got {self._describe(token)}"
            )
        name = self._advance().value
        if self._accept(PUNCT, "."):
            attr = self._name("attribute name")
            return ast.ColumnRef(attr, name, pos=self._pos(token))
        return ast.ColumnRef(name, pos=self._pos(token))

    # -- terminals -------------------------------------------------------

    def _name(self, what: str) -> str:
        token = self.current
        if token.type != IDENT:
            raise self._error(
                f"expected {'an' if what[0] in 'aeiou' else 'a'} {what}, "
                f"got {self._describe(token)}"
            )
        return self._advance().value

    def _literal(self) -> ast.Literal:
        token = self.current
        if token.type == STRING:
            self._advance()
            return ast.Literal(token.value, pos=self._pos(token))
        if token.type == NUMBER:
            self._advance()
            return ast.Literal(token.number, pos=self._pos(token))
        if token.matches(PUNCT, "-"):
            self._advance()
            number = self.current
            if number.type != NUMBER:
                raise self._error(
                    f"expected a number after '-', got "
                    f"{self._describe(number)}"
                )
            self._advance()
            assert number.number is not None
            return ast.Literal(-number.number, pos=self._pos(token))
        if token.matches(KEYWORD, "TRUE"):
            self._advance()
            return ast.Literal(True, pos=self._pos(token))
        if token.matches(KEYWORD, "FALSE"):
            self._advance()
            return ast.Literal(False, pos=self._pos(token))
        if token.matches(KEYWORD, "NULL"):
            self._advance()
            return ast.Literal(None, pos=self._pos(token))
        raise self._error(f"expected a literal, got {self._describe(token)}")

    def _number(self, clause: str) -> float:
        token = self.current
        if token.type != NUMBER:
            raise self._error(
                f"{clause} needs a number, got {self._describe(token)}"
            )
        self._advance()
        assert token.number is not None
        return float(token.number)

    def _int(self, clause: str) -> int:
        token = self.current
        if token.type != NUMBER or not isinstance(token.number, int):
            raise self._error(
                f"{clause} needs a non-negative integer, got "
                f"{self._describe(token)}"
            )
        if token.number < 0:
            raise self._error(f"{clause} must be non-negative")
        self._advance()
        return int(token.number)
