"""The DeepLens session: the library's top-level API.

One :class:`DeepLens` instance owns a database directory — video stores,
the patch catalog, lineage, indexes — and exposes the workflow of Figure 1:

    ingest (storage layer) -> load -> ETL -> materialize -> query

Queries are fluent pipelines planned through the logical IR
(:mod:`repro.core.logical`): filters, UDF maps, projections, limits,
ordering, similarity joins, and aggregates compose freely, the rewriter
reorders predicates around inference, and execution moves batches of rows
through the physical operators. Access paths and join strategies are
costed against per-collection statistics (histograms, most-common
values, distinct sketches, embedding dims) the catalog collects as
patches materialize — ``explain()`` shows each decision's estimated rows
and the statistic behind it. Example::

    with DeepLens(workdir) as db:
        db.ingest_video("cam0", dataset.frames(), layout="segmented")
        detections = pipeline.run(db.load("cam0"))
        db.materialize(detections, "detections")
        db.create_index("detections", "label", "hash")
        busiest = (
            db.scan("detections")
            .map(score_udf, name="score", provides={"score"}, cache=True)
            .filter(Attr("label") == "vehicle")   # pushed below the UDF
            .order_by("score", reverse=True)
            .limit(10)
            .select("label", "frameno", "score")
            .patches()
        )
        print(db.scan("detections").explain())   # rewrites + plan choices

**Materialized views and persistent inference.** Expensive UDF pipelines
need not recompute per session. ``materialize_view`` persists any
arity-1 pipeline as a named derived view; afterwards every query whose
prefix recomputes the view's definition is rewritten to scan the view
instead — cost-based against recomputation, visible in ``explain()`` —
including in *later sessions* (the view's plan fingerprint persists in
the catalog). Views are invalidated through lineage: adding patches to a
base collection marks dependent views stale, stale views are not used
(pass ``allow_stale()`` to opt in), and ``refresh_view`` re-runs only the
defining plan. Independently, ``cache=True`` map results now land in a
catalog-persisted, lineage-keyed UDF result store (LRU-bounded in memory,
spilled through the kvstore), so cached inference survives reopen for
named module-level UDFs::

    scored = db.scan("detections").map(score_udf, name="score",
                                       provides={"score"}, cache=True)
    db.materialize_view("scored", scored)
    # this session *and* the next: planned as a scan of "scored"
    top = scored.order_by("score", reverse=True).limit(10).patches()
    db.collection("detections").add(new_patch)   # "scored" is now stale
    db.refresh_view("scored")                    # re-runs the defining plan

**LensQL.** Every query above is also one string away:
:meth:`DeepLens.sql` parses the LensQL dialect, binds names against the
catalog and the session's UDF registry (:meth:`DeepLens.register_udf`),
and lowers onto the *same* logical plans the fluent builder makes —
fingerprint-identical, so rewrites, statistics, view matching, and the
parallel executor behave identically across both frontends::

    db.register_udf("score", score_udf, provides={"score"},
                    one_to_one=True, cache=True)
    rows = db.sql(\"\"\"
        SELECT label, frameno, score() FROM detections
        WHERE label = 'vehicle' ORDER BY score DESC LIMIT 10
    \"\"\")
    print(db.sql("EXPLAIN SELECT count(*) FROM detections"))
"""

from __future__ import annotations

import json
import os
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.core import logical
from repro.core.catalog import Catalog, MaterializedCollection
from repro.core.executor import ExecutionContext
from repro.core.expressions import Expr
from repro.core.lineage import LineageStore
from repro.core.materialization import (
    MaterializationManager,
    PersistentUDFCache,
    ViewDefinition,
)
from repro.core.metrics import (
    MetricsRegistry,
    SlowQueryLog,
    Span,
    current_span,
    span,
    trace,
)
from repro.core.operators import DEFAULT_BATCH_SIZE, Operator
from repro.core.optimizer import (
    AggregateExecution,
    CostModel,
    Explanation,
    Optimizer,
    UDFCache,
    plan_pipeline,
)
from repro.core.patch import Patch, Row
from repro.core.profile import PlanQualityLog, RuntimeProfile
from repro.core.schema import PatchSchema
from repro.core.udf import UDFDefinition, attribute_key, default_registry
from repro.errors import QueryError, StorageError
from repro.storage.formats import VideoStore, load_patches, open_store


#: sentinel default for terminal ``batch_size`` parameters: defer to the
#: planner's cardinality-driven choice. Distinct from an explicit
#: ``batch_size=DEFAULT_BATCH_SIZE`` argument, which — like any explicit
#: value — is honored exactly (a caller's GPU/model batch contract).
PLANNER_CHOSEN: Any = object()


class DeepLens:
    """A visual data management session over one database directory.

    **Execution tuning.** ``execution`` sets the session-wide engine
    configuration (override per query with
    :meth:`QueryBuilder.with_execution`)::

        db = DeepLens(workdir, execution=ExecutionContext(workers=4))
        rows = db.scan("detections").map(model, name="m").patches()

    * ``workers`` — UDF map batches fan out across this many threads
      (ordered, so results are bit-identical to serial execution: same
      rows, same order, same lineage keys). Threads pay off when the UDF
      releases the GIL — numpy/BLAS kernels, accelerator or RPC
      inference; pure-Python UDFs should stay at ``workers=1``.
    * ``batch_size`` — rows per batch through the whole pipeline; leave
      ``None`` and the planner picks from cardinality estimates (shown
      in ``explain()``), or pin it to a model's batch contract.
    * ``prefetch_batches`` — how many batches the storage scan decodes
      ahead of the first UDF map (parallel plans only), overlapping blob
      I/O with inference.

    Orthogonally, ``scan(..., load_data=False)`` still wins whenever the
    pipeline only touches metadata: no worker count beats not reading
    the pixels at all. Metadata-only scans read a columnar metadata
    segment beside the blob heap — zone-mapped attribute blocks, zero
    heap trips, no pixel decompression — and the planner flips eligible
    scans (e.g. under ``COUNT(*)``) to this path automatically; the
    rewrite shows up in ``explain()``.

    **The LensQL dialect** (:meth:`sql` / :meth:`sql_query`):

    .. code-block:: text

        statement   := select | EXPLAIN [ANALYZE] select
                     | CREATE [OR REPLACE] MATERIALIZED VIEW name AS select
                     | REFRESH VIEW name [AS select]
                     | DROP VIEW name
                     | CREATE INDEX ON name '(' name ')'
                       [USING kind ['(' param '=' number, ... ')']]
                     | SHOW COLLECTIONS | SHOW VIEWS | SHOW INDEXES
                     | SHOW STATS FOR name
                     | SHOW METRICS | SHOW SLOW QUERIES
        select      := SELECT items FROM collection [METADATA ONLY]
                       [simjoin] [WHERE expr]
                       [ORDER BY (attr [ASC|DESC] | SIMILARITY)] [LIMIT n]
        items       := '*' | item (',' item)*
        item        := attr | udf '(' ')'                 -- registered UDF map
                     | COUNT '(' '*' ')' | COUNT '(' DISTINCT attr ')'
                     | AVG '(' attr ')' | MIN '(' attr ')' | MAX '(' attr ')'
        simjoin     := SIMILARITY JOIN (collection | '(' select ')')
                       [ON feature_udf] WITHIN number [DIM n] [TOP k]
                       [EXCLUDE SELF]
        expr        := boolean combinations (AND / OR / NOT, parentheses)
                       of: attr op literal | attr BETWEEN lit AND lit
                         | attr IN '(' lit, ... ')' | attr CONTAINS lit
                       (above a join, qualify sides: left.attr / right.attr)
        op          := = | == | != | <> | < | <= | > | >=
        literal     := 'string' | number | -number | TRUE | FALSE | NULL

    ``FROM c METADATA ONLY`` scans the columnar metadata segment instead
    of the blob heap (rows come back data-less) and builds the same plan
    as ``scan(c, load_data=False)`` — fingerprint-identical, so the two
    forms share views and plan-quality history.
    ``SELECT udf()`` applies a registered UDF as a map below the WHERE
    clause (its declared ``provides`` attributes join the projection);
    ``SIMILARITY JOIN ... WITHIN t`` lowers to the same
    ``SimilarityJoin`` node as :meth:`QueryBuilder.similarity_join`
    (``TOP k`` limits the pair stream directly above the join).
    ``ORDER BY SIMILARITY LIMIT k`` orders rows by Euclidean distance
    to a probe vector — vectors have no literal syntax, so pass it as
    ``sql(text, query_vector=..., vector_attr=...)`` — and builds the
    same ANN top-k plan as :meth:`QueryBuilder.similarity_search`
    (fingerprint-identical), served from an HNSW index when the cost
    model prefers it. ``MIN(attr)``/``MAX(attr)`` are terminal
    aggregates that answer from zone-map block statistics when
    provable. ``SHOW INDEXES`` lists every secondary index with its
    kind, build parameters, and indexed row count. Keywords
    are case-insensitive; identifiers may be double-quoted; ``--``
    starts a line comment. Equivalent SQL and fluent pipelines produce
    fingerprint-identical logical plans.

    ``SHOW METRICS`` returns the session's telemetry — one row per
    counter/gauge series, histograms flattened to ``_count``/``_sum``/
    quantile rows — and ``SHOW SLOW QUERIES`` returns the catalog-
    persisted slow-query log (SQL text, fingerprint, seconds, span tree,
    counter deltas), oldest first. See :meth:`metrics`,
    :meth:`metrics_text` (Prometheus text format), :meth:`trace_json`,
    and :meth:`slow_query_log` for the programmatic surfaces.

    **Durability & recovery.** Every catalog mutation (``add``,
    ``materialize``, index builds, view refreshes, stats snapshots) runs
    as an atomic multi-file commit: before any committed page or heap
    byte is overwritten, the pre-state is captured in a checksummed
    commit journal (``catalog/journal.log``). If the process dies
    mid-mutation, the next open replays the journal — restoring page
    before-images and truncating the append-only heaps back to their
    recorded ends — so the store reopens in exactly the pre-mutation
    state (all-or-nothing, never a mix). Every pager page, blob-heap
    record, and metadata-segment block also carries a CRC32 checksum
    verified on read; silent corruption raises
    :class:`~repro.errors.CorruptionError` naming the file and offset.
    Corruption in *derived* files degrades gracefully: a bad
    ``metadata.seg`` block or stale statistics snapshot is quarantined
    and rebuilt from the blob heap (the source of truth), and the
    rebuild is counted in :meth:`metrics` (``deeplens_segment_rebuilds_
    total``, ``deeplens_corruption_detected_total``). Corruption in the
    blob heap itself — primary data — is surfaced, never papered over.

    The ``durability`` knob picks the sync policy at each commit
    barrier: ``"fsync"`` (default — flush + ``os.fsync``, survives
    power loss), ``"flush"`` (flush to the OS only, survives process
    crash but not power loss), or ``"none"`` (no journal at all — the
    pre-journal behavior, for benchmarks and throwaway stores).
    :meth:`recovery_report` shows what the last open repaired, plus a
    bounded history of past repairs persisted in the catalog.
    """

    def __init__(
        self,
        workdir: str | os.PathLike,
        *,
        execution: ExecutionContext | None = None,
        metrics_enabled: bool = True,
        slow_query_threshold: float | None = None,
        clock: Callable[[], float] | None = None,
        durability: str = "fsync",
        fs=None,
    ) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        #: engine-wide telemetry: every layer below reports into this
        #: registry. ``metrics_enabled=False`` swaps in no-op instruments
        #: (the A/B baseline the observability benchmark measures).
        self.metrics_registry = MetricsRegistry(enabled=metrics_enabled)
        #: clock behind query root spans and the slow-query threshold —
        #: injectable so threshold tests never sleep
        self._clock: Callable[[], float] = (
            clock if clock is not None else time.perf_counter
        )
        self._slow_query_threshold = slow_query_threshold
        self._metric_queries = self.metrics_registry.counter(
            "deeplens_queries_total", "queries executed"
        )
        self._metric_slow_queries = self.metrics_registry.counter(
            "deeplens_slow_queries_total",
            "queries recorded in the slow-query log",
        )
        #: span tree of the most recent top-level query (JSON-able dict)
        self._last_trace: dict | None = None
        #: session-wide execution configuration (workers, batch size,
        #: prefetch); queries override it via ``with_execution``
        base_execution = execution if execution is not None else ExecutionContext()
        self.execution = base_execution.with_metrics(self.metrics_registry)
        self.catalog = Catalog(
            os.path.join(self.workdir, "catalog"),
            metrics=self.metrics_registry,
            durability=durability,
            fs=fs,
        )
        self.optimizer = Optimizer(
            self.catalog, CostModel(), metrics=self.metrics_registry
        )
        #: lineage-keyed memo for cache=True query UDFs — LRU in memory,
        #: spilled through the catalog so results survive sessions
        self.udf_cache: UDFCache = PersistentUDFCache(
            self.catalog, metrics=self.metrics_registry
        )
        #: materialized-view registry + the planner's view-matching hook
        self.materialization = MaterializationManager(
            self.catalog,
            self.optimizer,
            self.udf_cache,
            self.execution,
            metrics=self.metrics_registry,
        )
        #: named-UDF registry shared by LensQL and the fluent API,
        #: auto-seeded with the built-in vision-model UDFs
        self.udfs = default_registry()
        self._videos: dict[str, VideoStore] = {}
        self._video_dir = os.path.join(self.workdir, "videos")
        meta = self.catalog.pager.get_meta()
        self._video_registry: dict[str, dict] = dict(meta.get("videos", {}))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        for store in self._videos.values():
            store.close()
        self._videos.clear()
        meta = self.catalog.pager.get_meta()
        meta["videos"] = self._video_registry
        self.catalog.pager.set_meta(meta)
        self.catalog.close()

    def __enter__(self) -> "DeepLens":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- storage layer ----------------------------------------------------

    def ingest_video(
        self,
        name: str,
        frames: Iterable[np.ndarray],
        *,
        layout: str = "segmented",
        **layout_kwargs,
    ) -> VideoStore:
        """Store a frame stream under one of the physical layouts."""
        if name in self._video_registry:
            raise StorageError(f"video {name!r} already ingested")
        store = open_store(layout, self._video_dir, name, **layout_kwargs)
        store.ingest(frames)
        self._videos[name] = store
        self._video_registry[name] = {"layout": layout, "kwargs": layout_kwargs}
        return store

    def video(self, name: str) -> VideoStore:
        """The store for an ingested video (reopened on demand)."""
        if name in self._videos:
            return self._videos[name]
        try:
            entry = self._video_registry[name]
        except KeyError:
            raise StorageError(
                f"no video {name!r}; have {sorted(self._video_registry)}"
            ) from None
        store = open_store(
            entry["layout"], self._video_dir, name, **dict(entry["kwargs"])
        )
        self._videos[name] = store
        return store

    def videos(self) -> list[str]:
        return sorted(self._video_registry)

    def load(self, video_name: str, filter: Expr | None = None) -> Iterator[Patch]:
        """The Load API (Section 3.1): whole-frame patches with push-down."""
        return load_patches(self.video(video_name), video_name, filter)

    # -- materialization & indexes ----------------------------------------

    def materialize(
        self,
        patches: Iterable[Patch],
        name: str,
        schema: PatchSchema | None = None,
        *,
        replace: bool = False,
    ) -> MaterializedCollection:
        return self.catalog.materialize(patches, name, schema, replace=replace)

    def collection(self, name: str) -> MaterializedCollection:
        return self.catalog.collection(name)

    def create_index(
        self,
        collection: str,
        attr: str,
        kind: str,
        *,
        feature_fn: Callable[[Patch], np.ndarray] | None = None,
        multi_value: bool = False,
        params: dict | None = None,
    ):
        """Build a secondary index (see :meth:`Catalog.create_index` for
        the kinds). For ``kind="hnsw"`` — the approximate-nearest-
        neighbor graph behind :meth:`QueryBuilder.similarity_search` —
        ``params`` carries the build knobs: ``m`` (graph degree),
        ``ef_construction`` (build beam width), ``ef``/``ef_search``
        (default search beam width) and ``seed``."""
        return self.catalog.create_index(
            collection,
            attr,
            kind,
            feature_fn=feature_fn,
            multi_value=multi_value,
            params=params,
        )

    def statistics(self, collection_name: str):
        """Cardinality statistics collected for a materialized collection
        (histograms, most-common values, distinct sketches, embedding
        dims) — what the planner's estimates and ``explain()`` rest on.
        The returned object's ``stale`` flag is True when patches were
        added after the collection's last full materialization (its
        ``staleness`` counter says how many) — the same mutation signal
        that invalidates dependent materialized views. None for
        collections materialized before statistics existed."""
        return self.catalog.statistics_for(collection_name)

    # -- materialized views ----------------------------------------------

    def materialize_view(
        self, name: str, query: "QueryBuilder", *, replace: bool = False
    ) -> MaterializedCollection:
        """Persist a query pipeline as a named derived view.

        The result is a real collection (scannable, indexable, profiled)
        plus a registered definition: any later query whose prefix
        recomputes this pipeline is rewritten to scan the view instead —
        cost-based against recomputation, across sessions — until a base
        collection mutates (then the view is stale; see
        :meth:`refresh_view`).
        """
        return self.materialization.materialize_view(
            name, query, replace=replace
        )

    def refresh_view(
        self, name: str, query: "QueryBuilder | None" = None
    ) -> MaterializedCollection:
        """Re-run a view's defining plan (after base mutations made it
        stale). In a fresh session pass the defining query back in; it is
        verified against the stored fingerprint."""
        return self.materialization.refresh_view(name, query)

    def drop_view(self, name: str) -> None:
        """Unregister a materialized view (its backing collection stays)."""
        self.materialization.drop_view(name)

    def views(self) -> list[str]:
        """Names of registered materialized views."""
        return self.materialization.views()

    def view(self, name: str) -> ViewDefinition:
        """A view's persisted definition (fingerprint, lineage, freshness)."""
        return self.materialization.view(name)

    def view_is_stale(self, name: str) -> bool:
        """True when a base collection changed since the view was built."""
        return self.materialization.is_stale(name)

    def rebuild_statistics(self, collection_name: str):
        """Recompute a collection's statistics from a full scan (for
        databases that predate statistics collection)."""
        return self.catalog.rebuild_statistics(collection_name)

    @property
    def lineage(self) -> LineageStore:
        return self.catalog.lineage

    # -- plan quality -----------------------------------------------------

    def plan_quality_log(self) -> PlanQualityLog:
        """The catalog-persisted estimate-vs-actual history that
        ``explain(analyze=True)`` / ``EXPLAIN ANALYZE`` runs feed.

        Keyed by *parameterized* plan fingerprint (literals blanked), so
        repeated executions of the same plan shape accumulate one
        history. The log doubles as the optimizer's feedback store:
        observed filter selectivities become per-predicate correction
        factors that :meth:`Optimizer.predicate_estimate` consults
        before the histogram/MCV path (source ``feedback`` in
        ``explain()``)."""
        return self.catalog.plan_quality_log()

    def _record_plan_quality(
        self, plan: logical.LogicalPlan, profile: RuntimeProfile
    ) -> None:
        if not profile.entries:
            return
        self.catalog.plan_quality_log().record(
            logical.plan_parameterized_fingerprint(plan), profile
        )

    # -- telemetry --------------------------------------------------------

    def metrics(self) -> dict:
        """Point-in-time snapshot of every engine counter, gauge, and
        histogram summary — plain dicts, safe to hold and diff."""
        return self.metrics_registry.snapshot()

    def metrics_text(self) -> str:
        """The session's metrics in Prometheus text exposition format —
        the payload a ``/metrics`` endpoint would serve unchanged."""
        return self.metrics_registry.render_prometheus()

    def recovery_report(self) -> dict:
        """What opening this store repaired: ``{"events": [...],
        "history": [...]}``. ``events`` are repairs performed by *this*
        session (journal replays, quarantined segments, rebuilt stats);
        ``history`` is the bounded repair log persisted in the catalog
        across sessions."""
        return self.catalog.recovery_report()

    def scrub(self) -> dict:
        """On-demand integrity sweep: re-verify every checksum in the
        store — pager pages, blob-heap records, metadata-segment blocks —
        without waiting for a query to stumble over damage.

        Returns ``{"pages_checked", "records_checked", "blocks_checked",
        "errors": [...]}`` where each error names the file, offset, and
        detail. Findings are also counted in
        ``deeplens_corruption_detected_total`` and recorded as
        ``scrub_corruption`` events in :meth:`recovery_report` — the
        same surfaces crash recovery reports through."""
        return self.catalog.scrub()

    def trace_json(self) -> str | None:
        """The span tree of the most recent top-level query as JSON
        (parse -> bind -> rewrite -> lower -> execute), or None before
        the first query."""
        if self._last_trace is None:
            return None
        return json.dumps(self._last_trace)

    def slow_query_log(self) -> SlowQueryLog:
        """The catalog-persisted slow-query log. Entries survive reopen;
        a ``slow_query_threshold`` passed to this session overrides the
        persisted threshold for queries run here."""
        log = self.catalog.slow_query_log()
        if self._slow_query_threshold is not None:
            log.threshold_seconds = float(self._slow_query_threshold)
        return log

    @contextmanager
    def _query_scope(self, *, sql: str | None = None) -> Iterator[Span | None]:
        """Root-trace scope around one user-level query.

        Opens the ``query`` root span, counts the query, diffs counter
        totals across the execution, and feeds the slow-query log when
        the root span crosses the threshold. Nested entries (a terminal
        driven by ``sql()``, a view build inside a query) detect the
        already-open trace and become transparent — one root per
        user-level query.
        """
        if current_span() is not None:
            yield None
            return
        before = self.metrics_registry.counter_totals()
        with trace("query", clock=self._clock) as root:
            if sql is not None:
                root.attrs["sql"] = sql
            try:
                yield root
            finally:
                root.finish()
                after = self.metrics_registry.counter_totals()
                deltas = {
                    name: value - before.get(name, 0)
                    for name, value in after.items()
                    if value != before.get(name, 0)
                }
                self._metric_queries.inc()
                self._last_trace = root.to_dict()
                recorded = self.slow_query_log().record(
                    sql=root.attrs.get("sql"),
                    fingerprint=root.attrs.get("fingerprint"),
                    seconds=root.duration_s,
                    span=self._last_trace,
                    counters=deltas,
                )
                if recorded:
                    self._metric_slow_queries.inc()

    # -- UDF registry -----------------------------------------------------

    def register_udf(
        self,
        name: str,
        fn: Callable[[Patch], Patch | list[Patch] | None],
        *,
        batch_fn: Callable[[list[Patch]], list] | None = None,
        provides: Iterable[str] | None = None,
        one_to_one: bool = False,
        cache: bool = False,
        replace: bool = False,
    ) -> UDFDefinition:
        """Register a UDF addressable by name from LensQL *and* the
        fluent API (``query.map("name")``).

        The registry stores the function object itself, so both
        frontends share one identity: plan fingerprints (materialized-
        view matching) and lineage-keyed UDF cache entries — including
        the catalog-persisted tier for named module-level functions —
        are interchangeable across SQL and fluent queries. ``provides``/
        ``one_to_one``/``cache`` carry the same contracts as
        :meth:`QueryBuilder.map`. In SQL, ``SELECT name()`` applies the
        UDF as a map, and ``SIMILARITY JOIN ... ON name`` uses ``fn`` as
        the join's feature extractor (it should return a vector then).
        """
        return self.udfs.register(
            name,
            fn,
            batch_fn=batch_fn,
            provides=None if provides is None else frozenset(provides),
            one_to_one=one_to_one,
            cache=cache,
            replace=replace,
        )

    # -- LensQL ----------------------------------------------------------

    def sql(
        self,
        text: str,
        *,
        query_vector: Any = None,
        vector_attr: str | None = None,
    ) -> Any:
        """Parse, bind, and execute one LensQL statement.

        The result depends on the statement (see the class docstring for
        the grammar): ``SELECT`` returns patches (rows of pairs after a
        similarity join, a scalar for aggregates); ``EXPLAIN`` returns
        the :class:`~repro.core.optimizer.Explanation` (``EXPLAIN
        ANALYZE`` additionally *executes* the plan and attaches the
        per-operator runtime profile — estimated vs actual rows and
        Q-error); ``CREATE
        MATERIALIZED VIEW`` / ``REFRESH VIEW`` return the backing
        collection; ``CREATE INDEX`` returns the index; ``SHOW ...``
        returns a list of dicts; ``DROP VIEW`` returns None. Malformed
        text raises :class:`~repro.errors.ParseError`, unknown names
        :class:`~repro.errors.BindError` — both positioned, with a
        caret-annotated excerpt.

        ``query_vector`` supplies the probe vector an ``ORDER BY
        SIMILARITY`` clause binds against (vectors have no literal
        syntax); ``vector_attr`` names the metadata attribute holding
        the indexed embeddings (default: the patch data itself).
        """
        with self._query_scope(sql=text):
            return self._bind_sql(
                text, query_vector=query_vector, vector_attr=vector_attr
            ).execute()

    def sql_query(
        self,
        text: str,
        *,
        query_vector: Any = None,
        vector_attr: str | None = None,
    ) -> "QueryBuilder":
        """Compile a LensQL ``SELECT`` into its :class:`QueryBuilder`
        without executing — the bridge between frontends: inspect
        ``explain()``, extend it fluently, or pass it to
        :meth:`materialize_view`. Aggregate selects have no builder
        surface for the terminal, so they are rejected here (use
        :meth:`sql`)."""
        from repro.core.sql import BoundSelect

        bound = self._bind_sql(
            text, query_vector=query_vector, vector_attr=vector_attr
        )
        if not isinstance(bound, BoundSelect):
            raise QueryError(
                "sql_query() takes a SELECT statement; use sql() for "
                "DDL/EXPLAIN/SHOW"
            )
        if bound.aggregate is not None:
            raise QueryError(
                "sql_query() cannot return a builder for an aggregate "
                "select (the terminal is part of the statement); use "
                "sql() to execute it"
            )
        return bound.builder

    def _bind_sql(
        self,
        text: str,
        *,
        query_vector: Any = None,
        vector_attr: str | None = None,
    ):
        from repro.core.sql import Binder, parse

        with span("parse"):
            statement = parse(text)
        with span("bind"):
            return Binder(
                self,
                text,
                query_vector=query_vector,
                vector_attr=vector_attr,
            ).bind(statement)

    # -- querying -----------------------------------------------------------

    def scan(self, collection_name: str, *, load_data: bool = True) -> "QueryBuilder":
        """Start a query over a materialized collection.

        ``load_data=False`` scans metadata only (patches come back with
        empty ``data``) — the fast path for label/frameno-style queries.
        """
        return QueryBuilder(
            self,
            collection_name,
            logical.Scan(collection_name, load_data=load_data),
        )


class QueryBuilder:
    """Fluent query pipeline over one collection, optimizer-planned.

    Each call appends a node to a logical plan; terminals hand the plan
    to the planner (rewrite -> lower -> physical operators) and execute
    it batched. The builder is immutable-ish: every call returns a new
    builder, so partial pipelines can be shared and extended safely.
    """

    def __init__(
        self,
        session: DeepLens,
        collection_name: str,
        plan: logical.LogicalPlan | None = None,
        *,
        allow_stale: bool = False,
        execution: ExecutionContext | None = None,
    ) -> None:
        self.session = session
        self.collection_name = collection_name
        self._plan = plan if plan is not None else logical.Scan(collection_name)
        self._allow_stale = allow_stale
        #: per-query execution override; None inherits the session's
        #: context at plan time
        self._execution = execution

    def _extend(self, plan: logical.LogicalPlan) -> "QueryBuilder":
        return QueryBuilder(
            self.session,
            self.collection_name,
            plan,
            allow_stale=self._allow_stale,
            execution=self._execution,
        )

    def allow_stale(self, allowed: bool = True) -> "QueryBuilder":
        """Let the planner reuse *stale* materialized views (a base
        collection changed since the view was built). Default off: stale
        views are recomputed from their bases instead."""
        return QueryBuilder(
            self.session,
            self.collection_name,
            self._plan,
            allow_stale=allowed,
            execution=self._execution,
        )

    def with_execution(
        self,
        *,
        workers: int | None = None,
        batch_size: int | None = None,
        prefetch_batches: int | None = None,
    ) -> "QueryBuilder":
        """Override the session's execution configuration for this query.

        ``workers`` > 1 fans UDF map batches across a thread pool
        (order-preserving) and prefetches storage batches ahead of the
        first map; ``batch_size`` pins the pipeline batch size the
        planner would otherwise pick from cardinality estimates;
        ``prefetch_batches`` sets the scan-side prefetch depth. Knobs
        left ``None`` keep their current values.
        """
        base = (
            self._execution
            if self._execution is not None
            else self.session.execution
        )
        return QueryBuilder(
            self.session,
            self.collection_name,
            self._plan,
            allow_stale=self._allow_stale,
            execution=base.override(
                workers=workers,
                batch_size=batch_size,
                prefetch_batches=prefetch_batches,
            ),
        )

    def execution_context(self) -> ExecutionContext:
        """The execution configuration this query will plan under."""
        return (
            self._execution
            if self._execution is not None
            else self.session.execution
        )

    # -- pipeline stages --------------------------------------------------

    def filter(self, expr: Expr, *, on: int = 0) -> "QueryBuilder":
        """Keep rows whose patch satisfies ``expr``; chained calls AND.

        After a join, rows are (left, right) pairs and the predicate is
        evaluated on one side only: ``on=0`` (the left patch, default) or
        ``on=1`` (the right). Filter both sides with two calls.
        """
        return self._extend(logical.Filter(self._plan, expr, on=on))

    def map(
        self,
        fn: Callable[[Patch], Patch | list[Patch] | None] | str,
        *,
        name: str | None = None,
        provides: Iterable[str] | None = None,
        batch_fn: Callable[[list[Patch]], list] | None = None,
        one_to_one: bool = False,
        cache: bool | None = None,
    ) -> "QueryBuilder":
        """Apply a UDF (one patch -> patch / list / None).

        ``fn`` may be a **registered UDF name** (see
        :meth:`DeepLens.register_udf`): the map then uses the registry's
        function object and contracts, exactly as the SQL frontend does,
        so both forms build fingerprint-identical plans and share cache
        entries. With a name, only ``cache`` may be overridden — the
        other contracts belong to the registration.

        ``provides`` declares the UDF's metadata contract — it writes
        exactly these attributes and passes all others through unchanged
        (as ``patch.derive(...)`` does) — so the rewriter knows which
        later filters commute below it. Only declare it when that holds;
        a UDF that builds fresh patches or drops attributes must leave
        it ``None`` (undeclared), which keeps every later filter above
        the map. ``batch_fn`` gives batched execution a vectorized
        implementation; ``cache=True`` memoizes results by patch lineage
        id in the session's :class:`UDFCache`.
        """
        if isinstance(fn, str):
            if name is not None or provides is not None or batch_fn is not None or one_to_one:
                raise QueryError(
                    f"map({fn!r}) resolves its contracts from the UDF "
                    f"registry; only 'cache' may be overridden"
                )
            definition = self.session.udfs.get(fn)
            return self._extend(
                logical.Map(
                    self._plan,
                    definition.fn,
                    name=definition.name,
                    provides=definition.provides,
                    batch_fn=definition.batch_fn,
                    one_to_one=definition.one_to_one,
                    cache=definition.cache if cache is None else cache,
                )
            )
        return self._extend(
            logical.Map(
                self._plan,
                fn,
                name=name if name is not None else "udf",
                provides=None if provides is None else frozenset(provides),
                batch_fn=batch_fn,
                one_to_one=one_to_one,
                cache=bool(cache),
            )
        )

    def select(self, *attrs: str, keep_data: bool = False) -> "QueryBuilder":
        """Project each patch down to the listed metadata attributes."""
        if not attrs:
            raise QueryError("select() needs at least one attribute")
        return self._extend(logical.Project(self._plan, attrs, keep_data=keep_data))

    def limit(self, n: int) -> "QueryBuilder":
        """Emit at most ``n`` rows."""
        return self._extend(logical.Limit(self._plan, n))

    def order_by(self, attr: str, *, reverse: bool = False) -> "QueryBuilder":
        """Sort by a metadata attribute; missing attributes raise at
        execution time."""
        return self._extend(logical.OrderBy(self._plan, attr, reverse=reverse))

    def similarity_join(
        self,
        other: "QueryBuilder | str",
        *,
        threshold: float,
        features: Callable[[Patch], np.ndarray] | None = None,
        dim: int | None = None,
        exclude_self: bool = False,
    ) -> "QueryBuilder":
        """Join with ``other`` on feature distance <= ``threshold``.

        The optimizer picks nested-loop vs Ball-tree (and the build side)
        from the cost model; rows become (left, right) patch pairs, so
        use :meth:`rows` / :meth:`count` rather than :meth:`patches`.
        """
        if isinstance(other, str):
            other = self.session.scan(other)
        return self._extend(
            logical.SimilarityJoin(
                self._plan,
                other._plan,
                threshold=threshold,
                features=features,
                dim=dim,
                exclude_self=exclude_self,
            )
        )

    def similarity_search(
        self,
        query: "np.ndarray | Iterable[float]",
        k: int,
        *,
        attr: str | None = None,
    ) -> "QueryBuilder":
        """Top-k nearest rows to ``query`` by Euclidean distance.

        Appends ``ORDER BY similarity LIMIT k`` to the pipeline — the
        logical pattern the rewriter collapses to an ANN top-k node, so
        the planner can serve it from an HNSW graph (approximate, with
        the expected recall shown in ``explain()``), a Ball-tree
        (exact), or a brute-force distance scan — whichever the cost
        model picks for this collection. ``attr`` names the metadata
        attribute holding the embeddings; omitted, the patch pixel data
        itself is the vector (matching ``create_index(..., "hnsw")``
        with no ``feature_fn``). Results come back nearest first.

        The SQL spelling — ``SELECT * FROM c ORDER BY SIMILARITY LIMIT
        k`` with ``query_vector=`` passed to :meth:`DeepLens.sql` —
        builds a fingerprint-identical plan.
        """
        vector = tuple(float(x) for x in np.asarray(query, dtype=np.float64).ravel())
        if not vector:
            raise QueryError("similarity_search() needs a non-empty query vector")
        ordered = logical.OrderBy(
            self._plan, "similarity", vector=vector, vector_attr=attr
        )
        return self._extend(logical.Limit(ordered, int(k)))

    # -- planning -----------------------------------------------------------

    def plan(self) -> tuple[Operator, Explanation]:
        operator, explanation = plan_pipeline(
            self.session.optimizer,
            self._plan,
            udf_cache=self.session.udf_cache,
            views=self.session.materialization,
            allow_stale=self._allow_stale,
            execution=self.execution_context(),
        )
        assert isinstance(operator, Operator)  # Aggregate only via aggregate()
        return operator, explanation

    def explain(self, *, analyze: bool = False) -> Explanation:
        """The planner's reasoning for this pipeline.

        ``analyze=True`` additionally *executes* the plan under runtime
        instrumentation and attaches a per-operator profile to the
        explanation: estimated vs actual rows and the Q-error next to
        each plan choice, plus batch counts, wall time, UDF-cache hits,
        and index probes. The observed cardinalities are recorded in the
        session's :meth:`DeepLens.plan_quality_log`, where they feed
        back as correction factors for later estimates of the same
        predicates.
        """
        if not analyze:
            _, explanation = self.plan()
            return explanation
        with self.session._query_scope() as root:
            profile = RuntimeProfile()
            operator, explanation = plan_pipeline(
                self.session.optimizer,
                self._plan,
                udf_cache=self.session.udf_cache,
                views=self.session.materialization,
                allow_stale=self._allow_stale,
                execution=self.execution_context().with_profile(profile),
            )
            assert isinstance(operator, Operator)
            self._annotate(root, self._plan)
            size = (
                explanation.execution.batch_size
                if explanation.execution is not None
                else DEFAULT_BATCH_SIZE
            )
            with span("execute"):
                for _ in operator.iter_batches(size):
                    pass
            profile.finish()
            explanation.profile = profile
            self.session._record_plan_quality(self._plan, profile)
            return explanation

    def logical_plan(self) -> logical.LogicalPlan:
        """The (un-rewritten) logical plan built so far."""
        return self._plan

    def plan_fingerprint(self) -> str:
        """Structural fingerprint of the logical plan built so far —
        what the SQL/fluent equivalence tests and the view matcher
        compare. Equivalent LensQL statements compile to plans with this
        same fingerprint."""
        return logical.plan_fingerprint(self._plan)

    # -- terminals ------------------------------------------------------

    def operator(self) -> Operator:
        operator, _ = self.plan()
        return operator

    @staticmethod
    def _annotate(root: "Span | None", plan: logical.LogicalPlan) -> None:
        """Stamp the parameterized plan fingerprint onto the query's root
        span (the one this terminal opened, or — when a ``sql()`` scope
        is already open — the active span) for the slow-query log."""
        target = root if root is not None else current_span()
        if target is not None and "fingerprint" not in target.attrs:
            target.attrs["fingerprint"] = (
                logical.plan_parameterized_fingerprint(plan)
            )

    @staticmethod
    def _resolve_batch_size(requested: Any, explanation: Explanation) -> int:
        """The batch size a terminal actually runs at: the planner's
        cardinality-driven pick when the caller left the default
        (:data:`PLANNER_CHOSEN`), the caller's explicit value otherwise."""
        if requested is not PLANNER_CHOSEN:
            return requested
        if explanation.execution is not None:
            return explanation.execution.batch_size
        return DEFAULT_BATCH_SIZE

    def patches(
        self, *, batch_size: int | None = PLANNER_CHOSEN
    ) -> list[Patch]:
        """Collect single-patch rows; batched execution by default.
        ``batch_size=None`` forces the row-at-a-time path; omitted, the
        planner's batch-size choice applies (see ``explain()``); an
        explicit value is honored exactly."""
        with self.session._query_scope() as root:
            operator, explanation = self.plan()
            if operator.arity != 1:
                raise QueryError(
                    f"patches() needs arity-1 rows; this operator yields "
                    f"{operator.arity}-tuples — use rows()"
                )
            self._annotate(root, self._plan)
            with span("execute"):
                if batch_size is None:
                    return operator.patches()
                size = self._resolve_batch_size(batch_size, explanation)
                return [
                    row[0]
                    for batch in operator.iter_batches(size)
                    for row in batch
                ]

    def rows(self, *, batch_size: int | None = PLANNER_CHOSEN) -> list[Row]:
        """Collect rows of any arity (pairs after a similarity join)."""
        with self.session._query_scope() as root:
            operator, explanation = self.plan()
            self._annotate(root, self._plan)
            with span("execute"):
                if batch_size is None:
                    return operator.collect()
                size = self._resolve_batch_size(batch_size, explanation)
                return [
                    row for batch in operator.iter_batches(size) for row in batch
                ]

    def count(self, *, batch_size: int | None = PLANNER_CHOSEN) -> int:
        # planned as a terminal Aggregate(count) — not a row collection —
        # so the planner can flip the scan underneath to the metadata
        # segment (counting never needs pixel data)
        with self.session._query_scope() as root:
            aggregate, explanation, plan = self._plan_aggregate("count")
            self._annotate(root, plan)
            with span("execute"):
                return aggregate.execute(
                    batch_size=self._resolve_batch_size(batch_size, explanation)
                )

    def _plan_aggregate(
        self,
        kind: str,
        *,
        key: Callable[[Patch], Any] | None = None,
        reducer: Callable[[list], Any] = len,
        execution: ExecutionContext | None = None,
    ) -> tuple[AggregateExecution, Explanation, logical.LogicalPlan]:
        plan = logical.Aggregate(self._plan, kind, key=key, reducer=reducer)
        aggregate, explanation = plan_pipeline(
            self.session.optimizer,
            plan,
            udf_cache=self.session.udf_cache,
            views=self.session.materialization,
            allow_stale=self._allow_stale,
            execution=execution if execution is not None else self.execution_context(),
        )
        assert isinstance(aggregate, AggregateExecution)
        return aggregate, explanation, plan

    def aggregate(
        self,
        kind: str,
        *,
        key: Callable[[Patch], Any] | None = None,
        reducer: Callable[[list], Any] = len,
    ) -> Any:
        """Run a terminal aggregate over the pipeline.

        ``kind``: ``count``, ``distinct_count`` (needs ``key``), ``avg``
        / ``min`` / ``max`` (need ``key``; empty input yields None), or
        ``group`` (needs ``key``; ``reducer`` folds each group's rows).
        Over a bare metadata-attribute key, ``min``/``max`` are answered
        from the segment's zone-map block statistics when provable —
        zero blocks decoded (the short-circuit shows in ``explain()``).
        """
        with self.session._query_scope() as root:
            aggregate, explanation, plan = self._plan_aggregate(
                kind, key=key, reducer=reducer
            )
            self._annotate(root, plan)
            with span("execute"):
                return aggregate.execute(
                    batch_size=self._resolve_batch_size(
                        PLANNER_CHOSEN, explanation
                    )
                )

    def aggregate_explain(
        self,
        kind: str,
        *,
        key: Callable[[Patch], Any] | None = None,
        reducer: Callable[[list], Any] = len,
        analyze: bool = False,
    ) -> Explanation:
        """The planner's explanation for this pipeline under a terminal
        aggregate (what ``EXPLAIN SELECT count(*) ...`` shows).
        ``analyze=True`` executes the aggregate under instrumentation
        and attaches the runtime profile, as :meth:`explain` does."""
        if not analyze:
            _, explanation, _ = self._plan_aggregate(
                kind, key=key, reducer=reducer
            )
            return explanation
        with self.session._query_scope() as root:
            profile = RuntimeProfile()
            aggregate, explanation, plan = self._plan_aggregate(
                kind,
                key=key,
                reducer=reducer,
                execution=self.execution_context().with_profile(profile),
            )
            self._annotate(root, plan)
            with span("execute"):
                aggregate.execute(
                    batch_size=self._resolve_batch_size(
                        PLANNER_CHOSEN, explanation
                    )
                )
            profile.finish()
            explanation.profile = profile
            self.session._record_plan_quality(plan, profile)
            return explanation

    def distinct_count(self, key: Callable[[Patch], object]) -> int:
        return self.aggregate("distinct_count", key=key)

    def avg(self, key: Callable[[Patch], Any]) -> float | None:
        """Mean of ``key`` over the pipeline's rows (None when empty)."""
        return self.aggregate("avg", key=key)

    def min_of(self, attr: str) -> Any:
        """Smallest non-None value of a metadata attribute (None when
        empty). Served from zone-map block statistics when provable."""
        return self.aggregate("min", key=attribute_key(attr))

    def max_of(self, attr: str) -> Any:
        """Largest non-None value of a metadata attribute (None when
        empty). Served from zone-map block statistics when provable."""
        return self.aggregate("max", key=attribute_key(attr))

    def first(self) -> Patch:
        with self.session._query_scope() as root:
            operator = self.operator()
            if operator.arity != 1:
                raise QueryError(
                    f"first() needs arity-1 rows; this operator yields "
                    f"{operator.arity}-tuples — use rows()"
                )
            self._annotate(root, self._plan)
            with span("execute"):
                for (patch,) in operator:
                    return patch
            raise QueryError(
                f"query over {self.collection_name!r} returned no patches"
            )
