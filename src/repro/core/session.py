"""The DeepLens session: the library's top-level API.

One :class:`DeepLens` instance owns a database directory — video stores,
the patch catalog, lineage, indexes — and exposes the workflow of Figure 1:

    ingest (storage layer) -> load -> ETL -> materialize -> query

Example::

    with DeepLens(workdir) as db:
        db.ingest_video("cam0", dataset.frames(), layout="segmented")
        detections = pipeline.run(db.load("cam0"))
        db.materialize(detections, "detections")
        db.create_index("detections", "label", "hash")
        n_vehicles = (
            db.scan("detections").filter(Attr("label") == "vehicle").count()
        )
"""

from __future__ import annotations

import os
from typing import Callable, Iterable, Iterator

import numpy as np

from repro.core.catalog import Catalog, MaterializedCollection
from repro.core.expressions import Expr
from repro.core.lineage import LineageStore
from repro.core.operators import Operator
from repro.core.optimizer import CostModel, Explanation, Optimizer
from repro.core.patch import Patch
from repro.core.schema import PatchSchema
from repro.errors import QueryError, StorageError
from repro.storage.formats import VideoStore, load_patches, open_store


class DeepLens:
    """A visual data management session over one database directory."""

    def __init__(self, workdir: str | os.PathLike) -> None:
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        self.catalog = Catalog(os.path.join(self.workdir, "catalog"))
        self.optimizer = Optimizer(self.catalog, CostModel())
        self._videos: dict[str, VideoStore] = {}
        self._video_dir = os.path.join(self.workdir, "videos")
        meta = self.catalog.pager.get_meta()
        self._video_registry: dict[str, dict] = dict(meta.get("videos", {}))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        for store in self._videos.values():
            store.close()
        self._videos.clear()
        meta = self.catalog.pager.get_meta()
        meta["videos"] = self._video_registry
        self.catalog.pager.set_meta(meta)
        self.catalog.close()

    def __enter__(self) -> "DeepLens":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- storage layer ----------------------------------------------------

    def ingest_video(
        self,
        name: str,
        frames: Iterable[np.ndarray],
        *,
        layout: str = "segmented",
        **layout_kwargs,
    ) -> VideoStore:
        """Store a frame stream under one of the physical layouts."""
        if name in self._video_registry:
            raise StorageError(f"video {name!r} already ingested")
        store = open_store(layout, self._video_dir, name, **layout_kwargs)
        store.ingest(frames)
        self._videos[name] = store
        self._video_registry[name] = {"layout": layout, "kwargs": layout_kwargs}
        return store

    def video(self, name: str) -> VideoStore:
        """The store for an ingested video (reopened on demand)."""
        if name in self._videos:
            return self._videos[name]
        try:
            entry = self._video_registry[name]
        except KeyError:
            raise StorageError(
                f"no video {name!r}; have {sorted(self._video_registry)}"
            ) from None
        store = open_store(
            entry["layout"], self._video_dir, name, **dict(entry["kwargs"])
        )
        self._videos[name] = store
        return store

    def videos(self) -> list[str]:
        return sorted(self._video_registry)

    def load(self, video_name: str, filter: Expr | None = None) -> Iterator[Patch]:
        """The Load API (Section 3.1): whole-frame patches with push-down."""
        return load_patches(self.video(video_name), video_name, filter)

    # -- materialization & indexes ----------------------------------------

    def materialize(
        self,
        patches: Iterable[Patch],
        name: str,
        schema: PatchSchema | None = None,
        *,
        replace: bool = False,
    ) -> MaterializedCollection:
        return self.catalog.materialize(patches, name, schema, replace=replace)

    def collection(self, name: str) -> MaterializedCollection:
        return self.catalog.collection(name)

    def create_index(
        self,
        collection: str,
        attr: str,
        kind: str,
        *,
        feature_fn: Callable[[Patch], np.ndarray] | None = None,
        multi_value: bool = False,
    ):
        return self.catalog.create_index(
            collection, attr, kind, feature_fn=feature_fn, multi_value=multi_value
        )

    @property
    def lineage(self) -> LineageStore:
        return self.catalog.lineage

    # -- querying -----------------------------------------------------------

    def scan(self, collection_name: str) -> "QueryBuilder":
        """Start a query over a materialized collection."""
        return QueryBuilder(self, collection_name)


class QueryBuilder:
    """Fluent select-project query over one collection, optimizer-planned."""

    def __init__(self, session: DeepLens, collection_name: str) -> None:
        self.session = session
        self.collection_name = collection_name
        self._filter: Expr | None = None

    def filter(self, expr: Expr) -> "QueryBuilder":
        if self._filter is None:
            self._filter = expr
        else:
            self._filter = self._filter & expr
        return self

    # -- planning -----------------------------------------------------------

    def plan(self) -> tuple[Operator, Explanation]:
        return self.session.optimizer.plan_filter(self.collection_name, self._filter)

    def explain(self) -> Explanation:
        _, explanation = self.plan()
        return explanation

    # -- terminals ------------------------------------------------------

    def operator(self) -> Operator:
        operator, _ = self.plan()
        return operator

    def patches(self) -> list[Patch]:
        return self.operator().patches()

    def count(self) -> int:
        return self.operator().count()

    def distinct_count(self, key: Callable[[Patch], object]) -> int:
        seen = set()
        for (patch,) in self.operator():
            seen.add(key(patch))
        return len(seen)

    def first(self) -> Patch:
        for (patch,) in self.operator():
            return patch
        raise QueryError(
            f"query over {self.collection_name!r} returned no patches"
        )
