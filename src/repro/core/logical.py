"""Logical query plan IR.

The fluent :class:`~repro.core.session.QueryBuilder` API builds a tree of
these nodes instead of physical operators. Between the builder and the
physical plan sit two passes:

* the **rewriter** (:mod:`repro.core.optimizer.rewriter`) applies
  rule-based logical rewrites — filter-conjunct splitting, predicate
  push-down below UDF maps, limit push-down, UDF memoization — the
  DeepLens Section 5 story of reordering inference and filters;
* **lowering** (:mod:`repro.core.optimizer.lowering`) turns the rewritten
  tree into physical operators, delegating access-path and join-strategy
  selection to the cost-based :class:`~repro.core.optimizer.Optimizer`.

Nodes are immutable; rewrites produce new trees via :meth:`with_children`.
"""

from __future__ import annotations

import hashlib

from dataclasses import dataclass, fields, replace
from typing import Any, Callable

import numpy as np

from repro.core.expressions import (
    AlwaysTrue,
    And,
    Between,
    Comparison,
    Expr,
    Not,
    Or,
    Predicate,
)
from repro.core.patch import Patch
from repro.errors import QueryError


def expr_attrs(expr: Expr) -> frozenset[str] | None:
    """The set of metadata attributes an expression reads.

    Returns ``None`` when the set is unknowable (an opaque
    :class:`Predicate` appears anywhere in the tree) — callers must then
    treat the expression as touching *everything*, which blocks push-down.
    """
    if isinstance(expr, (Comparison, Between)):
        return frozenset({expr.attr})
    if isinstance(expr, AlwaysTrue):
        return frozenset()
    if isinstance(expr, (And, Or)):
        out: frozenset[str] = frozenset()
        for child in expr.children:
            child_attrs = expr_attrs(child)
            if child_attrs is None:
                return None
            out |= child_attrs
        return out
    if isinstance(expr, Not):
        return expr_attrs(expr.child)
    if isinstance(expr, Predicate):
        return None
    return None


@dataclass(frozen=True, eq=False)
class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return tuple(
            value
            for f in fields(self)
            if isinstance(value := getattr(self, f.name), LogicalPlan)
        )

    def with_children(self, *new_children: "LogicalPlan") -> "LogicalPlan":
        """Copy of this node with its child slots replaced, in field order."""
        updates: dict[str, LogicalPlan] = {}
        position = 0
        for f in fields(self):
            if isinstance(getattr(self, f.name), LogicalPlan):
                if position >= len(new_children):
                    raise QueryError(
                        f"{type(self).__name__}.with_children: too few children"
                    )
                updates[f.name] = new_children[position]
                position += 1
        if position < len(new_children):
            raise QueryError(
                f"{type(self).__name__}.with_children: too many children"
            )
        return replace(self, **updates)

    def label(self) -> str:
        return type(self).__name__

    def describe(self, indent: int = 0) -> str:
        """Indented tree rendering, root first."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True, eq=False)
class Scan(LogicalPlan):
    """Leaf: read a materialized collection."""

    collection: str
    load_data: bool = True

    def label(self) -> str:
        return f"Scan({self.collection})"


@dataclass(frozen=True, eq=False)
class Filter(LogicalPlan):
    """Keep rows whose ``on``-th patch satisfies ``expr``.

    ``on`` only matters above a join (rows are pairs there); it is 0 —
    the left patch — unless the caller says otherwise.
    """

    child: LogicalPlan
    expr: Expr
    on: int = 0

    def label(self) -> str:
        side = f"[on={self.on}]" if self.on else ""
        return f"Filter{side}{self.expr!r}"


@dataclass(frozen=True, eq=False)
class Map(LogicalPlan):
    """Apply a patch -> patch(es) UDF.

    ``provides`` declares the UDF's metadata contract: it writes exactly
    these attributes and passes every other attribute through unchanged
    (which :meth:`Patch.derive` does naturally) — the promise predicate
    push-down relies on, since a pushed filter reads pre-UDF attributes
    on post-UDF rows. A UDF that builds fresh patches or drops
    attributes must not declare ``provides``. ``None`` (the default)
    means *undeclared*: the UDF may write or drop anything, so no filter
    is pushed below it; an explicit empty set asserts the UDF writes
    nothing and preserves everything. ``batch_fn`` is an optional
    vectorized implementation taking a list of patches and returning one
    result per input. ``one_to_one`` promises the UDF emits exactly one
    patch per input (enables limit push-down); ``cache`` memoizes
    results keyed by patch lineage id (EVA-style inference caching).
    """

    child: LogicalPlan
    fn: Callable[[Patch], Patch | list[Patch] | None]
    name: str = "udf"
    provides: frozenset[str] | None = None
    batch_fn: Callable[[list[Patch]], list[Patch | list[Patch] | None]] | None = None
    one_to_one: bool = False
    cache: bool = False

    def label(self) -> str:
        extras = []
        if self.cache:
            extras.append("cached")
        if self.provides is not None:
            extras.append(f"provides={sorted(self.provides)}")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"Map({self.name}){suffix}"


@dataclass(frozen=True, eq=False)
class Project(LogicalPlan):
    """Keep only the listed metadata attributes (and drop pixel data
    unless ``keep_data``)."""

    child: LogicalPlan
    attrs: tuple[str, ...]
    keep_data: bool = False

    def label(self) -> str:
        return f"Project({', '.join(self.attrs)})"


@dataclass(frozen=True, eq=False)
class Limit(LogicalPlan):
    """Emit at most ``n`` rows."""

    child: LogicalPlan
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise QueryError(f"limit must be non-negative, got {self.n}")

    def label(self) -> str:
        return f"Limit({self.n})"


@dataclass(frozen=True, eq=False)
class OrderBy(LogicalPlan):
    """Sort rows by a metadata attribute (pipeline breaker).

    The special attribute ``"similarity"`` orders by distance to a query
    vector: ``vector`` holds the query embedding and ``vector_attr`` the
    metadata attribute (or ``"data"``) the distance is measured against.
    ``OrderBy(similarity) + Limit(k)`` is the top-k similarity pattern
    the rewriter collapses into :class:`AnnTopK` — both the fluent
    ``similarity_search()`` and SQL ``ORDER BY similarity LIMIT k``
    build exactly this shape, so the two frontends share fingerprints.
    """

    child: LogicalPlan
    attr: str
    reverse: bool = False
    vector: tuple[float, ...] | None = None
    vector_attr: str | None = None

    def label(self) -> str:
        direction = " desc" if self.reverse else ""
        if self.vector is not None:
            return (
                f"OrderBy(similarity to {self.vector_attr}"
                f"[{len(self.vector)}d]{direction})"
            )
        return f"OrderBy({self.attr}{direction})"


@dataclass(frozen=True, eq=False)
class AnnTopK(LogicalPlan):
    """The ``k`` rows nearest to ``query`` in ``attr``'s vector space,
    nearest first — the rewriter's collapsed form of
    ``OrderBy(similarity) + Limit(k)``. Lowering picks the access path:
    an HNSW graph probe, a BallTree k-NN, or an exact scan-and-select.
    """

    child: LogicalPlan
    attr: str
    query: tuple[float, ...]
    k: int

    def __post_init__(self) -> None:
        if self.k <= 0:
            raise QueryError(f"top-k similarity needs k > 0, got {self.k}")
        if not self.query:
            raise QueryError("top-k similarity needs a non-empty query vector")

    def label(self) -> str:
        return f"AnnTopK(k={self.k}, attr={self.attr})"


@dataclass(frozen=True, eq=False)
class SimilarityJoin(LogicalPlan):
    """Pairs of (left, right) patches within ``threshold`` in feature space."""

    left: LogicalPlan
    right: LogicalPlan
    threshold: float
    features: Callable[[Patch], np.ndarray] | None = None
    dim: int | None = None
    exclude_self: bool = False

    def label(self) -> str:
        return f"SimilarityJoin(threshold={self.threshold})"


#: supported aggregate kinds -> required arguments
AGGREGATE_KINDS = ("count", "distinct_count", "avg", "min", "max", "group")


@dataclass(frozen=True, eq=False)
class Aggregate(LogicalPlan):
    """Terminal reduction over the child's rows.

    ``kind`` is one of :data:`AGGREGATE_KINDS`; ``key`` maps the row's
    first patch to a grouping/dedup key (for ``avg``, to the numeric
    value averaged); ``reducer`` folds each group's row list (group kind
    only).
    """

    child: LogicalPlan
    kind: str
    key: Callable[[Patch], Any] | None = None
    reducer: Callable[[list], Any] = len

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise QueryError(
                f"unknown aggregate kind {self.kind!r}; "
                f"expected one of {AGGREGATE_KINDS}"
            )
        if (
            self.kind in ("distinct_count", "avg", "min", "max", "group")
            and self.key is None
        ):
            raise QueryError(f"aggregate kind {self.kind!r} needs a key function")
        # reject arguments the kind would silently ignore — a key on
        # 'count' almost certainly meant 'distinct_count' or 'group'
        if self.kind == "count" and self.key is not None:
            raise QueryError(
                "aggregate kind 'count' takes no key; use 'distinct_count' "
                "or 'group'"
            )
        if self.kind != "group" and self.reducer is not len:
            raise QueryError(
                f"aggregate kind {self.kind!r} takes no reducer; only "
                f"'group' reduces"
            )

    def label(self) -> str:
        return f"Aggregate({self.kind})"


# -- structural fingerprinting ------------------------------------------------
#
# Materialized views (:mod:`repro.core.materialization`) persist the
# fingerprint of their defining plan so the planner can recognize an
# incoming plan whose prefix recomputes a stored view. Fingerprints are
# *structural*: two plans match only if they name the same collections,
# the same predicates (by DSL structure), and the same callables.


def callable_identity(fn: Callable) -> str:
    """A stable identity string for a plan callable (UDF, feature fn).

    Module-level functions identify by ``module.qualname`` plus a digest
    of their bytecode, constants, and defaults — stable across sessions
    (the property persistent view fingerprints and the catalog-backed
    UDF cache rely on) but *changed when the function body changes*, so
    editing a UDF's source invalidates its persisted results and view
    matches instead of silently serving stale outputs. Lambdas,
    closures, and other callables without a stable import path fall
    back to including ``id(fn)``: still a sound identity *within* the
    session (the plan registry keeps registered callables alive, so ids
    cannot be reused by a different function), but never matchable from
    a later session.
    """
    module = getattr(fn, "__module__", None) or "?"
    qualname = getattr(fn, "__qualname__", None) or type(fn).__name__
    if callable_is_portable(fn):
        digest = _callable_code_digest(fn)
        if digest is not None:
            return f"{module}.{qualname}@{digest}"
        return f"{module}.{qualname}"
    return f"{module}.{qualname}#{id(fn)}"


def _callable_code_digest(fn: Callable) -> str | None:
    """Digest of a function's behaviour-bearing parts (bytecode,
    constants — recursing into nested code objects, whose repr embeds a
    memory address — and argument defaults). None for callables without
    Python code (builtins, C extensions): their qualname must suffice."""
    code = getattr(fn, "__code__", None)
    if code is None:
        code = getattr(getattr(fn, "__func__", None), "__code__", None)
    if code is None:
        return None
    digest = hashlib.blake2b(digest_size=8)

    def feed(c) -> None:
        digest.update(c.co_code)
        for const in c.co_consts:
            if isinstance(const, type(c)):
                feed(const)
            else:
                digest.update(repr(const).encode())

    feed(code)
    digest.update(repr(getattr(fn, "__defaults__", None)).encode())
    return digest.hexdigest()


def callable_is_portable(fn: Callable) -> bool:
    """True when ``fn``'s identity survives interpreter restarts (a named
    function importable from a real module path)."""
    module = getattr(fn, "__module__", None)
    qualname = getattr(fn, "__qualname__", None)
    if not module or not qualname:
        return False
    return "<lambda>" not in qualname and "<locals>" not in qualname


def _expr_signature(expr: Expr | None, *, parameterized: bool = False) -> tuple:
    if expr is None or isinstance(expr, AlwaysTrue):
        return ("true",)
    if isinstance(expr, Comparison):
        value = "?" if parameterized else repr(expr.value)
        return ("cmp", expr.attr, expr.op, value)
    if isinstance(expr, Between):
        if parameterized:
            return ("between", expr.attr, "?", "?")
        return ("between", expr.attr, repr(expr.lo), repr(expr.hi))
    if isinstance(expr, (And, Or)):
        kind = "and" if isinstance(expr, And) else "or"
        return (
            kind,
            tuple(
                _expr_signature(child, parameterized=parameterized)
                for child in expr.children
            ),
        )
    if isinstance(expr, Not):
        return ("not", _expr_signature(expr.child, parameterized=parameterized))
    if isinstance(expr, Predicate):
        return ("pred", expr.name, callable_identity(expr.fn))
    return ("expr", repr(expr))


def expr_signature_key(expr: Expr | None) -> str:
    """A canonical string key for a predicate expression, constants
    included — the exact-shape key the plan-quality feedback loop records
    observed selectivities under."""
    return repr(_expr_signature(expr))


def plan_signature(
    plan: LogicalPlan, *, parameterized: bool = False
) -> tuple:
    """A canonical nested-tuple rendering of a plan's structure.

    Execution details that cannot change a plan's *output* — a map's
    ``batch_fn`` (by contract an equivalent vectorization of ``fn``) and
    its ``cache`` flag — are excluded, so pipelines that differ only in
    how they execute still share a signature.

    With ``parameterized=True`` the literal constants inside predicate
    expressions and join thresholds are replaced by ``"?"`` — the
    prepared-statement view of the plan, under which ``label = 'car'``
    and ``label = 'bus'`` share one signature.
    """
    if isinstance(plan, Scan):
        return ("scan", plan.collection, plan.load_data)
    if isinstance(plan, Filter):
        return (
            "filter",
            plan_signature(plan.child, parameterized=parameterized),
            _expr_signature(plan.expr, parameterized=parameterized),
            plan.on,
        )
    if isinstance(plan, Map):
        return (
            "map",
            plan_signature(plan.child, parameterized=parameterized),
            plan.name,
            callable_identity(plan.fn),
            None if plan.provides is None else tuple(sorted(plan.provides)),
            plan.one_to_one,
        )
    if isinstance(plan, Project):
        return (
            "project",
            plan_signature(plan.child, parameterized=parameterized),
            plan.attrs,
            plan.keep_data,
        )
    if isinstance(plan, Limit):
        return ("limit", plan_signature(plan.child, parameterized=parameterized), plan.n)
    if isinstance(plan, OrderBy):
        if plan.vector is not None:
            return (
                "orderby-similarity",
                plan_signature(plan.child, parameterized=parameterized),
                plan.vector_attr,
                plan.reverse,
                "?" if parameterized else repr(plan.vector),
            )
        return (
            "orderby",
            plan_signature(plan.child, parameterized=parameterized),
            plan.attr,
            plan.reverse,
        )
    if isinstance(plan, AnnTopK):
        return (
            "ann-topk",
            plan_signature(plan.child, parameterized=parameterized),
            plan.attr,
            plan.k,
            "?" if parameterized else repr(plan.query),
        )
    if isinstance(plan, SimilarityJoin):
        return (
            "simjoin",
            plan_signature(plan.left, parameterized=parameterized),
            plan_signature(plan.right, parameterized=parameterized),
            "?" if parameterized else repr(plan.threshold),
            None if plan.features is None else callable_identity(plan.features),
            plan.dim,
            plan.exclude_self,
        )
    if isinstance(plan, Aggregate):
        return (
            "aggregate",
            plan_signature(plan.child, parameterized=parameterized),
            plan.kind,
            None if plan.key is None else callable_identity(plan.key),
            callable_identity(plan.reducer),
        )
    raise QueryError(f"cannot fingerprint logical node {plan.label()}")


def plan_fingerprint(plan: LogicalPlan) -> str:
    """Hex digest of :func:`plan_signature` — the persistable form."""
    payload = repr(plan_signature(plan)).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def plan_parameterized_fingerprint(plan: LogicalPlan) -> str:
    """Hex digest of the *parameterized* plan signature (literals
    stripped) — the key the :class:`~repro.core.profile.PlanQualityLog`
    groups estimate/actual history under."""
    payload = repr(plan_signature(plan, parameterized=True)).encode()
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


def plan_is_portable(plan: LogicalPlan) -> bool:
    """True when every callable in the plan has a session-independent
    identity, so its fingerprint can match plans built in later sessions."""
    portable = True

    def visit(node: LogicalPlan) -> None:
        nonlocal portable
        for attr in ("fn", "features", "key", "reducer"):
            value = getattr(node, attr, None)
            if callable(value) and value is not len and not callable_is_portable(value):
                portable = False
        if isinstance(node, Filter):
            for leaf in _predicate_leaves(node.expr):
                if not callable_is_portable(leaf.fn):
                    portable = False
        for child in node.children():
            visit(child)

    visit(plan)
    return portable


def _predicate_leaves(expr: Expr) -> list[Predicate]:
    if isinstance(expr, Predicate):
        return [expr]
    if isinstance(expr, (And, Or)):
        return [leaf for child in expr.children for leaf in _predicate_leaves(child)]
    if isinstance(expr, Not):
        return _predicate_leaves(expr.child)
    return []


def scanned_collections(plan: LogicalPlan) -> list[str]:
    """Every materialized collection a plan reads, in scan order —
    a view's *lineage*: the bases whose mutations invalidate it."""
    out: list[str] = []
    if isinstance(plan, Scan):
        out.append(plan.collection)
    for child in plan.children():
        for name in scanned_collections(child):
            if name not in out:
                out.append(name)
    return out
