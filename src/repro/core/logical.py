"""Logical query plan IR.

The fluent :class:`~repro.core.session.QueryBuilder` API builds a tree of
these nodes instead of physical operators. Between the builder and the
physical plan sit two passes:

* the **rewriter** (:mod:`repro.core.optimizer.rewriter`) applies
  rule-based logical rewrites — filter-conjunct splitting, predicate
  push-down below UDF maps, limit push-down, UDF memoization — the
  DeepLens Section 5 story of reordering inference and filters;
* **lowering** (:mod:`repro.core.optimizer.lowering`) turns the rewritten
  tree into physical operators, delegating access-path and join-strategy
  selection to the cost-based :class:`~repro.core.optimizer.Optimizer`.

Nodes are immutable; rewrites produce new trees via :meth:`with_children`.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Any, Callable

import numpy as np

from repro.core.expressions import (
    AlwaysTrue,
    And,
    Between,
    Comparison,
    Expr,
    Not,
    Or,
    Predicate,
)
from repro.core.patch import Patch
from repro.errors import QueryError


def expr_attrs(expr: Expr) -> frozenset[str] | None:
    """The set of metadata attributes an expression reads.

    Returns ``None`` when the set is unknowable (an opaque
    :class:`Predicate` appears anywhere in the tree) — callers must then
    treat the expression as touching *everything*, which blocks push-down.
    """
    if isinstance(expr, (Comparison, Between)):
        return frozenset({expr.attr})
    if isinstance(expr, AlwaysTrue):
        return frozenset()
    if isinstance(expr, (And, Or)):
        out: frozenset[str] = frozenset()
        for child in expr.children:
            child_attrs = expr_attrs(child)
            if child_attrs is None:
                return None
            out |= child_attrs
        return out
    if isinstance(expr, Not):
        return expr_attrs(expr.child)
    if isinstance(expr, Predicate):
        return None
    return None


@dataclass(frozen=True, eq=False)
class LogicalPlan:
    """Base class for logical plan nodes."""

    def children(self) -> tuple["LogicalPlan", ...]:
        return tuple(
            value
            for f in fields(self)
            if isinstance(value := getattr(self, f.name), LogicalPlan)
        )

    def with_children(self, *new_children: "LogicalPlan") -> "LogicalPlan":
        """Copy of this node with its child slots replaced, in field order."""
        updates: dict[str, LogicalPlan] = {}
        remaining = list(new_children)
        for f in fields(self):
            if isinstance(getattr(self, f.name), LogicalPlan):
                if not remaining:
                    raise QueryError(
                        f"{type(self).__name__}.with_children: too few children"
                    )
                updates[f.name] = remaining.pop(0)
        if remaining:
            raise QueryError(
                f"{type(self).__name__}.with_children: too many children"
            )
        return replace(self, **updates)

    def label(self) -> str:
        return type(self).__name__

    def describe(self, indent: int = 0) -> str:
        """Indented tree rendering, root first."""
        lines = ["  " * indent + self.label()]
        for child in self.children():
            lines.append(child.describe(indent + 1))
        return "\n".join(lines)


@dataclass(frozen=True, eq=False)
class Scan(LogicalPlan):
    """Leaf: read a materialized collection."""

    collection: str
    load_data: bool = True

    def label(self) -> str:
        return f"Scan({self.collection})"


@dataclass(frozen=True, eq=False)
class Filter(LogicalPlan):
    """Keep rows whose ``on``-th patch satisfies ``expr``.

    ``on`` only matters above a join (rows are pairs there); it is 0 —
    the left patch — unless the caller says otherwise.
    """

    child: LogicalPlan
    expr: Expr
    on: int = 0

    def label(self) -> str:
        side = f"[on={self.on}]" if self.on else ""
        return f"Filter{side}{self.expr!r}"


@dataclass(frozen=True, eq=False)
class Map(LogicalPlan):
    """Apply a patch -> patch(es) UDF.

    ``provides`` declares the UDF's metadata contract: it writes exactly
    these attributes and passes every other attribute through unchanged
    (which :meth:`Patch.derive` does naturally) — the promise predicate
    push-down relies on, since a pushed filter reads pre-UDF attributes
    on post-UDF rows. A UDF that builds fresh patches or drops
    attributes must not declare ``provides``. ``None`` (the default)
    means *undeclared*: the UDF may write or drop anything, so no filter
    is pushed below it; an explicit empty set asserts the UDF writes
    nothing and preserves everything. ``batch_fn`` is an optional
    vectorized implementation taking a list of patches and returning one
    result per input. ``one_to_one`` promises the UDF emits exactly one
    patch per input (enables limit push-down); ``cache`` memoizes
    results keyed by patch lineage id (EVA-style inference caching).
    """

    child: LogicalPlan
    fn: Callable[[Patch], Patch | list[Patch] | None]
    name: str = "udf"
    provides: frozenset[str] | None = None
    batch_fn: Callable[[list[Patch]], list[Patch | list[Patch] | None]] | None = None
    one_to_one: bool = False
    cache: bool = False

    def label(self) -> str:
        extras = []
        if self.cache:
            extras.append("cached")
        if self.provides is not None:
            extras.append(f"provides={sorted(self.provides)}")
        suffix = f" [{', '.join(extras)}]" if extras else ""
        return f"Map({self.name}){suffix}"


@dataclass(frozen=True, eq=False)
class Project(LogicalPlan):
    """Keep only the listed metadata attributes (and drop pixel data
    unless ``keep_data``)."""

    child: LogicalPlan
    attrs: tuple[str, ...]
    keep_data: bool = False

    def label(self) -> str:
        return f"Project({', '.join(self.attrs)})"


@dataclass(frozen=True, eq=False)
class Limit(LogicalPlan):
    """Emit at most ``n`` rows."""

    child: LogicalPlan
    n: int

    def __post_init__(self) -> None:
        if self.n < 0:
            raise QueryError(f"limit must be non-negative, got {self.n}")

    def label(self) -> str:
        return f"Limit({self.n})"


@dataclass(frozen=True, eq=False)
class OrderBy(LogicalPlan):
    """Sort rows by a metadata attribute (pipeline breaker)."""

    child: LogicalPlan
    attr: str
    reverse: bool = False

    def label(self) -> str:
        direction = " desc" if self.reverse else ""
        return f"OrderBy({self.attr}{direction})"


@dataclass(frozen=True, eq=False)
class SimilarityJoin(LogicalPlan):
    """Pairs of (left, right) patches within ``threshold`` in feature space."""

    left: LogicalPlan
    right: LogicalPlan
    threshold: float
    features: Callable[[Patch], np.ndarray] | None = None
    dim: int | None = None
    exclude_self: bool = False

    def label(self) -> str:
        return f"SimilarityJoin(threshold={self.threshold})"


#: supported aggregate kinds -> required arguments
AGGREGATE_KINDS = ("count", "distinct_count", "group")


@dataclass(frozen=True, eq=False)
class Aggregate(LogicalPlan):
    """Terminal reduction over the child's rows.

    ``kind`` is one of :data:`AGGREGATE_KINDS`; ``key`` maps the row's
    first patch to a grouping/dedup key; ``reducer`` folds each group's
    row list (group kind only).
    """

    child: LogicalPlan
    kind: str
    key: Callable[[Patch], Any] | None = None
    reducer: Callable[[list], Any] = len

    def __post_init__(self) -> None:
        if self.kind not in AGGREGATE_KINDS:
            raise QueryError(
                f"unknown aggregate kind {self.kind!r}; "
                f"expected one of {AGGREGATE_KINDS}"
            )
        if self.kind in ("distinct_count", "group") and self.key is None:
            raise QueryError(f"aggregate kind {self.kind!r} needs a key function")
        # reject arguments the kind would silently ignore — a key on
        # 'count' almost certainly meant 'distinct_count' or 'group'
        if self.kind == "count" and self.key is not None:
            raise QueryError(
                "aggregate kind 'count' takes no key; use 'distinct_count' "
                "or 'group'"
            )
        if self.kind != "group" and self.reducer is not len:
            raise QueryError(
                f"aggregate kind {self.kind!r} takes no reducer; only "
                f"'group' reduces"
            )

    def label(self) -> str:
        return f"Aggregate({self.kind})"
