"""Instrumentation wrappers for ``explain(analyze=True)``.

Two transparent operators inserted by the lowering when an
:class:`~repro.core.profile.RuntimeProfile` rides on the
:class:`~repro.core.executor.ExecutionContext`:

* :class:`ProfiledOperator` wraps a lowered operator and times each pull,
  counting output rows and batches into its
  :class:`~repro.core.profile.OperatorProfile` entry;
* :class:`InputProbe` sits at the *base* of a scan group (between the
  storage scan and its residual selects) and counts the rows the storage
  layer actually produced — which for index scans is the probe count.

Both forward ``child``/``arity``/``pipeline_breaker`` so structural walks
(`Limit`'s breaker detection, prefetch eligibility) see through them, and
both preserve batch boundaries exactly, so profiled execution is
bit-identical to unprofiled execution — just counted.
"""

from __future__ import annotations

import time

from typing import Iterator

from repro.core.operators.base import DEFAULT_BATCH_SIZE, Batch, Operator
from repro.core.patch import Row
from repro.core.profile import OperatorProfile


class ProfiledOperator(Operator):
    """Counts and times ``child``'s output into a profile entry.

    Timing is inclusive — each pull's duration covers the whole subtree
    below, so an operator's *self* time is its entry's seconds minus its
    children's. The entry is marked exhausted only when the child raises
    ``StopIteration``; a limit above that stops pulling early leaves the
    flag unset, which keeps truncated counts out of the feedback loop.
    """

    def __init__(self, child: Operator, entry: OperatorProfile) -> None:
        self.child = child
        self.entry = entry
        self.arity = child.arity

    @property
    def pipeline_breaker(self) -> bool:  # type: ignore[override]
        return self.child.pipeline_breaker

    def __iter__(self) -> Iterator[Row]:
        entry = self.entry
        source = iter(self.child)
        while True:
            started = time.perf_counter()
            try:
                row = next(source)
            except StopIteration:
                entry.add_time(time.perf_counter() - started)
                entry.mark_exhausted()
                return
            entry.add_rows(1, time.perf_counter() - started)
            yield row

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        entry = self.entry
        source = self.child.iter_batches(size)
        while True:
            started = time.perf_counter()
            try:
                batch = next(source)
            except StopIteration:
                entry.add_time(time.perf_counter() - started)
                entry.mark_exhausted()
                return
            entry.add_batch(len(batch), time.perf_counter() - started)
            yield batch


class InputProbe(Operator):
    """Counts ``child``'s output as a profile entry's *input* rows.

    Inserted directly above the storage scan of a profiled scan group;
    with ``index_probes=True`` (index-backed scans) every row counted is
    also an index probe.
    """

    def __init__(
        self,
        child: Operator,
        entry: OperatorProfile,
        *,
        index_probes: bool = False,
    ) -> None:
        self.child = child
        self.entry = entry
        self.index_probes = index_probes
        self.arity = child.arity

    @property
    def pipeline_breaker(self) -> bool:  # type: ignore[override]
        return self.child.pipeline_breaker

    def __iter__(self) -> Iterator[Row]:
        entry, index = self.entry, self.index_probes
        for row in self.child:
            entry.add_input(1, index=index)
            yield row

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        entry, index = self.entry, self.index_probes
        for batch in self.child.iter_batches(size):
            entry.add_input(len(batch), index=index)
            yield batch
