"""Aggregation, distinct, and clustering operators.

The benchmark queries aggregate in three ways:

* q2 counts *frames* satisfying a predicate — :class:`DistinctCount` over
  the ``frameno`` attribute;
* q4 counts *distinct identities*, which requires deduplicating similarity
  matches — :func:`cluster_pairs` turns the match pairs of a similarity
  join into connected components (union-find), each component being one
  real-world entity;
* group-by aggregates (per-frame counts, per-clip trajectories) go through
  :class:`GroupBy`.
"""

from __future__ import annotations

from typing import Callable, Hashable, Iterable, Iterator

from repro.core.operators.base import Operator
from repro.core.patch import Patch, Row
from repro.errors import QueryError


class DistinctCount:
    """Count distinct key values over an operator's rows (a terminal)."""

    def __init__(self, child: Operator, key: Callable[[Patch], Hashable]) -> None:
        self.child = child
        self.key = key

    def execute(self) -> int:
        seen: set[Hashable] = set()
        for row in self.child:
            seen.add(self.key(row[0]))
        return len(seen)


class Distinct(Operator):
    """Emit one row per distinct key (first occurrence wins)."""

    def __init__(self, child: Operator, key: Callable[[Patch], Hashable]) -> None:
        self.child = child
        self.key = key
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        seen: set[Hashable] = set()
        for row in self.child:
            value = self.key(row[0])
            if value in seen:
                continue
            seen.add(value)
            yield row


class GroupBy:
    """Group rows by a key and reduce each group (a terminal).

    ``reducer`` maps a list of rows to any value; ``execute`` returns
    ``{key: reduced}``.
    """

    def __init__(
        self,
        child: Operator,
        key: Callable[[Patch], Hashable],
        reducer: Callable[[list[Row]], object] = len,
    ) -> None:
        self.child = child
        self.key = key
        self.reducer = reducer

    def execute(self) -> dict[Hashable, object]:
        groups: dict[Hashable, list[Row]] = {}
        for row in self.child:
            groups.setdefault(self.key(row[0]), []).append(row)
        return {key: self.reducer(rows) for key, rows in groups.items()}


class UnionFind:
    """Disjoint sets with path compression and union by size."""

    def __init__(self) -> None:
        self._parent: dict[Hashable, Hashable] = {}
        self._size: dict[Hashable, int] = {}

    def add(self, item: Hashable) -> None:
        if item not in self._parent:
            self._parent[item] = item
            self._size[item] = 1

    def find(self, item: Hashable) -> Hashable:
        if item not in self._parent:
            raise QueryError(f"{item!r} not in the union-find structure")
        root = item
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[item] != root:  # path compression
            self._parent[item], item = root, self._parent[item]
        return root

    def union(self, a: Hashable, b: Hashable) -> None:
        self.add(a)
        self.add(b)
        root_a, root_b = self.find(a), self.find(b)
        if root_a == root_b:
            return
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._size[root_a] += self._size[root_b]

    def components(self) -> list[set[Hashable]]:
        clusters: dict[Hashable, set[Hashable]] = {}
        for item in self._parent:
            clusters.setdefault(self.find(item), set()).add(item)
        return list(clusters.values())

    def n_components(self) -> int:
        return sum(1 for item, parent in self._parent.items() if item == parent)


def cluster_pairs(
    items: Iterable[Hashable], pairs: Iterable[tuple[Hashable, Hashable]]
) -> list[set[Hashable]]:
    """Connected components of the match graph — q4's deduplication step.

    ``items`` are all candidate entities (singletons included); ``pairs``
    the matches produced by the similarity join.
    """
    uf = UnionFind()
    for item in items:
        uf.add(item)
    for a, b in pairs:
        uf.union(a, b)
    return uf.components()
