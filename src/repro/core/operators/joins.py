"""Join operators (Section 5).

Three families, exactly the paper's menu:

* :class:`NestedLoopJoin` — "If no indexes are available, the most generic
  operator ... can execute arbitrary theta-joins"; all pairs, any predicate.
* :class:`IndexEqJoin` — "If a multi-dimensional or single dimensional
  index is available, we can use that index to enable equality joins,
  range joins, or similarity joins"; probes a hash/B+ index on the right
  collection with a key from each left patch. :class:`RTreeOverlapJoin`
  is the spatial variant for bbox intersection predicates.
* :class:`BallTreeSimilarityJoin` — the similarity join. With a prebuilt
  index it probes it; without one it implements the "On-The-Fly Index
  Similarity Join": "We load the smaller relation into an in-memory
  Ball-Tree. Then, probe using the other collection of patches."
"""

from __future__ import annotations

from typing import Callable, Iterator

import numpy as np

from repro.core.catalog import MaterializedCollection
from repro.core.operators.base import Operator
from repro.core.patch import Patch, Row
from repro.errors import QueryError
from repro.indexes import BallTree, RTree, rect_from_bbox


class NestedLoopJoin(Operator):
    """All-pairs theta-join; the baseline every index join is measured against."""

    def __init__(
        self,
        left: Operator,
        right: Operator,
        theta: Callable[[Patch, Patch], bool],
        *,
        exclude_self: bool = False,
    ) -> None:
        if left.arity != 1 or right.arity != 1:
            raise QueryError("NestedLoopJoin expects arity-1 inputs")
        self.left = left
        self.right = right
        self.theta = theta
        self.exclude_self = exclude_self
        self.arity = 2

    def __iter__(self) -> Iterator[Row]:
        right_rows = [row[0] for row in self.right]  # materialize inner side
        for (left_patch,) in self.left:
            for right_patch in right_rows:
                if self.exclude_self and _same_patch(left_patch, right_patch):
                    continue
                if self.theta(left_patch, right_patch):
                    yield (left_patch, right_patch)


class IndexEqJoin(Operator):
    """Equality join probing a hash/B+ index on the right collection."""

    def __init__(
        self,
        left: Operator,
        right: MaterializedCollection,
        *,
        left_key: Callable[[Patch], object],
        right_attr: str,
        kind: str = "hash",
        load_data: bool = True,
    ) -> None:
        if left.arity != 1:
            raise QueryError("IndexEqJoin expects an arity-1 left input")
        self.left = left
        self.right = right
        self.left_key = left_key
        self.right_attr = right_attr
        self.kind = kind
        self.load_data = load_data
        self.arity = 2

    def __iter__(self) -> Iterator[Row]:
        index = self.right.index(self.right_attr, self.kind)
        cache: dict[int, Patch] = {}
        for (left_patch,) in self.left:
            key = self.left_key(left_patch)
            if key is None:
                continue
            for patch_id in index.lookup(key):
                if patch_id not in cache:
                    cache[patch_id] = self.right.get(
                        patch_id, load_data=self.load_data
                    )
                yield (left_patch, cache[patch_id])


class RTreeOverlapJoin(Operator):
    """Spatial join: pairs whose bounding boxes intersect (same frame is the
    caller's responsibility — compose with an equality key or filter)."""

    def __init__(
        self,
        left: Operator,
        right: MaterializedCollection,
        *,
        bbox_attr: str = "bbox",
        expand: float = 0.0,
    ) -> None:
        if left.arity != 1:
            raise QueryError("RTreeOverlapJoin expects an arity-1 left input")
        self.left = left
        self.right = right
        self.bbox_attr = bbox_attr
        self.expand = expand
        self.arity = 2

    def __iter__(self) -> Iterator[Row]:
        index: RTree = self.right.index(self.bbox_attr, "rtree")
        for (left_patch,) in self.left:
            bbox = left_patch.metadata.get(self.bbox_attr)
            if bbox is None:
                continue
            x1, y1, x2, y2 = bbox
            rect = rect_from_bbox(
                (x1 - self.expand, y1 - self.expand, x2 + self.expand, y2 + self.expand)
            )
            for patch_id in index.search_intersect(rect):
                right_patch = self.right.get(patch_id)
                if _same_patch(left_patch, right_patch):
                    continue
                yield (left_patch, right_patch)


class BallTreeSimilarityJoin(Operator):
    """Similarity join: pairs within Euclidean ``threshold`` in feature space.

    ``features`` extracts the vector from a patch (defaults to ``data`` for
    feature patches). Pass ``index=`` to probe a prebuilt Ball-tree whose
    ids are right-collection patch ids; otherwise the right side is
    materialized into an in-memory tree on the fly (the paper's
    On-The-Fly Index Similarity Join).
    """

    def __init__(
        self,
        left: Operator,
        right: Operator | None,
        *,
        threshold: float,
        features: Callable[[Patch], np.ndarray] | None = None,
        index: BallTree | None = None,
        right_collection: MaterializedCollection | None = None,
        exclude_self: bool = False,
        leaf_size: int = 16,
    ) -> None:
        if left.arity != 1:
            raise QueryError("BallTreeSimilarityJoin expects arity-1 inputs")
        if (right is None) == (index is None):
            raise QueryError(
                "provide exactly one of `right` (on-the-fly build) or "
                "`index` (prebuilt Ball-tree)"
            )
        if index is not None and right_collection is None:
            raise QueryError(
                "a prebuilt index needs `right_collection` to resolve ids"
            )
        self.left = left
        self.right = right
        self.threshold = threshold
        self.features = features or (lambda patch: patch.data)
        self.index = index
        self.right_collection = right_collection
        self.exclude_self = exclude_self
        self.leaf_size = leaf_size
        self.arity = 2

    def __iter__(self) -> Iterator[Row]:
        if self.index is not None:
            yield from self._probe_prebuilt()
        else:
            yield from self._probe_on_the_fly()

    def _probe_prebuilt(self) -> Iterator[Row]:
        assert self.index is not None and self.right_collection is not None
        cache: dict[int, Patch] = {}
        for (left_patch,) in self.left:
            vector = np.asarray(self.features(left_patch), dtype=np.float64).ravel()
            for patch_id in self.index.query_radius(vector, self.threshold):
                patch_id = int(patch_id)
                if patch_id not in cache:
                    cache[patch_id] = self.right_collection.get(patch_id)
                right_patch = cache[patch_id]
                if self.exclude_self and _same_patch(left_patch, right_patch):
                    continue
                yield (left_patch, right_patch)

    def _probe_on_the_fly(self) -> Iterator[Row]:
        assert self.right is not None
        right_patches = [row[0] for row in self.right]
        if not right_patches:
            return
        matrix = np.stack(
            [
                np.asarray(self.features(patch), dtype=np.float64).ravel()
                for patch in right_patches
            ]
        )
        tree = BallTree(matrix, leaf_size=self.leaf_size)
        for (left_patch,) in self.left:
            vector = np.asarray(self.features(left_patch), dtype=np.float64).ravel()
            for row_idx in tree.query_radius(vector, self.threshold):
                right_patch = right_patches[int(row_idx)]
                if self.exclude_self and _same_patch(left_patch, right_patch):
                    continue
                yield (left_patch, right_patch)


class SwapSides(Operator):
    """Reverse the two patches of arity-2 rows.

    Lets the planner build the Ball-tree on whichever join side is
    cheaper while callers still receive (left, right) in query order.
    """

    def __init__(self, child: Operator) -> None:
        if child.arity != 2:
            raise QueryError("SwapSides expects arity-2 rows")
        self.child = child
        self.arity = 2

    def __iter__(self) -> Iterator[Row]:
        for a, b in self.child:
            yield (b, a)


def _same_patch(a: Patch, b: Patch) -> bool:
    if a.patch_id is not None and b.patch_id is not None:
        return a.patch_id == b.patch_id
    return a is b
