"""Scan-side operators: collection scans, index scans, selection, mapping.

Scans are the leaves of every plan. Three access paths exist for a
materialized collection, mirroring Section 3.2's index menu:

* :class:`CollectionScan` — full scan in patch-id order;
* :class:`IndexLookupScan` — hash/B+ point lookup (``attr == value``);
* :class:`IndexRangeScan` — B+/sorted-file range (``lo <= attr <= hi``).
"""

from __future__ import annotations

from itertools import islice
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

import numpy as np

from repro.core.catalog import MaterializedCollection

if TYPE_CHECKING:  # import cycle: the executor subclasses Operator
    from repro.core.executor import ExecutionContext
from repro.core.expressions import Expr
from repro.core.operators.base import (
    DEFAULT_BATCH_SIZE,
    Batch,
    Operator,
    as_rows,
    chunked,
    slice_batches,
)
from repro.core.patch import FRAME_KEY, LINEAGE_KEY, SOURCE_KEY, Patch, Row
from repro.errors import QueryError


class IteratorScan(Operator):
    """Wrap any patch iterable (ETL output, loader output) as an operator."""

    def __init__(self, patches: Iterable[Patch]) -> None:
        self._patches = patches
        self._consumed = False

    def __iter__(self) -> Iterator[Row]:
        if isinstance(self._patches, (list, tuple)):
            yield from as_rows(iter(self._patches))
            return
        # the consumed flag trips only once this generator is actually
        # driven: merely *creating* an iterator (or an iter_batches
        # generator that is then dropped undriven) must not poison later
        # scans of the underlying one-shot iterator
        if self._consumed:
            raise QueryError(
                "this IteratorScan wraps a one-shot iterator that was "
                "already consumed; materialize the collection to re-scan"
            )
        self._consumed = True
        yield from as_rows(iter(self._patches))

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        if isinstance(self._patches, (list, tuple)):
            # slice directly instead of re-chunking a row iterator
            for chunk in slice_batches(self._patches, size):
                yield [(patch,) for patch in chunk]
            return
        yield from super().iter_batches(size)


class CollectionScan(Operator):
    """Full scan of a materialized collection.

    ``load_data=False`` projects out the pixel/feature payload — correct
    whenever downstream operators only touch metadata.
    """

    def __init__(
        self, collection: MaterializedCollection, *, load_data: bool = True
    ) -> None:
        self.collection = collection
        self.load_data = load_data

    def __iter__(self) -> Iterator[Row]:
        return as_rows(self.collection.scan(load_data=self.load_data))

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        # the vectorized storage path: each batch is decoded in one
        # coalesced heap trip instead of a round-trip per patch
        for patches in self.collection.scan_batches(
            size, load_data=self.load_data
        ):
            yield [(patch,) for patch in patches]


class MetadataScan(Operator):
    """Metadata-only scan with zone-map block skipping.

    Reads the collection's columnar metadata segment — never the patch
    heap — and, given ``expr``, skips sealed blocks whose per-attribute
    min/max zone maps prove no row can match. Surviving blocks are
    *not* row-filtered here: the Select the planner stacks on top
    applies ``expr`` exactly, so a conservative zone map can only cost
    time, never rows.
    """

    def __init__(
        self, collection: MaterializedCollection, expr: Expr | None = None
    ) -> None:
        self.collection = collection
        self.expr = expr
        self.load_data = False
        #: optional ``(skipped, scanned)`` callback the lowerer wires to
        #: the operator's profile entry, grading the zone-map skip
        #: estimate against what the scan actually skipped
        self.on_blocks: Callable[[int, int], None] | None = None

    def __iter__(self) -> Iterator[Row]:
        for batch in self.iter_batches():
            yield from batch

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        for patches in self.collection.metadata_batches(
            size, expr=self.expr, on_blocks=self.on_blocks
        ):
            yield [(patch,) for patch in patches]


class _IndexScan(Operator):
    """Shared batched fetch path of the index access scans: the index
    yields patch ids, batches of ids become patches through one coalesced
    ``get_many`` heap trip each."""

    collection: MaterializedCollection
    load_data: bool

    #: first fetch of the row path — small, so an early-exiting consumer
    #: (a limit) never pays for a full default-sized batch of decodes
    ROW_PATH_INITIAL_FETCH = 8

    def _ids(self) -> Iterator[int]:
        raise NotImplementedError

    def __iter__(self) -> Iterator[Row]:
        # coalesced like the batched path, but with geometrically growing
        # chunks: a consumer that stops after a few rows decodes ~8
        # patches, a consumer that drains everything converges on
        # full-size coalesced fetches
        ids = self._ids()
        size = self.ROW_PATH_INITIAL_FETCH
        while True:
            chunk = list(islice(ids, size))
            if not chunk:
                return
            yield from self._fetch(chunk)
            size = min(size * 2, DEFAULT_BATCH_SIZE)

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        for ids in chunked(self._ids(), size):
            yield self._fetch(ids)

    def _fetch(self, ids: list[int]) -> Batch:
        patches = self.collection.get_many(ids, load_data=self.load_data)
        return [(patch,) for patch in patches]


class IndexLookupScan(_IndexScan):
    """Equality access path: patches with ``attr == value`` via an index."""

    def __init__(
        self,
        collection: MaterializedCollection,
        attr: str,
        value,
        kind: str = "hash",
        *,
        load_data: bool = True,
    ) -> None:
        self.collection = collection
        self.attr = attr
        self.value = value
        self.kind = kind
        self.load_data = load_data

    def _ids(self) -> Iterator[int]:
        index = self.collection.index(self.attr, self.kind)
        return iter(index.lookup(self.value))


class IndexRangeScan(_IndexScan):
    """Range access path: ``lo <= attr <= hi`` via a B+ tree index."""

    def __init__(
        self,
        collection: MaterializedCollection,
        attr: str,
        lo=None,
        hi=None,
        kind: str = "btree",
        *,
        load_data: bool = True,
    ) -> None:
        self.collection = collection
        self.attr = attr
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.load_data = load_data

    def _ids(self) -> Iterator[int]:
        index = self.collection.index(self.attr, self.kind)
        return (patch_id for _, patch_id in index.range(self.lo, self.hi))


class AnnTopKScan(_IndexScan):
    """Index-backed top-k similarity: the ``k`` patches nearest to
    ``query``, nearest first, served by a vector index probe (``hnsw``
    beam search at ``ef``, or an exact BallTree k-NN) instead of a full
    scan-and-sort."""

    def __init__(
        self,
        collection: MaterializedCollection,
        attr: str,
        query,
        k: int,
        kind: str = "hnsw",
        *,
        ef: int | None = None,
        load_data: bool = True,
    ) -> None:
        self.collection = collection
        self.attr = attr
        self.query = np.asarray(query, dtype=np.float64).ravel()
        self.k = k
        self.kind = kind
        self.ef = ef
        self.load_data = load_data
        #: optional probe-stats callback the lowerer wires to the
        #: operator's profile entry ({"hops": .., "candidates": ..};
        #: empty for non-hnsw probes)
        self.on_search: Callable[[dict], None] | None = None

    def _ids(self) -> Iterator[int]:
        index = self.collection.index(self.attr, self.kind)
        if self.kind == "hnsw":
            nearest = index.search(self.query, self.k, ef=self.ef)
            if self.on_search is not None:
                self.on_search(dict(index.last_stats))
        else:
            nearest = index.query_knn(self.query, self.k)
            if self.on_search is not None:
                self.on_search({})
        return iter([patch_id for _, patch_id in nearest])


class AnnTopKExact(Operator):
    """Exact top-k similarity over any child: compute every distance and
    keep the ``k`` smallest (pipeline breaker) — the fallback access
    path, and the oracle ANN results are graded against."""

    pipeline_breaker = True

    def __init__(self, child: Operator, attr: str, query, k: int) -> None:
        if child.arity != 1:
            raise QueryError("AnnTopKExact operates on arity-1 rows")
        self.child = child
        self.attr = attr
        self.query = np.asarray(query, dtype=np.float64).ravel()
        self.k = k

    def _distance(self, patch: Patch) -> float | None:
        vector = (
            patch.data if self.attr == "data" else patch.metadata.get(self.attr)
        )
        if vector is None:
            return None
        v = np.asarray(vector, dtype=np.float64).ravel()
        if v.shape != self.query.shape:
            return None
        return float(np.sqrt(((v - self.query) ** 2).sum()))

    def __iter__(self) -> Iterator[Row]:
        scored: list[tuple[float, int, Row]] = []
        for position, row in enumerate(self.child):
            distance = self._distance(row[0])
            if distance is not None:
                # position breaks ties deterministically (rows don't sort)
                scored.append((distance, position, row))
        scored.sort(key=lambda item: item[:2])
        for _, _, row in scored[: self.k]:
            yield row

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        yield from slice_batches(list(self), size)


class Select(Operator):
    """Filter rows by an expression on one of their patches."""

    def __init__(self, child: Operator, expr: Expr, *, on: int = 0) -> None:
        self.child = child
        self.expr = expr
        self.on = on
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.expr.evaluate(row[self.on]):
                yield row

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        evaluate, on = self.expr.evaluate, self.on
        # re-accumulate survivors to full batches: a selective filter
        # feeding ragged chunks into a vectorized UDF would dilute the
        # batching win the filter push-down exists to deliver
        pending: Batch = []
        for batch in self.child.iter_batches(size):
            pending.extend(row for row in batch if evaluate(row[on]))
            while len(pending) >= size:
                yield pending[:size]
                pending = pending[size:]
        if pending:
            yield pending


class MapPatches(Operator):
    """Apply a patch -> patch(es) function (a generator/transformer stage).

    ``fn`` may return one patch, a list of patches, or None (drop).
    ``batch_fn``, when given, is a vectorized implementation used by the
    batched protocol: it takes a list of patches and must return one
    result (patch / list / None) per input — the hook batched model
    inference plugs into.

    ``execution`` (an :class:`~repro.core.executor.ExecutionContext`)
    with ``workers > 1`` dispatches batches to a thread pool on the
    batched path. UDF maps are pure per-row, so ordered fan-out — batches
    submitted in input order, results consumed in submission order —
    yields exactly the serial output: same rows, same order, same lineage
    keys. A worker exception re-raises on the driver with its original
    type.
    """

    def __init__(
        self,
        child: Operator,
        fn: Callable[[Patch], Patch | list[Patch] | None],
        *,
        on: int = 0,
        batch_fn: Callable[[list[Patch]], list[Patch | list[Patch] | None]]
        | None = None,
        execution: "ExecutionContext | None" = None,
    ) -> None:
        if child.arity != 1:
            raise QueryError("MapPatches operates on arity-1 rows")
        self.child = child
        self.fn = fn
        self.on = on
        self.batch_fn = batch_fn
        self.execution = execution

    @staticmethod
    def _result_rows(result: Patch | list[Patch] | None) -> list[Row]:
        """Normalize one UDF result into output rows (None drops)."""
        if result is None:
            return []
        if isinstance(result, Patch):
            return [(result,)]
        return [(patch,) for patch in result]

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            yield from self._result_rows(self.fn(row[self.on]))

    def _apply(self, inputs: list[Patch]) -> list:
        """Run the UDF over one gathered batch (worker-side when parallel)."""
        if self.batch_fn is not None:
            results = self.batch_fn(inputs)
            if len(results) != len(inputs):
                raise QueryError(
                    f"batch_fn returned {len(results)} results for "
                    f"{len(inputs)} patches"
                )
            return results
        fn = self.fn
        return [fn(patch) for patch in inputs]

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        on = self.on
        workers = self.execution.workers if self.execution is not None else 1
        if workers > 1:
            # ordered thread-pool fan-out; imported here, not at module
            # level, because the executor subclasses this package's
            # Operator (import cycle otherwise)
            from repro.core.executor import run_ordered

            inputs = (
                [row[on] for row in batch]
                for batch in self.child.iter_batches(size)
            )
            batch_results = run_ordered(
                inputs,
                self._apply,
                workers=workers,
                prefetch=self.execution.prefetch_batches,
                metrics=self.execution.metrics,
            )
        else:
            batch_results = (
                self._apply([row[on] for row in batch])
                for batch in self.child.iter_batches(size)
            )
        for results in batch_results:
            out: Batch = []
            for result in results:
                out.extend(self._result_rows(result))
            # expanding UDFs can overshoot the batch bound: re-chunk so
            # downstream stages still see at most ``size`` rows per batch
            yield from slice_batches(out, size)


class Limit(Operator):
    """Stop after ``n`` rows — gives q5 its first-match semantics."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise QueryError(f"limit must be non-negative, got {n}")
        self.child = child
        self.n = n
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        remaining = self.n
        if remaining == 0:
            return
        for row in self.child:
            yield row
            remaining -= 1
            if remaining == 0:
                return

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        remaining = self.n
        if remaining == 0:
            return
        # shrinking the child's batch to n bounds how far a lazy chain
        # computes past the limit — but when a pipeline breaker (which
        # consumes everything regardless) sits anywhere below, it would
        # only starve upstream vectorized stages of full batches, so
        # leave ``size`` alone. Never *inflate*: ``size`` is the
        # caller's contract.
        child_size = size if _breaker_below(self.child) else min(size, remaining)
        for batch in self.child.iter_batches(child_size):
            if len(batch) >= remaining:
                yield batch[:remaining]
                return
            yield batch
            remaining -= len(batch)


def _breaker_below(operator: Operator | None) -> bool:
    """True when a pipeline breaker sits anywhere down the child chain."""
    while operator is not None:
        if operator.pipeline_breaker:
            return True
        operator = getattr(operator, "child", None)
    return False


class OrderBy(Operator):
    """Sort rows by a key over the first patch (pipeline breaker)."""

    pipeline_breaker = True

    def __init__(
        self, child: Operator, key: Callable[[Patch], object], *, reverse: bool = False
    ) -> None:
        self.child = child
        self.key = key
        self.reverse = reverse
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        rows.sort(key=lambda row: self.key(row[0]), reverse=self.reverse)
        return iter(rows)

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        rows: list[Row] = [
            row for batch in self.child.iter_batches(size) for row in batch
        ]
        rows.sort(key=lambda row: self.key(row[0]), reverse=self.reverse)
        yield from slice_batches(rows, size)


class Project(Operator):
    """Project each patch down to the listed metadata attributes.

    Internal keys (lineage, source, frameno) survive so backtracing and
    downstream temporal logic keep working; the pixel/feature payload is
    dropped unless ``keep_data`` — the classic "stop carrying the image
    once only metadata is needed" optimization.
    """

    #: metadata keys a projection never removes
    ALWAYS_KEPT = (LINEAGE_KEY, SOURCE_KEY, FRAME_KEY)

    def __init__(
        self, child: Operator, attrs: Iterable[str], *, keep_data: bool = False
    ) -> None:
        if child.arity != 1:
            raise QueryError("Project operates on arity-1 rows")
        self.child = child
        self.attrs = tuple(attrs)
        self.keep_data = keep_data
        self._keep = set(self.attrs) | set(self.ALWAYS_KEPT)

    def _project(self, patch: Patch) -> Patch:
        keep = self._keep
        metadata = {
            key: value for key, value in patch.metadata.items() if key in keep
        }
        return Patch(
            img_ref=patch.img_ref,  # frozen, shareable as-is
            data=patch.data if self.keep_data else np.empty(0, dtype=np.uint8),
            metadata=metadata,
            patch_id=patch.patch_id,
        )

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            yield (self._project(row[0]),)

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        project = self._project
        for batch in self.child.iter_batches(size):
            yield [(project(row[0]),) for row in batch]
