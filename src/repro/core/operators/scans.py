"""Scan-side operators: collection scans, index scans, selection, mapping.

Scans are the leaves of every plan. Three access paths exist for a
materialized collection, mirroring Section 3.2's index menu:

* :class:`CollectionScan` — full scan in patch-id order;
* :class:`IndexLookupScan` — hash/B+ point lookup (``attr == value``);
* :class:`IndexRangeScan` — B+/sorted-file range (``lo <= attr <= hi``).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator

from repro.core.catalog import MaterializedCollection
from repro.core.expressions import Expr
from repro.core.operators.base import Operator, as_rows
from repro.core.patch import Patch, Row
from repro.errors import QueryError


class IteratorScan(Operator):
    """Wrap any patch iterable (ETL output, loader output) as an operator."""

    def __init__(self, patches: Iterable[Patch]) -> None:
        self._patches = patches
        self._consumed = False

    def __iter__(self) -> Iterator[Row]:
        if self._consumed and not isinstance(self._patches, (list, tuple)):
            raise QueryError(
                "this IteratorScan wraps a one-shot iterator that was "
                "already consumed; materialize the collection to re-scan"
            )
        self._consumed = True
        return as_rows(iter(self._patches))


class CollectionScan(Operator):
    """Full scan of a materialized collection.

    ``load_data=False`` projects out the pixel/feature payload — correct
    whenever downstream operators only touch metadata.
    """

    def __init__(
        self, collection: MaterializedCollection, *, load_data: bool = True
    ) -> None:
        self.collection = collection
        self.load_data = load_data

    def __iter__(self) -> Iterator[Row]:
        return as_rows(self.collection.scan(load_data=self.load_data))


class IndexLookupScan(Operator):
    """Equality access path: patches with ``attr == value`` via an index."""

    def __init__(
        self,
        collection: MaterializedCollection,
        attr: str,
        value,
        kind: str = "hash",
        *,
        load_data: bool = True,
    ) -> None:
        self.collection = collection
        self.attr = attr
        self.value = value
        self.kind = kind
        self.load_data = load_data

    def __iter__(self) -> Iterator[Row]:
        index = self.collection.index(self.attr, self.kind)
        for patch_id in index.lookup(self.value):
            yield (self.collection.get(patch_id, load_data=self.load_data),)


class IndexRangeScan(Operator):
    """Range access path: ``lo <= attr <= hi`` via a B+ tree index."""

    def __init__(
        self,
        collection: MaterializedCollection,
        attr: str,
        lo=None,
        hi=None,
        kind: str = "btree",
        *,
        load_data: bool = True,
    ) -> None:
        self.collection = collection
        self.attr = attr
        self.lo = lo
        self.hi = hi
        self.kind = kind
        self.load_data = load_data

    def __iter__(self) -> Iterator[Row]:
        index = self.collection.index(self.attr, self.kind)
        for _, patch_id in index.range(self.lo, self.hi):
            yield (self.collection.get(patch_id, load_data=self.load_data),)


class Select(Operator):
    """Filter rows by an expression on one of their patches."""

    def __init__(self, child: Operator, expr: Expr, *, on: int = 0) -> None:
        self.child = child
        self.expr = expr
        self.on = on
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            if self.expr.evaluate(row[self.on]):
                yield row


class MapPatches(Operator):
    """Apply a patch -> patch(es) function (a generator/transformer stage).

    ``fn`` may return one patch, a list of patches, or None (drop).
    """

    def __init__(
        self,
        child: Operator,
        fn: Callable[[Patch], Patch | list[Patch] | None],
        *,
        on: int = 0,
    ) -> None:
        if child.arity != 1:
            raise QueryError("MapPatches operates on arity-1 rows")
        self.child = child
        self.fn = fn
        self.on = on

    def __iter__(self) -> Iterator[Row]:
        for row in self.child:
            result = self.fn(row[self.on])
            if result is None:
                continue
            if isinstance(result, Patch):
                yield (result,)
            else:
                for patch in result:
                    yield (patch,)


class Limit(Operator):
    """Stop after ``n`` rows — gives q5 its first-match semantics."""

    def __init__(self, child: Operator, n: int) -> None:
        if n < 0:
            raise QueryError(f"limit must be non-negative, got {n}")
        self.child = child
        self.n = n
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        remaining = self.n
        if remaining == 0:
            return
        for row in self.child:
            yield row
            remaining -= 1
            if remaining == 0:
                return


class OrderBy(Operator):
    """Sort rows by a key over the first patch (pipeline breaker)."""

    def __init__(
        self, child: Operator, key: Callable[[Patch], object], *, reverse: bool = False
    ) -> None:
        self.child = child
        self.key = key
        self.reverse = reverse
        self.arity = child.arity

    def __iter__(self) -> Iterator[Row]:
        rows = list(self.child)
        rows.sort(key=lambda row: self.key(row[0]), reverse=self.reverse)
        return iter(rows)
