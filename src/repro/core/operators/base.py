"""Operator interface (Section 2.2).

    Operator(Iterator<Tuple<Patch>> in, Iterator<Tuple<Patch>> out)

Every operator is an iterator over rows, where a row is a tuple of patches
(arity 1 from scans, 2+ after joins) — the closed algebra "collection of
patches in and collection of patches out". Operators are lazy; pulling the
root of a plan drives the whole pipeline, Volcano style [Graefe 94].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.core.batching import (  # noqa: F401  (canonical re-export)
    DEFAULT_BATCH_SIZE,
    chunked,
    slice_batches,
)
from repro.core.patch import Patch, Row
from repro.errors import QueryError

#: A batch flowing between operators under the batched protocol.
Batch = list[Row]


class Operator(ABC):
    """One dataflow operator producing rows of patches."""

    #: number of patches per output row
    arity: int = 1

    #: True for operators that must consume their entire input before
    #: emitting anything (sorts); early-exit stages above them (limits)
    #: use this to decide whether shrinking the batch size helps
    pipeline_breaker: bool = False

    @abstractmethod
    def __iter__(self) -> Iterator[Row]:
        """Yield output rows."""

    # -- batched protocol -------------------------------------------------

    def iter_batches(self, size: int = DEFAULT_BATCH_SIZE) -> Iterator[Batch]:
        """Yield output rows in ``list[Row]`` chunks of at most ``size``.

        ``size`` is the caller's execution granularity — a vectorized
        UDF's batch contract, for instance — and flows through the whole
        pipeline unchanged: no stage hands its child a larger size, so a
        caller-chosen bound (GPU memory, model batch limit) holds
        everywhere below the root.

        The default implementation chunks :meth:`__iter__`; operators on
        the hot path (scans, selects, maps) override it to move whole
        batches through the pipeline — fewer generator hops per row, and
        vectorized UDFs get their inputs pre-gathered.
        """
        yield from chunked(self, size)

    # -- terminal convenience methods ------------------------------------

    def collect(self) -> list[Row]:
        return list(self)

    def patches(self) -> list[Patch]:
        """Collect single-patch rows as bare patches."""
        if self.arity != 1:
            raise QueryError(
                f"patches() needs arity-1 rows; this operator yields "
                f"{self.arity}-tuples — use collect()"
            )
        return [row[0] for row in self]

    def count(self) -> int:
        return sum(1 for _ in self)


def as_rows(patches: Iterable[Patch]) -> Iterator[Row]:
    """Lift bare patches into arity-1 rows."""
    for patch in patches:
        yield (patch,)
