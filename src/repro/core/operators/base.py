"""Operator interface (Section 2.2).

    Operator(Iterator<Tuple<Patch>> in, Iterator<Tuple<Patch>> out)

Every operator is an iterator over rows, where a row is a tuple of patches
(arity 1 from scans, 2+ after joins) — the closed algebra "collection of
patches in and collection of patches out". Operators are lazy; pulling the
root of a plan drives the whole pipeline, Volcano style [Graefe 94].
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterable, Iterator

from repro.core.patch import Patch, Row
from repro.errors import QueryError


class Operator(ABC):
    """One dataflow operator producing rows of patches."""

    #: number of patches per output row
    arity: int = 1

    @abstractmethod
    def __iter__(self) -> Iterator[Row]:
        """Yield output rows."""

    # -- terminal convenience methods ------------------------------------

    def collect(self) -> list[Row]:
        return list(self)

    def patches(self) -> list[Patch]:
        """Collect single-patch rows as bare patches."""
        if self.arity != 1:
            raise QueryError(
                f"patches() needs arity-1 rows; this operator yields "
                f"{self.arity}-tuples — use collect()"
            )
        return [row[0] for row in self]

    def count(self) -> int:
        return sum(1 for _ in self)


def as_rows(patches: Iterable[Patch]) -> Iterator[Row]:
    """Lift bare patches into arity-1 rows."""
    for patch in patches:
        yield (patch,)
