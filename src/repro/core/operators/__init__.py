"""Dataflow operators over rows of patches (Sections 2.2 and 5)."""

from repro.core.operators.aggregates import (
    Distinct,
    DistinctCount,
    GroupBy,
    UnionFind,
    cluster_pairs,
)
from repro.core.operators.base import (
    DEFAULT_BATCH_SIZE,
    Batch,
    Operator,
    as_rows,
    chunked,
    slice_batches,
)
from repro.core.operators.joins import (
    BallTreeSimilarityJoin,
    IndexEqJoin,
    NestedLoopJoin,
    RTreeOverlapJoin,
    SwapSides,
)
from repro.core.operators.profiled import (
    InputProbe,
    ProfiledOperator,
)
from repro.core.operators.scans import (
    AnnTopKExact,
    AnnTopKScan,
    CollectionScan,
    IndexLookupScan,
    IndexRangeScan,
    IteratorScan,
    Limit,
    MapPatches,
    MetadataScan,
    OrderBy,
    Project,
    Select,
)

__all__ = [
    "AnnTopKExact",
    "AnnTopKScan",
    "BallTreeSimilarityJoin",
    "Batch",
    "CollectionScan",
    "DEFAULT_BATCH_SIZE",
    "Distinct",
    "DistinctCount",
    "GroupBy",
    "IndexEqJoin",
    "IndexLookupScan",
    "IndexRangeScan",
    "InputProbe",
    "IteratorScan",
    "Limit",
    "MapPatches",
    "MetadataScan",
    "NestedLoopJoin",
    "Operator",
    "OrderBy",
    "ProfiledOperator",
    "Project",
    "RTreeOverlapJoin",
    "Select",
    "SwapSides",
    "UnionFind",
    "as_rows",
    "chunked",
    "cluster_pairs",
    "slice_batches",
]
