"""Dataflow operators over rows of patches (Sections 2.2 and 5)."""

from repro.core.operators.aggregates import (
    Distinct,
    DistinctCount,
    GroupBy,
    UnionFind,
    cluster_pairs,
)
from repro.core.operators.base import Operator, as_rows
from repro.core.operators.joins import (
    BallTreeSimilarityJoin,
    IndexEqJoin,
    NestedLoopJoin,
    RTreeOverlapJoin,
)
from repro.core.operators.scans import (
    CollectionScan,
    IndexLookupScan,
    IndexRangeScan,
    IteratorScan,
    Limit,
    MapPatches,
    OrderBy,
    Select,
)

__all__ = [
    "BallTreeSimilarityJoin",
    "CollectionScan",
    "Distinct",
    "DistinctCount",
    "GroupBy",
    "IndexEqJoin",
    "IndexLookupScan",
    "IndexRangeScan",
    "IteratorScan",
    "Limit",
    "MapPatches",
    "NestedLoopJoin",
    "Operator",
    "OrderBy",
    "RTreeOverlapJoin",
    "Select",
    "UnionFind",
    "as_rows",
    "cluster_pairs",
]
