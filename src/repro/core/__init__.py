"""DeepLens core: the patch data model, query processing, and optimizer."""

from repro.core.catalog import Catalog, MaterializedCollection
from repro.core.executor import (
    ExecutionContext,
    ExecutionPlan,
    PrefetchBatches,
)
from repro.core.expressions import Attr, Expr, Predicate
from repro.core.lineage import LineageStore
from repro.core.materialization import (
    MaterializationManager,
    PersistentUDFCache,
    ViewDefinition,
)
from repro.core.patch import ImgRef, Patch, Row
from repro.core.profile import (
    OperatorProfile,
    PlanQualityLog,
    RuntimeProfile,
    q_error,
)
from repro.core.schema import Field, PatchSchema, frame_schema
from repro.core.session import DeepLens, QueryBuilder
from repro.core.statistics import (
    AttributeStatistics,
    CollectionStatistics,
    Estimate,
    StatisticsProvider,
)
from repro.core.udf import UDFDefinition, UDFRegistry, attribute_key

__all__ = [
    "Attr",
    "AttributeStatistics",
    "Catalog",
    "CollectionStatistics",
    "DeepLens",
    "Estimate",
    "ExecutionContext",
    "ExecutionPlan",
    "Expr",
    "Field",
    "ImgRef",
    "LineageStore",
    "MaterializationManager",
    "MaterializedCollection",
    "OperatorProfile",
    "Patch",
    "PatchSchema",
    "PersistentUDFCache",
    "PlanQualityLog",
    "Predicate",
    "PrefetchBatches",
    "QueryBuilder",
    "Row",
    "RuntimeProfile",
    "StatisticsProvider",
    "UDFDefinition",
    "UDFRegistry",
    "ViewDefinition",
    "attribute_key",
    "frame_schema",
    "q_error",
]
