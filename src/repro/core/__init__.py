"""DeepLens core: the patch data model, query processing, and optimizer."""

from repro.core.catalog import Catalog, MaterializedCollection
from repro.core.expressions import Attr, Expr, Predicate
from repro.core.lineage import LineageStore
from repro.core.patch import ImgRef, Patch, Row
from repro.core.schema import Field, PatchSchema, frame_schema
from repro.core.session import DeepLens, QueryBuilder
from repro.core.statistics import (
    AttributeStatistics,
    CollectionStatistics,
    Estimate,
    StatisticsProvider,
)

__all__ = [
    "Attr",
    "AttributeStatistics",
    "Catalog",
    "CollectionStatistics",
    "DeepLens",
    "Estimate",
    "Expr",
    "Field",
    "ImgRef",
    "LineageStore",
    "MaterializedCollection",
    "Patch",
    "PatchSchema",
    "Predicate",
    "QueryBuilder",
    "Row",
    "StatisticsProvider",
    "frame_schema",
]
