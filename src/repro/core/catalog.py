"""Catalog: materialized patch collections and their indexes.

"Any of the intermediate results in DeepLens can be materialized ... We
also support the construction of indexes on the materialized data"
(Section 3.2). The catalog owns one pager + blob heap per database
directory and exposes:

* :meth:`Catalog.materialize` — persist a patch iterator as a named
  collection (assigning patch ids, validating against a schema, recording
  lineage);
* :meth:`Catalog.create_index` — hash / B+ tree / R-tree / Ball-tree over
  a collection attribute (or the patch data itself for feature patches);
* :class:`MaterializedCollection` — scan / point access / index lookup.

Multi-dimensional indexes are rebuilt from the stored patches on reopen
(they live in memory, like the paper's "on-the-fly" Ball-trees); their
registration is persisted so reopening is transparent.

The catalog is also the planner's :class:`~repro.core.statistics.
StatisticsProvider`: every :meth:`MaterializedCollection.add` folds the
patch into that collection's :class:`~repro.core.statistics.
CollectionStatistics` (histograms, MCVs, distinct sketches, embedding
dims), and the snapshots persist through the blob heap so cardinality
estimates survive sessions.
"""

from __future__ import annotations

import os
import struct
import zlib
from typing import Any, Callable, Iterable, Iterator

import numpy as np

from repro.core.batching import DEFAULT_BATCH_SIZE, chunked
from repro.core.lineage import LineageStore
from repro.core.metrics import SlowQueryLog
from repro.core.patch import ImgRef, LINEAGE_KEY, Patch, _normalize_meta
from repro.core.profile import PlanQualityLog
from repro.core.schema import PatchSchema
from repro.core.statistics import CollectionStatistics
from repro.errors import CorruptionError, IndexError_, QueryError, StorageError
from repro.indexes import (
    BallTree,
    BTreeIndex,
    HashIndex,
    HNSWIndex,
    RTree,
    rect_from_bbox,
)
from repro.storage.journal import CommitJournal
from repro.storage.kvstore import BlobHeap, BlobRef, BPlusTree, Pager
from repro.storage.kvstore import serialization
from repro.storage.metadata_segment import CollectionSegment, MetadataSegmentStore

INDEX_KINDS = ("hash", "btree", "rtree", "balltree", "hnsw")

#: accepted CREATE INDEX ... USING HNSW (...) knobs -> HNSWIndex kwargs
_HNSW_PARAM_KEYS = {
    "m": "m",
    "ef_construction": "ef_construction",
    "ef": "ef_search",
    "ef_search": "ef_search",
    "seed": "seed",
}

#: bound on the persisted recovery-event history in catalog meta
RECOVERY_LOG_MAX = 64

#: how often a metadata read may quarantine + rebuild its segment before
#: giving up — a rebuilt segment failing again means the blob heap itself
#: (the source of truth) is damaged, which rebuilding cannot fix
_MAX_SEGMENT_REBUILDS = 3


class MaterializedCollection:
    """One named, persisted collection of patches."""

    def __init__(self, catalog: "Catalog", name: str) -> None:
        self.catalog = catalog
        self.name = name
        # trees are process-wide singletons per name (the catalog registry)
        # because lazily-written pages are only visible through the owning
        # tree object until the next sync
        self._tree = catalog._tree_for(f"col:{name}")
        self.schema: PatchSchema | None = None
        # memory-resident primary "index": patch id -> heap ref, built
        # lazily on the first point access so random gets skip the B+ walk
        self._ref_map: dict[int, bytes] | None = None

    def __len__(self) -> int:
        return len(self._tree)

    def add(self, patch: Patch) -> int:
        """Persist one patch; returns its assigned patch id."""
        if self.schema is not None:
            self.schema.validate_patch(patch)
        patch_id = self.catalog._next_patch_id()
        patch.patch_id = patch_id
        ref = self.catalog.heap.put(patch.to_record(), compress=True)
        payload = serialization.dumps(list(ref.to_tuple()), compress_arrays=False)
        self._tree.insert(patch_id, payload)
        if self._ref_map is not None:
            self._ref_map[patch_id] = payload
        segment = self.catalog.segments.segment(self.name)
        if segment.row_count == len(self._tree) - 1:
            # keep the columnar segment in lockstep; an incomplete one
            # (pre-segment catalog) instead backfills on first metadata read
            segment.append(
                patch_id, patch.img_ref.to_value(), _normalize_meta(patch.metadata)
            )
        self.catalog.lineage.record(patch)
        self.catalog._maintain_indexes(self.name, patch)
        self.catalog._record_statistics(self.name, patch)
        self.catalog._bump_version(self.name)
        return patch_id

    def get(self, patch_id: int, *, load_data: bool = True) -> Patch:
        if not load_data:
            return self.get_many([patch_id], load_data=False)[0]
        if self._ref_map is None:
            self._ref_map = {pid: payload for pid, payload in self._tree.items()}
        payload = self._ref_map.get(patch_id)
        if payload is None:
            raise QueryError(
                f"patch {patch_id} not in collection {self.name!r}"
            )
        return self._load(patch_id, payload, load_data)

    def get_many(
        self, patch_ids: Iterable[int], *, load_data: bool = True
    ) -> list[Patch]:
        """Batched point access: many patches per coalesced heap trip.

        Results align with ``patch_ids``. The heap sorts the underlying
        blob reads by file offset and coalesces adjacent runs, so index
        access paths fetching dozens of ids pay a handful of sequential
        reads instead of one seek per patch. ``load_data=False`` answers
        from the columnar metadata segment — zero heap reads.
        """
        ids = list(patch_ids)
        if not ids:
            return []
        if not load_data:
            try:
                rows = self._segment_rows(ids)
            except KeyError as exc:
                raise QueryError(
                    f"patch {exc.args[0]} not in collection {self.name!r}"
                ) from None
            return [self._patch_from_metadata(*row) for row in rows]
        if self._ref_map is None:
            self._ref_map = {pid: payload for pid, payload in self._tree.items()}
        chunk: list[tuple[int, bytes]] = []
        for patch_id in ids:
            payload = self._ref_map.get(patch_id)
            if payload is None:
                raise QueryError(
                    f"patch {patch_id} not in collection {self.name!r}"
                )
            chunk.append((patch_id, payload))
        return self._load_chunk(chunk, load_data)

    def scan(self, *, load_data: bool = True) -> Iterator[Patch]:
        """Iterate every patch in id order.

        Rides :meth:`scan_batches`, so the serial iterator gets the same
        coalesced heap reads (``load_data=True``) or the same pure
        segment reads (``load_data=False``) as the batched path.
        """
        for batch in self.scan_batches(load_data=load_data):
            yield from batch

    def scan_batches(
        self, size: int = DEFAULT_BATCH_SIZE, *, load_data: bool = True
    ) -> Iterator[list[Patch]]:
        """Scan in id order, decoding a whole batch per heap trip.

        The vectorized storage path behind ``CollectionScan.iter_batches``:
        each batch resolves its blob refs up front and reads them through
        :meth:`BlobHeap.multi_get`, so a cold scan issues a few coalesced
        reads per ``size`` patches instead of a heap round-trip each.
        ``load_data=False`` never touches the patch heap at all: batches
        come out of the columnar metadata segment, skipping the pixel
        decompression ``Patch.from_record`` used to pay just to throw the
        data away.
        """
        if not load_data:
            yield from self.metadata_batches(size)
            return
        yield from self._record_batches(size, load_data)

    def _record_batches(
        self, size: int, load_data: bool
    ) -> Iterator[list[Patch]]:
        """The full-record path: decode heap records batch-wise. This is
        what every scan used to be — kept callable with
        ``load_data=False`` as the segment backfill source (and the
        pre-fix baseline the metadata-scan benchmark measures against)."""
        for chunk in chunked(self._tree.items(), size):
            yield self._load_chunk(chunk, load_data)

    # -- metadata segment (columnar, zone-mapped) -----------------------

    def metadata_batches(
        self, size: int = DEFAULT_BATCH_SIZE, expr=None, on_blocks=None
    ) -> Iterator[list[Patch]]:
        """Metadata-only batches straight from the columnar segment.

        With ``expr``, sealed blocks whose zone maps prove no row can
        match are skipped unread; surviving batches still carry every
        row of their blocks (the caller's Select filters exactly).
        ``on_blocks(skipped, scanned)`` reports the zone-map actuals to
        the executing operator's profile as the scan finishes.
        Patches come back bit-identical to
        ``Patch.from_record(..., with_data=False)``: empty data array,
        same metadata, same lineage tuples.

        The segment is derived state: a corrupt block does not fail the
        scan. It is quarantined, the segment rebuilds from the blob heap,
        and the scan resumes after the last row already delivered (rows
        are id-ordered, so no duplicates and no gaps).
        """
        last_yielded: int | None = None
        rebuilds = 0
        while True:
            segment = self._metadata_segment()
            batch: list[Patch] = []
            try:
                for row in segment.scan_rows(
                    expr, on_blocks, after_id=last_yielded
                ):
                    batch.append(self._patch_from_metadata(*row))
                    if len(batch) >= size:
                        yield batch
                        last_yielded = batch[-1].patch_id
                        batch = []
                if batch:
                    yield batch
                return
            except CorruptionError as exc:
                rebuilds += 1
                if rebuilds > _MAX_SEGMENT_REBUILDS:
                    raise
                self.catalog._quarantine_segment(self.name, exc)

    def metadata_block_stats(self, expr=None) -> tuple[int, int, int]:
        """(kept blocks, total sealed blocks, surviving-row bound) a
        zone-mapped metadata scan of ``expr`` would read — the planner's
        block-skipping estimate."""
        return self._metadata_segment().block_stats(expr)

    def attr_min_max(self, attr: str) -> tuple | None:
        """(min, max) of a metadata attribute answered purely from the
        segment's zone maps and in-memory tail — no sealed block is
        decoded. ``None`` when not provable from summaries (mixed-type
        column, or no non-None value); callers fall back to a scan."""
        return self._metadata_segment().attr_min_max(attr)

    def _segment_rows(self, ids: list[int]) -> list:
        """Point rows from the segment, with one quarantine + rebuild
        retry on corruption (a second failure means the blob heap itself
        is damaged and propagates)."""
        try:
            return self._metadata_segment().get_rows(ids)
        except CorruptionError as exc:
            self.catalog._quarantine_segment(self.name, exc)
            return self._metadata_segment().get_rows(ids)

    def _metadata_segment(self) -> CollectionSegment:
        """This collection's segment, rebuilt from the blob heap (the
        source of truth) whenever it is incomplete: a pre-segment catalog
        backfilling lazily, or a quarantined corrupt segment."""
        segment = self.catalog.segments.segment(self.name)
        if segment.row_count != len(self._tree):
            self.catalog._metric_segment_rebuilds.inc()
            segment.rebuild(
                (patch.patch_id, patch.img_ref.to_value(),
                 _normalize_meta(patch.metadata))
                for batch in self._record_batches(DEFAULT_BATCH_SIZE, False)
                for patch in batch
            )
        return segment

    @staticmethod
    def _patch_from_metadata(
        patch_id: int, ref_value: tuple, metadata: dict
    ) -> Patch:
        """Rebuild a data-less patch from one segment row, reproducing
        ``Patch.from_record(..., with_data=False)`` exactly."""
        metadata[LINEAGE_KEY] = tuple(
            tuple(step) for step in metadata.get(LINEAGE_KEY, ())
        )
        return Patch(
            img_ref=ImgRef.from_value(tuple(ref_value)),
            data=np.empty(0, dtype=np.uint8),
            metadata=metadata,
            patch_id=patch_id,
        )

    def _load_chunk(
        self, chunk: list[tuple[int, bytes]], load_data: bool
    ) -> list[Patch]:
        refs = [
            BlobRef.from_tuple(tuple(serialization.loads(payload)))
            for _, payload in chunk
        ]
        records = self.catalog.heap.multi_get(refs)
        return [
            Patch.from_record(record, patch_id=patch_id, with_data=load_data)
            for (patch_id, _), record in zip(chunk, records)
        ]

    def ids(self) -> list[int]:
        return [patch_id for patch_id, _ in self._tree.items()]

    def _load(self, patch_id: int, payload: bytes, load_data: bool = True) -> Patch:
        ref = BlobRef.from_tuple(tuple(serialization.loads(payload)))
        return Patch.from_record(
            self.catalog.heap.get(ref), patch_id=patch_id, with_data=load_data
        )

    # -- index access ---------------------------------------------------

    def index(self, attr: str, kind: str):
        return self.catalog.get_index(self.name, attr, kind)

    def lookup(self, attr: str, value: Any, kind: str = "hash") -> list[Patch]:
        """Point lookup through an index: patches with attr == value."""
        index = self.index(attr, kind)
        return self.get_many(list(index.lookup(value)))


class Catalog:
    """Database directory: patch heap, collections, indexes, lineage.

    Crash consistency: all four storage files (``catalog.db``,
    ``patches.heap``, ``metadata.seg``, and ``journal.log``) mutate as
    one atomic group. The first mutating write after a commit opens a
    transaction in the :class:`~repro.storage.journal.CommitJournal`;
    :meth:`sync`, :meth:`close`, :meth:`materialize`, and
    :meth:`create_index` are the commit barriers. ``__init__`` runs
    journal recovery *before* opening any store, so a catalog that
    crashed mid-mutation reopens in its last committed state.
    """

    def __init__(
        self,
        workdir: str | os.PathLike,
        *,
        metrics=None,
        durability: str = "fsync",
        fs=None,
    ) -> None:
        if durability not in ("fsync", "flush", "none"):
            raise StorageError(
                f"unknown durability mode {durability!r}: "
                'expected "fsync", "flush", or "none"'
            )
        self.workdir = os.fspath(workdir)
        os.makedirs(self.workdir, exist_ok=True)
        #: the session's metrics registry (None-safe: storage layers
        #: substitute the shared null registry), threaded into the
        #: pager, both heaps, and every metadata segment
        self.metrics = metrics
        self.durability = durability
        self._fs = fs
        registry = metrics
        if registry is None:
            from repro.core.metrics import NULL_REGISTRY

            registry = NULL_REGISTRY
        self._metric_replays = registry.counter(
            "deeplens_journal_replays_total",
            "half-applied transactions rolled back at catalog open",
        )
        self._metric_segment_rebuilds = registry.counter(
            "deeplens_segment_rebuilds_total",
            "metadata segments rebuilt from the blob heap",
        )
        #: recovery/repair events observed by THIS catalog instance —
        #: what db.recovery_report() shows; also appended to the bounded
        #: history persisted in catalog meta
        self.recovery_events: list[dict] = []
        self._recovery_log: list[dict] = []
        #: ``durability="none"`` disables journaling entirely (the
        #: pre-crash-safety behavior; the durability benchmark baseline)
        self._journal: CommitJournal | None = None
        replay_report = None
        if durability != "none":
            self._journal = CommitJournal(
                os.path.join(self.workdir, "journal.log"),
                durability=durability,
                fs=fs,
                metrics=metrics,
            )
            # recovery MUST precede opening the stores: it rewrites their
            # files directly (including a possibly-torn pager header)
            replay_report = self._journal.recover()
        self.pager = Pager(
            os.path.join(self.workdir, "catalog.db"),
            metrics=metrics,
            journal=self._journal,
            fs=fs,
            durability=durability,
        )
        self.heap = BlobHeap(
            os.path.join(self.workdir, "patches.heap"),
            metrics=metrics,
            journal=self._journal,
            fs=fs,
            durability=durability,
        )
        #: columnar metadata segments, one per collection, in their own
        #: heap file — metadata-only scans never touch ``patches.heap``
        self.segments = MetadataSegmentStore(
            os.path.join(self.workdir, "metadata.seg"),
            metrics=metrics,
            journal=self._journal,
            fs=fs,
            durability=durability,
            on_corruption=self._on_segment_corruption,
        )
        if self._journal is not None:
            self._journal.register_begin_provider(self._begin_state)
        # the empty-meta sanity check must run before ANY meta writer
        # (LineageStore re-creates its B+ trees into an empty meta dict,
        # which would mask a torn meta page as a legitimately empty
        # catalog and silently orphan every collection)
        if not self.pager.get_meta() and (
            self.pager.page_count > 2 or self.heap.size_bytes > 16
        ):
            raise CorruptionError(
                "catalog meta page is empty but the catalog contains data; "
                "the meta page was torn or zeroed",
                file=self.pager.path,
                offset=self.pager._meta_page * self.pager.page_size,
            )
        self.lineage = LineageStore(self.pager)
        self._collections: dict[str, MaterializedCollection] = {}
        #: (collection, attr, kind) -> index object
        self._indexes: dict[tuple[str, str, str], Any] = {}
        self._trees: dict[str, BPlusTree] = {}
        meta = self.pager.get_meta()
        self._recovery_log = [dict(e) for e in meta.get("catalog:recovery_log", [])]
        if replay_report is not None:
            self._metric_replays.inc()
            self._record_recovery_event("journal_replay", **replay_report)
        self._next_id = meta.get("catalog:next_id", 0)
        for name in meta.get("catalog:collections", []):
            self._collections[name] = MaterializedCollection(self, name)
        self._registered: list[tuple[str, str, str]] = [
            tuple(entry) for entry in meta.get("catalog:indexes", [])
        ]
        self._multi_value: set[tuple[str, str, str]] = {
            tuple(entry) for entry in meta.get("catalog:multi_value", [])
        }
        #: (collection, attr, kind) -> build knobs (hnsw m/ef/...)
        self._index_params: dict[tuple[str, str, str], dict] = {
            tuple(entry[0]): dict(entry[1])
            for entry in meta.get("catalog:index_params", [])
        }
        #: (collection, attr, 'hnsw') -> heap ref of the graph snapshot
        self._hnsw_refs: dict[tuple[str, str, str], list] = {
            tuple(entry[0]): list(entry[1])
            for entry in meta.get("catalog:hnsw", [])
        }
        self._hnsw_dirty: set[tuple[str, str, str]] = set()
        #: collection name -> in-memory statistics (lazily loaded)
        self._stats: dict[str, CollectionStatistics] = {}
        #: collection name -> heap ref of the persisted stats snapshot
        self._stats_refs: dict[str, list] = dict(meta.get("catalog:stats", {}))
        self._stats_dirty: set[str] = set()
        #: collection name -> monotone mutation counter (bumped per add);
        #: the lineage version materialized views record for their bases
        self._versions: dict[str, int] = dict(meta.get("catalog:versions", {}))
        #: collection name -> version at the last full materialization /
        #: statistics rebuild — the baseline the staleness flag measures from
        self._fresh_versions: dict[str, int] = dict(
            meta.get("catalog:fresh_versions", {})
        )
        #: lazily-loaded plan-quality log (estimate-vs-actual history and
        #: per-predicate feedback corrections from EXPLAIN ANALYZE runs)
        self._plan_log: PlanQualityLog | None = None
        #: heap ref of the persisted log snapshot
        self._plan_log_ref: list | None = meta.get("catalog:plan_log")
        #: lazily-loaded slow-query log — same snapshot idiom
        self._slow_log: SlowQueryLog | None = None
        self._slow_log_ref: list | None = meta.get("catalog:slow_log")
        self.segments.attach(meta.get("catalog:meta_segment", {}))

    # -- lifecycle ------------------------------------------------------

    def close(self) -> None:
        self.sync()
        self.pager.close()
        self.heap.close()
        self.segments.close()
        if self._journal is not None:
            self._journal.close()

    def sync(self) -> None:
        """Flush everything durably, then commit: the catalog's
        transaction barrier. Data files are synced *before* the journal
        truncates — the truncation is the commit point."""
        self._save_meta()
        self.pager.sync()
        self.heap.sync()
        self.segments.sync()
        if self._journal is not None:
            self._journal.commit()

    def __enter__(self) -> "Catalog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _save_meta(self) -> None:
        for name in sorted(self._stats_dirty):
            stats = self._stats.get(name)
            if stats is None:
                continue
            payload = serialization.dumps(
                stats.to_value(), compress_arrays=False
            )
            ref = self.heap.put(payload, compress=True)
            self._stats_refs[name] = list(ref.to_tuple())
        self._stats_dirty.clear()
        for key in sorted(self._hnsw_dirty):
            index = self._indexes.get(key)
            if index is None:
                continue
            payload = serialization.dumps(
                index.to_value(), compress_arrays=False
            )
            ref = self.heap.put(payload, compress=True)
            self._hnsw_refs[key] = list(ref.to_tuple())
        self._hnsw_dirty.clear()
        if self._plan_log is not None and self._plan_log.dirty:
            payload = serialization.dumps(
                self._plan_log.to_value(), compress_arrays=False
            )
            self._plan_log_ref = list(self.heap.put(payload, compress=True).to_tuple())
            self._plan_log.dirty = False
        if self._slow_log is not None and self._slow_log.dirty:
            payload = serialization.dumps(
                self._slow_log.to_value(), compress_arrays=False
            )
            self._slow_log_ref = list(self.heap.put(payload, compress=True).to_tuple())
            self._slow_log.dirty = False
        meta = self.pager.get_meta()
        meta["catalog:next_id"] = self._next_id
        meta["catalog:meta_segment"] = self.segments.flush()
        meta["catalog:collections"] = sorted(self._collections)
        meta["catalog:indexes"] = [list(key) for key in self._registered]
        meta["catalog:multi_value"] = [list(key) for key in sorted(self._multi_value)]
        meta["catalog:index_params"] = [
            [list(key), dict(params)]
            for key, params in sorted(self._index_params.items())
        ]
        meta["catalog:hnsw"] = [
            [list(key), list(ref)]
            for key, ref in sorted(self._hnsw_refs.items())
        ]
        meta["catalog:stats"] = dict(self._stats_refs)
        meta["catalog:versions"] = dict(self._versions)
        meta["catalog:fresh_versions"] = dict(self._fresh_versions)
        if self._plan_log_ref is not None:
            meta["catalog:plan_log"] = self._plan_log_ref
        if self._slow_log_ref is not None:
            meta["catalog:slow_log"] = self._slow_log_ref
        if self._recovery_log:
            meta["catalog:recovery_log"] = [dict(e) for e in self._recovery_log]
        self.pager.set_meta(meta)

    # -- recovery & repair observability ---------------------------------

    def _begin_state(self) -> dict:
        """The commit journal's BEGIN snapshot: everything rollback needs
        that cannot be reconstructed after the files mutate. Called with
        no pager/heap locks held, so only plain attributes are read."""
        return {
            "op": "catalog-mutation",
            "pager": os.path.basename(self.pager.path),
            "page_size": self.pager.page_size,
            "pre_page_count": self.pager.page_count,
            "header": self.pager.packed_header(),
            "heap_ends": {
                os.path.basename(self.heap.path): self.heap.size_bytes,
                os.path.basename(self.segments.heap_path):
                    self.segments.heap_size_bytes,
            },
        }

    def _record_recovery_event(self, kind: str, **details) -> None:
        event = {"kind": kind}
        for key, value in details.items():
            event[key] = value if isinstance(value, (int, str, dict)) else str(value)
        self.recovery_events.append(event)
        self._recovery_log.append(event)
        del self._recovery_log[:-RECOVERY_LOG_MAX]

    def recovery_report(self) -> dict:
        """What storage repair has happened: ``events`` covers this
        catalog instance (journal rollback at open, quarantined segments
        or snapshots repaired at runtime); ``history`` is the bounded
        persisted log across opens."""
        return {
            "events": [dict(e) for e in self.recovery_events],
            "history": [dict(e) for e in self._recovery_log],
        }

    def scrub(self) -> dict:
        """On-demand integrity sweep over every checksummed structure:
        pager pages (against their committed on-disk images), blob-heap
        records of both heap files, and every collection's sealed
        metadata-segment blocks (decoded end to end).

        Failures are collected, not raised: each lands in the returned
        ``errors`` list, is recorded as a ``scrub_corruption`` recovery
        event (so :meth:`recovery_report` shows it), and counts in
        ``deeplens_corruption_detected_total`` at the detecting layer.
        """
        errors: list[dict] = []

        def note(source: str, found) -> None:
            for exc in found:
                entry = {"source": source, "detail": str(exc)}
                if getattr(exc, "file", None) is not None:
                    entry["file"] = exc.file
                if getattr(exc, "offset", None) is not None:
                    entry["offset"] = exc.offset
                errors.append(entry)

        pages_checked, page_errors = self.pager.scrub()
        note("pager", page_errors)
        records_checked, record_errors = self.heap.scrub()
        note("heap", record_errors)
        segment_records, segment_errors = self.segments.scrub()
        records_checked += segment_records
        note("segment-heap", segment_errors)
        blocks_checked = 0
        for name in self.collections():
            # the raw attached segment, NOT _metadata_segment(): scrub
            # must observe damage, never trigger the rebuild that heals it
            checked, block_errors = self.segments.segment(name).scrub()
            blocks_checked += checked
            note(f"segment[{name}]", block_errors)
        for entry in errors:
            self._record_recovery_event("scrub_corruption", **entry)
        return {
            "pages_checked": pages_checked,
            "records_checked": records_checked,
            "blocks_checked": blocks_checked,
            "errors": errors,
        }

    def _on_segment_corruption(self, name: str, exc: CorruptionError) -> None:
        """MetadataSegmentStore's descriptor-quarantine hook."""
        self._record_recovery_event(
            "segment_quarantined", collection=name, detail=str(exc)
        )

    def _quarantine_segment(self, name: str, exc: CorruptionError) -> None:
        """Discard a corrupt segment so the next metadata read rebuilds
        it from the blob heap (the source of truth)."""
        self.segments.drop(name)
        self._record_recovery_event(
            "segment_quarantined", collection=name, detail=str(exc)
        )

    def _tree_for(self, name: str) -> BPlusTree:
        if name not in self._trees:
            self._trees[name] = BPlusTree(self.pager, name, unique=True)
        return self._trees[name]

    def _next_patch_id(self) -> int:
        patch_id = self._next_id
        self._next_id += 1
        return patch_id

    # -- collections ----------------------------------------------------

    def materialize(
        self,
        patches: Iterable[Patch],
        name: str,
        schema: PatchSchema | None = None,
        *,
        replace: bool = False,
    ) -> MaterializedCollection:
        """Persist an iterator of patches as collection ``name``."""
        if name in self._collections:
            if not replace:
                raise StorageError(
                    f"collection {name!r} already exists (pass replace=True)"
                )
            collection = self._collections[name]
            collection._tree.clear()
            collection._ref_map = None
            # the columnar segment restarts clean alongside the tree
            self.segments.drop(name)
            # indexes and statistics over the old contents are stale
            self._registered = [
                key for key in self._registered if key[0] != name
            ]
            for key in [k for k in self._indexes if k[0] == name]:
                del self._indexes[key]
            for store in (self._index_params, self._hnsw_refs):
                for key in [k for k in store if k[0] == name]:
                    del store[key]
            self._hnsw_dirty = {k for k in self._hnsw_dirty if k[0] != name}
            self.drop_statistics(name)
            # replacing is a mutation even when zero rows follow (an
            # emptied base must still invalidate dependent views)
            self._bump_version(name)
        else:
            collection = MaterializedCollection(self, name)
            self._collections[name] = collection
        collection.schema = schema
        for patch in patches:
            collection.add(patch)
        # the collection is now a complete snapshot: later add()s count as
        # mutations against this baseline (statistics staleness flag, view
        # invalidation)
        self._fresh_versions[name] = self._versions.get(name, 0)
        # commit barrier: the whole materialization lands atomically
        self.sync()
        return collection

    def collection(self, name: str) -> MaterializedCollection:
        try:
            return self._collections[name]
        except KeyError:
            raise QueryError(
                f"no collection {name!r}; have {sorted(self._collections)}"
            ) from None

    def collections(self) -> list[str]:
        return sorted(self._collections)

    # -- collection versions (lineage-driven invalidation) ----------------

    def collection_version(self, collection_name: str) -> int:
        """Monotone mutation counter for a collection: bumped on every
        :meth:`MaterializedCollection.add`. Materialized views record
        their bases' versions at build time; a mismatch later means the
        view no longer reflects its base."""
        return self._versions.get(collection_name, 0)

    def mutations_since_fresh(self, collection_name: str) -> int:
        """Adds since the collection was last fully materialized or had
        its statistics rebuilt — the statistics staleness counter."""
        return self.collection_version(collection_name) - self._fresh_versions.get(
            collection_name, 0
        )

    def _bump_version(self, collection_name: str) -> None:
        self._versions[collection_name] = self._versions.get(collection_name, 0) + 1

    # -- plan quality (EXPLAIN ANALYZE feedback) --------------------------

    def _load_snapshot(self, ref_value: list, what: str, loader):
        """Load + decode one heap-persisted snapshot through ``loader``
        (a ``from_value`` classmethod); every failure — checksum, short
        read, undecodable content, a shape ``loader`` rejects — surfaces
        as one positioned :class:`CorruptionError` so callers can
        quarantine."""
        ref = BlobRef.from_tuple(tuple(ref_value))
        try:
            return loader(serialization.loads(self.heap.get(ref)))
        except CorruptionError:
            raise
        except (
            StorageError,
            zlib.error,
            struct.error,
            ValueError,
            KeyError,
            TypeError,
            IndexError,
            AttributeError,
        ) as exc:
            raise CorruptionError(
                f"undecodable {what} snapshot: {exc}",
                file=self.heap.path,
                offset=ref.offset,
            ) from exc

    def plan_quality_log(self) -> PlanQualityLog:
        """The catalog's plan-quality log: estimate-vs-actual history per
        parameterized plan fingerprint plus per-predicate observed
        selectivities. Lazily loaded from its persisted snapshot; flushed
        back (when dirty) by :meth:`_save_meta` like statistics. A corrupt
        snapshot is dropped (it is advisory history), recorded as a
        recovery event, and the log restarts empty."""
        if self._plan_log is None:
            if self._plan_log_ref is not None:
                try:
                    self._plan_log = self._load_snapshot(
                        self._plan_log_ref,
                        "plan-quality log",
                        PlanQualityLog.from_value,
                    )
                except CorruptionError as exc:
                    self._plan_log_ref = None
                    self._record_recovery_event(
                        "plan_log_reset", detail=str(exc)
                    )
            if self._plan_log is None:
                self._plan_log = PlanQualityLog()
        return self._plan_log

    def slow_query_log(self) -> SlowQueryLog:
        """The catalog's slow-query log: bounded history of queries whose
        wall time crossed the threshold, with span trees and counter
        deltas. Same lazy-load / dirty-flush (and corruption-reset)
        lifecycle as the plan log."""
        if self._slow_log is None:
            if self._slow_log_ref is not None:
                try:
                    self._slow_log = self._load_snapshot(
                        self._slow_log_ref,
                        "slow-query log",
                        SlowQueryLog.from_value,
                    )
                except CorruptionError as exc:
                    self._slow_log_ref = None
                    self._record_recovery_event(
                        "slow_log_reset", detail=str(exc)
                    )
            if self._slow_log is None:
                self._slow_log = SlowQueryLog()
        return self._slow_log

    # -- cardinality statistics -----------------------------------------

    def statistics_for(
        self, collection_name: str
    ) -> CollectionStatistics | None:
        """Statistics for a collection (the planner's entry point).

        Returns None for collections without statistics (unknown names,
        or databases materialized before statistics existed) — the
        optimizer then falls back to its fixed selectivity constants.

        A corrupt snapshot never fails the query: statistics are derived
        state, so the snapshot is quarantined and rebuilt from a full
        scan of the collection (or dropped to the fallback constants when
        the collection itself is gone).
        """
        stats = self._stats.get(collection_name)
        if stats is None and collection_name in self._stats_refs:
            try:
                stats = self._load_snapshot(
                    self._stats_refs[collection_name],
                    f"statistics[{collection_name}]",
                    CollectionStatistics.from_value,
                )
                self._stats[collection_name] = stats
            except CorruptionError as exc:
                self._stats_refs.pop(collection_name, None)
                self._record_recovery_event(
                    "stats_rebuilt", collection=collection_name, detail=str(exc)
                )
                if collection_name in self._collections:
                    stats = self.rebuild_statistics(collection_name)
                else:
                    return None
        if stats is not None:
            stats.staleness = self.mutations_since_fresh(collection_name)
        return stats

    def rebuild_statistics(self, collection_name: str) -> CollectionStatistics:
        """Recompute statistics from a full scan (id order — the same
        order incremental collection saw, so the results are identical
        unless the statistics were lost or predate this feature)."""
        collection = self.collection(collection_name)
        stats = CollectionStatistics()
        for patch in collection.scan():
            stats.observe(patch)
        self._stats[collection_name] = stats
        self._stats_dirty.add(collection_name)
        # a full-scan rebuild re-baselines staleness: the profile now
        # reflects every row
        self._fresh_versions[collection_name] = self.collection_version(
            collection_name
        )
        return stats

    def drop_statistics(self, collection_name: str) -> None:
        """Forget a collection's statistics (planner falls back to
        constants until they are rebuilt)."""
        self._stats.pop(collection_name, None)
        self._stats_refs.pop(collection_name, None)
        self._stats_dirty.discard(collection_name)

    def _record_statistics(self, collection_name: str, patch: Patch) -> None:
        stats = self.statistics_for(collection_name)
        if stats is None:
            # statistics must start at the collection's very first row:
            # seeding them mid-collection (after drop_statistics, or on
            # a database that predates statistics) would present partial
            # counts as authoritative — stay on fallback until an
            # explicit rebuild_statistics
            if len(self._collections[collection_name]) != 1:
                return
            stats = CollectionStatistics()
            self._stats[collection_name] = stats
        stats.observe(patch)
        self._stats_dirty.add(collection_name)

    # -- indexes ------------------------------------------------------------

    def create_index(
        self,
        collection_name: str,
        attr: str,
        kind: str,
        *,
        feature_fn: Callable[[Patch], np.ndarray] | None = None,
        multi_value: bool = False,
        params: dict | None = None,
    ):
        """Build an index over ``attr`` of a materialized collection.

        Kinds: ``hash`` (equality), ``btree`` (equality + range), ``rtree``
        (attr must hold (x1, y1, x2, y2) boxes), ``balltree`` (attr must
        hold fixed-dim vectors, or pass ``feature_fn`` / attr='data' to
        index the patch data itself), ``hnsw`` (approximate k-NN graph
        over the same vector sources; ``params`` accepts the build knobs
        ``m``, ``ef_construction``, ``ef``/``ef_search`` and ``seed``).
        ``multi_value=True`` treats the attribute as a collection of keys
        (an inverted index — e.g. OCR token tuples), valid for hash/btree
        kinds.
        """
        if kind not in INDEX_KINDS:
            raise IndexError_(
                f"unknown index kind {kind!r}; expected one of {INDEX_KINDS}"
            )
        if multi_value and kind not in ("hash", "btree"):
            raise IndexError_(
                f"multi_value indexes require hash/btree kinds, not {kind!r}"
            )
        if params and kind != "hnsw":
            raise IndexError_(
                f"index params are only valid for hnsw indexes, not {kind!r}"
            )
        collection = self.collection(collection_name)
        key = (collection_name, attr, kind)
        if kind == "hnsw":
            self._index_params[key] = _normalize_hnsw_params(params)
        index = self._build_index(collection, attr, kind, feature_fn, multi_value)
        self._indexes[key] = index
        if key not in self._registered:
            self._registered.append(key)
        self._multi_value.add(key) if multi_value else None
        if kind == "hnsw":
            # the graph snapshot rides the same commit as its registration
            self._hnsw_dirty.add(key)
        # commit barrier: index pages + registration land atomically
        self.sync()
        return index

    def get_index(self, collection_name: str, attr: str, kind: str):
        key = (collection_name, attr, kind)
        if key in self._indexes:
            return self._indexes[key]
        if key in self._registered:
            if kind in ("hash", "btree"):
                # persistent structures reattach to their on-disk state;
                # repopulating them would double every entry
                name = f"{collection_name}.{attr}.{kind}"
                index = (
                    HashIndex(self.pager, name)
                    if kind == "hash"
                    else BTreeIndex(self.pager, name)
                )
            elif kind == "hnsw":
                # the graph reloads from its heap snapshot; a corrupt
                # snapshot is quarantined and the graph rebuilt from the
                # collection (the source of truth), like statistics
                index = None
                ref = self._hnsw_refs.get(key)
                if ref is not None:
                    try:
                        index = self._load_snapshot(
                            ref,
                            f"hnsw[{collection_name}.{attr}]",
                            lambda value: HNSWIndex.from_value(
                                value, metrics=self.metrics
                            ),
                        )
                    except CorruptionError as exc:
                        self._hnsw_refs.pop(key, None)
                        self._record_recovery_event(
                            "hnsw_rebuilt",
                            collection=collection_name,
                            attr=attr,
                            detail=str(exc),
                        )
                if index is None:
                    collection = self.collection(collection_name)
                    index = self._build_index(collection, attr, kind, None)
                    self._hnsw_dirty.add(key)
            else:
                # multi-dimensional indexes are memory-resident: rebuild
                collection = self.collection(collection_name)
                index = self._build_index(
                    collection, attr, kind, None, key in self._multi_value
                )
            self._indexes[key] = index
            return index
        raise IndexError_(
            f"no {kind} index on {collection_name}.{attr}; create_index first"
        )

    def has_index(self, collection_name: str, attr: str, kind: str) -> bool:
        return (collection_name, attr, kind) in self._registered

    def indexes(self) -> list[tuple[str, str, str]]:
        return list(self._registered)

    def index_params(self, collection_name: str, attr: str, kind: str) -> dict:
        """Build knobs recorded at CREATE INDEX time (empty for kinds
        without knobs)."""
        return dict(self._index_params.get((collection_name, attr, kind), {}))

    def _build_index(
        self,
        collection: MaterializedCollection,
        attr: str,
        kind: str,
        feature_fn: Callable[[Patch], np.ndarray] | None,
        multi_value: bool = False,
    ):
        name = f"{collection.name}.{attr}.{kind}"
        if kind in ("hash", "btree"):
            index = (
                HashIndex(self.pager, name)
                if kind == "hash"
                else BTreeIndex(self.pager, name)
            )
            for patch in collection.scan():
                value = patch.metadata.get(attr)
                if value is None:
                    continue
                for key in _index_keys(value, multi_value):
                    index.insert(key, patch.patch_id)
            return index
        if kind == "rtree":
            index = RTree()
            for patch in collection.scan():
                value = patch.metadata.get(attr)
                if value is not None:
                    index.insert(rect_from_bbox(tuple(value)), patch.patch_id)
            return index
        # balltree / hnsw: both index the same vector sources
        vectors: list[np.ndarray] = []
        ids: list[int] = []
        for patch in collection.scan():
            vector = _patch_vector(patch, attr, feature_fn)
            if vector is None:
                continue
            vectors.append(vector)
            ids.append(patch.patch_id)
        if not vectors:
            raise IndexError_(
                f"collection {collection.name!r} has no vectors under "
                f"{attr!r} to index"
            )
        if kind == "hnsw":
            params = self._index_params.get((collection.name, attr, kind), {})
            return HNSWIndex.build(
                np.stack(vectors), ids, metrics=self.metrics, **params
            )
        return BallTree(np.stack(vectors), ids=ids)

    def _maintain_indexes(self, collection_name: str, patch: Patch) -> None:
        """Keep incremental indexes current as new patches arrive."""
        for (name, attr, kind), index in list(self._indexes.items()):
            if name != collection_name:
                continue
            if kind in ("hash", "btree"):
                value = patch.metadata.get(attr)
                if value is not None:
                    multi = (name, attr, kind) in self._multi_value
                    for key in _index_keys(value, multi):
                        index.insert(key, patch.patch_id)
            elif kind == "rtree":
                value = patch.metadata.get(attr)
                if value is not None:
                    index.insert(rect_from_bbox(tuple(value)), patch.patch_id)
            elif kind == "balltree":
                # static structure: drop it; it rebuilds lazily on next use
                key = (name, attr, kind)
                self._indexes.pop(key, None)
        # hnsw graphs grow incrementally — including registered graphs
        # not yet resident (loaded from snapshot first). A graph that
        # had to be *rebuilt* already scanned this patch, so the
        # membership check keeps the add idempotent.
        for key in self._registered:
            name, attr, kind = key
            if kind != "hnsw" or name != collection_name:
                continue
            vector = _patch_vector(patch, attr, None)
            if vector is None:
                continue
            index = self.get_index(name, attr, kind)
            if patch.patch_id not in index:
                index.add(vector, patch.patch_id)
            self._hnsw_dirty.add(key)


def _patch_vector(patch: Patch, attr: str, feature_fn) -> np.ndarray | None:
    """The vector one patch contributes to a balltree/hnsw index."""
    if feature_fn is not None:
        vector = feature_fn(patch)
    elif attr == "data":
        vector = patch.data
    else:
        vector = patch.metadata.get(attr)
    if vector is None:
        return None
    return np.asarray(vector, dtype=np.float64).ravel()


def _normalize_hnsw_params(params: dict | None) -> dict:
    """Validate CREATE INDEX knobs against the accepted HNSW set and
    map SQL spellings (``ef``) onto constructor kwargs (``ef_search``)."""
    normalized: dict[str, int] = {}
    for key, value in (params or {}).items():
        target = _HNSW_PARAM_KEYS.get(str(key).lower())
        if target is None:
            raise IndexError_(
                f"unknown hnsw parameter {key!r}; expected one of "
                f"{sorted(set(_HNSW_PARAM_KEYS))}"
            )
        normalized[target] = int(value)
    return normalized


def _index_keys(value, multi_value: bool) -> list:
    """Keys contributed by one attribute value (inverted when multi-value)."""
    if multi_value and isinstance(value, (tuple, list)):
        return list(value)
    return [value]
