"""The Patch abstract data type (Section 2.2).

    Patch(ImgRef, Data, MetaData)

All visual corpora in DeepLens are unordered collections of patches: an
n-dimensional dense ``data`` array (raw pixels or features), a ``metadata``
key-value dictionary, and an ``img_ref`` lineage descriptor. "Lineage is
maintained as every operator is required to update the ImgRef attribute to
retain a lineage chain back to the original image" — here that contract is
enforced by :meth:`Patch.derive`, the only sanctioned way to create a
child patch, which extends the chain automatically and mirrors it into the
metadata dictionary (key ``_lineage``) "so indexes and queries can be
natively supported on them" (Section 5.1).
"""

from __future__ import annotations

import struct as _struct

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import LineageError
from repro.storage.kvstore import serialization

#: metadata key carrying the serializable lineage chain
LINEAGE_KEY = "_lineage"
#: metadata keys every loader sets
SOURCE_KEY = "source"
FRAME_KEY = "frameno"


@dataclass(frozen=True)
class ImgRef:
    """Pointer from a patch back toward its base image.

    ``source`` names the ingested corpus ("video:cam0", "images:pc");
    ``frame`` the frame/image ordinal within it; ``parent_id`` the
    materialized id of the patch this one was derived from, when the parent
    was persisted (in-flight parents have no id yet — the lineage *chain*
    in metadata still records how they were made).
    """

    source: str
    frame: int | None = None
    parent_id: int | None = None

    def to_value(self) -> tuple:
        return (self.source, self.frame, self.parent_id)

    @classmethod
    def from_value(cls, value: tuple) -> "ImgRef":
        return cls(source=value[0], frame=value[1], parent_id=value[2])


@dataclass
class Patch:
    """One featurized subimage with metadata and lineage."""

    img_ref: ImgRef
    data: np.ndarray
    metadata: dict[str, Any] = field(default_factory=dict)
    patch_id: int | None = None  # assigned at materialization

    def __post_init__(self) -> None:
        self.data = np.asarray(self.data)
        self.metadata.setdefault(LINEAGE_KEY, ())
        self.metadata.setdefault(SOURCE_KEY, self.img_ref.source)
        if self.img_ref.frame is not None:
            self.metadata.setdefault(FRAME_KEY, self.img_ref.frame)

    # -- construction -----------------------------------------------------

    @classmethod
    def from_frame(cls, source: str, frame: int, pixels: np.ndarray, **metadata) -> "Patch":
        """A whole-image patch as produced by the loader (Section 3.1)."""
        patch = cls(
            img_ref=ImgRef(source=source, frame=frame),
            data=pixels,
            metadata=dict(metadata),
        )
        patch.metadata[LINEAGE_KEY] = (("load", source, frame),)
        return patch

    def derive(
        self,
        data: np.ndarray,
        op: str,
        *params,
        **metadata_updates,
    ) -> "Patch":
        """Create a child patch, extending the lineage chain.

        ``op`` names the producing operator ("ssd", "histogram", ...);
        ``params`` are its serializable parameters (a bbox, a model name).
        The child inherits the parent's metadata (minus internal keys that
        the child recomputes) updated with ``metadata_updates``.
        """
        child_meta = {
            key: value
            for key, value in self.metadata.items()
            if key != LINEAGE_KEY
        }
        child_meta.update(metadata_updates)
        child_meta[LINEAGE_KEY] = self.lineage + ((op, *params),)
        # the parent pointer names the nearest *materialized* ancestor: an
        # in-flight intermediate (patch_id None) passes its own parent
        # through, so backtracing always lands on persisted data
        parent_id = (
            self.patch_id if self.patch_id is not None else self.img_ref.parent_id
        )
        return Patch(
            img_ref=ImgRef(
                source=self.img_ref.source,
                frame=self.img_ref.frame,
                parent_id=parent_id,
            ),
            data=data,
            metadata=child_meta,
        )

    # -- lineage ------------------------------------------------------------

    @property
    def lineage(self) -> tuple:
        """The full derivation chain, base image first."""
        return tuple(self.metadata.get(LINEAGE_KEY, ()))

    def base_ref(self) -> tuple[str, int | None]:
        """(source, frame) of the raw image this patch descends from."""
        chain = self.lineage
        if chain and chain[0][0] == "load":
            return (chain[0][1], chain[0][2])
        if self.img_ref.frame is None and not chain:
            raise LineageError(
                f"patch {self.patch_id} has no lineage chain back to a base image"
            )
        return (self.img_ref.source, self.img_ref.frame)

    # -- metadata convenience -------------------------------------------

    def get(self, key: str, default: Any = None) -> Any:
        return self.metadata.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.metadata[key]

    @property
    def bbox(self) -> tuple[int, int, int, int] | None:
        value = self.metadata.get("bbox")
        return tuple(value) if value is not None else None

    # -- persistence ------------------------------------------------------

    def to_record(self) -> bytes:
        """Serialize for the materialization heap.

        Layout: ``[4-byte header length][header][data payload]`` where the
        header holds the ImgRef and metadata. Keeping the (large) data
        payload physically after the header lets readers deserialize
        *metadata only* — the projection push-down that metadata-only
        queries (label filters, frameno lookups) rely on.
        """
        header = serialization.dumps(
            {"ref": self.img_ref.to_value(), "meta": _normalize_meta(self.metadata)}
        )
        data_payload = serialization.dumps(self.data)
        return (
            _struct.pack(">I", len(header)) + header + data_payload
        )

    @classmethod
    def from_record(
        cls, payload: bytes, patch_id: int | None = None, *, with_data: bool = True
    ) -> "Patch":
        """Deserialize; ``with_data=False`` skips the pixel/feature payload
        (``data`` comes back as an empty array)."""
        (header_len,) = _struct.unpack_from(">I", payload, 0)
        record = serialization.loads(payload[4 : 4 + header_len])
        meta = dict(record["meta"])
        meta[LINEAGE_KEY] = tuple(tuple(step) for step in meta.get(LINEAGE_KEY, ()))
        if with_data:
            data = serialization.loads(payload[4 + header_len :])
        else:
            data = np.empty(0, dtype=np.uint8)
        return cls(
            img_ref=ImgRef.from_value(tuple(record["ref"])),
            data=data,
            metadata=meta,
            patch_id=patch_id,
        )

    def __repr__(self) -> str:
        label = self.metadata.get("label")
        return (
            f"Patch(id={self.patch_id}, source={self.img_ref.source!r}, "
            f"frame={self.img_ref.frame}, data={tuple(self.data.shape)}, "
            f"label={label!r})"
        )


#: A row flowing between operators: a tuple of patches (arity 1 for scans
#: and selections, 2+ after joins) — the ``Tuple<Patch>`` of Section 2.2.
Row = tuple[Patch, ...]


def _normalize_meta(metadata: dict[str, Any]) -> dict[str, Any]:
    """Make metadata serializable (tuples of tuples for the lineage chain)."""
    out = {}
    for key, value in metadata.items():
        if isinstance(value, np.generic):
            value = value.item()
        out[key] = value
    return out
